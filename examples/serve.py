"""Serve solves over HTTP and hammer the endpoint with a load generator.

Three modes:

* default (no flags) — self-contained demo: starts the JSON endpoint on
  a free port, runs the load generator against it, prints the
  per-request latency and the service's own metrics, and exits (this is
  what CI smokes).
* ``--serve`` — run the endpoint in the foreground (Ctrl-C to stop)::

      PYTHONPATH=src python examples/serve.py --serve --port 8000

* ``--client URL`` — load-generate against an already-running server::

      PYTHONPATH=src python examples/serve.py --client http://127.0.0.1:8000

The workload mimics a serving mix: ``--problems`` distinct operators
(grid sizes m, m+4, ...), ``--threads`` concurrent clients, and
``--requests`` total solves with rotating right-hand-side seeds — so
the factorization cache, the single-flight lock, and the rhs batcher
all see real concurrency. Tune the service with the ``REPRO_SERVICE_*``
environment knobs (cache bytes, batch window/size/mode, workers).

**Warm restarts.** Point ``--store`` (or ``REPRO_STORE_DIR``) at a
directory and factorizations outlive the process: entries are published
to the cross-process shared tier while the server runs and spilled to
checksummed warm-start files on shutdown (SIGTERM/Ctrl-C both shut down
cleanly). A restarted server loads them instead of refactoring::

    PYTHONPATH=src python examples/serve.py --serve --port 8000 --store /tmp/repro-store
    # ... solve some problems, then kill -TERM the server ...
    PYTHONPATH=src python examples/serve.py --serve --port 8000 --store /tmp/repro-store
    # same requests now show store_hits_disk > 0, factorizations == 0
    # (GET /stats, or repro_store_hits_total on GET /metrics)

Two servers sharing one ``--store`` on one machine attach each other's
factorizations zero-copy through ``/dev/shm`` instead of each building
their own.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.client import HTTPConnection
from urllib.parse import urlparse

from repro.service import SolveService
from repro.service.http import make_server


def load_generate(
    host: str, port: int, *, requests: int, threads: int, m: int, problems: int
) -> dict:
    """Fire ``requests`` solves from ``threads`` concurrent clients."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    counter = {"next": 0}

    def worker() -> None:
        conn = HTTPConnection(host, port, timeout=300)
        try:
            while True:
                with lock:
                    i = counter["next"]
                    if i >= requests:
                        return
                    counter["next"] += 1
                body = json.dumps(
                    {
                        "problem": {
                            "type": "laplace_volume",
                            "m": m + 4 * (i % problems),
                        },
                        "rhs": {"seed": i},
                        "relres": False,
                    }
                )
                t0 = time.perf_counter()
                conn.request(
                    "POST", "/solve", body, {"Content-Type": "application/json"}
                )
                resp = conn.getresponse()
                payload = json.loads(resp.read())
                dt = time.perf_counter() - t0
                with lock:
                    if resp.status == 200:
                        latencies.append(dt)
                    else:
                        errors.append(payload.get("error", f"HTTP {resp.status}"))
        finally:
            conn.close()

    t_start = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = time.perf_counter() - t_start

    latencies.sort()
    pick = lambda q: latencies[int(q * (len(latencies) - 1))] if latencies else None  # noqa: E731
    return {
        "ok": len(latencies),
        "errors": errors,
        "wall_s": wall,
        "throughput_rps": len(latencies) / wall if wall else 0.0,
        "p50_s": pick(0.50),
        "p95_s": pick(0.95),
    }


def fetch_stats(host: str, port: int) -> dict:
    conn = HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/stats")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0, help="0 picks a free port")
    ap.add_argument("--serve", action="store_true", help="serve in the foreground")
    ap.add_argument("--client", metavar="URL", help="load-generate against URL")
    ap.add_argument("--requests", type=int, default=32, help="total solve requests")
    ap.add_argument("--threads", type=int, default=8, help="concurrent clients")
    ap.add_argument("--m", type=int, default=24, help="base grid side (N = m^2)")
    ap.add_argument("--problems", type=int, default=2, help="distinct operators")
    ap.add_argument(
        "--store",
        metavar="DIR",
        help="resident-store root: publish/attach shared entries and "
        "spill warm-start files here (default: REPRO_STORE_DIR)",
    )
    args = ap.parse_args()

    if args.client:
        url = urlparse(args.client)
        host, port = url.hostname or "127.0.0.1", url.port or 8000
        result = load_generate(
            host,
            port,
            requests=args.requests,
            threads=args.threads,
            m=args.m,
            problems=args.problems,
        )
        print(json.dumps({"load": result, "stats": fetch_stats(host, port)}, indent=2))
        return

    service = SolveService(**({"store_dir": args.store} if args.store else {}))
    server = make_server(service, args.host, args.port or (8000 if args.serve else 0))
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}  (POST /solve, GET /stats, GET /healthz)")

    if args.serve:
        # SIGTERM shuts down as cleanly as Ctrl-C: the service close
        # spills cached factorizations to the store for a warm restart
        import signal

        def _terminate(signum, frame):
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
            service.close()
        return

    # self-contained demo: server thread + embedded load generator
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        result = load_generate(
            host,
            port,
            requests=args.requests,
            threads=args.threads,
            m=args.m,
            problems=args.problems,
        )
        if result["errors"]:  # diagnose before any summary formatting
            raise SystemExit(f"load generator saw errors: {result['errors'][:3]}")
        stats = service.stats()
        ms = lambda v: f"{1e3 * v:.1f}ms" if v is not None else "n/a"  # noqa: E731
        print(
            f"{result['ok']}/{args.requests} ok in {result['wall_s']:.2f}s "
            f"({result['throughput_rps']:.1f} req/s), "
            f"client p50 {ms(result['p50_s'])} p95 {ms(result['p95_s'])}"
        )
        print(
            f"cache: {stats.factorizations} factorizations for "
            f"{stats.requests} requests (hit rate {stats.hit_rate:.0%}), "
            f"{stats.bytes_resident / 1e6:.1f} MB resident; "
            f"batches: mean occupancy {stats.mean_batch_occupancy:.2f} "
            f"(max {stats.max_batch_occupancy}); "
            f"service p50 {ms(stats.p50_latency_s)} p95 {ms(stats.p95_latency_s)}"
        )
        if stats.factorizations > args.problems:
            raise SystemExit(
                f"cache failed to amortize: {stats.factorizations} factorizations "
                f"for {args.problems} distinct operators"
            )
    finally:
        server.shutdown()
        server.server_close()
        service.close()


if __name__ == "__main__":
    main()
