"""Multiple right-hand sides: where a direct solver wins (Sec. I-A).

The paper motivates the direct solver with multi-angle scattering:
incident waves from many directions share one system matrix. This
example binds the Lippmann-Schwinger problem to a ``repro.Solver`` —
the factorization is computed once and cached — solves a sweep of
incoming plane-wave angles as one blocked rhs, and compares against
running unpreconditioned GMRES per angle.

Run:  python examples/multiple_rhs.py [grid_side] [n_angles]
"""

import sys
import time

import numpy as np

import repro
from repro.apps.scattering import plane_wave


def main(m: int = 64, n_angles: int = 8) -> None:
    kappa = 20.0
    prob = repro.ScatteringProblem(m, kappa)
    print(f"N = {prob.n}, kappa = {kappa}, {n_angles} incident angles")

    solver = repro.Solver(
        prob, method="direct", srs=repro.SRSOptions(tol=1e-6, leaf_size=64)
    )

    # all right-hand sides at once: -kappa^2 sqrt(b) uin(angle)
    angles = np.linspace(0, 2 * np.pi, n_angles, endpoint=False)
    rhs = np.column_stack(
        [
            -(kappa**2)
            * np.sqrt(prob.b)
            * plane_wave(prob.points, kappa, (np.cos(a), np.sin(a)))
            for a in angles
        ]
    )

    report = solver.solve(rhs)
    t_fact, t_solve_all = solver.setup_time, report.t_solve
    worst = max(prob.relres(report.x[:, j], rhs[:, j]) for j in range(n_angles))
    print(
        f"direct: factor {t_fact:.2f} s + {n_angles} solves {t_solve_all:.2f} s "
        f"({t_solve_all / n_angles * 1e3:.0f} ms each), worst relres {worst:.1e}"
    )

    # contrast: unpreconditioned GMRES for the first few angles
    t0 = time.perf_counter()
    total_its = 0
    n_probe = min(3, n_angles)
    for j in range(n_probe):
        res = prob.unpreconditioned_gmres(rhs[:, j], tol=1e-6, maxiter=2000)
        total_its += res.iterations
    t_iter = time.perf_counter() - t0
    est_all = t_iter / n_probe * n_angles
    print(
        f"unpreconditioned GMRES(20): {total_its / n_probe:.0f} its/angle, "
        f"{t_iter / n_probe:.2f} s/angle -> ~{est_all:.1f} s for all {n_angles} angles"
    )
    print(
        f"amortized direct-vs-iterative ratio: "
        f"{(t_fact + t_solve_all) / max(est_all, 1e-9):.2f} "
        f"(< 1 means the direct solver wins)"
    )


if __name__ == "__main__":
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(m, k)
