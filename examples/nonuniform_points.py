"""Non-uniform point clouds: the adaptive-tree extension.

The paper presents the algorithm for uniformly distributed points on a
perfect quadtree and notes the adaptive extension is "straightforward
but quite tedious" (Sec. II-A). This example exercises both halves of
that statement: the adaptive quadtree substrate on a clustered cloud,
and the perfect-tree factorization on the same cloud (which still works
— leaves are simply unevenly filled — at some extra rank cost).

Run:  python examples/nonuniform_points.py [n_points]
"""

import sys
import time

import numpy as np

from repro import SRSOptions, srs_factor
from repro.geometry import clustered_points
from repro.kernels import GaussianKernelMatrix, dense_matrix
from repro.tree import AdaptiveQuadTree, QuadTree


def main(n: int = 2000) -> None:
    pts = clustered_points(n, n_clusters=4, spread=0.04, seed=42)
    print(f"{n} points in 4 Gaussian clusters")

    adaptive = AdaptiveQuadTree(pts, leaf_size=64)
    leaf_sizes = [leaf.index.size for leaf in adaptive.leaves()]
    print(
        f"adaptive tree: {adaptive.nlevels} levels, {len(leaf_sizes)} leaves, "
        f"occupancy {min(leaf_sizes)}..{max(leaf_sizes)}"
    )

    perfect = QuadTree.for_leaf_size(pts, 64)
    occ = [perfect.leaf_points(*c).size for c in perfect.nonempty_leaves()]
    print(
        f"perfect tree:  {perfect.nlevels} levels, {len(occ)} nonempty leaves, "
        f"occupancy {min(occ)}..{max(occ)} (uneven, as expected)"
    )

    kernel = GaussianKernelMatrix(pts, h=1.0 / np.sqrt(n), sigma=0.05, shift=1.0)
    t0 = time.perf_counter()
    fact = srs_factor(kernel, tree=perfect, opts=SRSOptions(tol=1e-8, leaf_size=64))
    t_fact = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)
    x = fact.solve(b)
    if n <= 4000:
        a = dense_matrix(kernel)
        relres = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        print(f"factor {t_fact:.2f} s, relres vs dense = {relres:.2e}")
    else:
        print(f"factor {t_fact:.2f} s (N too large for a dense check)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
