"""Boundary integral equations through the unified ``repro.solve`` facade.

Demonstrates the BIE subsystem end to end:

1. discretize a smooth star curve with the periodic trapezoid rule,
2. assemble the second-kind double-layer operator ``-1/2 I + D``
   implicitly as a KernelMatrix over the curve nodes,
3. solve the interior Laplace Dirichlet problem directly
   (``method="direct"``: RS-S over the bounding-box quadtree) and
   against the dense reference (``method="dense_lu"``),
4. evaluate the harmonic solution inside the domain and compare with
   the exact harmonic function supplying the boundary data,
5. repeat with an exterior sound-soft Helmholtz scattering problem
   solved by RS-S-preconditioned CFIE GMRES (``method="pgmres"``).

Run:  python examples/bie_dirichlet.py [n_nodes]
"""

import sys

import numpy as np

import repro
from repro.bie import harmonic_exponential


def main(n: int = 2048) -> None:
    curve = repro.StarCurve(radius=1.0, amplitude=0.3, arms=5)
    prob = repro.InteriorDirichletProblem(curve, n)
    print(f"Interior Laplace Dirichlet on a 5-armed star, N = {n} Nystrom nodes")
    print(f"tree: {prob.tree}")

    f = prob.boundary_data(harmonic_exponential)
    direct = repro.solve(prob, f, srs=repro.SRSOptions(tol=1e-10))
    targets = prob.interior_targets()
    u = prob.evaluate(direct.x, targets)
    err = np.max(np.abs(u - harmonic_exponential(targets)))
    print(f"direct:   {direct.summary()}")
    print(f"          interior max error = {err:.2e}")

    if n <= 2048:
        dense = repro.solve(prob, f, method="dense_lu")
        print(f"dense LU: {dense.summary()}")
        print(f"          density difference vs RS-S = {np.max(np.abs(direct.x - dense.x)):.2e}")

    print("\nExterior sound-soft Helmholtz (CFIE), kappa = 8")
    scat = repro.SoundSoftScattering(curve, n, kappa=8.0)
    solver = repro.Solver(scat, method="pgmres", tol=1e-10, srs=repro.SRSOptions(tol=1e-8))
    pre = solver.solve(scat.rhs_plane_wave())
    print(f"factorization: {solver.setup_time:.2f} s")
    print(f"point-source validation error: {scat.point_source_error(solver.factorization):.2e}")
    plain = scat.unpreconditioned_gmres(scat.rhs_plane_wave())
    print(f"preconditioned GMRES:   {pre.iterations} iterations")
    print(f"unpreconditioned GMRES: {plain.iterations} iterations")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
