"""Boundary integral equations: interior Laplace Dirichlet on a star curve.

Demonstrates the BIE subsystem end to end:

1. discretize a smooth star curve with the periodic trapezoid rule,
2. assemble the second-kind double-layer operator ``-1/2 I + D``
   implicitly as a KernelMatrix over the curve nodes,
3. factorize it with RS-S over a bounding-box quadtree and solve for
   the density directly,
4. evaluate the harmonic solution inside the domain and compare with
   the exact harmonic function supplying the boundary data,
5. repeat with an exterior sound-soft Helmholtz scattering problem
   solved by RS-S-preconditioned CFIE GMRES.

Run:  python examples/bie_dirichlet.py [n_nodes]
"""

import sys
import time

import numpy as np

from repro import SRSOptions, SoundSoftScattering, StarCurve, InteriorDirichletProblem
from repro.bie import harmonic_exponential


def main(n: int = 2048) -> None:
    curve = StarCurve(radius=1.0, amplitude=0.3, arms=5)
    prob = InteriorDirichletProblem(curve, n)
    print(f"Interior Laplace Dirichlet on a 5-armed star, N = {n} Nystrom nodes")
    print(f"tree: {prob.tree}")

    t0 = time.perf_counter()
    fact = prob.factor(SRSOptions(tol=1e-10))
    t_fact = time.perf_counter() - t0
    print(f"factorization: {t_fact:.2f} s, memory {fact.memory_bytes() / 1e6:.1f} MB")

    f = prob.boundary_data(harmonic_exponential)
    t0 = time.perf_counter()
    tau = fact.solve(f)
    t_solve = time.perf_counter() - t0
    targets = prob.interior_targets()
    u = prob.evaluate(tau, targets)
    err = np.max(np.abs(u - harmonic_exponential(targets)))
    print(f"direct solve:  {t_solve * 1e3:.1f} ms, interior max error = {err:.2e}")

    print("\nExterior sound-soft Helmholtz (CFIE), kappa = 8")
    scat = SoundSoftScattering(curve, n, kappa=8.0)
    t0 = time.perf_counter()
    sfact = scat.factor(SRSOptions(tol=1e-8))
    print(f"factorization: {time.perf_counter() - t0:.2f} s")
    print(f"point-source validation error: {scat.point_source_error(sfact):.2e}")

    b = scat.rhs_plane_wave()
    pre = scat.pgmres(sfact, b)
    plain = scat.unpreconditioned_gmres(b)
    print(f"preconditioned GMRES:   {pre.iterations} iterations")
    print(f"unpreconditioned GMRES: {plain.iterations} iterations")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
