"""Quickstart: the unified ``repro.solve`` pipeline on a volume IE.

Demonstrates the facade on the paper's Sec. V-A problem — one problem
object, one config type, four strategies:

1. build the problem (collocation grid + kernel matrix + FFT matvec),
2. ``method="direct"``: one application of the O(N) RS-S compressed
   inverse at eps = 1e-6,
3. ``method="pcg"``: refine to 1e-12 with CG preconditioned by the
   same factorization — cached across solves by ``repro.Solver``,
4. contrast with unpreconditioned CG (~5 sqrt(N) iterations),
5. ``execution="auto"``: the same direct solve distributed over 4
   simulated ranks on the thread or process backend, picked by core
   count.

Run:  python examples/quickstart.py [grid_side]
"""

import sys

import repro


def main(m: int = 64) -> None:
    prob = repro.LaplaceVolumeProblem(m)
    print(f"Problem: first-kind Laplace volume IE, N = {prob.n} (grid {m} x {m})")

    # one factorization, cached by the Solver across every solve below
    solver = repro.Solver(prob, method="direct", srs=repro.SRSOptions(tol=1e-6))
    b = prob.random_rhs()

    direct = solver.solve(b)
    print(f"direct:  {direct.summary()}")
    print(f"         (one-time factorization: {solver.setup_time:.2f} s)")

    pcg = repro.solve(prob, b, method="pcg", tol=1e-12, factorization=solver.factorization)
    print(f"pcg:     {pcg.summary()}  (converged={pcg.converged})")

    plain = prob.unpreconditioned_cg(b, maxiter=20 * m)
    status = plain.iterations if plain.converged else f">{plain.iterations}"
    print(f"plain CG: {status} iterations (paper: ~5 sqrt(N) = {5 * m})")

    dist = repro.solve(prob, b, execution="auto", ranks=4)
    print(f"distributed: {dist.summary()}")
    print(f"             {dist.messages} messages, {dist.comm_bytes / 1e6:.2f} MB sent")

    print("\nper-level average skeleton ranks (Fig. 9 style):")
    for level, avg, mx, size in solver.factorization.stats.table():
        print(f"  level {level}: avg rank {avg:6.1f}   max {mx:4d}   box size {size:6.1f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
