"""Quickstart: factor and solve a first-kind Laplace volume IE.

Demonstrates the core API on the paper's Sec. V-A problem:

1. build the problem (collocation grid + kernel matrix + FFT matvec),
2. compute the O(N) RS-S factorization at eps = 1e-6,
3. apply the compressed inverse directly,
4. refine to 1e-12 with PCG using the factorization as preconditioner,
   and contrast with unpreconditioned CG (~5 sqrt(N) iterations).

Run:  python examples/quickstart.py [grid_side]
"""

import sys
import time

from repro import LaplaceVolumeProblem, SRSOptions


def main(m: int = 64) -> None:
    prob = LaplaceVolumeProblem(m)
    print(f"Problem: first-kind Laplace volume IE, N = {prob.n} (grid {m} x {m})")

    t0 = time.perf_counter()
    fact = prob.factor(SRSOptions(tol=1e-6, leaf_size=64))
    t_fact = time.perf_counter() - t0
    print(f"factorization: {t_fact:.2f} s, memory {fact.memory_bytes() / 1e6:.1f} MB")

    b = prob.random_rhs()
    t0 = time.perf_counter()
    x = fact.solve(b)
    t_solve = time.perf_counter() - t0
    print(f"direct solve:  {t_solve * 1e3:.1f} ms, relres = {prob.relres(x, b):.2e}")

    res = prob.pcg(fact, b)
    print(f"PCG to 1e-12:  {res.iterations} iterations (converged={res.converged})")

    plain = prob.unpreconditioned_cg(b, maxiter=20 * m)
    status = plain.iterations if plain.converged else f">{plain.iterations}"
    print(f"plain CG:      {status} iterations (paper: ~5 sqrt(N) = {5 * m})")

    print("\nper-level average skeleton ranks (Fig. 9 style):")
    for level, avg, mx, size in fact.stats.table():
        print(f"  level {level}: avg rank {avg:6.1f}   max {mx:4d}   box size {size:6.1f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
