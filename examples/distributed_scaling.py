"""Distributed factorization on simulated ranks (paper Sec. III).

Runs the same Laplace problem over p = 1, 4, 16 simulated ranks and
prints the paper's Table II quantities: simulated t_fact split into
compute and communication/idle, the solve time, and the per-rank
message/word counters that Sec. IV-B bounds as O(log N + log p) and
O(sqrt(N/p) + log p).

Run:  python examples/distributed_scaling.py [grid_side] [backend]

``backend`` is ``thread`` (default: deterministic, GIL-serialized
compute) or ``process`` (one OS process per rank, shared-memory ndarray
transport — wall-clock scales with cores; simulated times and counters
are identical either way).
"""

import sys

from repro import LaplaceVolumeProblem, SRSOptions, parallel_srs_factor
from repro.parallel.ownership import max_ranks_for_tree
from repro.tree import QuadTree


def main(m: int = 96, backend: str | None = None) -> None:
    prob = LaplaceVolumeProblem(m)
    opts = SRSOptions(tol=1e-6, leaf_size=64)
    nlevels = QuadTree.for_leaf_size(prob.points, 64).nlevels
    pmax = max_ranks_for_tree(nlevels)
    b = prob.random_rhs()

    print(f"N = {prob.n}, tree levels = {nlevels}, max ranks = {pmax}, "
          f"backend = {backend or 'default'}")
    print(f"{'p':>4} {'t_fact':>9} {'t_comp':>9} {'t_other':>9} {'t_solve':>9} "
          f"{'msgs/rank':>10} {'MB/rank':>8} {'relres':>10}")
    base = None
    for p in (1, 4, 16, 64):
        if p > pmax:
            break
        fact = parallel_srs_factor(prob.kernel, p, opts=opts, backend=backend)
        x = fact.solve(b)
        relres = prob.relres(x, b)
        msgs = fact.factor_run.max_messages_per_rank()
        mb = fact.factor_run.max_bytes_per_rank() / 1e6
        print(
            f"{p:>4} {fact.t_fact:>9.3f} {fact.t_fact_comp:>9.3f} "
            f"{fact.t_fact_other:>9.3f} {fact.t_solve:>9.4f} "
            f"{msgs:>10d} {mb:>8.2f} {relres:>10.2e}"
        )
        if base is None:
            base = fact.t_fact
        else:
            print(f"     speedup vs p=1: {base / fact.t_fact:.2f}x")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 96,
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
