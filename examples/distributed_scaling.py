"""Distributed factorization on simulated ranks (paper Sec. III).

Runs the same Laplace problem over p = 1, 4, 16 simulated ranks
through the unified facade and prints the paper's Table II quantities:
simulated t_fact split into compute and communication/idle, the solve
time, and the per-rank message/word counters that Sec. IV-B bounds as
O(log N + log p) and O(sqrt(N/p) + log p).

Run:  python examples/distributed_scaling.py [grid_side] [execution]

``execution`` is ``thread`` (deterministic, GIL-serialized compute),
``process`` (one OS process per rank, shared-memory ndarray transport
— wall-clock scales with cores), or ``auto`` (default: pick by core
count; simulated times and counters are identical either way).
"""

import sys

import repro
from repro.parallel.ownership import max_ranks_for_tree
from repro.tree import QuadTree


def main(m: int = 96, execution: str = "auto") -> None:
    prob = repro.LaplaceVolumeProblem(m)
    opts = repro.SRSOptions(tol=1e-6, leaf_size=64)
    nlevels = QuadTree.for_leaf_size(prob.points, 64).nlevels
    pmax = max_ranks_for_tree(nlevels)
    b = prob.random_rhs()

    print(f"N = {prob.n}, tree levels = {nlevels}, max ranks = {pmax}, "
          f"execution = {execution}")
    print(f"{'p':>4} {'t_fact':>9} {'t_comp':>9} {'t_other':>9} {'t_solve':>9} "
          f"{'msgs/rank':>10} {'MB/rank':>8} {'relres':>10}")
    base = None
    for p in (1, 4, 16, 64):
        if p > pmax:
            break
        report = repro.solve(
            prob, b, repro.SolveConfig(execution=execution, ranks=p, srs=opts)
        )
        run = report.factorization.factor_run
        print(
            f"{p:>4} {report.sim_t_fact:>9.3f} {report.sim_t_comp:>9.3f} "
            f"{report.sim_t_other:>9.3f} {report.sim_t_solve:>9.4f} "
            f"{run.max_messages_per_rank():>10d} "
            f"{run.max_bytes_per_rank() / 1e6:>8.2f} {report.relres:>10.2e}"
        )
        if base is None:
            base = report.sim_t_fact
        else:
            print(f"     speedup vs p=1: {base / report.sim_t_fact:.2f}x")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 96,
        sys.argv[2] if len(sys.argv) > 2 else "auto",
    )
