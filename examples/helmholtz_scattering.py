"""Acoustic scattering through a Gaussian bump (paper Fig. 7).

Solves the Lippmann-Schwinger equation for a plane wave traveling left
to right across a variable-speed medium, then renders the scattering
potential and the total-field magnitude as PGM images + ASCII art.

Run:  python examples/helmholtz_scattering.py [grid_side] [kappa]
"""

import sys

import numpy as np

import repro
from repro import ScatteringProblem
from repro.reporting import write_pgm


def ascii_render(img: np.ndarray, width: int = 64) -> str:
    shades = " .:-=+*#%@"
    step = max(1, img.shape[0] // width)
    sub = img[::step, ::step]
    norm = (sub - sub.min()) / (sub.max() - sub.min() + 1e-300)
    return "\n".join(
        "".join(shades[int(v * 9.999)] for v in norm[:, j])
        for j in range(norm.shape[1] - 1, -1, -1)
    )


def main(m: int = 96, kappa: float = 25.0) -> None:
    prob = ScatteringProblem(m, kappa)
    print(
        f"Lippmann-Schwinger: N = {prob.n}, kappa = {kappa} "
        f"({prob.kernel.points_per_wavelength():.1f} points/wavelength)"
    )
    # default rhs is the plane-wave data; pgmres refines on the cached RS-S factorization
    res = repro.solve(prob, method="pgmres", srs=repro.SRSOptions(tol=1e-6, leaf_size=64))
    print(f"PGMRES: {res.iterations} iterations, final residual {res.relres:.1e}")

    mag = prob.field_magnitude_grid(res.x)
    write_pgm("scattering_potential.pgm", prob.potential_grid())
    write_pgm("scattering_total_field.pgm", mag)
    print("wrote scattering_potential.pgm, scattering_total_field.pgm")

    print("\nscattering potential b(x):")
    print(ascii_render(prob.potential_grid()))
    print("\ntotal field |u| (plane wave enters from the left):")
    print(ascii_render(mag))


if __name__ == "__main__":
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    kappa = float(sys.argv[2]) if len(sys.argv) > 2 else 25.0
    main(m, kappa)
