"""Level-batched skeletonization: the factor sweep as stacked tensor ops.

The strict sweep (:func:`repro.core.skel.skeletonize_box` in a loop)
interleaves three stages per box: gather the compression matrix, run
the column ID, eliminate. The batched sweep restructures one level's
work so the first two stages run *across boxes*:

1. **Color** — partition the level's boxes into the nine ``(x mod 3,
   y mod 3)`` classes. Two boxes of one class are Chebyshev distance
   >= 3 apart, so eliminating one cannot touch anything the other's
   compression reads: Schur deltas land only on pairs whose endpoints
   are within distance 1 of the eliminated box, and a compression reads
   pairs involving the box itself (distance <= 2 away) plus the active
   sets of its ``M(B)`` ring — all out of reach. This is the same
   independence argument behind the distributed color loop (Sec. III-B),
   applied within one process.
2. **Plan** — per color phase, snapshot every live box's active set,
   ``M(B)`` ring and proxy circle, and group boxes whose compression
   matrices have identical shape: the signature is (active size, proxy
   count, the ordered tuple of ``M(B)`` active sizes).
3. **Assemble** — allocate one ``(nbox, m, k)`` stack per group and
   fill it with a handful of *stacked* kernel evaluations
   (:meth:`~repro.kernels.base.KernelMatrix.block_stack` /
   ``proxy_*_block_stack``), grouped by block shape across the whole
   phase. Blocks already modified by Schur updates are copied from the
   store instead.
4. **Grouped ID** — one :func:`~repro.linalg.interpolative.interp_decomp_stack`
   call per group (shared CPQR workspace, one sketch for the
   randomized method).
5. **Eliminate** — the phase's boxes are eliminated *one at a time, in
   todo order*, through the very same
   :func:`~repro.core.skel.eliminate_box` (sparsification GEMMs,
   partial LU, BLAS-3 Schur delta), so the ``InteractionStore`` update
   contract and the ``update_log`` replication stream for distributed
   workers are bit-for-bit the strict protocol.

Batching reorders *assembly and compression*, not elimination: every
box still sees exactly the store state a strict per-box sweep over the
color-reordered todo would show it, and elimination itself stays
sequential and exact. Reordering a level's eliminations is already part
of the algorithm's contract (the distributed sweep factors interior
boxes before boundary boxes), so batched agrees with strict to the ID
tolerance — the two orders compress identical operators, picking
skeletons that may differ within tolerance — while
``factor_mode="strict"`` stays bitwise-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interactions import Coord, InteractionStore, PairKey
from repro.core.options import SRSOptions
from repro.core.proxy import proxy_circle_stack, proxy_point_count
from repro.core.skel import BoxRecord, eliminate_box
from repro.kernels.base import KernelMatrix
from repro.linalg.interpolative import interp_decomp_stack
from repro.obs import COUNT_BUCKETS, REGISTRY, health, trace
from repro.tree.quadtree import QuadTree

_BATCH_OCCUPANCY = REGISTRY.histogram(
    "repro_factor_batch_occupancy",
    "Boxes per batched compression group",
    buckets=COUNT_BUCKETS,
)
# same families as the strict path in repro.core.skel — the registry is
# get-or-create, so both sweeps feed one counter/histogram
_ID_COMPRESSIONS = REGISTRY.counter(
    "repro_id_compressions_total",
    "Interpolative decompositions performed during factorization",
)
_SKELETON_RANK = REGISTRY.histogram(
    "repro_skeleton_rank",
    "Skeleton count kept per compressed box",
    buckets=COUNT_BUCKETS,
)

#: most boxes per ID group — bounds the transient ``(nbox, m, k)``
#: stack to a few tens of MB at paper-scale leaf levels
BATCH_MAX = 64

#: most output elements per stacked kernel evaluation — bounds the
#: broadcast intermediates (distance matrices) of one ``block_stack``
EVAL_CHUNK_ELEMENTS = 1 << 22


@dataclass
class _BoxPlan:
    """Level-start snapshot of everything one box's compression needs."""

    box: Coord
    bidx: np.ndarray
    m_boxes: list[Coord]
    m_sizes: list[int]
    proxy: np.ndarray | None
    comp: np.ndarray | None = None  # view into the group stack
    dec: object | None = None


def skeletonize_level_batched(
    store: InteractionStore,
    kernel: KernelMatrix,
    tree: QuadTree,
    level: int,
    boxes: list[Coord],
    opts: SRSOptions,
    *,
    update_log: list | None = None,
) -> list[tuple[int, BoxRecord]]:
    """Factor ``boxes`` at ``level`` with level-batched compression.

    Returns ``(size_before, record)`` pairs in elimination order —
    color phase by color phase, todo order within a phase — with the
    same skip rules and store/update-log side effects as the strict
    per-box loop; only assembly and ID are batched.
    """
    has_far_field = tree.nside(level) >= 4
    results: list[tuple[int, BoxRecord]] = []
    for phase in _color_phases(boxes):
        plans: list[_BoxPlan] = []
        for box in phase:
            if box not in store.active:
                continue
            bidx = store.active_of(box)
            if bidx.size == 0:
                continue
            m_boxes = [
                mb
                for mb in (tree.dist2_neighbors(level, *box) if has_far_field else [])
                if mb in store.active and store.nactive(mb) > 0
            ]
            plans.append(
                _BoxPlan(
                    box=box,
                    bidx=bidx,
                    m_boxes=m_boxes,
                    m_sizes=[store.nactive(mb) for mb in m_boxes],
                    proxy=None,
                )
            )
        if not plans:
            continue

        if has_far_field:
            radius = opts.proxy_radius_factor * tree.box_side(level)
            n_proxy = proxy_point_count(kernel, radius, opts)
            centers = np.stack([tree.box_center(level, *p.box) for p in plans])
            circles = proxy_circle_stack(centers, radius, n_proxy)
            for i, plan in enumerate(plans):
                plan.proxy = circles[i]

        _assemble_and_compress(store, kernel, level, plans, opts)
        _prefill_near(store, kernel, tree, level, plans)

        for plan in plans:
            nbrs = [
                n
                for n in tree.neighbors(level, *plan.box)
                if n in store.active and store.nactive(n) > 0
            ]
            with trace.span(
                "factor.skeletonize",
                level=level,
                box=str(plan.box),
                size=int(plan.bidx.size),
            ):
                _ID_COMPRESSIONS.inc()
                _SKELETON_RANK.observe(plan.dec.skeleton.size)
                health.record_box(
                    level, int(plan.bidx.size), int(plan.dec.skeleton.size)
                )
                rec = eliminate_box(
                    store, plan.box, plan.bidx, nbrs, plan.dec, kernel.dtype,
                    opts, level=level, update_log=update_log,
                )
            results.append((plan.bidx.size, rec))
    return results


def _color_phases(boxes: list[Coord]) -> list[list[Coord]]:
    """Partition ``boxes`` into the nine mod-3 color classes.

    Phases are ordered by color key ``(x mod 3, y mod 3)``; within a
    phase the todo order is preserved. Boxes of one class are pairwise
    Chebyshev distance >= 3 apart, which makes each phase's batched
    assembly exact (see the module docstring).
    """
    classes: dict[tuple[int, int], list[Coord]] = {}
    for box in boxes:
        classes.setdefault((box[0] % 3, box[1] % 3), []).append(box)
    return [classes[key] for key in sorted(classes)]


def _assemble_and_compress(
    store: InteractionStore,
    kernel: KernelMatrix,
    level: int,
    plans: list[_BoxPlan],
    opts: SRSOptions,
) -> None:
    """Stages 2–3: fill the group stacks, run the grouped IDs."""
    groups: dict[tuple, list[_BoxPlan]] = {}
    for plan in plans:
        p = 0 if plan.proxy is None else plan.proxy.shape[0]
        key = (plan.bidx.size, p, tuple(plan.m_sizes))
        groups.setdefault(key, []).append(plan)

    # For Hermitian kernel matrices (A == A^H) the outgoing rows
    # A[B, M]^* duplicate the incoming rows A[M, B] exactly — Schur
    # deltas inherit the symmetry — so one copy carries the full ID
    # constraint set at half the evaluation and CPQR cost.
    herm = kernel.hermitian
    block_reqs: dict[tuple[int, int], list] = {}
    proxy_reqs: dict[tuple[int, int], list] = {}
    stacks: list[tuple[np.ndarray, list[_BoxPlan]]] = []
    for (k, p, m_sizes), members in groups.items():
        m_total = (1 if herm else 2) * sum(m_sizes) + 2 * p
        for i0 in range(0, len(members), BATCH_MAX):
            chunk = members[i0 : i0 + BATCH_MAX]
            comp = np.empty((len(chunk), m_total, k), dtype=kernel.dtype)
            stacks.append((comp, chunk))
            for slot, plan in enumerate(chunk):
                plan.comp = comp[slot]
                r0 = 0
                for mb, msize in zip(plan.m_boxes, plan.m_sizes):
                    midx = store.active_of(mb)
                    if store.is_modified(mb, plan.box):
                        comp[slot, r0 : r0 + msize, :] = store.get(mb, plan.box)
                    elif herm and store.is_modified(plan.box, mb):
                        comp[slot, r0 : r0 + msize, :] = (
                            store.get(plan.box, mb).conj().T
                        )
                    else:
                        _defer(block_reqs, midx, plan.bidx,
                               comp[slot, r0 : r0 + msize, :], False)
                    r0 += msize
                    if herm:
                        continue
                    if store.is_modified(plan.box, mb):
                        comp[slot, r0 : r0 + msize, :] = (
                            store.get(plan.box, mb).conj().T
                        )
                    else:
                        _defer(block_reqs, plan.bidx, midx,
                               comp[slot, r0 : r0 + msize, :], True)
                    r0 += msize
                if p:
                    proxy_reqs.setdefault((p, k), []).append(
                        (plan.proxy, plan.bidx,
                         comp[slot, r0 : r0 + p, :],
                         comp[slot, r0 + p : r0 + 2 * p, :])
                    )

    _flush_block_requests(kernel, block_reqs)
    _flush_proxy_requests(kernel, proxy_reqs)

    for comp, chunk in stacks:
        with trace.span(
            "factor.batch",
            level=level,
            boxes=len(chunk),
            rows=int(comp.shape[1]),
            cols=int(comp.shape[2]),
        ):
            _BATCH_OCCUPANCY.observe(len(chunk))
            decs = interp_decomp_stack(comp, opts.tol, method=opts.id_method)
        for plan, dec in zip(chunk, decs):
            plan.dec = dec


def _prefill_near(
    store: InteractionStore,
    kernel: KernelMatrix,
    tree: QuadTree,
    level: int,
    plans: list[_BoxPlan],
) -> None:
    """Materialize the near-field blocks this phase's eliminations read.

    Elimination of a phase box touches every pair among ``{B} u N(B)``;
    the unmodified ones would otherwise be evaluated one scalar
    ``kernel.block`` call at a time inside ``get``/``get_writable``.
    Same-phase boxes cannot touch each other's near pairs (module
    docstring), so evaluating them all here — stacked, grouped by shape
    — stores exactly the values the lazy path would have produced.
    Pairs a ``store_predicate`` rejects are left alone: non-holder ranks
    must keep discarding updates to them via scratch blocks.
    """
    reqs: dict[tuple[int, int], list[PairKey]] = {}
    seen: set[PairKey] = set()
    # Hermitian kernels fill each off-diagonal pair once: g is bitwise
    # symmetric (hypot/log of the same distances) and the weights are
    # uniform, so the stored transpose equals a direct evaluation.
    herm = kernel.hermitian
    mirror: set[PairKey] = set()
    pred = store.store_predicate
    for plan in plans:
        members = [plan.box] + [
            n
            for n in tree.neighbors(level, *plan.box)
            if n in store.active and store.nactive(n) > 0
        ]
        for bi in members:
            for bj in members:
                key = (bi, bj)
                if key in seen or store.is_modified(bi, bj):
                    continue
                if pred is not None and not pred(bi, bj):
                    continue
                seen.add(key)
                rev = (bj, bi)
                if (
                    herm
                    and bi != bj
                    and rev not in seen
                    and not store.is_modified(bj, bi)
                    and (pred is None or pred(bj, bi))
                ):
                    seen.add(rev)
                    mirror.add(key)
                reqs.setdefault(
                    (store.nactive(bi), store.nactive(bj)), []
                ).append(key)
    with trace.span("factor.prefill", level=level, pairs=len(seen)):
        for (r, c), keys in reqs.items():
            step = max(1, EVAL_CHUNK_ELEMENTS // max(1, r * c))
            for i0 in range(0, len(keys), step):
                part = keys[i0 : i0 + step]
                rows_stack = np.stack([store.active_of(bi) for bi, _ in part])
                cols_stack = np.stack([store.active_of(bj) for _, bj in part])
                blks = kernel.block_stack(rows_stack, cols_stack)
                for (bi, bj), blk in zip(part, blks):
                    # contiguous copy: stored blocks are mutated in place
                    # by Schur updates and must not alias the eval stack
                    store.set(bi, bj, np.ascontiguousarray(blk))
                    if (bi, bj) in mirror:
                        store.set(bj, bi, np.ascontiguousarray(blk.conj().T))


def batch_pair_blocks(
    store: InteractionStore, pairs: list[PairKey]
) -> dict[PairKey, np.ndarray]:
    """Evaluate many store pairs at once, preserving ``store.get`` values.

    Modified pairs come straight from the store; unmodified ones are
    pure kernel blocks and get stacked, shape-grouped evaluations (one
    direction per unordered pair for Hermitian kernels, the transpose
    serving the reverse). Used by the batched parent transition, whose
    reassembly otherwise walks child pairs one scalar ``kernel.block``
    at a time. Returned blocks may be store-owned or stack views —
    callers copy (``hstack``/``vstack``) and must not mutate them.
    """
    kernel = store.kernel
    herm = kernel.hermitian
    out: dict[PairKey, np.ndarray] = {}
    reqs: dict[tuple[int, int], list[PairKey]] = {}
    mirror: set[PairKey] = set()
    pending: set[PairKey] = set()
    for key in pairs:
        if key in out or key in pending or key in mirror:
            continue
        bi, bj = key
        if store.is_modified(bi, bj):
            out[key] = store.get(bi, bj)
            continue
        rev = (bj, bi)
        if herm and rev in pending:
            mirror.add(key)  # produced as the transpose of ``rev``
            continue
        pending.add(key)
        reqs.setdefault((store.nactive(bi), store.nactive(bj)), []).append(key)
    for (r, c), keys in reqs.items():
        step = max(1, EVAL_CHUNK_ELEMENTS // max(1, r * c))
        for i0 in range(0, len(keys), step):
            part = keys[i0 : i0 + step]
            rows_stack = np.stack([store.active_of(bi) for bi, _ in part])
            cols_stack = np.stack([store.active_of(bj) for _, bj in part])
            blks = kernel.block_stack(rows_stack, cols_stack)
            for (bi, bj), blk in zip(part, blks):
                out[(bi, bj)] = blk
                if (bj, bi) in mirror:
                    out[(bj, bi)] = blk.conj().T
    return out


def _defer(
    reqs: dict[tuple[int, int], list],
    rows: np.ndarray,
    cols: np.ndarray,
    dest: np.ndarray,
    conj_t: bool,
) -> None:
    """Queue one pure-kernel block for a shape-batched evaluation."""
    reqs.setdefault((rows.size, cols.size), []).append((rows, cols, dest, conj_t))


def _flush_block_requests(
    kernel: KernelMatrix, reqs: dict[tuple[int, int], list]
) -> None:
    """Evaluate queued blocks in same-shape stacks (chunked by volume)."""
    for (r, c), entries in reqs.items():
        step = max(1, EVAL_CHUNK_ELEMENTS // max(1, r * c))
        for i0 in range(0, len(entries), step):
            part = entries[i0 : i0 + step]
            rows_stack = np.stack([e[0] for e in part])
            cols_stack = np.stack([e[1] for e in part])
            blks = kernel.block_stack(rows_stack, cols_stack)
            for entry, blk in zip(part, blks):
                dest, conj_t = entry[2], entry[3]
                if conj_t:
                    dest[...] = blk.conj().T
                else:
                    dest[...] = blk


def _flush_proxy_requests(
    kernel: KernelMatrix, reqs: dict[tuple[int, int], list]
) -> None:
    """Evaluate queued proxy row/col blocks in same-shape stacks."""
    for (p, k), entries in reqs.items():
        step = max(1, EVAL_CHUNK_ELEMENTS // max(1, p * k))
        for i0 in range(0, len(entries), step):
            part = entries[i0 : i0 + step]
            proxy_stack = np.stack([e[0] for e in part])
            cols_stack = np.stack([e[1] for e in part])
            row_blks = kernel.proxy_row_block_stack(proxy_stack, cols_stack)
            col_blks = kernel.proxy_col_block_stack(cols_stack, proxy_stack)
            for entry, rb, cb in zip(part, row_blks, col_blks):
                dest_row, dest_col = entry[2], entry[3]
                dest_row[...] = rb
                dest_col[...] = cb.conj().T
