"""Interaction store: active index sets and modified near-field blocks.

The factorization maintains, per tree level, the *active* indices owned
by every box (leaf: points inside it; coarser levels: the skeletons of
its children) and the matrix blocks between pairs of boxes. Blocks that
have been touched by a Schur-complement update are stored densely
("modified"); everything else is generated on demand from the kernel —
legitimate because Theorem 1/2 guarantee untouched blocks are pure
kernel evaluations at every level.

Invariant: a stored block always covers exactly the *current* active
sets of its box pair. When a box is skeletonized, its redundant rows
and columns are dropped from every stored block that touches it (the
solve-phase copies are recorded first by the caller).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelMatrix

Coord = tuple[int, int]
PairKey = tuple[Coord, Coord]


class InteractionStore:
    """Blocks of ``A`` between boxes at one tree level.

    Parameters
    ----------
    kernel:
        Source of unmodified entries (global point indexing).
    active:
        Mapping box -> global indices currently owned by the box.
    max_modified_distance:
        Debug guard (Remark 2 / Theorem 1): creating a modified block
        between boxes farther apart than this Chebyshev distance raises.
    """

    def __init__(
        self,
        kernel: KernelMatrix,
        active: dict[Coord, np.ndarray],
        *,
        blocks: dict[PairKey, np.ndarray] | None = None,
        max_modified_distance: int | None = 2,
        store_predicate=None,
    ):
        self.kernel = kernel
        self.active = {b: np.asarray(ix, dtype=np.int64) for b, ix in active.items()}
        self.blocks: dict[PairKey, np.ndarray] = {}
        self.partners: dict[Coord, set[Coord]] = {}
        self.max_modified_distance = max_modified_distance
        #: distributed mode: predicate deciding whether this rank *holds*
        #: a block. Updates to non-held pairs are discarded locally (the
        #: owning ranks receive them as explicit delta messages instead).
        self.store_predicate = store_predicate
        if blocks:
            for (bi, bj), value in blocks.items():
                self.set(bi, bj, value)

    # ------------------------------------------------------------------
    def boxes(self) -> list[Coord]:
        return list(self.active)

    def active_of(self, box: Coord) -> np.ndarray:
        return self.active[box]

    def nactive(self, box: Coord) -> int:
        return self.active[box].size

    def is_modified(self, bi: Coord, bj: Coord) -> bool:
        return (bi, bj) in self.blocks

    # ------------------------------------------------------------------
    def get(self, bi: Coord, bj: Coord) -> np.ndarray:
        """Current value of ``A[active(bi), active(bj)]`` (do not mutate)."""
        key = (bi, bj)
        blk = self.blocks.get(key)
        if blk is not None:
            return blk
        return self.kernel.block(self.active[bi], self.active[bj])

    def get_writable(self, bi: Coord, bj: Coord) -> np.ndarray:
        """Like :meth:`get` but materialized in the store for in-place update.

        When a ``store_predicate`` is set and rejects the pair, a
        throwaway scratch block is returned instead: this rank is not a
        holder of the pair, so the update must not persist locally (it
        reaches the holders as a delta message).
        """
        key = (bi, bj)
        if self.store_predicate is not None and not self.store_predicate(bi, bj):
            return np.zeros(
                (self.active[bi].size, self.active[bj].size), dtype=self.kernel.dtype
            )
        blk = self.blocks.get(key)
        if blk is None:
            if self.max_modified_distance is not None:
                d = max(abs(bi[0] - bj[0]), abs(bi[1] - bj[1]))
                if d > self.max_modified_distance:
                    raise RuntimeError(
                        f"locality violation: modifying far-field block {bi} x {bj} (distance {d})"
                    )
            blk = self.kernel.block(self.active[bi], self.active[bj]).copy()
            self.blocks[key] = blk
            self.partners.setdefault(bi, set()).add(bj)
            self.partners.setdefault(bj, set()).add(bi)
        return blk

    def set(self, bi: Coord, bj: Coord, value: np.ndarray) -> None:
        """Overwrite a block (value must match the current active shapes)."""
        expected = (self.active[bi].size, self.active[bj].size)
        if value.shape != expected:
            raise ValueError(f"block {bi} x {bj}: expected shape {expected}, got {value.shape}")
        self.blocks[(bi, bj)] = value
        self.partners.setdefault(bi, set()).add(bj)
        self.partners.setdefault(bj, set()).add(bi)

    # ------------------------------------------------------------------
    def restrict(self, box: Coord, keep_positions: np.ndarray) -> None:
        """Shrink ``active(box)`` to ``active(box)[keep_positions]``.

        Drops the complementary rows/columns from every stored block
        touching ``box``. Called right after the box is skeletonized
        (``keep_positions`` are the skeleton positions within the old
        active set).
        """
        keep_positions = np.asarray(keep_positions, dtype=np.int64)
        self.active[box] = self.active[box][keep_positions]
        for other in self.partners.get(box, ()):  # includes box itself if stored
            key_rc = (box, other)
            if key_rc in self.blocks:
                if other == box:
                    self.blocks[key_rc] = np.ascontiguousarray(
                        self.blocks[key_rc][np.ix_(keep_positions, keep_positions)]
                    )
                else:
                    self.blocks[key_rc] = np.ascontiguousarray(self.blocks[key_rc][keep_positions, :])
            key_cr = (other, box)
            if other != box and key_cr in self.blocks:
                self.blocks[key_cr] = np.ascontiguousarray(self.blocks[key_cr][:, keep_positions])

    def drop_box(self, box: Coord) -> None:
        """Remove a box and all its blocks (used after full elimination)."""
        for other in self.partners.pop(box, set()):
            self.blocks.pop((box, other), None)
            self.blocks.pop((other, box), None)
            if other != box and other in self.partners:
                self.partners[other].discard(box)
        self.active.pop(box, None)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes held in modified blocks (memory-footprint accounting)."""
        return sum(b.nbytes for b in self.blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InteractionStore(boxes={len(self.active)}, "
            f"modified_blocks={len(self.blocks)}, bytes={self.memory_bytes()})"
        )
