"""The strong skeletonization operator ``Z(A; B)`` (Sec. II C–D).

One call to :func:`skeletonize_box`:

1. compresses the interaction between box ``B`` and its far field with
   a single column ID of the stacked matrix
   ``[A[M,B]; A[B,M]^*; K[proxy,B]; K[B,proxy]^*]`` (Eq. 5/7) — only
   distance-2 neighbors and the proxy circle are ever read (Remark 1);
2. sparsifies (Eq. 8) and eliminates the redundant indices ``R`` by a
   partial LU, producing a Schur-complement update that touches only
   ``{S} ∪ N(B)`` (Remark 2);
3. returns a :class:`BoxRecord` holding everything the solve phase
   needs, and shrinks the box's active set to its skeleton in the
   interaction store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.interactions import Coord, InteractionStore
from repro.core.options import SRSOptions
from repro.kernels.base import KernelMatrix
from repro.linalg.interpolative import interp_decomp
from repro.linalg.lu import PartialLU
from repro.obs import COUNT_BUCKETS, REGISTRY, health, trace

_ID_COMPRESSIONS = REGISTRY.counter(
    "repro_id_compressions_total",
    "Interpolative decompositions performed during factorization",
)
_SKELETON_RANK = REGISTRY.histogram(
    "repro_skeleton_rank",
    "Skeleton count kept per compressed box",
    buckets=COUNT_BUCKETS,
)


@dataclass
class BoxRecord:
    """Solve-phase data for one skeletonized box.

    ``cluster`` concatenates the skeleton ``S`` of the box with the
    active indices of its (nonempty) neighbors at processing time; the
    stored blocks are indexed consistently:

    * ``x_cr`` is ``X[C, R]`` (cluster rows, redundant columns),
    * ``x_rc`` is ``X[R, C]``.
    """

    box: Coord
    level: int
    redundant: np.ndarray
    skeleton: np.ndarray
    cluster: np.ndarray
    T: np.ndarray
    lu: PartialLU
    x_cr: np.ndarray
    x_rc: np.ndarray
    #: (box, start, end) segments of ``cluster`` — first the skeleton of
    #: this box, then each neighbor's active slice. The distributed
    #: solve uses this to route updates to the owning rank.
    cluster_segments: list[tuple[Coord, int, int]] = field(default_factory=list)

    @property
    def rank(self) -> int:
        return self.skeleton.size

    def memory_bytes(self) -> int:
        """Bytes of everything this record keeps alive for the solve phase.

        Counts the dense solve blocks, the LU factors (via the public
        :meth:`~repro.linalg.lu.PartialLU.memory_bytes`), *and* the
        index arrays — cache byte budgets and the store's accounting
        depend on this being the full footprint.
        """
        total = self.T.nbytes + self.x_cr.nbytes + self.x_rc.nbytes
        total += self.lu.memory_bytes()
        total += self.redundant.nbytes + self.skeleton.nbytes + self.cluster.nbytes
        return int(total)

    # ------------------------------------------------------------------
    # solve-phase operators (Sec. II-F); operate in place on the global
    # right-hand-side array ``x`` (shape (N,) or (N, nrhs)).
    # ------------------------------------------------------------------
    def apply_v(self, x: np.ndarray, *, collect: bool = False):
        """Upward sweep: apply ``V = L S* P^T`` of this box to ``x``.

        With ``collect=True``, returns ``(cluster, update)`` where
        ``update`` is the amount *subtracted* from ``x[cluster]`` — the
        distributed solve forwards the remote-owned part to neighbors.
        """
        if self.redundant.size == 0:
            return (self.cluster, None) if collect else None
        v_r = x[self.redundant]
        if self.skeleton.size:
            v_r = v_r - self.T.conj().T @ x[self.skeleton]
        t = self.lu.solve_left(v_r)
        update = None
        if self.cluster.size:
            update = self.x_cr @ t
            x[self.cluster] -= update
        x[self.redundant] = self.lu.apply_lower_inverse(v_r)
        if collect:
            return (self.cluster, update)
        return None

    def apply_w(self, x: np.ndarray) -> None:
        """Downward sweep: apply ``W = P S U`` of this box to ``x``."""
        if self.redundant.size == 0:
            return
        x_r = self.lu.apply_upper_inverse(x[self.redundant])
        if self.cluster.size:
            x_r = x_r - self.lu.solve_left(self.x_rc @ x[self.cluster])
        x[self.redundant] = x_r
        if self.skeleton.size:
            x[self.skeleton] -= self.T @ x_r

    # ------------------------------------------------------------------
    # forward-apply operators: exact inverses of apply_v / apply_w, used
    # by SRSFactorization.matvec to apply the *compressed A* itself.
    # ------------------------------------------------------------------
    def unapply_v(self, x: np.ndarray) -> None:
        """Invert :meth:`apply_v` in place (apply ``V^{-1}``)."""
        if self.redundant.size == 0:
            return
        v_r = self.lu.apply_lower(x[self.redundant])
        if self.cluster.size:
            x[self.cluster] += self.x_cr @ self.lu.solve_left(v_r)
        if self.skeleton.size:
            v_r = v_r + self.T.conj().T @ x[self.skeleton]
        x[self.redundant] = v_r

    def unapply_w(self, x: np.ndarray) -> None:
        """Invert :meth:`apply_w` in place (apply ``W^{-1}``)."""
        if self.redundant.size == 0:
            return
        x_r = x[self.redundant]
        if self.skeleton.size:
            x[self.skeleton] += self.T @ x_r
        if self.cluster.size:
            x_r = x_r + self.lu.solve_left(self.x_rc @ x[self.cluster])
        x[self.redundant] = self.lu.apply_upper(x_r)


def skeletonize_box(
    store: InteractionStore,
    kernel: KernelMatrix,
    box: Coord,
    neighbors: list[Coord],
    m_boxes: list[Coord],
    proxy_points: np.ndarray | None,
    opts: SRSOptions,
    *,
    level: int,
    update_log: list | None = None,
) -> BoxRecord | None:
    """Apply the strong skeletonization operator to ``box``.

    ``neighbors`` / ``m_boxes`` are the same-level ``N(B)`` / ``M(B)``
    lists restricted to boxes present in the store. ``proxy_points`` is
    ``None`` at levels whose far field is empty (grid < 4x4), which
    makes the ID classify *every* index as redundant — skeletonization
    then degenerates to plain block elimination, so one code path
    factors all levels down to the root (Eq. 12).

    When ``update_log`` is a list, every mutation of the store is also
    appended to it, in execution order, as ``("restrict", box, keep)``
    or ``("delta", bi, bj, delta)`` tuples — the distributed workers
    forward the relevant entries to neighbor ranks so replicated blocks
    stay consistent (Sec. III-B, "send data to neighbors").
    """
    bidx = store.active_of(box)
    if bidx.size == 0:
        return None
    nbrs = [n for n in neighbors if n in store.active and store.nactive(n) > 0]

    # -- 1. compression ------------------------------------------------
    with trace.span("factor.skeletonize", level=level, box=str(box), size=int(bidx.size)):
        with trace.span("factor.id", rows=int(bidx.size)):
            stacked = compression_matrix(store, kernel, box, m_boxes, proxy_points)
            dec = interp_decomp(stacked, opts.tol, method=opts.id_method)
        _ID_COMPRESSIONS.inc()
        _SKELETON_RANK.observe(dec.skeleton.size)
        health.record_box(level, int(bidx.size), int(dec.skeleton.size))
        return eliminate_box(
            store, box, bidx, nbrs, dec, stacked.dtype, opts,
            level=level, update_log=update_log,
        )


def eliminate_box(
    store: InteractionStore,
    box: Coord,
    bidx: np.ndarray,
    nbrs: list[Coord],
    dec,
    dtype,
    opts: SRSOptions,
    *,
    level: int,
    update_log: list | None = None,
) -> BoxRecord | None:
    """Partial-LU elimination + Schur updates for one compressed box."""
    s_loc, r_loc, t_mat = dec.skeleton, dec.redundant, dec.T
    if r_loc.size == 0:
        # nothing to eliminate; keep the box as is
        return BoxRecord(
            box,
            level,
            bidx[r_loc],
            bidx[s_loc],
            np.empty(0, dtype=np.int64),
            t_mat,
            PartialLU(np.zeros((0, 0), dtype=dtype)),
            np.zeros((0, 0), dtype=dtype),
            np.zeros((0, 0), dtype=dtype),
            [],
        )
    t_h = t_mat.conj().T

    # -- 2. sparsification of the diagonal block ------------------------
    a_bb = store.get(box, box)
    a_rr = a_bb[np.ix_(r_loc, r_loc)]
    a_sr = a_bb[np.ix_(s_loc, r_loc)]
    a_rs = a_bb[np.ix_(r_loc, s_loc)]
    a_ss = a_bb[np.ix_(s_loc, s_loc)]
    x_rr = a_rr - t_h @ a_sr - a_rs @ t_mat + t_h @ (a_ss @ t_mat)
    x_sr = a_sr - a_ss @ t_mat
    x_rs = a_rs - t_h @ a_ss
    lu = PartialLU(x_rr)

    # -- cluster blocks X[C, R], X[R, C] with C = [S] + neighbor actives
    cr_segments = [x_sr]
    rc_segments = [x_rs]
    cluster_parts = [bidx[s_loc]]
    segment_boxes = [box]
    for n in nbrs:
        a_nb = store.get(n, box)
        cr_segments.append(a_nb[:, r_loc] - a_nb[:, s_loc] @ t_mat)
        a_bn = store.get(box, n)
        rc_segments.append(a_bn[r_loc, :] - t_h @ a_bn[s_loc, :])
        cluster_parts.append(store.active_of(n))
        segment_boxes.append(n)
    x_cr = np.vstack(cr_segments)
    x_rc = np.hstack(rc_segments)
    cluster = np.concatenate(cluster_parts) if cluster_parts else np.empty(0, dtype=np.int64)
    seg_bounds = np.concatenate([[0], np.cumsum([part.size for part in cluster_parts])])
    cluster_segments = [
        (segment_boxes[k], int(seg_bounds[k]), int(seg_bounds[k + 1]))
        for k in range(len(segment_boxes))
    ]

    record = BoxRecord(
        box, level, bidx[r_loc], bidx[s_loc], cluster, t_mat, lu, x_cr, x_rc, cluster_segments
    )

    # -- 3. Schur-complement update of {S} ∪ N(B) ----------------------
    y = lu.solve_left(x_rc)  # X_RR^{-1} X[R, C]
    delta = x_cr @ y  # (|C|, |C|)

    store.restrict(box, s_loc)
    if update_log is not None:
        update_log.append(("restrict", box, s_loc.copy()))

    seg_boxes = [box] + nbrs
    sizes = [s_loc.size] + [store.nactive(n) for n in nbrs]
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    for i, bi in enumerate(seg_boxes):
        ri = slice(offsets[i], offsets[i + 1])
        if sizes[i] == 0:
            continue
        for j, bj in enumerate(seg_boxes):
            if sizes[j] == 0:
                continue
            cj = slice(offsets[j], offsets[j + 1])
            blk = store.get_writable(bi, bj)
            d_ij = delta[ri, cj]
            blk -= d_ij
            if update_log is not None:
                update_log.append(("delta", bi, bj, d_ij.copy()))
    return record


def compression_matrix(
    store: InteractionStore,
    kernel: KernelMatrix,
    box: Coord,
    m_boxes: list[Coord],
    proxy_points: np.ndarray | None,
) -> np.ndarray:
    """Stack ``[A[M,B]; A[B,M]^*; K[proxy,B]; K[B,proxy]^*]`` (Eq. 7)."""
    bidx = store.active_of(box)
    rows: list[np.ndarray] = []
    for mb in m_boxes:
        if mb in store.active and store.nactive(mb) > 0:
            rows.append(store.get(mb, box))
            rows.append(store.get(box, mb).conj().T)
    if proxy_points is not None and proxy_points.shape[0] > 0:
        rows.append(kernel.proxy_row_block(proxy_points, bidx))
        rows.append(kernel.proxy_col_block(bidx, proxy_points).conj().T)
    if not rows:
        return np.zeros((0, bidx.size), dtype=kernel.dtype)
    return np.vstack(rows)
