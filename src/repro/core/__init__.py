"""Strong recursive skeletonization factorization (RS-S).

This package implements the paper's core algorithm (Secs. II D–F):

* :func:`srs_factor` — multilevel approximate factorization of the
  dense kernel matrix ``A`` (Algorithm 1);
* :class:`SRSFactorization` — the factored object, whose
  :meth:`~repro.core.factorization.SRSFactorization.solve` applies the
  compressed inverse in O(N);
* :class:`SRSOptions` — compression tolerance, proxy geometry, leaf
  size, ID method.
"""

from repro.core.options import SRSOptions
from repro.core.factorization import SRSFactorization, srs_factor
from repro.core.interactions import InteractionStore
from repro.core.proxy import proxy_circle, proxy_point_count
from repro.core.skel import skeletonize_box, BoxRecord
from repro.core.stats import RankStats

__all__ = [
    "SRSOptions",
    "SRSFactorization",
    "srs_factor",
    "InteractionStore",
    "proxy_circle",
    "proxy_point_count",
    "skeletonize_box",
    "BoxRecord",
    "RankStats",
]
