"""Proxy-circle construction for fast compression (Sec. II-C, Fig. 2).

The proxy circle represents the interaction between a box ``B`` and the
part of its far field beyond the distance-2 ring ``M(B)``; by potential
theory a discretized circle separating ``B`` from ``F(B) \\ M(B)``
captures those interactions to spectral accuracy. The circle must lie
inside the ``M`` ring, i.e. its radius must be in ``(1.5 L, 2.5 L]``
for box side ``L`` — the paper picks ``2.5 L``.
"""

from __future__ import annotations

import numpy as np

from repro.core.options import SRSOptions
from repro.kernels.base import KernelMatrix


def proxy_point_count(kernel: KernelMatrix, radius: float, opts: SRSOptions) -> int:
    """Number of proxy points; grows with ``kappa * radius`` for wave kernels."""
    n = opts.n_proxy
    kappa = getattr(kernel, "kappa", None)
    if kappa is not None:
        n = max(n, int(np.ceil(opts.proxy_oversampling * float(kappa) * radius)))
    return n


def proxy_circle(center: np.ndarray, radius: float, n_points: int) -> np.ndarray:
    """``n_points`` equispaced points on the circle of given center/radius."""
    if radius <= 0:
        raise ValueError(f"proxy radius must be positive, got {radius}")
    if n_points <= 0:
        raise ValueError(f"n_points must be positive, got {n_points}")
    theta = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)
    return np.column_stack(
        [center[0] + radius * np.cos(theta), center[1] + radius * np.sin(theta)]
    )


def proxy_circle_stack(
    centers: np.ndarray, radius: float, n_points: int
) -> np.ndarray:
    """Stacked proxy circles: ``(nbox, n_points, 2)`` for ``(nbox, 2)`` centers.

    At a given level every box shares one radius and point count, so the
    batched sweep builds all circles in one broadcast instead of looping
    :func:`proxy_circle` per box. Row ``i`` is bitwise-identical to
    ``proxy_circle(centers[i], radius, n_points)``.
    """
    if radius <= 0:
        raise ValueError(f"proxy radius must be positive, got {radius}")
    if n_points <= 0:
        raise ValueError(f"n_points must be positive, got {n_points}")
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    theta = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)
    out = np.empty((centers.shape[0], n_points, 2))
    out[:, :, 0] = centers[:, 0:1] + radius * np.cos(theta)[None, :]
    out[:, :, 1] = centers[:, 1:2] + radius * np.sin(theta)[None, :]
    return out


def proxy_points_for_box(
    kernel: KernelMatrix, center: np.ndarray, box_side: float, opts: SRSOptions
) -> np.ndarray:
    """Proxy circle for a box of side ``box_side`` centered at ``center``."""
    radius = opts.proxy_radius_factor * box_side
    return proxy_circle(center, radius, proxy_point_count(kernel, radius, opts))
