"""Factorization statistics: per-level skeleton ranks and memory.

Figure 9 of the paper reports the average skeleton rank per tree level
for the Laplace and Helmholtz kernels; :class:`RankStats` captures the
same quantity during factorization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RankStats:
    """Per-level rank/occupancy statistics of an RS-S factorization."""

    #: level -> list of skeleton sizes of boxes processed at that level
    ranks: dict[int, list[int]] = field(default_factory=dict)
    #: level -> list of box sizes (active counts) before compression
    box_sizes: dict[int, list[int]] = field(default_factory=dict)

    def record(self, level: int, box_size: int, rank: int) -> None:
        self.ranks.setdefault(level, []).append(rank)
        self.box_sizes.setdefault(level, []).append(box_size)

    def average_rank(self, level: int) -> float:
        vals = self.ranks.get(level)
        return float(np.mean(vals)) if vals else 0.0

    def max_rank(self, level: int) -> int:
        vals = self.ranks.get(level)
        return int(np.max(vals)) if vals else 0

    def levels(self) -> list[int]:
        return sorted(self.ranks)

    def table(self) -> list[tuple[int, float, int, float]]:
        """Rows ``(level, avg_rank, max_rank, avg_box_size)`` (Fig. 9 data)."""
        out = []
        for lvl in self.levels():
            out.append(
                (
                    lvl,
                    self.average_rank(lvl),
                    self.max_rank(lvl),
                    float(np.mean(self.box_sizes[lvl])),
                )
            )
        return out
