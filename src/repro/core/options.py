"""Options controlling the RS-S factorization."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SRSOptions:
    """Parameters of the strong recursive skeletonization factorization.

    Attributes
    ----------
    tol:
        Relative tolerance ``eps`` of the interpolative decomposition
        (Definition 1). The paper's experiments use ``1e-6`` by default.
    leaf_size:
        Target number of points per leaf box (``O(r)``; Sec. IV).
    proxy_radius_factor:
        Proxy-circle radius as a multiple of the box side; the paper
        chooses ``2.5 L`` (Sec. II-C).
    n_proxy:
        Baseline number of points on the proxy circle.
    proxy_oversampling:
        For oscillatory kernels the circle must resolve the wavelength:
        the point count grows to
        ``proxy_oversampling * kappa * radius`` when the kernel exposes
        a wave number ``kappa``.
    id_method:
        ``"cpqr"`` (deterministic, the paper's choice) or
        ``"randomized"`` (sketched, Sec. II-B's randomized alternative).
    factor_mode:
        How a level's boxes are swept: ``"strict"`` assembles and
        compresses one box at a time against the current store state
        (bitwise-reproducible, the historical path); ``"batched"``
        assembles same-level compression matrices in stacked groups at
        level start and runs grouped CPQR IDs (faster; agrees with
        strict to the ID tolerance). ``"auto"`` (default) defers to the
        ``REPRO_FACTOR_MODE`` environment knob, which defaults to
        strict. Elimination order and the store update contract are
        identical in every mode — see :mod:`repro.core.batch`.
    check_locality:
        Debug switch: assert that the factorization never touches a
        far-field block (Remarks 1–2). Costs a little bookkeeping.
    """

    tol: float = 1e-6
    leaf_size: int = 64
    proxy_radius_factor: float = 2.5
    n_proxy: int = 64
    proxy_oversampling: float = 3.0
    id_method: str = "cpqr"
    factor_mode: str = "auto"
    check_locality: bool = False

    def __post_init__(self) -> None:
        if self.tol < 0:
            raise ValueError(f"tol must be nonnegative, got {self.tol}")
        if self.leaf_size <= 0:
            raise ValueError(f"leaf_size must be positive, got {self.leaf_size}")
        if self.proxy_radius_factor <= 1.5:
            raise ValueError(
                "proxy circle must lie outside the near field "
                f"(radius factor > 1.5), got {self.proxy_radius_factor}"
            )
        if self.n_proxy < 8:
            raise ValueError(f"n_proxy too small: {self.n_proxy}")
        if self.id_method not in ("cpqr", "randomized"):
            raise ValueError(f"unknown id_method {self.id_method!r}")
        if self.factor_mode not in ("auto", "strict", "batched"):
            raise ValueError(f"unknown factor_mode {self.factor_mode!r}")

    def resolved_factor_mode(self) -> str:
        """The effective sweep mode: ``"strict"`` or ``"batched"``.

        ``"auto"`` resolves through the ``REPRO_FACTOR_MODE`` knob
        (:func:`repro.util.config.factor_mode`), explicit settings win.
        """
        if self.factor_mode != "auto":
            return self.factor_mode
        from repro.util.config import factor_mode

        return factor_mode()
