"""Multilevel RS-S factorization (Algorithm 1) and the factored solver.

``srs_factor`` sweeps the quadtree bottom-up. At each level every box
is skeletonized (compression + partial elimination); between levels the
surviving skeletons are regrouped under their parents and the modified
near-field blocks are re-assembled on parent pairs (Sec. II-E). The
result is a sequence of :class:`~repro.core.skel.BoxRecord`, which is
an implicit factorization ``A ~= V_1^{-1} ... V_K^{-1} W_K^{-1} ... W_1^{-1}``
whose inverse applies in O(N) (Sec. II-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import batch_pair_blocks, skeletonize_level_batched
from repro.core.interactions import Coord, InteractionStore, PairKey
from repro.core.options import SRSOptions
from repro.core.proxy import proxy_points_for_box
from repro.core.skel import BoxRecord, skeletonize_box
from repro.core.stats import RankStats
from repro.kernels.base import KernelMatrix
from repro.obs import REGISTRY, stopwatch, trace
from repro.tree.quadtree import QuadTree
from repro.util.timing import TimingBreakdown

_BOXES_FACTORED = REGISTRY.counter(
    "repro_factor_boxes_total",
    "Boxes skeletonized per quadtree level",
    labelnames=("level",),
)


@dataclass
class SRSFactorization:
    """The computed factorization: an O(N)-applicable compressed inverse."""

    records: list[BoxRecord]
    n: int
    dtype: np.dtype
    opts: SRSOptions
    stats: RankStats = field(default_factory=RankStats)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply the compressed inverse: ``x ~= A^{-1} b``.

        ``b`` may be a vector ``(N,)`` or a block of right-hand sides
        ``(N, nrhs)`` — the multiple-RHS use case the direct solver is
        built for (Sec. I-A).
        """
        b = np.asarray(b)
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        x = b.astype(np.result_type(self.dtype, b.dtype), copy=True)
        for rec in self.records:
            rec.apply_v(x)
        for rec in reversed(self.records):
            rec.apply_w(x)
        return x

    __call__ = solve

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Forward-apply the *compressed* operator: ``y ~= A x``.

        The factorization stores ``A ~= V_1^{-1} .. V_K^{-1} W_K^{-1} .. W_1^{-1}``,
        so the forward product applies the exact inverses of the solve
        sweeps in opposite order. Agreement with an independent matvec
        (FFT/dense/treecode) to roughly the ID tolerance is a cheap
        end-to-end sanity check of a factorization; it is *not* a fast
        general-purpose matvec (use :mod:`repro.matvec` for that).

        Accepts ``(N,)`` vectors or ``(N, nrhs)`` blocks, promoting the
        dtype like :meth:`solve` (complex RHS on a real factorization
        stays complex).
        """
        x = np.asarray(x)
        if x.shape[0] != self.n:
            raise ValueError(f"operand has {x.shape[0]} rows, expected {self.n}")
        y = x.astype(np.result_type(self.dtype, x.dtype), copy=True)
        for rec in self.records:
            rec.unapply_w(y)
        for rec in reversed(self.records):
            rec.unapply_v(y)
        return y

    def eliminated_count(self) -> int:
        """Total number of redundant indices (must equal ``n``)."""
        return int(sum(rec.redundant.size for rec in self.records))

    def memory_bytes(self) -> int:
        return sum(rec.memory_bytes() for rec in self.records)

    def skeleton_sizes(self, level: int) -> list[int]:
        return [rec.rank for rec in self.records if rec.level == level]


def srs_factor(
    kernel: KernelMatrix,
    tree: QuadTree | None = None,
    opts: SRSOptions | None = None,
) -> SRSFactorization:
    """Factorize the kernel matrix (Algorithm 1).

    Parameters
    ----------
    kernel:
        The dense system matrix, defined implicitly over its points.
    tree:
        Quadtree over the same points; built from ``opts.leaf_size``
        when omitted.
    opts:
        Compression/proxy options.
    """
    opts = opts or SRSOptions()
    if tree is None:
        tree = QuadTree.for_leaf_size(kernel.points, opts.leaf_size)
    if tree.N != kernel.n:
        raise ValueError("tree and kernel must be over the same point set")
    kernel.check_tree_resolution(tree)

    fact = SRSFactorization([], kernel.n, kernel.dtype, opts)
    active: dict[Coord, np.ndarray] = {
        c: tree.leaf_points(*c) for c in tree.nonempty_leaves()
    }
    seed_blocks: dict[PairKey, np.ndarray] | None = None

    with trace.span("factor", n=kernel.n, levels=tree.nlevels):
        for level in range(tree.nlevels, 0, -1):
            store = InteractionStore(
                kernel,
                active,
                blocks=seed_blocks,
                max_modified_distance=2 if opts.check_locality else None,
            )
            factor_level(fact, store, kernel, tree, level, opts)
            if level > 1:
                with trace.span("factor.transition", level=level):
                    active, seed_blocks = transition_to_parent(
                        store,
                        tree,
                        level,
                        batched=opts.resolved_factor_mode() == "batched",
                    )
            else:
                remaining = sum(v.size for v in store.active.values())
                if remaining:  # pragma: no cover - indicates an algorithmic bug
                    raise RuntimeError(f"{remaining} indices survived the root level")

    if fact.eliminated_count() != kernel.n:  # pragma: no cover - invariant
        raise RuntimeError(
            f"eliminated {fact.eliminated_count()} of {kernel.n} indices"
        )
    return fact


def factor_level(
    fact: SRSFactorization,
    store: InteractionStore,
    kernel: KernelMatrix,
    tree: QuadTree,
    level: int,
    opts: SRSOptions,
    boxes: list[Coord] | None = None,
    task_times: list | None = None,
) -> None:
    """Skeletonize ``boxes`` (default: every box) at ``level`` in order.

    ``task_times`` (when a list) collects ``(level, box, seconds)`` per
    skeletonization — the shared-memory comparator schedules these
    measured task durations onto simulated threads (Table VI). Collecting
    them requires the per-box strict sweep, so a ``task_times`` list
    forces strict even when ``opts`` resolves to batched.
    """
    todo = boxes if boxes is not None else tree.boxes(level)
    if task_times is None and opts.resolved_factor_mode() == "batched":
        with fact.timings.measure(f"level_{level}"), trace.span(
            "factor.level", level=level, boxes=len(todo)
        ) as lspan:
            results = skeletonize_level_batched(
                store, kernel, tree, level, todo, opts
            )
            for size_before, rec in results:
                fact.stats.record(level, size_before, rec.rank)
                fact.records.append(rec)
            lspan.set(factored=len(results))
        if results:
            _BOXES_FACTORED.inc(len(results), level=str(level))
        return

    has_far_field = tree.nside(level) >= 4
    side = tree.box_side(level)
    factored = 0
    with fact.timings.measure(f"level_{level}"), trace.span(
        "factor.level", level=level, boxes=len(todo)
    ) as lspan:
        for box in todo:
            if box not in store.active:
                continue
            nbrs = tree.neighbors(level, *box)
            m_boxes = tree.dist2_neighbors(level, *box) if has_far_field else []
            proxy = (
                proxy_points_for_box(kernel, tree.box_center(level, *box), side, opts)
                if has_far_field
                else None
            )
            size_before = store.nactive(box)
            with stopwatch() as sw:
                rec = skeletonize_box(
                    store, kernel, box, nbrs, m_boxes, proxy, opts, level=level
                )
            if task_times is not None:
                task_times.append((level, box, sw.elapsed))
            if rec is None:
                continue
            factored += 1
            fact.stats.record(level, size_before, rec.rank)
            fact.records.append(rec)
        lspan.set(factored=factored)
    if factored:
        _BOXES_FACTORED.inc(factored, level=str(level))


def transition_to_parent(
    store: InteractionStore, tree: QuadTree, level: int, *, batched: bool = False
) -> tuple[dict[Coord, np.ndarray], dict[PairKey, np.ndarray]]:
    """Regroup skeletons under parents and reassemble near-field blocks.

    Only parent pairs at Chebyshev distance <= 1 can contain modified
    child blocks (child pairs at distance <= 2 have parents at distance
    <= 1); distance-2 parent pairs assemble from child pairs at
    distance >= 3, which Theorem 2 guarantees are pure kernel — they
    are left to lazy kernel evaluation at the parent level.

    ``batched`` evaluates the unmodified child pairs through the stacked
    kernel API (:func:`repro.core.batch.batch_pair_blocks`) instead of
    one scalar ``store.get`` at a time; strict mode keeps the scalar
    path so its assembly stays bitwise-reproducible.
    """
    parent_level = level - 1
    parent_children: dict[Coord, list[Coord]] = {}
    for box, idx in store.active.items():
        if idx.size == 0:
            continue
        parent_children.setdefault((box[0] >> 1, box[1] >> 1), []).append(box)
    parent_active: dict[Coord, np.ndarray] = {}
    for parent in parent_children:
        ordered = [
            c
            for c in tree.children(parent_level, *parent)
            if c in store.active and store.nactive(c) > 0
        ]
        parent_children[parent] = ordered
        parent_active[parent] = np.concatenate([store.active_of(c) for c in ordered])

    pair_lists: list[tuple[PairKey, list[Coord], list[Coord]]] = []
    nside = 1 << parent_level
    for p1, c1s in parent_children.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                p2 = (p1[0] + dx, p1[1] + dy)
                if not (0 <= p2[0] < nside and 0 <= p2[1] < nside):
                    continue
                c2s = parent_children.get(p2)
                if not c2s:
                    continue
                pair_lists.append(((p1, p2), c1s, c2s))

    blocks: dict[PairKey, np.ndarray] | None = None
    if batched:
        blocks = batch_pair_blocks(
            store,
            [(c1, c2) for _, c1s, c2s in pair_lists for c1 in c1s for c2 in c2s],
        )
    new_blocks: dict[PairKey, np.ndarray] = {}
    for (p1, p2), c1s, c2s in pair_lists:
        if blocks is None:
            rows = [np.hstack([store.get(c1, c2) for c2 in c2s]) for c1 in c1s]
        else:
            rows = [np.hstack([blocks[c1, c2] for c2 in c2s]) for c1 in c1s]
        new_blocks[(p1, p2)] = np.vstack(rows)
    return parent_active, new_blocks
