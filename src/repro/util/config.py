"""Environment-driven configuration used by benchmarks and examples.

The benchmark harness regenerates every table/figure of the paper at a
size controlled by ``REPRO_BENCH_SCALE``:

* ``0`` (default) — tiny problems so the full suite runs in CI.
* ``1`` — medium, paper-shaped sweeps (minutes).
* ``2`` — the largest sizes that remain tractable in pure Python.
"""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """Read an integer environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ValueError(f"environment variable {name}={raw!r} is not an int") from exc


def env_flag(name: str, default: bool = False) -> bool:
    """Read a boolean environment variable (``1/true/yes`` are truthy)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in {"1", "true", "yes", "on"}


def bench_scale() -> int:
    """Benchmark scale knob; see module docstring."""
    scale = env_int("REPRO_BENCH_SCALE", 0)
    if scale < 0 or scale > 2:
        raise ValueError(f"REPRO_BENCH_SCALE must be 0, 1 or 2; got {scale}")
    return scale
