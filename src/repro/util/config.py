"""Environment-driven configuration used by benchmarks and examples.

The benchmark harness regenerates every table/figure of the paper at a
size controlled by ``REPRO_BENCH_SCALE``:

* ``0`` (default) — tiny problems so the full suite runs in CI.
* ``1`` — medium, paper-shaped sweeps (minutes).
* ``2`` — the largest sizes that remain tractable in pure Python.
"""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """Read an integer environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ValueError(f"environment variable {name}={raw!r} is not an int") from exc


def env_flag(name: str, default: bool = False) -> bool:
    """Read a boolean environment variable (``1/true/yes`` are truthy)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in {"1", "true", "yes", "on"}


def bench_scale() -> int:
    """Benchmark scale knob; see module docstring."""
    scale = env_int("REPRO_BENCH_SCALE", 0)
    if scale < 0 or scale > 2:
        raise ValueError(f"REPRO_BENCH_SCALE must be 0, 1 or 2; got {scale}")
    return scale


#: execution backends understood by ``repro.vmpi`` (see vmpi.backend)
VMPI_BACKENDS = ("thread", "process", "auto")


def vmpi_backend() -> str:
    """Default execution backend for SPMD runs (``REPRO_VMPI_BACKEND``).

    * ``thread`` (default) — in-process rank threads: deterministic,
      cheap to launch, GIL-serialized compute. Right for tests and
      simulated-time studies.
    * ``process`` — one OS process per rank with shared-memory ndarray
      transport: wall-clock scales with cores. Right for real-time
      benchmarks and large workloads.
    * ``auto`` — pick by the usable-core budget (CPU affinity where
      the platform exposes it — so cpuset-restricted containers are
      treated as the small boxes they are — else ``os.cpu_count()``):
      threads on a single core (where processes are pure overhead),
      processes when real cores are available (and the platform
      supports shared memory).
    """
    raw = os.environ.get("REPRO_VMPI_BACKEND")
    if raw is None or raw.strip() == "":
        return "thread"
    name = raw.strip().lower()
    if name not in VMPI_BACKENDS:
        raise ValueError(
            f"REPRO_VMPI_BACKEND={raw!r} is not one of {'/'.join(VMPI_BACKENDS)}"
        )
    return name


def vmpi_shm_min_bytes() -> int:
    """Arrays at or above this size travel via shared memory (process backend).

    Below it, the pickle channel is cheaper than creating a block
    (``REPRO_VMPI_SHM_MIN_BYTES``, default 2048).
    """
    n = env_int("REPRO_VMPI_SHM_MIN_BYTES", 2048)
    if n < 0:
        raise ValueError(f"REPRO_VMPI_SHM_MIN_BYTES must be >= 0, got {n}")
    return n


#: rank-process lifecycle policies of the process backend
VMPI_POOL_MODES = ("persistent", "per_call")


def vmpi_pool() -> str:
    """Rank-process lifecycle of the process backend (``REPRO_VMPI_POOL``).

    * ``persistent`` (default) — ranks are long-lived workers in a
      :class:`~repro.vmpi.pool.RankPool`: spawned once, then successive
      ``run_spmd`` dispatches (``factor`` followed by many ``solve`` s)
      reuse them without re-forking.
    * ``per_call`` — the pre-pool behavior: every ``run_spmd`` call
      spawns fresh rank processes and tears them down afterwards.
    """
    raw = os.environ.get("REPRO_VMPI_POOL")
    if raw is None or raw.strip() == "":
        return "persistent"
    name = raw.strip().lower().replace("-", "_")
    if name not in VMPI_POOL_MODES:
        raise ValueError(
            f"REPRO_VMPI_POOL={raw!r} is not one of {'/'.join(VMPI_POOL_MODES)}"
        )
    return name


def vmpi_pool_max() -> int:
    """Most rank pools kept alive at once (``REPRO_VMPI_POOL_MAX``).

    Pools are keyed by (rank count, start method, shm threshold);
    creating one beyond the cap shuts down the least recently used —
    the idle policy that bounds resident worker processes (default 4
    pools).
    """
    n = env_int("REPRO_VMPI_POOL_MAX", 4)
    if n < 1:
        raise ValueError(f"REPRO_VMPI_POOL_MAX must be >= 1, got {n}")
    return n


def vmpi_start_method() -> str | None:
    """Multiprocessing start-method override (``REPRO_VMPI_START_METHOD``).

    ``None`` (unset) lets the backend pick: fork on Linux, the platform
    default elsewhere. Set ``spawn`` to exercise the pickling-clean
    path that non-fork platforms (macOS, Windows) take, or
    ``forkserver``/``fork`` explicitly.
    """
    raw = os.environ.get("REPRO_VMPI_START_METHOD")
    if raw is None or raw.strip() == "":
        return None
    name = raw.strip().lower()
    if name not in {"fork", "spawn", "forkserver"}:
        raise ValueError(
            f"REPRO_VMPI_START_METHOD={raw!r} is not one of fork/spawn/forkserver"
        )
    return name
