"""Environment-driven configuration used by benchmarks and examples.

The benchmark harness regenerates every table/figure of the paper at a
size controlled by ``REPRO_BENCH_SCALE``:

* ``0`` (default) — tiny problems so the full suite runs in CI.
* ``1`` — medium, paper-shaped sweeps (minutes).
* ``2`` — the largest sizes that remain tractable in pure Python.
"""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """Read an integer environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ValueError(f"environment variable {name}={raw!r} is not an int") from exc


def env_float(name: str, default: float) -> float:
    """Read a float environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return float(raw)
    except ValueError as exc:  # pragma: no cover - defensive
        raise ValueError(f"environment variable {name}={raw!r} is not a float") from exc


def env_flag(name: str, default: bool = False) -> bool:
    """Read a boolean environment variable (``1/true/yes`` are truthy)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in {"1", "true", "yes", "on"}


def bench_scale() -> int:
    """Benchmark scale knob; see module docstring."""
    scale = env_int("REPRO_BENCH_SCALE", 0)
    if scale < 0 or scale > 2:
        raise ValueError(f"REPRO_BENCH_SCALE must be 0, 1 or 2; got {scale}")
    return scale


#: execution backends understood by ``repro.vmpi`` (see vmpi.backend)
VMPI_BACKENDS = ("thread", "process", "auto")


def vmpi_backend() -> str:
    """Default execution backend for SPMD runs (``REPRO_VMPI_BACKEND``).

    * ``thread`` (default) — in-process rank threads: deterministic,
      cheap to launch, GIL-serialized compute. Right for tests and
      simulated-time studies.
    * ``process`` — one OS process per rank with shared-memory ndarray
      transport: wall-clock scales with cores. Right for real-time
      benchmarks and large workloads.
    * ``auto`` — pick by the usable-core budget (CPU affinity where
      the platform exposes it — so cpuset-restricted containers are
      treated as the small boxes they are — else ``os.cpu_count()``):
      threads on a single core (where processes are pure overhead),
      processes when real cores are available (and the platform
      supports shared memory).
    """
    raw = os.environ.get("REPRO_VMPI_BACKEND")
    if raw is None or raw.strip() == "":
        return "thread"
    name = raw.strip().lower()
    if name not in VMPI_BACKENDS:
        raise ValueError(
            f"REPRO_VMPI_BACKEND={raw!r} is not one of {'/'.join(VMPI_BACKENDS)}"
        )
    return name


def vmpi_shm_min_bytes() -> int:
    """Arrays at or above this size travel via shared memory (process backend).

    Below it, the pickle channel is cheaper than creating a block
    (``REPRO_VMPI_SHM_MIN_BYTES``, default 2048).
    """
    n = env_int("REPRO_VMPI_SHM_MIN_BYTES", 2048)
    if n < 0:
        raise ValueError(f"REPRO_VMPI_SHM_MIN_BYTES must be >= 0, got {n}")
    return n


#: rank-process lifecycle policies of the process backend
VMPI_POOL_MODES = ("persistent", "per_call")


def vmpi_pool() -> str:
    """Rank-process lifecycle of the process backend (``REPRO_VMPI_POOL``).

    * ``persistent`` (default) — ranks are long-lived workers in a
      :class:`~repro.vmpi.pool.RankPool`: spawned once, then successive
      ``run_spmd`` dispatches (``factor`` followed by many ``solve`` s)
      reuse them without re-forking.
    * ``per_call`` — the pre-pool behavior: every ``run_spmd`` call
      spawns fresh rank processes and tears them down afterwards.
    """
    raw = os.environ.get("REPRO_VMPI_POOL")
    if raw is None or raw.strip() == "":
        return "persistent"
    name = raw.strip().lower().replace("-", "_")
    if name not in VMPI_POOL_MODES:
        raise ValueError(
            f"REPRO_VMPI_POOL={raw!r} is not one of {'/'.join(VMPI_POOL_MODES)}"
        )
    return name


def vmpi_pool_max() -> int:
    """Most rank pools kept alive at once (``REPRO_VMPI_POOL_MAX``).

    Pools are keyed by (rank count, start method, shm threshold);
    creating one beyond the cap shuts down the least recently used —
    the idle policy that bounds resident worker processes (default 4
    pools).
    """
    n = env_int("REPRO_VMPI_POOL_MAX", 4)
    if n < 1:
        raise ValueError(f"REPRO_VMPI_POOL_MAX must be >= 1, got {n}")
    return n


# ----------------------------------------------------------------------
# solve service (repro.service) knobs
# ----------------------------------------------------------------------
def service_cache_bytes() -> int:
    """Factorization-cache byte budget (``REPRO_SERVICE_CACHE_BYTES``).

    The service evicts least-recently-used factorizations once the
    resident bytes exceed this (default 256 MiB). A single entry larger
    than the budget stays resident until displaced — the budget is a
    high-water mark, not a hard per-entry cap.
    """
    n = env_int("REPRO_SERVICE_CACHE_BYTES", 256 * 2**20)
    if n < 0:
        raise ValueError(f"REPRO_SERVICE_CACHE_BYTES must be >= 0, got {n}")
    return n


def service_batch_window_s() -> float:
    """Batching window in seconds (``REPRO_SERVICE_BATCH_WINDOW_MS``).

    A request that opens a batch waits this long (default 2 ms) for
    other requests against the same factorization before solving; 0
    disables coalescing. Longer windows raise batch occupancy and
    throughput at the cost of per-request latency.
    """
    ms = env_float("REPRO_SERVICE_BATCH_WINDOW_MS", 2.0)
    if ms < 0:
        raise ValueError(f"REPRO_SERVICE_BATCH_WINDOW_MS must be >= 0, got {ms}")
    return ms / 1e3


def service_batch_max() -> int:
    """Most right-hand sides coalesced into one block solve
    (``REPRO_SERVICE_BATCH_MAX``, default 32); a full batch dispatches
    immediately without waiting out the window."""
    n = env_int("REPRO_SERVICE_BATCH_MAX", 32)
    if n < 1:
        raise ValueError(f"REPRO_SERVICE_BATCH_MAX must be >= 1, got {n}")
    return n


#: batch execution modes of the service's RhsBatcher
SERVICE_BATCH_MODES = ("block", "strict")


def service_batch_mode() -> str:
    """How coalesced requests are solved (``REPRO_SERVICE_BATCH_MODE``).

    * ``block`` (default) — one ``(N, nrhs)`` block application per
      batch: fastest (one sweep over the factorization records, BLAS-3
      applies), but multi-column GEMM may differ from a solo solve in
      the last floating-point bits.
    * ``strict`` — each coalesced rhs is applied at its submitted shape:
      bitwise-identical to an unbatched solve, still amortizing the
      queue/dispatch per batch.
    """
    raw = os.environ.get("REPRO_SERVICE_BATCH_MODE")
    if raw is None or raw.strip() == "":
        return "block"
    name = raw.strip().lower()
    if name not in SERVICE_BATCH_MODES:
        raise ValueError(
            f"REPRO_SERVICE_BATCH_MODE={raw!r} is not one of "
            f"{'/'.join(SERVICE_BATCH_MODES)}"
        )
    return name


#: factor sweep modes of the RS-S engine (see repro.core.batch)
FACTOR_MODES = ("strict", "batched")


def factor_mode() -> str:
    """Default factor-sweep mode of the RS-S engine (``REPRO_FACTOR_MODE``).

    Resolves ``SRSOptions.factor_mode="auto"``:

    * ``strict`` (default) — the per-box sweep: every compression
      matrix is assembled against the *current* store state, bitwise
      identical to the historical path.
    * ``batched`` — the level-batched sweep: same-level compression
      matrices are assembled in stacked groups from the level-start
      state and run through grouped CPQR IDs. Skeleton selection may
      differ within the ID tolerance; elimination order is unchanged.
    """
    raw = os.environ.get("REPRO_FACTOR_MODE")
    if raw is None or raw.strip() == "":
        return "strict"
    name = raw.strip().lower()
    if name not in FACTOR_MODES:
        raise ValueError(
            f"REPRO_FACTOR_MODE={raw!r} is not one of {'/'.join(FACTOR_MODES)}"
        )
    return name


def service_workers() -> int:
    """Solver threads of a :class:`~repro.service.SolveService`
    (``REPRO_SERVICE_WORKERS``, default 8). Requests beyond this
    concurrency queue; threads blocked on an in-flight factorization
    (single-flight) or parked as batch joiners free up quickly."""
    n = env_int("REPRO_SERVICE_WORKERS", 8)
    if n < 1:
        raise ValueError(f"REPRO_SERVICE_WORKERS must be >= 1, got {n}")
    return n


def service_max_pending() -> int:
    """Admission-control bound on queued requests
    (``REPRO_SERVICE_MAX_PENDING``, default 1024; 0 disables). A
    ``submit`` arriving while this many requests are already pending
    is rejected with ``ServiceOverloadedError`` (HTTP 429) instead of
    queuing unbounded work behind a slow cold path."""
    n = env_int("REPRO_SERVICE_MAX_PENDING", 1024)
    if n < 0:
        raise ValueError(f"REPRO_SERVICE_MAX_PENDING must be >= 0, got {n}")
    return n


# ----------------------------------------------------------------------
# resident factorization store (repro.store) knobs
# ----------------------------------------------------------------------
def store_dir() -> str | None:
    """Root directory of the cross-process factorization store
    (``REPRO_STORE_DIR``).

    Unset (default) disables tiers 2 and 3: no shared-memory publishing
    and no disk spill — the cache behaves exactly as before. When set,
    the directory holds sidecar indexes for shm-published entries,
    spill files for warm restarts, and the cross-process single-flight
    lockfiles. Created on first use.
    """
    raw = os.environ.get("REPRO_STORE_DIR")
    if raw is None or raw.strip() == "":
        return None
    return raw


def store_shared() -> bool:
    """Whether cache entries are published as named shared-memory
    blocks for other processes to attach (``REPRO_STORE_SHARED``,
    default on; only meaningful when ``REPRO_STORE_DIR`` is set)."""
    return env_flag("REPRO_STORE_SHARED", True)


def store_spill() -> bool:
    """Whether evicted / shutdown-time cache entries spill to disk for
    warm restart (``REPRO_STORE_SPILL``, default on; only meaningful
    when ``REPRO_STORE_DIR`` is set)."""
    return env_flag("REPRO_STORE_SPILL", True)


def store_resident() -> bool:
    """Whether pooled rank workers retain their factorization shards so
    repeated solves dispatch only ``(entry_id, rhs)`` instead of
    re-shipping the whole tree (``REPRO_STORE_RESIDENT``, default on;
    applies to the persistent process backend only)."""
    return env_flag("REPRO_STORE_RESIDENT", True)


def store_resident_max() -> int:
    """Most factorizations each rank worker keeps resident
    (``REPRO_STORE_RESIDENT_MAX``, default 8). Beyond the cap the
    least recently solved entry is dropped worker-side; the next solve
    against it transparently re-seeds from the parent."""
    n = env_int("REPRO_STORE_RESIDENT_MAX", 8)
    if n < 1:
        raise ValueError(f"REPRO_STORE_RESIDENT_MAX must be >= 1, got {n}")
    return n


def store_lock_timeout_s() -> float:
    """How long a process waits on another process's in-flight build of
    the same entry before giving up and factoring locally
    (``REPRO_STORE_LOCK_TIMEOUT_S``, default 30 seconds)."""
    t = env_float("REPRO_STORE_LOCK_TIMEOUT_S", 30.0)
    if t < 0:
        raise ValueError(f"REPRO_STORE_LOCK_TIMEOUT_S must be >= 0, got {t}")
    return t


# ----------------------------------------------------------------------
# observability (repro.obs) knobs
# ----------------------------------------------------------------------
def obs_enabled() -> bool:
    """Whether span tracing is on (``REPRO_OBS``, default off).

    Off, ``repro.obs.trace.span`` returns a shared no-op context
    manager after a single flag read — parity suites pay (almost)
    nothing. Metrics counters are always live; only span *recording*
    is gated. Set before worker processes start so rank workers
    inherit it (the dispatch path also forwards the parent's live
    setting per job).
    """
    return env_flag("REPRO_OBS", False)


def obs_trace_path() -> str | None:
    """Chrome-trace autosave target (``REPRO_OBS_TRACE_PATH``).

    When set (and tracing is enabled), the process writes every
    recorded span as Chrome ``trace_event`` JSON to this path at exit
    — open it in ``chrome://tracing`` or Perfetto.
    """
    raw = os.environ.get("REPRO_OBS_TRACE_PATH")
    if raw is None or raw.strip() == "":
        return None
    return raw


def obs_profile_hz() -> float:
    """Sampling-profiler rate in samples/second (``REPRO_OBS_PROFILE_HZ``).

    0 (default) keeps the profiler off. A positive rate starts the
    background sampler at import of :mod:`repro.obs.profiler`; rank
    worker processes inherit the parent's live rate per job through the
    dispatch channel, exactly like the span-tracing flag.
    """
    hz = env_float("REPRO_OBS_PROFILE_HZ", 0.0)
    if hz < 0:
        raise ValueError(f"REPRO_OBS_PROFILE_HZ must be >= 0, got {hz}")
    return hz


def obs_profile_path() -> str | None:
    """Profiler autosave target (``REPRO_OBS_PROFILE_PATH``).

    When set (and the profiler collected samples), the process writes a
    speedscope JSON document to this path at exit, plus collapsed
    stacks at ``<path>.folded`` for flamegraph tooling.
    """
    raw = os.environ.get("REPRO_OBS_PROFILE_PATH")
    if raw is None or raw.strip() == "":
        return None
    return raw


def obs_max_spans() -> int:
    """Most finished spans the tracer retains (``REPRO_OBS_MAX_SPANS``).

    The span buffer is a ring: once full, recording a span drops the
    oldest one and bumps ``repro_obs_spans_dropped_total`` — a
    long-running service keeps the most recent window instead of
    growing without bound (default 65536; 0 means unbounded).
    """
    n = env_int("REPRO_OBS_MAX_SPANS", 65536)
    if n < 0:
        raise ValueError(f"REPRO_OBS_MAX_SPANS must be >= 0, got {n}")
    return n


def obs_watchdog_s() -> float:
    """Resource-watchdog sampling period (``REPRO_OBS_WATCHDOG_MS``).

    0 (default) keeps the watchdog off. A positive period makes the
    solve service start a background sampler that publishes RSS,
    tracked /dev/shm bytes, pool worker liveness, and store-tier
    residency as gauges, and logs a structured warning when a tracked
    shm block outlives its registration (a leak).
    """
    ms = env_float("REPRO_OBS_WATCHDOG_MS", 0.0)
    if ms < 0:
        raise ValueError(f"REPRO_OBS_WATCHDOG_MS must be >= 0, got {ms}")
    return ms / 1e3


def vmpi_start_method() -> str | None:
    """Multiprocessing start-method override (``REPRO_VMPI_START_METHOD``).

    ``None`` (unset) lets the backend pick: fork on Linux, the platform
    default elsewhere. Set ``spawn`` to exercise the pickling-clean
    path that non-fork platforms (macOS, Windows) take, or
    ``forkserver``/``fork`` explicitly.
    """
    raw = os.environ.get("REPRO_VMPI_START_METHOD")
    if raw is None or raw.strip() == "":
        return None
    name = raw.strip().lower()
    if name not in {"fork", "spawn", "forkserver"}:
        raise ValueError(
            f"REPRO_VMPI_START_METHOD={raw!r} is not one of fork/spawn/forkserver"
        )
    return name
