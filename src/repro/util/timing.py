"""Lightweight timers used throughout the solver.

Two notions of time coexist in this codebase:

* real wall/CPU time, measured here, used for the sequential solver and
  for the aggregate work accounting; and
* *simulated* distributed time, kept by :mod:`repro.vmpi.clock`, used to
  report the paper's ``t_fact``/``t_solve`` splits for p > 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """Context-manager stopwatch accumulating wall time in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._t0: float | None = None

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None
        self.elapsed += time.perf_counter() - self._t0
        self._t0 = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._t0 = None


@dataclass
class TimingBreakdown:
    """Accumulates named time buckets (e.g. ``compress``, ``schur``)."""

    buckets: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.buckets[name] = self.buckets.get(name, 0.0) + seconds

    def measure(self, name: str):
        """Context manager adding the elapsed wall time to ``name``."""
        return _BucketTimer(self, name)

    def total(self) -> float:
        return sum(self.buckets.values())

    def __getitem__(self, name: str) -> float:
        return self.buckets.get(name, 0.0)


class _BucketTimer:
    def __init__(self, breakdown: TimingBreakdown, name: str) -> None:
        self._breakdown = breakdown
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_BucketTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._breakdown.add(self._name, time.perf_counter() - self._t0)
