"""Lightweight timers used throughout the solver.

Two notions of time coexist in this codebase:

* real wall/CPU time, measured here, used for the sequential solver and
  for the aggregate work accounting; and
* *simulated* distributed time, kept by :mod:`repro.vmpi.clock`, used to
  report the paper's ``t_fact``/``t_solve`` splits for p > 1.

:class:`TimingBreakdown` keeps its per-instance bucket dict (it is a
picklable dataclass field of factorization objects and crosses the
process-backend result channel) but also mirrors every addition into
the process-wide metrics registry (``repro_timing_seconds_total``), so
``GET /metrics`` sees engine phase times without new plumbing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # lazy at runtime: the registry may be reset in tests
    from repro.obs.metrics import Counter


class Timer:
    """Context-manager stopwatch accumulating wall time in seconds.

    Re-entrant: nesting ``with`` blocks on the same instance counts the
    outermost interval once (inner entries neither double-count nor
    corrupt the start stamp).
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._starts: list[float] = []

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        if not self._starts:
            raise RuntimeError("Timer.__exit__ without matching __enter__")
        t0 = self._starts.pop()
        if not self._starts:  # outermost exit: count the whole interval
            self.elapsed += time.perf_counter() - t0

    def reset(self) -> None:
        self.elapsed = 0.0
        self._starts.clear()


def _timing_counter() -> Counter:
    """Shared mirror counter; resolved lazily (registry may be reset)."""
    from repro.obs.metrics import REGISTRY

    return REGISTRY.counter(
        "repro_timing_seconds_total",
        "Engine wall time by TimingBreakdown bucket",
        labelnames=("bucket",),
    )


@dataclass
class TimingBreakdown:
    """Accumulates named time buckets (e.g. ``compress``, ``schur``).

    A thin adapter over the metrics registry: per-instance totals stay
    in ``buckets`` (the historical API), while every ``add`` also feeds
    the process-wide ``repro_timing_seconds_total`` counter family.
    """

    buckets: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.buckets[name] = self.buckets.get(name, 0.0) + seconds
        _timing_counter().inc(max(seconds, 0.0), bucket=name)

    def measure(self, name: str) -> "_BucketTimer":
        """Context manager adding the elapsed wall time to ``name``."""
        return _BucketTimer(self, name)

    def total(self) -> float:
        return sum(self.buckets.values())

    def __getitem__(self, name: str) -> float:
        return self.buckets.get(name, 0.0)


class _BucketTimer:
    def __init__(self, breakdown: TimingBreakdown, name: str) -> None:
        self._breakdown = breakdown
        self._name = name
        self._starts: list[float] = []

    def __enter__(self) -> "_BucketTimer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        self._breakdown.add(self._name, time.perf_counter() - self._starts.pop())
