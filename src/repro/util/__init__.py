"""Shared utilities: configuration, timers, and small helpers."""

from repro.util.timing import Timer, TimingBreakdown
from repro.util.config import bench_scale, env_flag, env_int

__all__ = ["Timer", "TimingBreakdown", "bench_scale", "env_flag", "env_int"]
