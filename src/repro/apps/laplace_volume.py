"""First-kind Laplace volume integral equation (Sec. V-A, Eq. 14).

Bundles the collocation grid, the kernel matrix, the FFT matvec, and
the paper's solve protocol: factor once, then refine with PCG to a
``1e-12`` residual, reporting ``relres`` and ``nit`` (Tables II/III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.problem import ProblemBase
from repro.core.factorization import SRSFactorization, srs_factor
from repro.core.options import SRSOptions
from repro.geometry.points import uniform_grid
from repro.iterative.cg import CGResult, cg
from repro.kernels.laplace import LaplaceKernelMatrix
from repro.matvec.toeplitz import FFTMatVec


@dataclass
class LaplaceVolumeProblem(ProblemBase):
    """The paper's Laplace benchmark problem on an ``m x m`` grid.

    Implements the :class:`repro.api.Problem` protocol, so it runs
    through ``repro.solve``/``repro.Solver`` with any method; the
    operator is symmetric, so CG applies.
    """

    m: int
    is_symmetric = True

    def __post_init__(self) -> None:
        if self.m < 4:
            raise ValueError(f"grid side must be >= 4, got {self.m}")
        self.points = uniform_grid(self.m)
        self.h = 1.0 / self.m
        self.kernel = LaplaceKernelMatrix(self.points, self.h)
        self.matvec = FFTMatVec(self.kernel, self.m)

    @property
    def n(self) -> int:
        return self.m * self.m

    # random_rhs (standard-uniform, Table I) comes from ProblemBase

    def factor(self, opts: SRSOptions | None = None) -> SRSFactorization:
        return srs_factor(self.kernel, opts=opts or SRSOptions())

    def relres(self, x: np.ndarray, b: np.ndarray) -> float:
        return self.matvec.residual_norm(x, b)

    def pcg(
        self,
        fact,
        b: np.ndarray,
        *,
        tol: float = 1e-12,
        maxiter: int = 500,
    ) -> CGResult:
        """Preconditioned CG with the factorization, to the paper's 1e-12.

        Thin shim over ``repro.solve(self, b, method="pcg")`` reusing
        ``fact`` as the cached factorization.
        """
        from repro.api import SolveConfig, solve

        cfg = SolveConfig(method="pcg", tol=tol, maxiter=maxiter)
        return solve(self, b, cfg, factorization=fact).krylov

    def unpreconditioned_cg(self, b: np.ndarray, *, tol: float = 1e-12, maxiter: int = 100_000) -> CGResult:
        """Plain CG baseline (the paper reports ~5 sqrt(N) iterations)."""
        return cg(self.matvec, b, tol=tol, maxiter=maxiter)
