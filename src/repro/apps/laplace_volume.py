"""First-kind Laplace volume integral equation (Sec. V-A, Eq. 14).

Bundles the collocation grid, the kernel matrix, the FFT matvec, and
the paper's solve protocol: factor once, then refine with PCG to a
``1e-12`` residual, reporting ``relres`` and ``nit`` (Tables II/III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.factorization import SRSFactorization, srs_factor
from repro.core.options import SRSOptions
from repro.geometry.points import uniform_grid
from repro.iterative.cg import CGResult, cg
from repro.kernels.laplace import LaplaceKernelMatrix
from repro.matvec.toeplitz import FFTMatVec


@dataclass
class LaplaceVolumeProblem:
    """The paper's Laplace benchmark problem on an ``m x m`` grid."""

    m: int

    def __post_init__(self) -> None:
        if self.m < 4:
            raise ValueError(f"grid side must be >= 4, got {self.m}")
        self.points = uniform_grid(self.m)
        self.h = 1.0 / self.m
        self.kernel = LaplaceKernelMatrix(self.points, self.h)
        self.matvec = FFTMatVec(self.kernel, self.m)

    @property
    def n(self) -> int:
        return self.m * self.m

    def random_rhs(self, seed: int = 0, nrhs: int = 1) -> np.ndarray:
        """Standard-uniform random right-hand side(s), as in Table I."""
        rng = np.random.default_rng(seed)
        shape = (self.n,) if nrhs == 1 else (self.n, nrhs)
        return rng.random(shape)

    def factor(self, opts: SRSOptions | None = None) -> SRSFactorization:
        return srs_factor(self.kernel, opts=opts or SRSOptions())

    def relres(self, x: np.ndarray, b: np.ndarray) -> float:
        return self.matvec.residual_norm(x, b)

    def pcg(
        self,
        fact,
        b: np.ndarray,
        *,
        tol: float = 1e-12,
        maxiter: int = 500,
    ) -> CGResult:
        """Preconditioned CG with the factorization, to the paper's 1e-12."""
        return cg(self.matvec, b, preconditioner=fact.solve, tol=tol, maxiter=maxiter)

    def unpreconditioned_cg(self, b: np.ndarray, *, tol: float = 1e-12, maxiter: int = 100_000) -> CGResult:
        """Plain CG baseline (the paper reports ~5 sqrt(N) iterations)."""
        return cg(self.matvec, b, tol=tol, maxiter=maxiter)
