"""Lippmann–Schwinger acoustic scattering (Sec. V-B, Eqns. 18–21).

Models a plane wave hitting a compactly supported scattering potential
``b(x)`` on the unit square. The symmetrized unknown is
``mu = sigma / sqrt(b)``; after solving, the physical density
``sigma = sqrt(b) mu`` gives the scattered and total fields (Fig. 7b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.api.problem import ProblemBase
from repro.core.factorization import SRSFactorization, srs_factor
from repro.core.options import SRSOptions
from repro.geometry.points import uniform_grid
from repro.iterative.gmres import GMRESResult, gmres
from repro.kernels.helmholtz import (
    HelmholtzKernelMatrix,
    gaussian_bump,
    hankel_cell_self_integral,
    helmholtz_greens,
    plane_wave,
)
from repro.matvec.toeplitz import FFTMatVec


@dataclass
class ScatteringProblem(ProblemBase):
    """The paper's Helmholtz benchmark: Gaussian-bump scattering potential.

    Implements the :class:`repro.api.Problem` protocol (complex,
    non-symmetric: GMRES-family methods); the canonical rhs is the
    symmetrized plane-wave data of Eq. 18.
    """

    m: int
    kappa: float
    potential: Callable[[np.ndarray], np.ndarray] = field(default=gaussian_bump)
    direction: tuple[float, float] = (1.0, 0.0)

    def __post_init__(self) -> None:
        if self.m < 4:
            raise ValueError(f"grid side must be >= 4, got {self.m}")
        if self.kappa <= 0:
            raise ValueError("kappa must be positive")
        self.points = uniform_grid(self.m)
        self.h = 1.0 / self.m
        self.b = np.asarray(self.potential(self.points), dtype=float)
        self.kernel = HelmholtzKernelMatrix(self.points, self.h, self.kappa, b=self.b)
        self.matvec = FFTMatVec(self.kernel, self.m)

    @property
    def n(self) -> int:
        return self.m * self.m

    @classmethod
    def increasing_frequency(cls, m: int, points_per_wavelength: float = 32.0) -> "ScatteringProblem":
        """Table V setup: ``kappa = pi sqrt(N) / 16`` keeps 32 points/wavelength."""
        kappa = 2.0 * np.pi * m / points_per_wavelength
        return cls(m, kappa)

    # ------------------------------------------------------------------
    def rhs(self) -> np.ndarray:
        """Symmetrized right-hand side ``-kappa^2 sqrt(b) u_in`` (Eq. 18)."""
        uin = plane_wave(self.points, self.kappa, self.direction)
        return -(self.kappa**2) * np.sqrt(self.b) * uin

    default_rhs = rhs

    # random_rhs (complex uniform, matching the kernel dtype) comes
    # from ProblemBase

    def factor(self, opts: SRSOptions | None = None) -> SRSFactorization:
        return srs_factor(self.kernel, opts=opts or SRSOptions())

    def relres(self, x: np.ndarray, b: np.ndarray) -> float:
        return self.matvec.residual_norm(x, b)

    def pgmres(self, fact, b: np.ndarray, *, tol: float = 1e-12, maxiter: int = 500) -> GMRESResult:
        """Preconditioned GMRES to 1e-12 (Tables IV/V ``nit``).

        Thin shim over ``repro.solve(self, b, method="pgmres")`` reusing
        ``fact`` as the cached factorization.
        """
        from repro.api import SolveConfig, solve

        cfg = SolveConfig(method="pgmres", tol=tol, restart=50, maxiter=maxiter)
        return solve(self, b, cfg, factorization=fact).krylov

    def unpreconditioned_gmres(
        self, b: np.ndarray, *, tol: float = 1e-12, restart: int = 20, maxiter: int = 10_000
    ) -> GMRESResult:
        """Table V baseline ``~nit``: GMRES(20) without a preconditioner."""
        return gmres(self.matvec, b, tol=tol, restart=restart, maxiter=maxiter)

    # ------------------------------------------------------------------
    def sigma_from_mu(self, mu: np.ndarray) -> np.ndarray:
        """Undo the symmetrizing change of variables."""
        return np.sqrt(self.b) * mu

    def total_field(self, mu: np.ndarray) -> np.ndarray:
        """Total field ``u = u_in + Integral K sigma`` on the grid (Fig. 7b).

        The convolution with the free-space kernel is evaluated with the
        same FFT embedding used for the system matvec; the singular cell
        is integrated exactly.
        """
        sigma = self.sigma_from_mu(mu)
        uin = plane_wave(self.points, self.kappa, self.direction)
        # volume potential: sum_j h^2 g(x_i - x_j) sigma_j + self-cell term
        conv = _volume_potential(self.m, self.h, self.kappa, sigma)
        return uin + conv

    def field_magnitude_grid(self, mu: np.ndarray) -> np.ndarray:
        """``|u|`` reshaped to the grid (row-major ``(i, j)``), for plotting."""
        return np.abs(self.total_field(mu)).reshape(self.m, self.m)

    def potential_grid(self) -> np.ndarray:
        """The scattering potential on the grid (Fig. 7a)."""
        return self.b.reshape(self.m, self.m)


def _volume_potential(m: int, h: float, kappa: float, density: np.ndarray) -> np.ndarray:
    """``Integral K(|x - y|) density(y) dy`` on the grid via FFT convolution."""
    offs = np.arange(2 * m)
    offs = np.where(offs < m, offs, offs - 2 * m).astype(float) * h
    ox, oy = np.meshgrid(offs, offs, indexing="ij")
    pts = np.column_stack([ox.ravel(), oy.ravel()])
    with np.errstate(divide="ignore", invalid="ignore"):
        table = helmholtz_greens(pts, np.zeros((1, 2)), kappa)[:, 0].reshape(2 * m, 2 * m)
    table *= h * h
    table[0, 0] = hankel_cell_self_integral(kappa, h)
    table[~np.isfinite(table)] = 0.0
    ghat = np.fft.fft2(table)
    pad = np.zeros((2 * m, 2 * m), dtype=complex)
    pad[:m, :m] = density.reshape(m, m)
    out = np.fft.ifft2(np.fft.fft2(pad) * ghat)[:m, :m]
    return out.ravel()
