"""Application problem setups from the paper's evaluation (Sec. V)."""

from repro.apps.laplace_volume import LaplaceVolumeProblem
from repro.apps.scattering import ScatteringProblem, plane_wave

__all__ = ["LaplaceVolumeProblem", "ScatteringProblem", "plane_wave"]
