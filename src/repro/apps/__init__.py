"""Application problem setups: the paper's volume IEs (Sec. V) plus the
boundary-integral drivers from :mod:`repro.bie`."""

from repro.apps.laplace_volume import LaplaceVolumeProblem
from repro.apps.scattering import ScatteringProblem, plane_wave
from repro.bie.solves import InteriorDirichletProblem, SoundSoftScattering

__all__ = [
    "LaplaceVolumeProblem",
    "ScatteringProblem",
    "plane_wave",
    "InteriorDirichletProblem",
    "SoundSoftScattering",
]
