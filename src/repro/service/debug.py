"""The live ``GET /debug`` dashboard — dependency-free strict XHTML.

One self-refreshing page over the service's observability surface:
request counters and cache/batcher stats, the solver-health rollup
(per-level skeleton ranks, Krylov convergence), the resource watchdog's
latest sample, the recent-request ring with per-phase spans, and the
sampling profiler's status with download links for its speedscope/
folded exports.

The markup is strict XHTML — every element closed, every dynamic value
escaped, no DOCTYPE, no script — so smoke tests validate it with
``xml.etree.ElementTree`` instead of a browser, and a browser still
renders it (plus auto-refreshes via the ``meta`` tag).
"""

from __future__ import annotations

import html
from typing import Any, Iterable, Sequence

from repro.obs import profile, trace, watchdog

#: seconds between browser auto-refreshes of the dashboard
REFRESH_S = 3

_STYLE = """
body { font-family: monospace; margin: 1.5em; background: #fafafa; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
table { border-collapse: collapse; margin: 0.4em 0; }
th, td { border: 1px solid #bbb; padding: 0.2em 0.6em; text-align: left; }
th { background: #eee; }
p.empty { color: #888; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    """Human-lean cell text: booleans as yes/no, floats trimmed."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _table(
    table_id: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    empty: str = "no data yet",
) -> str:
    body_rows = [
        "<tr>" + "".join(f"<td>{_esc(_fmt(cell))}</td>" for cell in row) + "</tr>"
        for row in rows
    ]
    if not body_rows:
        return f'<p class="empty" id="{_esc(table_id)}">{_esc(empty)}</p>'
    head = "<tr>" + "".join(f"<th>{_esc(h)}</th>" for h in headers) + "</tr>"
    return (
        f'<table id="{_esc(table_id)}"><thead>{head}</thead>'
        f"<tbody>{''.join(body_rows)}</tbody></table>"
    )


def _kv_table(table_id: str, mapping: dict[str, Any]) -> str:
    return _table(table_id, ("key", "value"), sorted(mapping.items()))


def _stats_section(stats: dict[str, Any]) -> str:
    scalars = {k: v for k, v in stats.items() if not isinstance(v, dict)}
    return "<h2>Service stats</h2>" + _kv_table("service-stats", scalars)


def _health_section(health_snap: dict[str, Any] | None) -> str:
    snap = health_snap or {"levels": [], "krylov": []}
    levels = snap.get("levels") or []
    level_keys = list(levels[0]) if levels else [
        "level", "boxes", "avg_rank", "max_rank", "avg_compression",
    ]
    krylov = snap.get("krylov") or []
    krylov_keys = list(krylov[0]) if krylov else [
        "method", "solves", "iterations", "converged", "stalls", "last_relres",
    ]
    return (
        "<h2>Solver health</h2>"
        + _table(
            "health-levels",
            level_keys,
            [[row.get(k) for k in level_keys] for row in levels],
            empty="no factorizations recorded yet",
        )
        + _table(
            "health-krylov",
            krylov_keys,
            [[row.get(k) for k in krylov_keys] for row in krylov],
            empty="no iterative solves recorded yet",
        )
    )


def _watchdog_section() -> str:
    last = watchdog.last()
    if not last:
        state = "running, no sample yet" if watchdog.running else "not running"
        return (
            "<h2>Resource watchdog</h2>"
            f'<p class="empty" id="watchdog">{_esc(state)}'
            " (enable with REPRO_OBS_WATCHDOG_MS)</p>"
        )
    pools = last.pop("pools", [])
    store_bytes = last.pop("store_bytes", {})
    leaked = last.pop("leaked", [])
    last["leaked"] = ", ".join(leaked) if leaked else "none"
    out = "<h2>Resource watchdog</h2>" + _kv_table("watchdog", last)
    if store_bytes:
        out += _table(
            "watchdog-residency",
            ("tier", "bytes"),
            sorted(store_bytes.items()),
        )
    if pools:
        keys = list(pools[0])
        out += _table(
            "watchdog-pools", keys, [[p.get(k) for k in keys] for p in pools]
        )
    return out


def _requests_section(recent: list[dict[str, Any]]) -> str:
    headers = (
        "request_id", "status", "method", "cache_hit", "batch_size",
        "duration_s", "spans",
    )
    rows = []
    for req in reversed(recent):  # newest first
        spans = req.get("spans") or []
        span_text = " ".join(
            f"{s.get('name')}={float(s.get('seconds', 0.0)):.4f}s" for s in spans
        ) or req.get("error", "-")
        rows.append([
            req.get("request_id"), req.get("status"), req.get("method"),
            req.get("cache_hit"), req.get("batch_size"),
            req.get("duration_s"), span_text,
        ])
    return "<h2>Recent requests</h2>" + _table(
        "recent-requests", headers, rows, empty="no requests yet"
    )


def _profiler_section() -> str:
    stats = profile.stats()
    info = {
        "running": stats["running"],
        "hz": stats["hz"],
        "samples": stats["samples"],
        "attributed": stats["attributed"],
    }
    tracks = stats["tracks"]
    out = (
        "<h2>Profiler</h2>"
        + _kv_table("profiler", info)
        + _table(
            "profiler-tracks",
            ("track", "samples"),
            sorted(tracks.items()),
            empty="no samples yet (enable with REPRO_OBS_PROFILE_HZ)",
        )
        + '<p><a href="/debug/profile?format=speedscope">speedscope JSON</a>'
        ' | <a href="/debug/profile?format=folded">folded stacks</a></p>'
    )
    return out


def _tracer_section() -> str:
    info = {
        "enabled": trace.enabled,
        "buffered_spans": len(trace.snapshot()),
        "max_spans": trace.max_spans() or "unbounded",
        "dropped_spans": trace.dropped_spans(),
    }
    return "<h2>Tracer</h2>" + _kv_table("tracer", info)


def render_debug(service: Any) -> str:
    """The full dashboard page for one service, as strict XHTML.

    ``service`` is a :class:`~repro.service.service.SolveService`
    (typed loosely to keep this renderer import-light).
    """
    stats = service.stats().to_dict()
    health_snap = stats.pop("health", None)
    return (
        '<html xmlns="http://www.w3.org/1999/xhtml"><head>'
        "<title>repro /debug</title>"
        f'<meta http-equiv="refresh" content="{REFRESH_S}" />'
        f"<style>{_STYLE}</style>"
        "</head><body>"
        "<h1>repro service debug</h1>"
        '<p><a href="/stats">/stats</a> | <a href="/metrics">/metrics</a>'
        ' | <a href="/healthz">/healthz</a></p>'
        + _stats_section(stats)
        + _health_section(health_snap)
        + _watchdog_section()
        + _requests_section(service.recent_requests())
        + _profiler_section()
        + _tracer_section()
        + "</body></html>"
    )
