"""Per-service metrics: cache behavior, batching, and latency.

A :class:`SolveService` owns one :class:`StatsCollector`; every request
records its outcome there, and :meth:`StatsCollector.snapshot` freezes
the counters into an immutable :class:`ServiceStats` report (the
``GET /stats`` payload of the HTTP front).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any

from repro.obs import COUNT_BUCKETS, LATENCY_BUCKETS, REGISTRY
from repro.obs.lockwatch import make_lock

#: how many latency samples back the percentile estimates (fixed memory)
RESERVOIR_SIZE = 1024

#: completed/failed requests retained for the /debug dashboard
RECENT_REQUESTS = 32


class _Reservoir:
    """Fixed-size uniform sample of a value stream (Vitter's algorithm R).

    The latency percentiles used to come from a sliding window, whose
    memory grew with the window and whose view forgot everything older
    than the last N requests. A reservoir keeps O(size) memory forever
    while remaining a uniform sample over *every* observation. The RNG
    is seeded: percentile estimates need no entropy, and a fixed seed
    keeps test runs reproducible.
    """

    __slots__ = ("_values", "_seen", "_rng", "_size")

    def __init__(self, size: int = RESERVOIR_SIZE, seed: int = 0x5EED):
        self._size = int(size)
        self._values: list[float] = []
        self._seen = 0
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self._seen += 1
        if len(self._values) < self._size:
            self._values.append(value)
            return
        j = self._rng.randrange(self._seen)
        if j < self._size:
            self._values[j] = value

    @property
    def seen(self) -> int:
        """Observations offered so far (not the retained count)."""
        return self._seen

    def values(self) -> list[float]:
        return list(self._values)


@dataclass(frozen=True)
class ServiceStats:
    """Frozen snapshot of a service's counters.

    Attributes
    ----------
    requests / completed / failed:
        Submitted, successfully finished, and errored request counts.
    cache_hits / cache_misses:
        Factorization-cache outcomes per request. A "hit" includes
        single-flight followers (requests that waited on a factor
        already in flight) — they paid latency but no compute.
    single_flight_waits:
        How many of the hits waited on an in-flight build instead of
        finding a finished entry (the thundering-herd absorption).
    factorizations:
        Builders actually executed (the expensive events).
    rejected:
        Requests refused by admission control (the pending queue was
        at ``max_pending``; HTTP clients see a structured 429).
    store_hits_shared / store_hits_disk:
        Cache misses satisfied by the resident store instead of a
        fresh factorization — attached zero-copy from another
        process's shm blocks, or loaded from a warm-start spill file.
    evictions:
        Cache entries dropped by the byte-budget LRU policy.
    bytes_resident / entries_resident:
        Current cache footprint (privately owned bytes; shm-attached
        entries are counted in ``bytes_shared`` once process-wide).
    bytes_shared:
        Bytes held in store shared-memory blocks by this process.
    batches / batched_requests:
        Coalesced block solves dispatched, and requests carried by
        them; ``mean_batch_occupancy`` is their ratio and
        ``max_batch_occupancy`` the largest single batch.
    p50_latency_s / p95_latency_s:
        Submit-to-completion latency percentiles, estimated from a
        fixed-size uniform reservoir (:data:`RESERVOIR_SIZE` samples,
        Vitter's algorithm R) over *all* completed requests — O(1)
        memory regardless of traffic (``None`` before the first
        completion).
    health:
        The process-wide solver-health rollup
        (:meth:`~repro.obs.health.HealthMonitor.snapshot`): per-level
        skeleton rank/compression aggregates and per-method Krylov
        convergence counters. ``None`` when the snapshot was taken
        without one.
    """

    requests: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    single_flight_waits: int = 0
    factorizations: int = 0
    store_hits_shared: int = 0
    store_hits_disk: int = 0
    evictions: int = 0
    bytes_resident: int = 0
    bytes_shared: int = 0
    entries_resident: int = 0
    batches: int = 0
    batched_requests: int = 0
    mean_batch_occupancy: float = 0.0
    max_batch_occupancy: int = 0
    p50_latency_s: float | None = None
    p95_latency_s: float | None = None
    health: dict[str, Any] | None = None

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over all cache lookups (0 when none)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (adds the derived ``hit_rate``)."""
        out = asdict(self)
        out["hit_rate"] = self.hit_rate
        return out


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list."""
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


class StatsCollector:
    """Thread-safe accumulator behind :class:`ServiceStats`."""

    def __init__(self) -> None:
        self._lock = make_lock("service.stats")
        self._counts = {
            "requests": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "single_flight_waits": 0,
            "factorizations": 0,
            "store_hits_shared": 0,
            "store_hits_disk": 0,
            "evictions": 0,
            "batches": 0,
            "batched_requests": 0,
        }
        self._max_batch = 0
        self._pending = 0
        self._latencies = _Reservoir()
        self._recent: deque[dict[str, Any]] = deque(maxlen=RECENT_REQUESTS)
        # every count is mirrored into the process-wide metrics registry
        # (shared across service instances; /metrics renders cumulative
        # process totals, /stats renders this instance)
        self._m_events = REGISTRY.counter(
            "repro_service_events_total",
            "Service request lifecycle events by kind",
            labelnames=("kind",),
        )
        self._m_latency = REGISTRY.histogram(
            "repro_service_request_seconds",
            "Submit-to-completion latency of service requests",
            buckets=LATENCY_BUCKETS,
        )
        self._m_occupancy = REGISTRY.histogram(
            "repro_service_batch_occupancy",
            "Requests coalesced per dispatched batch",
            buckets=COUNT_BUCKETS,
        )

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by
        self._m_events.inc(by, kind=name)

    # ------------------------------------------------------------------
    # admission control (bounded pending queue)
    # ------------------------------------------------------------------
    def admit(self, limit: int) -> bool:
        """Claim one pending slot; False when ``limit`` are in flight.

        ``limit <= 0`` disables the bound. Successful admissions must
        be balanced by :meth:`release` when the request leaves the
        system (completed, failed, or cancelled).
        """
        with self._lock:
            if limit > 0 and self._pending >= limit:
                return False
            self._pending += 1
        return True

    def release(self) -> None:
        """Return one pending slot (request finished either way)."""
        with self._lock:
            self._pending = max(0, self._pending - 1)

    @property
    def pending(self) -> int:
        """Requests currently holding an admission slot."""
        with self._lock:
            return self._pending

    def record_batch(self, occupancy: int) -> None:
        with self._lock:
            self._counts["batches"] += 1
            self._counts["batched_requests"] += occupancy
            self._max_batch = max(self._max_batch, occupancy)
        self._m_events.inc(kind="batches")
        self._m_events.inc(occupancy, kind="batched_requests")
        self._m_occupancy.observe(occupancy)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.add(float(seconds))
        self._m_latency.observe(seconds)

    def record_request(self, **info: Any) -> None:
        """Push one finished request onto the recent-requests ring.

        The ring backs the ``/debug`` dashboard's request table; it
        keeps the last :data:`RECENT_REQUESTS` entries (newest last)
        and is independent of the latency reservoir.
        """
        with self._lock:
            self._recent.append(dict(info))

    def recent_requests(self) -> list[dict[str, Any]]:
        """The retained finished requests, oldest first."""
        with self._lock:
            return list(self._recent)

    def snapshot(
        self,
        *,
        bytes_resident: int = 0,
        entries_resident: int = 0,
        evictions: int | None = None,
        bytes_shared: int = 0,
        health: dict[str, Any] | None = None,
    ) -> ServiceStats:
        with self._lock:
            counts = dict(self._counts)
            lats = sorted(self._latencies.values())
            max_batch = self._max_batch
        if evictions is not None:  # the cache counts its own evictions
            counts["evictions"] = int(evictions)
        p50 = _percentile(lats, 0.50) if lats else None
        p95 = _percentile(lats, 0.95) if lats else None
        batches = counts["batches"]
        mean_occ = counts["batched_requests"] / batches if batches else 0.0
        return ServiceStats(
            **counts,
            bytes_resident=int(bytes_resident),
            bytes_shared=int(bytes_shared),
            entries_resident=int(entries_resident),
            mean_batch_occupancy=mean_occ,
            max_batch_occupancy=max_batch,
            p50_latency_s=p50,
            p95_latency_s=p95,
            health=health,
        )
