"""Right-hand-side coalescing: many requests, one block solve.

The direct RS-S apply is a sweep over factorization records whose cost
is dominated by touching the factors, not by the rhs column count —
exactly the shape batching exploits. The :class:`RhsBatcher` groups
concurrent ``method="direct"`` requests against the same cached
factorization: the first request *opens* a batch and waits a
configurable window; requests arriving inside the window *join* (their
worker threads return immediately); the opener then drains the batch
and solves all collected right-hand sides at once, fanning results back
per request.

Two execution modes (``SolveConfig``-independent, set per service):

* ``"block"`` — one ``(N, nrhs)`` application per batch. Fastest (one
  record sweep, BLAS-3 GEMMs), but a multi-column GEMM may differ from
  a solo solve in the last floating-point bits on most BLAS builds.
* ``"strict"`` — each rhs is applied at its submitted shape inside the
  drained batch: bitwise-identical to an unbatched solve, while still
  amortizing queueing and (for distributed engines) dispatch.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Hashable

import numpy as np

from repro.obs.lockwatch import make_lock
from repro.util.config import SERVICE_BATCH_MODES

#: callback fulfilling one request: (x, batch_occupancy, t_solve_batch)
FinishFn = Callable[[np.ndarray, int, float], None]
#: callback failing one request
FailFn = Callable[[BaseException], None]


class _Batch:
    __slots__ = ("items", "closed", "full")

    def __init__(self) -> None:
        self.items: list[tuple[np.ndarray, FinishFn, FailFn]] = []
        self.closed = False
        self.full = threading.Event()


class RhsBatcher:
    """Coalesces same-factorization solves into block applications.

    Parameters
    ----------
    window:
        Seconds the batch opener waits for joiners; ``0`` disables
        coalescing (every request solves alone, immediately).
    max_batch:
        Occupancy at which a batch dispatches without waiting out the
        window.
    mode:
        ``"block"`` or ``"strict"`` (see module docstring).
    on_batch:
        Optional callback receiving each dispatched batch's occupancy.
    """

    def __init__(
        self,
        window: float,
        max_batch: int,
        *,
        mode: str = "block",
        on_batch: Callable[[int], None] | None = None,
    ):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if mode not in SERVICE_BATCH_MODES:
            raise ValueError(
                f"mode must be one of {'/'.join(SERVICE_BATCH_MODES)}, got {mode!r}"
            )
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.mode = mode
        self._on_batch = on_batch
        self._lock = make_lock("service.batcher")
        self._open: dict[Hashable, _Batch] = {}

    def submit(
        self,
        key: Hashable,
        fact: Any,
        b: np.ndarray,
        finish: FinishFn,
        fail: FailFn,
    ) -> None:
        """Route one rhs into the open batch for ``key`` (or open one).

        The caller thread either returns immediately (joined an open
        batch; the opener will fulfil ``finish``) or becomes the opener:
        it blocks for up to ``window`` seconds, then executes the whole
        batch. ``key`` must uniquely identify the factorization
        *instance* (include ``id(fact)``), so a rebuilt entry never
        joins a batch opened on its predecessor.
        """
        b = np.asarray(b)
        if self.window <= 0 or self.max_batch == 1:
            # coalescing disabled: solve immediately, never publish a
            # batch a concurrent submitter could join (window=0 must
            # guarantee solo-solve results)
            self._execute(fact, [(b, finish, fail)])
            return
        with self._lock:
            batch = self._open.get(key)
            if batch is not None and not batch.closed:
                batch.items.append((b, finish, fail))
                if len(batch.items) >= self.max_batch:
                    batch.closed = True
                    batch.full.set()
                return
            batch = _Batch()
            batch.items.append((b, finish, fail))
            self._open[key] = batch
        # opener: give joiners the window, then drain and execute
        batch.full.wait(self.window)
        with self._lock:
            batch.closed = True
            if self._open.get(key) is batch:
                del self._open[key]
            items = list(batch.items)
        self._execute(fact, items)

    # ------------------------------------------------------------------
    def _execute(self, fact: Any, items: list[tuple[np.ndarray, FinishFn, FailFn]]) -> None:
        if self._on_batch is not None:
            self._on_batch(len(items))
        try:
            if self.mode == "strict" or len(items) == 1:
                # per-request applies: time each one, so every report's
                # t_solve is its own apply cost, not the whole loop's
                xs, t_solves = [], []
                for b, _fin, _fail in items:
                    t0 = time.perf_counter()
                    xs.append(fact.solve(b))
                    t_solves.append(time.perf_counter() - t0)
            else:
                t0 = time.perf_counter()
                xs = self._block_solve(fact, [b for b, _fin, _fail in items])
                # one indivisible block apply: every member reports it
                t_solves = [time.perf_counter() - t0] * len(items)
        except BaseException as exc:
            for _b, _finish, fail in items:
                fail(exc)
            return
        size = len(items)
        for (_b, finish, fail), x, t_solve in zip(items, xs, t_solves):
            try:
                finish(x, size, t_solve)
            except BaseException as exc:
                # a broken per-request callback must not strand the
                # rest of the batch; route it to that request's fail
                fail(exc)

    @staticmethod
    def _block_solve(fact: Any, bs: list[np.ndarray]) -> list[np.ndarray]:
        """One ``(N, nrhs)`` apply, split back to the submitted shapes."""
        n = bs[0].shape[0]
        cols = [b.reshape(n, -1) for b in bs]
        block = np.concatenate(cols, axis=1)
        X = fact.solve(block)
        out: list[np.ndarray] = []
        offset = 0
        for b, c in zip(bs, cols):
            width = c.shape[1]
            piece = X[:, offset : offset + width]
            out.append(piece[:, 0] if b.ndim == 1 else piece)
            offset += width
        return out
