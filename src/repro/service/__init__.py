"""Serving subsystem: amortize factorizations across concurrent callers.

The paper's core economic argument (Sec. I-A) — an expensive one-time
factorization buys arbitrarily many cheap solves — is the shape of a
*serving* workload: many users, few distinct operators, streams of
right-hand sides. This package turns the facade into that system:

* :class:`~repro.service.service.SolveService` — thread-safe request
  front (``submit`` futures / blocking ``solve`` / asyncio ``asolve``).
* :class:`~repro.service.cache.FactorizationCache` — fingerprint-keyed,
  single-flight, LRU-with-byte-budget factorization sharing; pins the
  rank pools behind process-execution entries.
* :class:`~repro.service.batcher.RhsBatcher` — coalesces concurrent
  direct solves against one factorization into block applies.
* :class:`~repro.service.stats.ServiceStats` — hit rate, batch
  occupancy, latency percentiles, resident bytes.
* :mod:`repro.service.http` — a stdlib JSON endpoint over a service
  (see ``examples/serve.py``).

Quickstart::

    import repro
    from repro.service import SolveService

    prob = repro.LaplaceVolumeProblem(m=64)
    with SolveService() as service:
        futures = [service.submit(prob, prob.random_rhs(i)) for i in range(64)]
        xs = [f.result().x for f in futures]     # one factorization total
        print(service.stats().hit_rate)          # ~63/64
"""

from repro.service.batcher import RhsBatcher
from repro.service.cache import CacheLookup, FactorizationCache
from repro.service.service import (
    ServiceConfig,
    ServiceOverloadedError,
    SolveService,
)
from repro.service.stats import ServiceStats, StatsCollector

__all__ = [
    "SolveService",
    "ServiceConfig",
    "ServiceOverloadedError",
    "FactorizationCache",
    "CacheLookup",
    "RhsBatcher",
    "ServiceStats",
    "StatsCollector",
]
