"""Fingerprint-keyed factorization cache with single-flight builds.

The economics the paper leans on — factor once, solve cheaply many
times — only pay off across *callers* if the expensive product is
shared. This cache maps ``(problem fingerprint, strategy setup key)``
to the built :class:`~repro.api.strategies.Factorization`:

* **single-flight**: N concurrent requests for an unfactored operator
  trigger exactly one build; the other N-1 block on an event until the
  leader finishes (or propagate its failure).
* **LRU with a byte budget**: entries are charged their
  ``memory_bytes()``; inserting past the budget evicts the least
  recently used finished entries. A single entry larger than the whole
  budget stays resident until displaced (the budget is a high-water
  mark, not a per-entry cap).
* **pool pinning**: a cached factorization produced by the process
  execution engine keeps its :class:`~repro.vmpi.pool.RankPool` pinned,
  so the pool registry's idle LRU never tears down the rank processes
  backing a resident entry; eviction unpins, letting the pool retire
  normally.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, NamedTuple

from repro.obs import REGISTRY
from repro.obs.lockwatch import make_lock

_EVICTIONS = REGISTRY.counter(
    "repro_service_cache_evictions_total",
    "Factorizations dropped by the cache LRU byte-budget policy",
)


def _backend_pool(fact: Any):
    """The RankPool backing a factorization, or ``None``."""
    return getattr(getattr(fact, "backend", None), "pool", None)


class _Entry:
    """One cache slot: a finished factorization or an in-flight build."""

    __slots__ = (
        "key", "event", "fact", "error", "nbytes", "build_seconds",
        "pinned_pool", "charge", "store_tier",
    )

    def __init__(self, key: Hashable):
        self.key = key
        self.event = threading.Event()
        self.fact: Any = None
        self.error: BaseException | None = None
        self.nbytes = 0
        self.build_seconds = 0.0
        #: the exact RankPool pinned at insert time (unpinned on evict —
        #: fact.backend.pool may point at a *replacement* pool by then)
        self.pinned_pool: Any = None
        #: bytes charged against the LRU budget. Equals ``nbytes`` for
        #: privately owned entries; 0 for shm-attached store entries,
        #: whose blocks are counted once process-wide by the store's
        #: ``repro_store_shared_bytes`` gauge instead of once per cache
        self.charge = 0
        #: which store tier satisfied the miss ("shared"/"disk"), or
        #: ``None`` for a locally built entry
        self.store_tier: str | None = None

    @property
    def ready(self) -> bool:
        return self.event.is_set() and self.error is None


class CacheLookup(NamedTuple):
    """What :meth:`FactorizationCache.get_or_build` reports back."""

    fact: Any
    hit: bool            #: the build was already done or in flight
    waited: bool         #: hit, but on an in-flight build (single-flight)
    build_seconds: float  #: wall seconds of the build this entry cost (0 on hit)
    nbytes: int = 0      #: the entry's memory_bytes(), computed once at insert
    store_tier: str | None = None  #: store tier a miss was served from, if any


class FactorizationCache:
    """LRU byte-budget cache of strategy setup products.

    Parameters
    ----------
    max_bytes:
        Eviction high-water mark for the summed ``memory_bytes()`` of
        resident entries.
    on_evict:
        Optional callback invoked (outside the cache lock) with each
        evicted factorization.
    store:
        Optional :class:`~repro.store.FactorizationStore` behind the
        cache: misses consult its shared/disk tiers (and cross-process
        single-flight) before factoring; evicted and shutdown-time
        entries spill to it; shm-attached entries charge 0 against the
        byte budget.
    """

    def __init__(
        self,
        max_bytes: int,
        *,
        on_evict: Callable[[Any], None] | None = None,
        store: Any = None,
    ):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._on_evict = on_evict
        #: optional :class:`~repro.store.FactorizationStore`: misses
        #: consult it before building, evicted/shutdown entries spill to
        #: it. All store calls happen outside the cache lock.
        self._store = store
        self._lock = make_lock("service.cache")
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self.evictions = 0
        self._closed = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def bytes_resident(self) -> int:
        """Bytes this process privately owns for finished entries.

        Shm-attached store entries charge 0 here — their blocks are
        counted once process-wide by ``repro_store_shared_bytes``, not
        once per cache that mapped them.
        """
        with self._lock:
            return sum(e.charge for e in self._entries.values() if e.ready)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key)
        return entry is not None and entry.ready

    # ------------------------------------------------------------------
    # the single-flight lookup
    # ------------------------------------------------------------------
    def get_or_build(
        self, key: Hashable, builder: Callable[[], Any], *, timeout: float | None = None
    ) -> CacheLookup:
        """Return the cached factorization for ``key``, building it once.

        Exactly one caller per key runs ``builder``; concurrent callers
        block until it finishes and share the product. A failed build
        raises in every waiter and leaves no entry behind (the next
        request retries).
        """
        with self._lock:
            entry = self._entries.get(key)
            leader = entry is None
            if leader:
                entry = _Entry(key)
                self._entries[key] = entry
            else:
                self._entries.move_to_end(key)
            waited = not leader and not entry.event.is_set()

        if not leader:
            if not entry.event.wait(timeout):
                raise TimeoutError(f"factorization build for {key!r} timed out")
            if entry.error is not None:
                raise entry.error
            return CacheLookup(entry.fact, True, waited, 0.0, entry.nbytes, entry.store_tier)

        try:
            t0 = time.perf_counter()
            if self._store is None:
                fact, tier = builder(), None
            else:
                # the store consults the shared/disk tiers and extends
                # single-flight across processes; called outside the
                # cache lock (it can factor, publish, or poll a peer)
                fact, tier = self._store.fetch_or_build(key, builder)
            entry.build_seconds = time.perf_counter() - t0
        except BaseException as exc:
            entry.error = exc
            with self._lock:
                # failed builds are not cached; followers see the error,
                # later requests start a fresh flight
                self._entries.pop(key, None)
            entry.event.set()
            raise
        entry.fact = fact
        entry.store_tier = tier
        entry.nbytes = (
            int(fact.memory_bytes()) if hasattr(fact, "memory_bytes") else 0
        )
        # an shm-attached entry's arrays live in store-owned shared
        # blocks: charge them to the budget once process-wide (the
        # store's gauge), not once per cache
        entry.charge = 0 if tier == "shared" else entry.nbytes
        pool = _backend_pool(fact)
        if pool is not None:
            # best-effort warmth: the pin lands after the build, so a
            # registry LRU eviction racing the build can still shut the
            # pool down first — that costs one respawn on the next
            # solve (the pins die with the discarded pool object, so
            # nothing leaks), it never costs correctness
            pool.pin()
            entry.pinned_pool = pool
        entry.event.set()
        with self._lock:
            # a build finishing after close() must not stay resident:
            # nothing would ever unpin its pool or drop the entry
            orphaned = self._closed and self._entries.get(key) is entry
            if orphaned:
                del self._entries[key]
        if orphaned:
            self._release(entry)
        else:
            self._enforce_budget(keep=key)
        return CacheLookup(fact, False, False, entry.build_seconds, entry.nbytes, tier)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _enforce_budget(self, *, keep: Hashable | None = None) -> None:
        """Evict LRU finished entries until the budget holds."""
        evicted: list[_Entry] = []
        with self._lock:
            def resident() -> int:
                return sum(e.charge for e in self._entries.values() if e.ready)

            while resident() > self.max_bytes:
                victim_key = next(
                    (
                        k
                        for k, e in self._entries.items()
                        if e.ready and k != keep
                    ),
                    None,
                )
                if victim_key is None:
                    break  # only in-flight entries or the newcomer left
                evicted.append(self._entries.pop(victim_key))
                self.evictions += 1
                _EVICTIONS.inc()
        for entry in evicted:
            self._release(entry)

    def evict(self, key: Hashable) -> bool:
        """Explicitly drop one finished entry; True when it existed."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not entry.ready:
                return False
            del self._entries[key]
            self.evictions += 1
            _EVICTIONS.inc()
        self._release(entry)
        return True

    def clear(self) -> None:
        """Drop every finished entry (in-flight builds complete unseen)."""
        with self._lock:
            finished = [k for k, e in self._entries.items() if e.ready]
            evicted = [self._entries.pop(k) for k in finished]
        for entry in evicted:
            self._release(entry)

    def close(self) -> None:
        """Clear the cache and release any build that finishes later.

        After closing, entries are still buildable (callers already in
        flight complete normally) but are released immediately instead
        of becoming resident — so a factorization finishing after the
        owning service shut down cannot pin its rank pool forever.
        """
        with self._lock:
            self._closed = True
        self.clear()

    def _release(self, entry: _Entry) -> None:
        """Free an evicted entry: spill, invalidate, unpin, callback.

        Order matters: (1) spill to the store's disk tier while the
        arrays are certainly alive (skipped when the entry was *loaded*
        from disk — the file is already there); (2) invalidate the
        worker-resident shards so rank workers stop holding memory for
        an entry the parent no longer serves; (3) unpin the rank pool;
        (4) drop this process's hold on the shared shm entry (the last
        live holder unlinks, leaving /dev/shm as found).

        ``entry.fact`` is deliberately left in place: a concurrent
        reader that found the entry ready before the eviction still
        returns it safely; the arrays are freed once the last such
        reader drops its reference (the cache itself no longer holds
        the entry).
        """
        fact = entry.fact
        if self._store is not None and fact is not None and entry.store_tier != "disk":
            self._store.spill(entry.key, fact)
        handle = getattr(fact, "resident", None)
        if handle is not None and hasattr(handle, "drop"):
            handle.drop()
        pool, entry.pinned_pool = entry.pinned_pool, None
        if pool is not None:
            pool.unpin()
        if self._store is not None:
            self._store.release(entry.key)
        if self._on_evict is not None and fact is not None:
            self._on_evict(fact)
