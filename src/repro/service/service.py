"""The serving front door: concurrent solves over the facade.

A :class:`SolveService` turns ``repro.solve`` into a long-lived,
thread-safe server: requests enter through :meth:`SolveService.submit`
(futures), :meth:`SolveService.solve` (blocking), or
:meth:`SolveService.asolve` (asyncio); factorizations are amortized
across *all* callers through a fingerprint-keyed
:class:`~repro.service.cache.FactorizationCache` (single-flight, LRU
byte budget), and concurrent direct solves against the same
factorization coalesce into block applies through the
:class:`~repro.service.batcher.RhsBatcher`. Every response is the same
:class:`~repro.api.report.SolveReport` the facade returns, annotated
with serving metadata (``cache_hit``, ``batch_size``, ``t_queue``).

    service = repro.service.SolveService()
    futures = [service.submit(prob, prob.random_rhs(i)) for i in range(64)]
    reports = [f.result() for f in futures]     # one factorization total
    print(service.stats().hit_rate)
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import SolveConfig
from repro.api.facade import _make_config, _parallel_extras
from repro.api.facade import solve as facade_solve
from repro.api.fingerprint import problem_fingerprint
from repro.api.problem import check_problem
from repro.api.report import SolveReport
from repro.api.strategies import resolve_execution, resolve_strategy
from repro.obs import REGISTRY, health, log_event, trace, watchdog
from repro.service.batcher import RhsBatcher
from repro.service.cache import FactorizationCache
from repro.service.stats import ServiceStats, StatsCollector
from repro.store import FactorizationStore
from repro.util.config import (
    obs_watchdog_s,
    service_batch_max,
    service_batch_mode,
    service_batch_window_s,
    service_cache_bytes,
    service_max_pending,
    service_workers,
    store_dir,
)

_REJECTED = REGISTRY.counter(
    "repro_service_rejected_total",
    "Requests refused by admission control (pending queue at max_pending)",
)


class ServiceOverloadedError(RuntimeError):
    """The pending-request queue is full; retry later (HTTP 429)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs; defaults come from the ``REPRO_SERVICE_*`` env.

    Attributes
    ----------
    cache_bytes:
        Factorization-cache byte budget (``REPRO_SERVICE_CACHE_BYTES``).
    batch_window:
        Seconds a batch opener waits for joiners
        (``REPRO_SERVICE_BATCH_WINDOW_MS``; 0 disables coalescing).
    batch_max:
        Occupancy at which a batch dispatches early
        (``REPRO_SERVICE_BATCH_MAX``).
    batch_mode:
        ``"block"`` (fast BLAS-3 block applies) or ``"strict"``
        (bitwise-identical to unbatched solves); see
        :mod:`repro.service.batcher` (``REPRO_SERVICE_BATCH_MODE``).
    workers:
        Solver threads (``REPRO_SERVICE_WORKERS``).
    max_pending:
        Admission-control bound on requests in flight
        (``REPRO_SERVICE_MAX_PENDING``; 0 disables). Submissions past
        the bound raise :class:`ServiceOverloadedError` (HTTP 429).
    store_dir:
        Root of the resident store's shared/disk tiers
        (``REPRO_STORE_DIR``; ``None`` leaves them off).
    """

    cache_bytes: int = field(default_factory=service_cache_bytes)
    batch_window: float = field(default_factory=service_batch_window_s)
    batch_max: int = field(default_factory=service_batch_max)
    batch_mode: str = field(default_factory=service_batch_mode)
    workers: int = field(default_factory=service_workers)
    max_pending: int = field(default_factory=service_max_pending)
    store_dir: str | None = field(default_factory=store_dir)

    def __post_init__(self) -> None:
        if self.cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {self.max_pending}")


class _Request:
    __slots__ = (
        "problem", "b", "config", "future", "t_submit", "request_id", "admitted",
    )

    def __init__(self, problem, b, config: SolveConfig, request_id: str | None = None):
        self.problem = problem
        self.b = b
        self.config = config
        self.future: Future = Future()
        self.t_submit = time.perf_counter()
        self.request_id = request_id or uuid.uuid4().hex[:12]
        #: holds an admission slot until completion/failure/cancellation
        self.admitted = True


class SolveService:
    """Concurrent solve server over the unified facade.

    Thread-safe; one instance is meant to outlive many requests (the
    whole point is amortizing factorizations across them). Use as a
    context manager or call :meth:`close` to release the worker threads
    and the cached factorizations (which unpins their rank pools).
    """

    def __init__(self, config: ServiceConfig | None = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            from dataclasses import replace

            config = replace(config, **overrides)
        self.config = config
        self._stats = StatsCollector()
        self._store = (
            FactorizationStore(config.store_dir) if config.store_dir else None
        )
        self._cache = FactorizationCache(config.cache_bytes, store=self._store)
        self._batcher = RhsBatcher(
            config.batch_window,
            config.batch_max,
            mode=config.batch_mode,
            on_batch=self._stats.record_batch,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-service"
        )
        self._closed = threading.Event()
        # opt-in resource watchdog (REPRO_OBS_WATCHDOG_MS): feed this
        # service's cache/store residency into the watchdog's per-tier
        # gauges and make sure the sampler thread is running. Only the
        # instance that actually started the watchdog stops it on close.
        self._watchdog_source: str | None = None
        self._watchdog_started = False
        if obs_watchdog_s() > 0:
            self._watchdog_source = f"service-{uuid.uuid4().hex[:8]}"
            watchdog.add_residency_source(self._watchdog_source, self._residency)
            self._watchdog_started = watchdog.start(obs_watchdog_s())

    # ------------------------------------------------------------------
    # request entry points
    # ------------------------------------------------------------------
    def submit(
        self,
        problem,
        b: np.ndarray | None = None,
        config: SolveConfig | None = None,
        request_id: str | None = None,
        **overrides,
    ) -> "Future[SolveReport]":
        """Enqueue one solve; returns a future resolving to its report.

        Validation (unknown problem/method/execution, incompatible
        problem) raises here, synchronously; numerical failures surface
        through the future. ``request_id`` (defaulting to a fresh hex
        id) is stamped on the report and every log line of this request.
        """
        if self._closed.is_set():
            raise RuntimeError("SolveService is closed")
        cfg = _make_config(config, overrides)
        check_problem(problem)
        strategy = resolve_strategy(cfg.method)
        strategy.check_execution(cfg)
        strategy.check_compatible(problem, cfg)
        if not self._stats.admit(self.config.max_pending):
            self._stats.incr("rejected")
            _REJECTED.inc()
            raise ServiceOverloadedError(
                f"pending queue full ({self.config.max_pending} requests in flight)"
            )
        req = _Request(problem, b, cfg, request_id)
        self._stats.incr("requests")
        self._executor.submit(self._process, req)
        return req.future

    def solve(
        self,
        problem,
        b: np.ndarray | None = None,
        config: SolveConfig | None = None,
        **overrides,
    ) -> SolveReport:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(problem, b, config, **overrides).result()

    async def asolve(
        self,
        problem,
        b: np.ndarray | None = None,
        config: SolveConfig | None = None,
        **overrides,
    ) -> SolveReport:
        """Asyncio front: awaitable form of :meth:`submit`.

        The solve still runs on the service's worker threads; the event
        loop is never blocked (submission itself is cheap validation).
        """
        import asyncio

        return await asyncio.wrap_future(self.submit(problem, b, config, **overrides))

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Snapshot of the serving metrics."""
        return self._stats.snapshot(
            bytes_resident=self._cache.bytes_resident,
            entries_resident=len(self._cache),
            evictions=self._cache.evictions,
            bytes_shared=self._store.shared_bytes() if self._store else 0,
            health=health.snapshot(),
        )

    def recent_requests(self) -> list[dict]:
        """The last few completed/failed requests (dashboard feed)."""
        return self._stats.recent_requests()

    def _residency(self) -> dict[str, int]:
        """``{tier: bytes}`` for the watchdog's store-residency gauges."""
        tiers = {"cache": int(self._cache.bytes_resident)}
        if self._store is not None:
            tiers.update(self._store.residency())
        return tiers

    @property
    def cache(self) -> FactorizationCache:
        """The factorization cache (introspection/tests)."""
        return self._cache

    @property
    def store(self) -> FactorizationStore | None:
        """The resident store behind the cache, if tiers 2/3 are on."""
        return self._store

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests, drain workers, drop the cache."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._watchdog_source is not None:
            watchdog.remove_residency_source(self._watchdog_source)
            self._watchdog_source = None
        if self._watchdog_started:
            watchdog.stop()
            self._watchdog_started = False
        self._executor.shutdown(wait=wait)
        self._cache.close()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the worker path
    # ------------------------------------------------------------------
    def _release_slot(self, req: _Request) -> None:
        """Return the request's admission slot (idempotent)."""
        if req.admitted:
            req.admitted = False
            self._stats.release()

    def _process(self, req: _Request) -> None:
        if not req.future.set_running_or_notify_cancel():
            self._release_slot(req)
            return
        try:
            self._process_inner(req)
        except BaseException as exc:
            self._fail(req, exc)

    def _process_inner(self, req: _Request) -> None:
        problem, cfg = req.problem, req.config
        b = problem.default_rhs() if req.b is None else np.asarray(req.b)
        if b.shape[0] != problem.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {problem.n}")

        # note on span scope: for a batched direct solve this request's
        # span covers its worker-thread occupancy (submit -> joined or
        # dispatched); the solve itself runs on the batch opener's
        # thread, and its timing is stamped into report.spans instead
        with trace.span(
            "service.request", request_id=req.request_id, method=cfg.method
        ):
            strategy = resolve_strategy(cfg.method)
            key = (problem_fingerprint(problem), strategy.setup_key(cfg))
            with trace.span("service.factor", cached="?") as fspan:
                lookup = self._cache.get_or_build(
                    key, lambda: strategy.setup(problem, cfg)
                )
                fspan.set(cached=lookup.hit, waited=lookup.waited)
            if lookup.hit:
                self._stats.incr("cache_hits")
                if lookup.waited:
                    self._stats.incr("single_flight_waits")
            else:
                self._stats.incr("cache_misses")
                if lookup.store_tier == "shared":
                    self._stats.incr("store_hits_shared")
                elif lookup.store_tier == "disk":
                    self._stats.incr("store_hits_disk")
                else:
                    self._stats.incr("factorizations")
            fact = lookup.fact
            t_queue = time.perf_counter() - req.t_submit

            if cfg.method == "direct":
                execution = resolve_execution(cfg.execution)

                def finish(x: np.ndarray, size: int, t_solve: float) -> None:
                    # the solve started t_solve ago: queue time spans
                    # submission -> solve start, so it includes the batch
                    # window this request waited out (and, for a cache-miss
                    # leader, the factorization build — reported separately
                    # as t_setup)
                    t_queue = time.perf_counter() - t_solve - req.t_submit
                    report = SolveReport(
                        x=x,
                        method=cfg.method,
                        execution=execution,
                        problem=problem,
                        rhs=b,
                        iterations=0,
                        converged=True,
                        t_setup=lookup.build_seconds,
                        t_solve=t_solve,
                        # computed once at cache insert, not per request
                        memory_bytes=lookup.nbytes or None,
                        config=cfg,
                        factorization=fact,
                        cache_hit=lookup.hit,
                        batch_size=size,
                        t_queue=t_queue,
                        **_parallel_extras(fact),
                    )
                    self._finish(req, report)

                # id(fact) keys the batch to this factorization *instance*:
                # an evicted-and-rebuilt entry never joins a stale batch,
                # and grouping by rhs dtype keeps block stacking exact
                with trace.span("service.solve", batched=True):
                    self._batcher.submit(
                        (key, id(fact), str(b.dtype), b.shape[0]),
                        fact,
                        b,
                        finish,
                        lambda exc: self._fail(req, exc),
                    )
                return

            with trace.span("service.solve", batched=False):
                report = facade_solve(problem, b, cfg, factorization=fact)
            report.t_setup = lookup.build_seconds
            report.cache_hit = lookup.hit
            report.t_queue = t_queue
            self._finish(req, report)

    def _finish(self, req: _Request, report: SolveReport) -> None:
        self._release_slot(req)
        report.request_id = req.request_id
        # the queue -> factor -> solve pipeline of this one request, in
        # wall seconds, from quantities measured where each phase ran
        # (the solve may have executed on another request's opener
        # thread); queue excludes the factor build it waited on
        report.spans = [
            {"name": "queue", "seconds": max((report.t_queue or 0.0) - report.t_setup, 0.0)},
            {"name": "factor", "seconds": report.t_setup},
            {"name": "solve", "seconds": report.t_solve},
        ]
        self._stats.incr("completed")
        duration = time.perf_counter() - req.t_submit
        self._stats.record_latency(duration)
        self._stats.record_request(
            request_id=req.request_id,
            status="ok",
            method=report.method,
            cache_hit=bool(report.cache_hit),
            batch_size=report.batch_size,
            duration_s=duration,
            spans=[dict(s) for s in report.spans],
        )
        req.future.set_result(report)
        log_event(
            "solve",
            request_id=req.request_id,
            status="ok",
            method=report.method,
            execution=report.execution,
            fingerprint=problem_fingerprint(req.problem),
            cache_hit=report.cache_hit,
            batch_size=report.batch_size,
            t_queue=report.t_queue,
            t_setup=report.t_setup,
            t_solve=report.t_solve,
            duration=duration,
        )

    def _fail(self, req: _Request, exc: BaseException) -> None:
        self._release_slot(req)
        self._stats.incr("failed")
        duration = time.perf_counter() - req.t_submit
        self._stats.record_request(
            request_id=req.request_id,
            status="error",
            method=req.config.method,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=duration,
        )
        log_event(
            "solve",
            request_id=req.request_id,
            status="error",
            method=req.config.method,
            error=f"{type(exc).__name__}: {exc}",
            duration=duration,
        )
        if not req.future.done():
            req.future.set_exception(exc)
