"""Stdlib JSON endpoint over a :class:`~repro.service.SolveService`.

No third-party web framework: a :class:`ThreadingHTTPServer` whose
handler translates JSON requests into service submissions. Each HTTP
connection runs on its own thread, so concurrent clients exercise the
cache's single-flight and the rhs batcher exactly like in-process
callers.

Routes
------
``POST /solve``
    Body::

        {
          "problem": {"type": "laplace_volume", "m": 64},
          "rhs": {"seed": 3},                  # or {"values": [...]},
                                               # {"re": [...], "im": [...]},
                                               # or omitted (default_rhs)
          "method": "direct",                  # + tol/maxiter/restart/
          "execution": "sequential",           #   ranks/operator/srs {...}
          "return_x": false,                   # ship the solution vector
          "relres": true                       # evaluate the true residual
        }

    Response: ``{"report": SolveReport.to_dict(), "request_id": ..., "x": ...?}``.
``GET /stats``
    The service's :class:`~repro.service.stats.ServiceStats` as JSON.
``GET /metrics``
    The process-wide metrics registry in Prometheus text exposition
    format 0.0.4 (cache residency gauges are refreshed per scrape).
``GET /healthz``
    ``{"ok": true}`` — liveness probe.
``GET /debug``
    Live observability dashboard (strict-XHTML, auto-refreshing):
    service stats, solver health, watchdog readings, recent requests,
    profiler status. See :mod:`repro.service.debug`.
``GET /debug/profile?format=speedscope|folded``
    The process profiler's current sample table as speedscope JSON or
    folded-stack text (empty until ``REPRO_OBS_PROFILE_HZ`` or a manual
    ``profile.start()`` collects samples).

Every response carries an ``X-Request-Id`` header (client-supplied
``request_id`` body field, or a fresh hex id); errors are structured as
``{"error": ..., "code": ..., "request_id": ...}`` with ``code`` one of
``bad_json`` / ``unknown_field`` / ``bad_field`` / ``not_found`` /
``overloaded`` / ``solver_error`` / ``internal``, plus a ``field`` key
when a specific body field is at fault. ``overloaded`` arrives with
status 429 when admission control (``REPRO_SERVICE_MAX_PENDING``)
refuses the request; back off and retry.

Problem specs are built through a registry (:data:`PROBLEM_TYPES`) and
cached (LRU) by their canonical JSON, so repeated requests for the same
operator reuse one problem object — and therefore one memoized
fingerprint and one cached factorization.
"""

from __future__ import annotations

import json
import uuid
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.api.config import SolveConfig
from repro.core.options import SRSOptions
from repro.obs import REGISTRY, log_event, profile, render_prometheus
from repro.obs.lockwatch import make_lock
from repro.service.debug import render_debug
from repro.service.service import ServiceOverloadedError, SolveService

#: most distinct problem objects kept alive by one server
PROBLEM_CACHE_SIZE = 32

#: SolveConfig fields settable through the request body
_CONFIG_KEYS = ("method", "execution", "ranks", "tol", "maxiter", "restart", "operator")

#: every key a /solve body may carry; anything else is rejected with
#: an ``unknown_field`` error naming the offender
_ALLOWED_KEYS = frozenset(
    _CONFIG_KEYS + ("problem", "rhs", "srs", "return_x", "relres", "request_id")
)

_CACHE_BYTES = REGISTRY.gauge(
    "repro_service_cache_bytes", "Bytes resident in the factorization cache"
)
_CACHE_ENTRIES = REGISTRY.gauge(
    "repro_service_cache_entries", "Entries resident in the factorization cache"
)


class RequestError(ValueError):
    """A client-shaped failure with a structured error code.

    Raised by body validation; carries the machine-readable ``code``
    (and the offending ``field``, when one is identifiable) that the
    HTTP front serializes into the error payload.
    """

    def __init__(self, message: str, *, code: str = "bad_field", field: str | None = None):
        super().__init__(message)
        self.code = code
        self.field = field


def _build_curve(spec: dict):
    from repro.bie.curves import Circle, Ellipse, Kite, StarCurve

    kinds: dict[str, Callable] = {
        "circle": lambda s: Circle(radius=float(s.get("radius", 1.0))),
        "ellipse": lambda s: Ellipse(a=float(s.get("a", 1.0)), b=float(s.get("b", 0.5))),
        "star": lambda s: StarCurve(
            radius=float(s.get("radius", 1.0)),
            amplitude=float(s.get("amplitude", 0.3)),
            arms=int(s.get("arms", 5)),
        ),
        "kite": lambda s: Kite(scale=float(s.get("scale", 1.0))),
    }
    kind = spec.get("type", "circle")
    if kind not in kinds:
        raise ValueError(f"unknown curve type {kind!r}; expected one of {sorted(kinds)}")
    return kinds[kind](spec)


def _laplace_volume(spec: dict):
    from repro.apps.laplace_volume import LaplaceVolumeProblem

    return LaplaceVolumeProblem(m=int(spec["m"]))


def _scattering(spec: dict):
    from repro.apps.scattering import ScatteringProblem

    return ScatteringProblem(int(spec["m"]), float(spec["kappa"]))


def _interior_dirichlet(spec: dict):
    from repro.bie.solves import InteriorDirichletProblem

    return InteriorDirichletProblem(_build_curve(spec.get("curve", {})), int(spec["n"]))


def _sound_soft(spec: dict):
    from repro.bie.solves import SoundSoftScattering

    return SoundSoftScattering(
        _build_curve(spec.get("curve", {})), int(spec["n"]), float(spec["kappa"])
    )


#: JSON problem-spec builders; register new workloads here
PROBLEM_TYPES: dict[str, Callable[[dict], object]] = {
    "laplace_volume": _laplace_volume,
    "scattering": _scattering,
    "interior_dirichlet": _interior_dirichlet,
    "sound_soft": _sound_soft,
}


def build_problem(spec: dict):
    """Instantiate the problem named by a JSON spec (no caching)."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise ValueError('problem spec must be an object with a "type" field')
    kind = spec["type"]
    if kind not in PROBLEM_TYPES:
        raise ValueError(
            f"unknown problem type {kind!r}; expected one of {sorted(PROBLEM_TYPES)}"
        )
    return PROBLEM_TYPES[kind](spec)


def _decode_rhs(problem, spec) -> np.ndarray | None:
    if spec is None:
        return None
    if isinstance(spec, list):
        return np.asarray(spec, dtype=float)
    if not isinstance(spec, dict):
        raise ValueError("rhs must be a list, an object, or omitted")
    if "values" in spec:
        return np.asarray(spec["values"], dtype=float)
    if "re" in spec:
        re = np.asarray(spec["re"], dtype=float)
        im = np.asarray(spec.get("im", np.zeros_like(re)), dtype=float)
        return re + 1j * im
    if "seed" in spec:
        return problem.random_rhs(int(spec["seed"]), nrhs=int(spec.get("nrhs", 1)))
    raise ValueError('rhs object must carry "values", "re"/"im", or "seed"')


def _encode_x(x: np.ndarray):
    if np.iscomplexobj(x):
        return {"re": x.real.tolist(), "im": x.imag.tolist()}
    return x.tolist()


def _decode_config(body: dict) -> SolveConfig:
    overrides = {k: body[k] for k in _CONFIG_KEYS if k in body}
    if "srs" in body:
        if not isinstance(body["srs"], dict):
            raise RequestError("srs must be an object of SRSOptions fields", field="srs")
        overrides["srs"] = SRSOptions(**body["srs"])
    return SolveConfig(**overrides)


def _checked(field: str, fn):
    """Run one body-field decoder, tagging failures with the field name."""
    try:
        return fn()
    except RequestError:
        raise
    except (ValueError, TypeError, KeyError) as exc:
        raise RequestError(f"{field}: {exc}", field=field) from exc


def _parse_body(raw: bytes) -> dict:
    """Decode and shape-check a /solve body (JSON object, known keys)."""
    try:
        body = json.loads(raw or b"{}")
    except json.JSONDecodeError as exc:
        raise RequestError(f"request body is not valid JSON: {exc}", code="bad_json")
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object", code="bad_json")
    unknown = sorted(set(body) - _ALLOWED_KEYS)
    if unknown:
        raise RequestError(
            f"unknown field {unknown[0]!r}; allowed fields: {sorted(_ALLOWED_KEYS)}",
            code="unknown_field",
            field=unknown[0],
        )
    return body


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SolveService`."""

    daemon_threads = True

    def __init__(self, address, service: SolveService):
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self._problems: "OrderedDict[str, object]" = OrderedDict()
        self._problems_lock = make_lock("service.http.problems")

    def problem_for(self, spec: dict):
        """The (cached) problem object for a canonicalized JSON spec."""
        key = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        with self._problems_lock:
            prob = self._problems.get(key)
            if prob is not None:
                self._problems.move_to_end(key)
                return prob
        prob = build_problem(spec)
        with self._problems_lock:
            self._problems[key] = prob
            while len(self._problems) > PROBLEM_CACHE_SIZE:
                self._problems.popitem(last=False)
        return prob


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Translates the JSON wire format to service calls."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # quiet by default; flip for debugging
    def log_message(self, fmt, *args):  # noqa: D102 - stdlib signature
        pass

    def _reply_raw(self, status: int, body: bytes, content_type: str, request_id: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, status: int, payload: dict, request_id: str) -> None:
        self._reply_raw(
            status, json.dumps(payload).encode(), "application/json", request_id
        )

    def _reply_error(
        self,
        status: int,
        message: str,
        code: str,
        request_id: str,
        field: str | None = None,
    ) -> None:
        payload = {"error": message, "code": code, "request_id": request_id}
        if field is not None:
            payload["field"] = field
        log_event(
            "http_reject",
            request_id=request_id,
            status=status,
            code=code,
            field=field,
            error=message,
        )
        self._reply(status, payload, request_id)

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        request_id = uuid.uuid4().hex[:12]
        parsed = urlparse(self.path)
        path = parsed.path
        if path == "/healthz":
            self._reply(200, {"ok": True}, request_id)
        elif path == "/stats":
            self._reply(200, self.server.service.stats().to_dict(), request_id)
        elif path == "/debug":
            self._reply_raw(
                200,
                render_debug(self.server.service).encode(),
                "text/html; charset=utf-8",
                request_id,
            )
        elif path == "/debug/profile":
            fmt = parse_qs(parsed.query).get("format", ["speedscope"])[0]
            if fmt == "speedscope":
                self._reply_raw(
                    200,
                    json.dumps(profile.speedscope()).encode(),
                    "application/json",
                    request_id,
                )
            elif fmt == "folded":
                self._reply_raw(
                    200,
                    profile.folded().encode(),
                    "text/plain; charset=utf-8",
                    request_id,
                )
            else:
                self._reply_error(
                    400,
                    f"unknown profile format {fmt!r}; expected speedscope or folded",
                    "bad_field",
                    request_id,
                    "format",
                )
        elif path == "/metrics":
            # residency gauges are point-in-time; refresh them per scrape
            stats = self.server.service.stats()
            _CACHE_BYTES.set(stats.bytes_resident)
            _CACHE_ENTRIES.set(stats.entries_resident)
            self._reply_raw(
                200,
                render_prometheus().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
                request_id,
            )
        else:
            self._reply_error(404, f"unknown path {path}", "not_found", request_id)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        request_id = uuid.uuid4().hex[:12]
        if self.path != "/solve":
            self._reply_error(404, f"unknown path {self.path}", "not_found", request_id)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = _parse_body(self.rfile.read(length))
            rid = body.get("request_id")
            if rid is not None:
                if not isinstance(rid, str) or not rid:
                    raise RequestError(
                        "request_id must be a non-empty string", field="request_id"
                    )
                request_id = rid
            problem = _checked(
                "problem", lambda: self.server.problem_for(body.get("problem", {}))
            )
            rhs = _checked("rhs", lambda: _decode_rhs(problem, body.get("rhs")))
            config = _checked("config", lambda: _decode_config(body))
        except RequestError as exc:
            self._reply_error(400, str(exc), exc.code, request_id, exc.field)
            return
        try:
            report = self.server.service.solve(
                problem, rhs, config, request_id=request_id
            )
        except ServiceOverloadedError as exc:
            # admission control refused the request; a structured 429
            # tells well-behaved clients to back off and retry
            self._reply_error(429, str(exc), "overloaded", request_id)
            return
        except (ValueError, TypeError) as exc:
            # request-shaped failures (bad rhs length, method/problem
            # incompatibility) are the client's fault
            self._reply_error(
                400, f"{type(exc).__name__}: {exc}", "solver_error", request_id
            )
            return
        except Exception as exc:  # noqa: BLE001 - wire boundary
            self._reply_error(
                500, f"{type(exc).__name__}: {exc}", "internal", request_id
            )
            return
        payload = {
            "request_id": request_id,
            "report": report.to_dict(include_relres=bool(body.get("relres", True))),
        }
        if body.get("return_x", False):
            payload["x"] = _encode_x(report.x)
        self._reply(200, payload, request_id)


def make_server(
    service: SolveService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind (but do not start) the JSON endpoint; port 0 picks a free one."""
    return ServiceHTTPServer((host, port), service)


def serve_forever(service: SolveService, host: str = "127.0.0.1", port: int = 8000) -> None:
    """Blocking convenience runner (Ctrl-C to stop)."""
    with make_server(service, host, port) as server:
        server.serve_forever()
