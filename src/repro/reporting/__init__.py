"""Paper-style table/figure output for the benchmark harness."""

from repro.reporting.tables import Table, format_seconds, format_sci
from repro.reporting.figures import ScalingSeries, ascii_loglog, write_pgm

__all__ = [
    "Table",
    "format_seconds",
    "format_sci",
    "ScalingSeries",
    "ascii_loglog",
    "write_pgm",
]
