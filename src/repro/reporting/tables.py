"""Minimal fixed-width table printer matching the paper's row layout."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_seconds(t: float) -> str:
    """Compact seconds formatting (3 significant-ish digits)."""
    if t == 0:
        return "0"
    if t >= 100:
        return f"{t:.0f}"
    if t >= 1:
        return f"{t:.2f}"
    return f"{t:.3f}"


def format_sci(x: float) -> str:
    """Paper-style ``1.11e-4`` scientific formatting."""
    return f"{x:.2e}"


@dataclass
class Table:
    """Accumulates rows and prints a fixed-width table."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[j]), *(len(r[j]) for r in self.rows)) if self.rows else len(self.columns[j])
            for j in range(len(self.columns))
        ]
        lines = [self.title, "-" * (sum(widths) + 3 * len(widths))]
        lines.append(" | ".join(c.rjust(w) for c, w in zip(self.columns, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for r in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n", flush=True)
