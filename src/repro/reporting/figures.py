"""Figure substitutes: scaling series, ASCII log-log plots, PGM images.

The environment has no plotting stack, so figures are regenerated as
(a) the underlying data series printed in tabular form, (b) a quick
ASCII log-log rendering for visual shape checks, and (c) grayscale PGM
images for the field plots of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ScalingSeries:
    """One curve of a scaling figure: time vs number of processes."""

    label: str
    p_values: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    def add(self, p: int, t: float) -> None:
        self.p_values.append(p)
        self.times.append(t)

    def speedups(self) -> list[float]:
        if not self.times:
            return []
        t0 = self.times[0] * self.p_values[0]
        return [t0 / (t * 1.0) for t in self.times]

    def parallel_efficiency(self) -> list[float]:
        """Speedup / ideal-speedup relative to the first point."""
        if not self.times:
            return []
        p0, t0 = self.p_values[0], self.times[0]
        return [(t0 * p0) / (t * p) for p, t in zip(self.p_values, self.times)]


def ascii_loglog(
    series: list[ScalingSeries],
    *,
    width: int = 60,
    height: int = 18,
    xlabel: str = "processes",
    ylabel: str = "time (s)",
) -> str:
    """Rough ASCII log-log plot of several scaling curves."""
    pts = [
        (p, t, i)
        for i, s in enumerate(series)
        for p, t in zip(s.p_values, s.times)
        if p > 0 and t > 0
    ]
    if not pts:
        return "(no data)"
    lx = np.log10([p for p, _t, _i in pts])
    ly = np.log10([t for _p, t, _i in pts])
    x0, x1 = lx.min(), lx.max() or 1e-9
    y0, y1 = ly.min(), ly.max()
    x1 = x1 if x1 > x0 else x0 + 1
    y1 = y1 if y1 > y0 else y0 + 1
    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for (p, t, i), gx, gy in zip(pts, lx, ly):
        cx = int((gx - x0) / (x1 - x0) * (width - 1))
        cy = int((gy - y0) / (y1 - y0) * (height - 1))
        canvas[height - 1 - cy][cx] = markers[i % len(markers)]
    lines = ["".join(row) for row in canvas]
    legend = "  ".join(f"{markers[i % len(markers)]}={s.label}" for i, s in enumerate(series))
    return "\n".join(lines + [f"x: log10 {xlabel}, y: log10 {ylabel}", legend])


def write_pgm(path: str, image: np.ndarray) -> None:
    """Write a 2D array as an 8-bit grayscale PGM (no deps needed)."""
    img = np.asarray(image, dtype=float)
    if img.ndim != 2:
        raise ValueError(f"expected a 2D image, got shape {img.shape}")
    lo, hi = float(img.min()), float(img.max())
    scale = 255.0 / (hi - lo) if hi > lo else 0.0
    data = ((img - lo) * scale).astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5 {img.shape[1]} {img.shape[0]} 255\n".encode())
        fh.write(data.tobytes())
