"""Square computational domains.

The paper restricts itself to planar problems on a square domain
(Omega = [0,1]^2 in the experiments); the quadtree in
:mod:`repro.tree` subdivides a :class:`Square` recursively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Square:
    """An axis-aligned square ``[x0, x0+size] x [y0, y0+size]``."""

    x0: float = 0.0
    y0: float = 0.0
    size: float = 1.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.size) or self.size <= 0:
            raise ValueError(f"square size must be positive, got {self.size}")

    @property
    def center(self) -> np.ndarray:
        return np.array([self.x0 + 0.5 * self.size, self.y0 + 0.5 * self.size])

    def contains(self, points: np.ndarray, *, tol: float = 0.0) -> np.ndarray:
        """Boolean mask of points inside the (closed) square."""
        pts = np.atleast_2d(points)
        lo_x, lo_y = self.x0 - tol, self.y0 - tol
        hi_x, hi_y = self.x0 + self.size + tol, self.y0 + self.size + tol
        return (
            (pts[:, 0] >= lo_x)
            & (pts[:, 0] <= hi_x)
            & (pts[:, 1] >= lo_y)
            & (pts[:, 1] <= hi_y)
        )

    @classmethod
    def bounding(cls, points: np.ndarray, *, pad: float = 1e-12) -> "Square":
        """Smallest padded square containing all points."""
        pts = np.atleast_2d(points)
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        size = float(max(hi[0] - lo[0], hi[1] - lo[1]))
        size = max(size, pad) * (1.0 + pad)
        return cls(float(lo[0]), float(lo[1]), size)

    def subdivide(self) -> list["Square"]:
        """The four child quadrants, ordered (SW, SE, NW, NE)."""
        h = 0.5 * self.size
        return [
            Square(self.x0, self.y0, h),
            Square(self.x0 + h, self.y0, h),
            Square(self.x0, self.y0 + h, h),
            Square(self.x0 + h, self.y0 + h, h),
        ]
