"""Planar geometry: domains, point sets, and Morton ordering."""

from repro.geometry.domain import Square
from repro.geometry.points import (
    uniform_grid,
    random_points,
    clustered_points,
    annulus_points,
)
from repro.geometry.morton import morton_encode, morton_decode, morton_argsort

__all__ = [
    "Square",
    "uniform_grid",
    "random_points",
    "clustered_points",
    "annulus_points",
    "morton_encode",
    "morton_decode",
    "morton_argsort",
]
