"""Point-set generators for discretized integral equations.

``uniform_grid`` reproduces the paper's collocation setup: a
``sqrt(N) x sqrt(N)`` grid of cell centers on the unit square with
spacing ``h = 1/sqrt(N)``. The other generators exercise the adaptive
tree and the kernel code on non-uniform clouds.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.domain import Square


def uniform_grid(m: int, *, domain: Square | None = None) -> np.ndarray:
    """Cell-centered ``m x m`` collocation grid (N = m^2 points).

    Point ``(i, j)`` sits at ``((i + 1/2) h, (j + 1/2) h)`` with
    ``h = size / m``; ordering is row-major in ``j`` then ``i`` —
    i.e. index ``k = i * m + j`` maps to ``x = (i+1/2)h, y = (j+1/2)h``.
    """
    if m <= 0:
        raise ValueError(f"grid side must be positive, got {m}")
    dom = domain or Square()
    h = dom.size / m
    t = (np.arange(m) + 0.5) * h
    xx, yy = np.meshgrid(t + dom.x0, t + dom.y0, indexing="ij")
    return np.column_stack([xx.ravel(), yy.ravel()])


def grid_spacing(m: int, *, domain: Square | None = None) -> float:
    """Spacing ``h`` of :func:`uniform_grid`."""
    dom = domain or Square()
    return dom.size / m


def random_points(n: int, *, domain: Square | None = None, seed: int = 0) -> np.ndarray:
    """``n`` i.i.d. uniform points in the domain."""
    dom = domain or Square()
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * dom.size
    pts[:, 0] += dom.x0
    pts[:, 1] += dom.y0
    return pts


def clustered_points(
    n: int,
    *,
    n_clusters: int = 4,
    spread: float = 0.05,
    domain: Square | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian clusters clipped to the domain (non-uniform stress test)."""
    dom = domain or Square()
    rng = np.random.default_rng(seed)
    lo = np.array([dom.x0, dom.y0])
    hi = lo + dom.size
    centers = lo + (0.1 + 0.8 * rng.random((n_clusters, 2))) * dom.size
    which = rng.integers(0, n_clusters, size=n)
    pts = centers[which] + rng.normal(scale=spread * dom.size, size=(n, 2))
    eps = 1e-9 * dom.size
    return np.clip(pts, lo + eps, hi - eps)


def annulus_points(n: int, *, r_inner: float = 0.25, r_outer: float = 0.45, seed: int = 0) -> np.ndarray:
    """Points on an annulus centered in the unit square (curve-like cloud)."""
    rng = np.random.default_rng(seed)
    theta = rng.random(n) * 2 * np.pi
    # sample radius with correct area weighting
    u = rng.random(n)
    r = np.sqrt(r_inner**2 + u * (r_outer**2 - r_inner**2))
    return np.column_stack([0.5 + r * np.cos(theta), 0.5 + r * np.sin(theta)])
