"""Morton (Z-order) codes for 2D grid coordinates.

Used to order boxes within a tree level so that spatially nearby boxes
receive nearby linear indices — the traversal order of the factorization
and the block partition across ranks both respect quadtree locality.
"""

from __future__ import annotations

import numpy as np

_MAX_BITS = 24  # supports grids up to 2^24 per side


def morton_encode(ix: np.ndarray | int, iy: np.ndarray | int) -> np.ndarray | int:
    """Interleave the bits of ``ix`` (even positions) and ``iy`` (odd)."""
    scalar = np.isscalar(ix) and np.isscalar(iy)
    x = np.asarray(ix, dtype=np.uint64)
    y = np.asarray(iy, dtype=np.uint64)
    if np.any(x >> _MAX_BITS) or np.any(y >> _MAX_BITS):
        raise ValueError(f"coordinates exceed {_MAX_BITS} bits")
    code = np.zeros_like(x, dtype=np.uint64)
    for b in range(_MAX_BITS):
        bit = np.uint64(1) << np.uint64(b)
        code |= ((x & bit) << np.uint64(b)) | ((y & bit) << np.uint64(b + 1))
    if scalar:
        return int(code)
    return code


def morton_decode(code: np.ndarray | int) -> tuple:
    """Inverse of :func:`morton_encode`; returns ``(ix, iy)``."""
    scalar = np.isscalar(code)
    c = np.asarray(code, dtype=np.uint64)
    ix = np.zeros_like(c, dtype=np.uint64)
    iy = np.zeros_like(c, dtype=np.uint64)
    for b in range(_MAX_BITS):
        ix |= ((c >> np.uint64(2 * b)) & np.uint64(1)) << np.uint64(b)
        iy |= ((c >> np.uint64(2 * b + 1)) & np.uint64(1)) << np.uint64(b)
    if scalar:
        return int(ix), int(iy)
    return ix.astype(np.int64), iy.astype(np.int64)


def morton_argsort(ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
    """Permutation ordering grid coordinates along the Z-curve."""
    return np.argsort(morton_encode(np.asarray(ix), np.asarray(iy)), kind="stable")
