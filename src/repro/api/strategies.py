"""Solver strategies and the method registry behind ``repro.solve``.

A *strategy* is one named way of turning ``(problem, rhs)`` into a
solution: it builds a setup object satisfying the
:class:`Factorization` protocol (``solve(b)`` + ``memory_bytes()``) and
then runs the solve — one inverse application for the direct methods, a
preconditioned Krylov refinement for the iterative ones. The built-in
factorization engines already satisfy the protocol
(:class:`~repro.core.factorization.SRSFactorization`,
:class:`~repro.parallel.driver.ParallelFactorization`,
:class:`~repro.baselines.block_jacobi.BlockJacobiPreconditioner`);
:class:`DenseLUFactorization` adapts scipy's pivoted LU.

Registering a strategy class (``@register_strategy``) makes its
``name`` a valid :attr:`SolveConfig.method`, so new backends plug into
every workload, example, and benchmark that drives the facade.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, NamedTuple, Protocol, runtime_checkable

import numpy as np
import scipy.linalg

from repro.api.config import EXECUTIONS, SolveConfig
from repro.baselines.block_jacobi import BlockJacobiPreconditioner
from repro.core.factorization import srs_factor
from repro.iterative.cg import cg
from repro.iterative.gmres import gmres
from repro.kernels.base import dense_matrix
from repro.matvec.dense import DenseMatVec
from repro.matvec.treecode import TreecodeMatVec

#: default simulated rank count for parallel execution
DEFAULT_RANKS = 4


@runtime_checkable
class Factorization(Protocol):
    """Common protocol of every strategy's setup product."""

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply the (approximate) inverse to one or more rhs columns."""
        ...

    def memory_bytes(self) -> int:
        """Bytes held by the stored factors."""
        ...


class StrategyResult(NamedTuple):
    """What a strategy's ``run`` hands back to the facade."""

    x: np.ndarray
    iterations: int
    converged: bool
    krylov: Any | None


# ----------------------------------------------------------------------
# execution resolution
# ----------------------------------------------------------------------
def resolve_execution(execution: str) -> str:
    """Map a config execution to a concrete mode.

    ``"auto"`` resolves to ``"thread"`` or ``"process"`` by the
    usable-core budget — CPU affinity where available, so restricted
    cpusets count as the single-core boxes they effectively are (the
    same policy as ``REPRO_VMPI_BACKEND=auto``); other names pass
    through after validation.
    """
    if execution == "auto":
        from repro.vmpi.backend import auto_backend_name

        return auto_backend_name()
    if execution not in EXECUTIONS:
        raise ValueError(
            f"unknown execution {execution!r}; expected one of {', '.join(EXECUTIONS)}"
        )
    return execution


def build_factorization(problem, config: SolveConfig):
    """RS-S factorization of the problem on the configured engine."""
    execution = resolve_execution(config.execution)
    if execution == "sequential":
        return srs_factor(problem.kernel, tree=problem.factor_tree, opts=config.srs)
    if execution == "shared":
        from repro.parallel.shared import shared_memory_factor

        nthreads = DEFAULT_RANKS if config.ranks is None else config.ranks
        return shared_memory_factor(
            problem.kernel, nthreads, opts=config.srs, tree=problem.factor_tree
        )
    from repro.parallel.driver import parallel_srs_factor

    p = DEFAULT_RANKS if config.ranks is None else config.ranks
    return parallel_srs_factor(
        problem.kernel,
        p,
        opts=config.srs,
        domain=problem.parallel_domain,
        backend=execution,
    )


def _srs_setup_key(config: SolveConfig) -> tuple:
    """Setup key shared by every strategy whose setup is the RS-S engine.

    The sequential, shared-memory, and distributed engines produce
    numerically interchangeable factorizations, but they are distinct
    setup *products* (different timing/counter semantics), so the
    resolved execution and rank count stay in the key. ``ranks`` is
    normalized to the default it would resolve to. Every
    :class:`~repro.core.options.SRSOptions` field enters the key —
    enumerated via ``dataclasses.fields`` so options added later are
    never silently shared across cache entries.
    """
    from dataclasses import fields

    execution = resolve_execution(config.execution)
    ranks = None
    if execution != "sequential":
        ranks = DEFAULT_RANKS if config.ranks is None else int(config.ranks)
    srs_key = tuple(
        (f.name, getattr(config.srs, f.name)) for f in fields(config.srs)
    )
    # factor_mode="auto" aliases env-dependent behavior, so the
    # *resolved* sweep mode joins the key: flipping REPRO_FACTOR_MODE
    # between solves must never reuse the other mode's factorization
    return ("srs", execution, ranks, config.srs.resolved_factor_mode(), srs_key)


def get_operator(
    problem, config: SolveConfig, override: Callable | None = None
) -> Callable[[np.ndarray], np.ndarray]:
    """Forward matvec for the iterative strategies."""
    if override is not None:
        return override
    if config.operator == "auto":
        return problem.operator()
    if config.operator == "dense":
        return DenseMatVec(problem.kernel)
    return TreecodeMatVec(
        problem.kernel, tree=problem.factor_tree, leaf_size=config.srs.leaf_size
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type["SolverStrategy"]] = {}


def register_strategy(cls: type["SolverStrategy"]) -> type["SolverStrategy"]:
    """Class decorator: make ``cls.name`` a valid solve method."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"{cls.__name__} must define a string 'name'")
    _REGISTRY[name] = cls
    return cls


def available_methods() -> list[str]:
    """Sorted names of every registered solve method."""
    return sorted(_REGISTRY)


def validate_method(name: str) -> None:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown solve method {name!r}; registered methods: "
            f"{', '.join(available_methods())}"
        )


def resolve_strategy(name: str) -> "SolverStrategy":
    """Instantiate the registered strategy for ``name`` (clear error if none)."""
    validate_method(name)
    return _REGISTRY[name]()


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
class SolverStrategy(ABC):
    """One named way of solving a :class:`~repro.api.problem.Problem`."""

    #: registry key, also :attr:`SolveConfig.method`
    name: str
    #: whether the strategy honors parallel execution modes
    supports_parallel = False
    #: strategies sharing a family produce interchangeable ``setup``
    #: products (``None``: the setup is private to this method)
    setup_family: str | None = None

    def setup_key(self, config: SolveConfig) -> tuple:
        """Hashable description of everything ``setup`` reads off the config.

        Used (with the problem fingerprint) as the factorization-cache
        key by :mod:`repro.service`: two configs with equal setup keys
        may share one cached setup product. Refinement-only fields
        (``tol``/``maxiter``/``restart``/``operator``) must stay out.
        """
        return (self.setup_family or self.name,)

    def check_execution(self, config: SolveConfig) -> None:
        """Reject execution modes the strategy cannot honor."""
        if resolve_execution(config.execution) != "sequential" and not self.supports_parallel:
            raise ValueError(
                f"method {self.name!r} only supports execution='sequential' "
                f"(got {config.execution!r})"
            )

    def check_compatible(self, problem, config: SolveConfig) -> None:
        """Reject incompatible problems *before* any expensive setup."""

    @abstractmethod
    def setup(self, problem, config: SolveConfig) -> Factorization:
        """Build the reusable factorization/preconditioner."""

    @abstractmethod
    def run(
        self,
        problem,
        b: np.ndarray,
        fact: Factorization,
        config: SolveConfig,
        operator: Callable | None = None,
    ) -> StrategyResult:
        """Produce the solution from the setup product."""


@register_strategy
class DirectStrategy(SolverStrategy):
    """One application of the RS-S compressed inverse (paper Sec. II-F)."""

    name = "direct"
    supports_parallel = True
    setup_family = "srs"

    def setup_key(self, config: SolveConfig) -> tuple:
        return _srs_setup_key(config)

    def setup(self, problem, config: SolveConfig) -> Factorization:
        return build_factorization(problem, config)

    def run(self, problem, b, fact, config, operator=None) -> StrategyResult:
        return StrategyResult(fact.solve(b), 0, True, None)


class IdentityPreconditioner:
    """Setup product of the unpreconditioned Krylov strategies: ``M = I``."""

    def solve(self, b: np.ndarray) -> np.ndarray:
        return np.array(b, copy=True)

    __call__ = solve

    def memory_bytes(self) -> int:
        return 0


@register_strategy
class CGStrategy(SolverStrategy):
    """Unpreconditioned CG baseline (the paper's ``nit_cg`` columns)."""

    name = "cg"
    setup_family = "identity"

    def check_compatible(self, problem, config: SolveConfig) -> None:
        if not getattr(problem, "is_symmetric", False):
            raise ValueError(
                f"method 'cg' requires a symmetric problem; "
                f"{type(problem).__name__} is not — use method='gmres'"
            )

    def setup(self, problem, config: SolveConfig) -> Factorization:
        return IdentityPreconditioner()

    def run(self, problem, b, fact, config, operator=None) -> StrategyResult:
        res = cg(
            get_operator(problem, config, operator),
            b,
            tol=config.tol,
            maxiter=config.maxiter,
        )
        return StrategyResult(res.x, res.iterations, res.converged, res)


@register_strategy
class GMRESStrategy(SolverStrategy):
    """Unpreconditioned restarted GMRES baseline (Table V's comparison)."""

    name = "gmres"
    setup_family = "identity"

    def setup(self, problem, config: SolveConfig) -> Factorization:
        return IdentityPreconditioner()

    def run(self, problem, b, fact, config, operator=None) -> StrategyResult:
        res = gmres(
            get_operator(problem, config, operator),
            b,
            tol=config.tol,
            restart=config.restart,
            maxiter=config.maxiter,
        )
        return StrategyResult(res.x, res.iterations, res.converged, res)


@register_strategy
class PCGStrategy(SolverStrategy):
    """RS-S-preconditioned CG to ``config.tol`` (symmetric problems)."""

    name = "pcg"
    supports_parallel = True
    setup_family = "srs"

    def setup_key(self, config: SolveConfig) -> tuple:
        return _srs_setup_key(config)

    def check_compatible(self, problem, config: SolveConfig) -> None:
        if not getattr(problem, "is_symmetric", False):
            raise ValueError(
                f"method 'pcg' requires a symmetric problem; "
                f"{type(problem).__name__} is not — use method='pgmres'"
            )

    def setup(self, problem, config: SolveConfig) -> Factorization:
        return build_factorization(problem, config)

    def run(self, problem, b, fact, config, operator=None) -> StrategyResult:
        res = cg(
            get_operator(problem, config, operator),
            b,
            preconditioner=fact.solve,
            tol=config.tol,
            maxiter=config.maxiter,
        )
        return StrategyResult(res.x, res.iterations, res.converged, res)


@register_strategy
class PGMRESStrategy(SolverStrategy):
    """RS-S right-preconditioned restarted GMRES to ``config.tol``."""

    name = "pgmres"
    supports_parallel = True
    setup_family = "srs"

    def setup_key(self, config: SolveConfig) -> tuple:
        return _srs_setup_key(config)

    def setup(self, problem, config: SolveConfig) -> Factorization:
        return build_factorization(problem, config)

    def run(self, problem, b, fact, config, operator=None) -> StrategyResult:
        res = gmres(
            get_operator(problem, config, operator),
            b,
            preconditioner=fact.solve,
            tol=config.tol,
            restart=config.restart,
            maxiter=config.maxiter,
        )
        return StrategyResult(res.x, res.iterations, res.converged, res)


class DenseLUFactorization:
    """Pivoted LU of the assembled dense matrix, behind the protocol."""

    def __init__(self, kernel):
        self.n = kernel.n
        self._lu = scipy.linalg.lu_factor(dense_matrix(kernel))

    def solve(self, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b)
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        return scipy.linalg.lu_solve(self._lu, b)

    __call__ = solve

    def memory_bytes(self) -> int:
        lu, piv = self._lu
        return int(lu.nbytes + piv.nbytes)


@register_strategy
class DenseLUStrategy(SolverStrategy):
    """O(N^3) dense reference solve (small problems only)."""

    name = "dense_lu"

    def setup(self, problem, config: SolveConfig) -> Factorization:
        return DenseLUFactorization(problem.kernel)

    def run(self, problem, b, fact, config, operator=None) -> StrategyResult:
        return StrategyResult(fact.solve(b), 0, True, None)


@register_strategy
class BlockJacobiStrategy(SolverStrategy):
    """Leaf-block-diagonal preconditioner + Krylov (ablation baseline)."""

    name = "block_jacobi"

    def setup_key(self, config: SolveConfig) -> tuple:
        return (self.name, config.srs.leaf_size)

    def setup(self, problem, config: SolveConfig) -> Factorization:
        return BlockJacobiPreconditioner(
            problem.kernel,
            leaf_size=config.srs.leaf_size,
            tree=problem.factor_tree,
        )

    def run(self, problem, b, fact, config, operator=None) -> StrategyResult:
        op = get_operator(problem, config, operator)
        if getattr(problem, "is_symmetric", False):
            res = cg(
                op, b, preconditioner=fact.solve, tol=config.tol, maxiter=config.maxiter
            )
        else:
            res = gmres(
                op,
                b,
                preconditioner=fact.solve,
                tol=config.tol,
                restart=config.restart,
                maxiter=config.maxiter,
            )
        return StrategyResult(res.x, res.iterations, res.converged, res)
