"""Stable content fingerprints of problems, kernels, and configs.

The serving layer (:mod:`repro.service`) amortizes factorizations
across callers, so it needs an equality notion stronger than object
identity: two requests naming *the same operator* must map to the same
cache key, and any perturbation of the geometry or the kernel
parameters must map elsewhere. The fingerprint is a content hash of
everything that defines the system matrix:

* the kernel class and dtype,
* the point coordinates,
* the diagonal and the row/column weights (which carry ``h``, variable
  coefficients, identity shifts, quadrature corrections, ...),
* any per-point auxiliary data the kernel communicates to remote ranks,
* a deterministic probe block of assembled entries — this catches
  scalar parameters that touch *only* the off-diagonal Green's function
  (e.g. a Gaussian bandwidth leaves the diagonal and weights alone).

Fingerprints are hex digests (BLAKE2b-128): stable across processes and
platforms for identical inputs, cheap (O(N) hashing plus one small
probe block), and safe to use as dictionary keys or URL components.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

#: side of the probe block hashed from every kernel (min(n, this))
PROBE_SIDE = 48


def _update_scalar(h, value: Any) -> None:
    h.update(repr(value).encode())
    h.update(b"\x00")


def _update_array(h, arr: np.ndarray) -> None:
    a = np.ascontiguousarray(arr)
    _update_scalar(h, (str(a.dtype), a.shape))
    h.update(a.tobytes())


def _new_hash():
    return hashlib.blake2b(digest_size=16)


def fingerprint_kernel(kernel, *, probes: int = PROBE_SIDE) -> str:
    """Content hash of a :class:`~repro.kernels.base.KernelMatrix`.

    Equal-valued kernels (same class, same points, same parameters)
    hash identically; perturbing any point, weight, or kernel scalar
    changes the digest.
    """
    h = _new_hash()
    _update_scalar(h, type(kernel).__qualname__)
    _update_scalar(h, str(np.dtype(kernel.dtype)))
    _update_array(h, kernel.points)
    idx = np.arange(kernel.n, dtype=np.int64)
    _update_array(h, kernel.diagonal())
    _update_array(h, kernel.row_weights(idx))
    _update_array(h, kernel.col_weights(idx))
    per_point = kernel.per_point_data(idx)
    for name in sorted(per_point):
        _update_scalar(h, name)
        _update_array(h, per_point[name])
    # probe block: a deterministic subset of assembled entries, so
    # parameters invisible to the diagonal/weights still reach the hash
    k = min(int(probes), kernel.n)
    if k > 0:
        pid = np.unique(np.linspace(0, kernel.n - 1, k).astype(np.int64))
        _update_array(h, kernel.block(pid, pid))
    return h.hexdigest()


def _square_signature(domain) -> tuple:
    """Hashable geometry of a :class:`~repro.geometry.domain.Square`."""
    if domain is None:
        return ()
    return tuple(
        float(getattr(domain, name))
        for name in ("x0", "y0", "size")
        if hasattr(domain, name)
    )


def _tree_signature(tree) -> tuple:
    """Hashable geometry of a quadtree (depth + root square + N)."""
    if tree is None:
        return ()
    return (int(tree.nlevels), int(tree.N), _square_signature(getattr(tree, "domain", None)))


def fingerprint_problem(problem) -> str:
    """Content hash of a :class:`~repro.api.problem.Problem`.

    Hashes the problem class, the kernel fingerprint, the factorization
    tree geometry, and the parallel root domain — everything a solver
    strategy's ``setup`` reads. Two independently built problems over
    identical geometry/kernel parameters hash identically.
    """
    h = _new_hash()
    _update_scalar(h, type(problem).__qualname__)
    _update_scalar(h, int(problem.n))
    _update_scalar(h, bool(getattr(problem, "is_symmetric", False)))
    _update_scalar(h, fingerprint_kernel(problem.kernel))
    _update_scalar(h, _tree_signature(problem.factor_tree))
    _update_scalar(h, _square_signature(problem.parallel_domain))
    return h.hexdigest()


def problem_fingerprint(problem) -> str:
    """The problem's fingerprint, via its own ``fingerprint()`` if any.

    :class:`~repro.api.problem.ProblemBase` subclasses memoize the
    digest on the instance; bare protocol implementations fall back to
    a fresh :func:`fingerprint_problem` computation.
    """
    method = getattr(problem, "fingerprint", None)
    if callable(method):
        return method()
    return fingerprint_problem(problem)


def setup_fingerprint(config) -> str:
    """Hash of everything a strategy's ``setup`` depends on beyond the problem.

    Strategies sharing a setup family hash identically when their setup
    inputs agree — e.g. ``direct``/``pcg``/``pgmres`` all build the same
    RS-S factorization, so a factorization cached for a direct request
    serves a later preconditioned one. Refinement-only fields
    (``tol``/``maxiter``/``restart``/``operator``) never reach the
    digest.
    """
    from repro.api.strategies import resolve_strategy

    h = _new_hash()
    key = resolve_strategy(config.method).setup_key(config)
    _update_scalar(h, key)
    return h.hexdigest()
