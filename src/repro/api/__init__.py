"""Unified solve pipeline: ``repro.solve(problem, b, config)``.

One composable entry point over every solver the repo implements::

    import repro
    from repro.api import SolveConfig

    prob = repro.LaplaceVolumeProblem(m=64)
    report = repro.solve(prob, prob.random_rhs(), method="pcg", tol=1e-12)
    print(report.summary())

Pieces:

* :class:`~repro.api.problem.Problem` — the protocol workloads
  implement (kernel, fast operator, rhs helpers, geometry hints).
* :class:`~repro.api.config.SolveConfig` — method + execution +
  refinement knobs composed with :class:`~repro.core.options.SRSOptions`.
* the strategy registry (:mod:`repro.api.strategies`) — method names
  mapped to :class:`~repro.api.strategies.SolverStrategy` classes, each
  producing a common :class:`~repro.api.strategies.Factorization`.
* :class:`~repro.api.report.SolveReport` — the uniform outcome record.
* :func:`~repro.api.facade.solve` / :class:`~repro.api.facade.Solver`
  — one-shot and factorization-caching front doors.
"""

from repro.api.config import EXECUTIONS, OPERATORS, SolveConfig
from repro.api.facade import Solver, solve
from repro.api.fingerprint import (
    fingerprint_kernel,
    fingerprint_problem,
    problem_fingerprint,
    setup_fingerprint,
)
from repro.api.problem import Problem, ProblemBase, check_problem
from repro.api.report import SolveReport
from repro.api.strategies import (
    DenseLUFactorization,
    Factorization,
    SolverStrategy,
    StrategyResult,
    available_methods,
    register_strategy,
    resolve_strategy,
)

__all__ = [
    "SolveConfig",
    "SolveReport",
    "Solver",
    "solve",
    "Problem",
    "ProblemBase",
    "check_problem",
    "Factorization",
    "SolverStrategy",
    "StrategyResult",
    "DenseLUFactorization",
    "available_methods",
    "register_strategy",
    "resolve_strategy",
    "EXECUTIONS",
    "OPERATORS",
    "fingerprint_kernel",
    "fingerprint_problem",
    "problem_fingerprint",
    "setup_fingerprint",
]
