"""Configuration of one ``repro.solve`` pipeline run."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.options import SRSOptions

#: execution modes understood by every parallel-capable strategy
EXECUTIONS = ("sequential", "thread", "process", "shared", "auto")

#: forward operators available to the iterative strategies
OPERATORS = ("auto", "dense", "treecode")


@dataclass(frozen=True)
class SolveConfig:
    """Everything that selects *how* a problem is solved.

    One config composes the factorization parameters
    (:class:`~repro.core.options.SRSOptions`) with the solve method,
    the execution engine, and the iterative-refinement controls, so the
    same problem runs as a direct solve, a preconditioned Krylov
    refinement, a distributed solve, or a dense/baseline reference by
    changing fields instead of call paths.

    Attributes
    ----------
    method:
        Registered strategy name. Built-ins:

        * ``"direct"`` — one application of the RS-S compressed inverse
          (the paper's O(N) direct solve).
        * ``"pcg"`` — CG to ``tol``, RS-S-preconditioned (symmetric
          problems; Tables II/III).
        * ``"pgmres"`` — restarted GMRES to ``tol``, RS-S right
          preconditioner (Tables IV/V and the BIE workloads).
        * ``"dense_lu"`` — pivoted LU of the assembled dense matrix
          (small problems / reference).
        * ``"block_jacobi"`` — leaf-block-diagonal preconditioner +
          Krylov (the ablation baseline).
        * ``"cg"`` / ``"gmres"`` — *unpreconditioned* Krylov baselines
          (the paper's ``nit_cg`` columns and Table V comparison).

        Unknown names raise a :class:`ValueError` listing the registry.
    execution:
        ``"sequential"`` runs the factorization in-process;
        ``"thread"``/``"process"`` run it on ``ranks`` simulated MPI
        ranks over the matching vmpi backend; ``"shared"`` runs the
        box-coloring shared-memory comparator
        (:func:`~repro.parallel.shared.shared_memory_factor`) on
        ``ranks`` simulated threads; ``"auto"`` picks thread vs process
        by the usable-core budget (CPU affinity where the platform
        exposes it, else ``os.cpu_count()``; single core: threads;
        more: processes), mirroring ``REPRO_VMPI_BACKEND=auto``.
    ranks:
        Simulated rank count for parallel execution (a power-of-two
        squared for the distributed engines: 1, 4, 16, ...; any count
        for ``"shared"`` threads). ``None`` defaults to 4.
    tol:
        Relative-residual target of the iterative refinement (the
        paper refines to ``1e-12``). Ignored by ``direct``/``dense_lu``.
    maxiter:
        Iteration cap for the Krylov methods.
    restart:
        GMRES restart length (the paper uses 50 when preconditioned).
    operator:
        Forward matvec used by the iterative strategies: ``"auto"``
        takes the problem's own fast operator (FFT on grids, dense on
        curves), ``"treecode"`` builds the O(N log N) kernel-independent
        treecode, ``"dense"`` the chunked dense reference.
    srs:
        Factorization options (ID tolerance, leaf size, proxy
        parameters) passed to the RS-S engines, and the leaf size used
        by ``block_jacobi``.
    factor_mode:
        Shorthand for ``srs.factor_mode`` (``"strict"``, ``"batched"``
        or ``"auto"``): when set, ``srs`` is rewritten with this sweep
        mode at construction, so ``repro.solve(prob, b,
        factor_mode="batched")`` works without spelling out a full
        :class:`~repro.core.options.SRSOptions`. ``None`` (default)
        leaves ``srs`` untouched.
    """

    method: str = "direct"
    execution: str = "sequential"
    ranks: int | None = None
    tol: float = 1e-12
    maxiter: int = 500
    restart: int = 50
    operator: str = "auto"
    srs: SRSOptions = field(default_factory=SRSOptions)
    factor_mode: str | None = None

    def __post_init__(self) -> None:
        # deferred import: the registry lives in strategies.py, which
        # imports this module for the config type
        from repro.api import strategies

        strategies.validate_method(self.method)
        if self.execution not in EXECUTIONS:
            raise ValueError(
                f"unknown execution {self.execution!r}; "
                f"expected one of {', '.join(EXECUTIONS)}"
            )
        if self.operator not in OPERATORS:
            raise ValueError(
                f"unknown operator {self.operator!r}; "
                f"expected one of {', '.join(OPERATORS)}"
            )
        if self.tol <= 0:
            raise ValueError(f"tol must be positive, got {self.tol}")
        if self.maxiter <= 0:
            raise ValueError(f"maxiter must be positive, got {self.maxiter}")
        if self.restart <= 0:
            raise ValueError(f"restart must be positive, got {self.restart}")
        if self.ranks is not None and self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.factor_mode is not None and self.factor_mode != self.srs.factor_mode:
            # frozen dataclass: route the rewrite through __setattr__;
            # SRSOptions.__post_init__ validates the mode name
            object.__setattr__(
                self, "srs", replace(self.srs, factor_mode=self.factor_mode)
            )
