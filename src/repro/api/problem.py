"""The :class:`Problem` protocol — what a workload exposes to ``repro.solve``.

Every solver strategy (direct RS-S, preconditioned Krylov, dense LU,
block-Jacobi) consumes problems through the same narrow surface: a
kernel matrix, a fast forward operator, rhs helpers, and the geometry
hints (tree/domain) the factorization engines need. The built-in
workloads — :class:`~repro.apps.laplace_volume.LaplaceVolumeProblem`,
:class:`~repro.apps.scattering.ScatteringProblem`,
:class:`~repro.bie.solves.InteriorDirichletProblem`, and
:class:`~repro.bie.solves.SoundSoftScattering` — all implement it, and
any user class that does too plugs straight into
:func:`repro.api.facade.solve`.

:class:`ProblemBase` is an optional mixin supplying sensible defaults
(bounding-box parallel domain, the problem's ``matvec`` as operator,
random right-hand sides) so new problems only define what is special
about them.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Problem(Protocol):
    """Structural interface required by :func:`repro.api.facade.solve`."""

    #: implicit dense system matrix over the collocation/Nystrom points
    kernel: Any

    @property
    def n(self) -> int:
        """Number of unknowns."""
        ...

    #: True when the operator is symmetric (positive definite), enabling CG
    is_symmetric: bool

    @property
    def factor_tree(self):
        """Quadtree for the factorization, or ``None`` to derive one."""
        ...

    @property
    def parallel_domain(self):
        """Root square for the distributed tree, or ``None`` for the default."""
        ...

    def operator(self) -> Callable[[np.ndarray], np.ndarray]:
        """The fast forward matvec ``x -> A x`` used by iterative methods."""
        ...

    def default_rhs(self) -> np.ndarray:
        """The problem's canonical right-hand side."""
        ...

    def random_rhs(self, seed: int = 0, nrhs: int = 1) -> np.ndarray:
        """Reproducible random right-hand side(s)."""
        ...

    def relres(self, x: np.ndarray, b: np.ndarray) -> float:
        """True relative residual ``||A x - b|| / ||b||``."""
        ...

    # Optional: ``fingerprint() -> str`` — a stable content hash of the
    # operator (geometry + kernel + tree), used by the serving layer to
    # key its factorization cache. ProblemBase provides it; bare
    # implementations fall back to
    # :func:`repro.api.fingerprint.fingerprint_problem`.


#: attribute names checked by :func:`check_problem`
_REQUIRED = (
    "kernel",
    "n",
    "is_symmetric",
    "factor_tree",
    "parallel_domain",
    "operator",
    "default_rhs",
    "random_rhs",
    "relres",
)


def check_problem(problem: Any) -> None:
    """Raise a :class:`TypeError` naming every missing protocol member."""
    missing = [name for name in _REQUIRED if not hasattr(problem, name)]
    if missing:
        raise TypeError(
            f"{type(problem).__name__} does not implement the repro.api.Problem "
            f"protocol: missing {', '.join(missing)} "
            "(subclass repro.api.ProblemBase for the defaults)"
        )


class ProblemBase:
    """Mixin with protocol defaults; subclasses set what differs.

    Defaults: non-symmetric operator, factorization tree taken from a
    ``tree`` attribute when present (else derived from the options),
    unit-square parallel domain, the problem's ``matvec`` attribute as
    the forward operator, and uniform random right-hand sides (complex
    when the kernel is).
    """

    is_symmetric = False

    @property
    def factor_tree(self):
        return getattr(self, "tree", None)

    @property
    def parallel_domain(self):
        return None

    def operator(self) -> Callable[[np.ndarray], np.ndarray]:
        return self.matvec

    def default_rhs(self) -> np.ndarray:
        return self.random_rhs()

    def random_rhs(self, seed: int = 0, nrhs: int = 1) -> np.ndarray:
        rng = np.random.default_rng(seed)
        shape = (self.n,) if nrhs == 1 else (self.n, nrhs)
        out = rng.random(shape)
        if np.issubdtype(np.dtype(self.kernel.dtype), np.complexfloating):
            out = out + 1j * rng.random(shape)
        return out

    def relres(self, x: np.ndarray, b: np.ndarray) -> float:
        r = self.operator()(x) - b
        return float(np.linalg.norm(r) / np.linalg.norm(b))

    def fingerprint(self) -> str:
        """Stable content hash of the operator this problem defines.

        Two independently constructed problems over identical geometry
        and kernel parameters return the same digest; perturbing either
        changes it. Memoized per instance (problems are immutable after
        construction).
        """
        fp = getattr(self, "_fingerprint_cache", None)
        if fp is None:
            from repro.api.fingerprint import fingerprint_problem

            fp = fingerprint_problem(self)
            try:
                self._fingerprint_cache = fp
            except (AttributeError, TypeError):  # frozen/slotted subclass
                pass
        return fp
