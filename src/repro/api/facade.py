"""``repro.solve`` — one pipeline over every solver strategy.

The paper presents RS-S as a single factorization wearing three hats:
a direct solver, a preconditioner, and a distributed solver. The facade
makes that literal: every workload runs through

    report = repro.solve(problem, b, SolveConfig(method=..., execution=...))

and every method/execution combination — sequential or distributed
RS-S, preconditioned CG/GMRES refinement, dense LU, block-Jacobi —
returns the same :class:`~repro.api.report.SolveReport`.

:class:`Solver` is the stateful variant: it caches the strategy setup
(the expensive factorization) across repeated right-hand sides and
tolerance refinements, which is exactly the amortization argument the
paper makes for direct solvers (Sec. I-A).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable

import numpy as np

from repro.api.config import SolveConfig
from repro.api.problem import check_problem
from repro.api.report import SolveReport
from repro.api.strategies import resolve_execution, resolve_strategy
from repro.obs import REGISTRY, health, solve_health, trace

_SOLVES = REGISTRY.counter(
    "repro_solve_total",
    "Facade solves by method and execution",
    labelnames=("method", "execution"),
)
_ITERATIONS = REGISTRY.counter(
    "repro_solve_iterations_total",
    "Refinement/Krylov iterations spent by method",
    labelnames=("method",),
)


def _make_config(config: SolveConfig | None, overrides: dict) -> SolveConfig:
    if config is None:
        return SolveConfig(**overrides)
    if overrides:
        return replace(config, **overrides)
    return config


def _parallel_extras(fact) -> dict:
    """Simulated timings + comm counters when the engine was distributed."""
    from repro.parallel.driver import ParallelFactorization
    from repro.parallel.shared import SharedMemoryResult

    if isinstance(fact, SharedMemoryResult):
        # shared-memory comparator: simulated thread-schedule times,
        # no messages (ranks share the address space)
        return {
            "sim_t_fact": fact.t_fact,
            "sim_t_solve": fact.t_solve,
            "messages": 0,
            "comm_bytes": 0,
        }
    if not isinstance(fact, ParallelFactorization):
        return {}
    return {
        "sim_t_fact": fact.t_fact,
        "sim_t_solve": (
            fact.last_solve_run.elapsed if fact.last_solve_run is not None else None
        ),
        "sim_t_comp": fact.t_fact_comp,
        "sim_t_other": fact.t_fact_other,
        "messages": fact.factor_run.total_messages,
        "comm_bytes": fact.factor_run.total_bytes,
    }


def solve(
    problem,
    b: np.ndarray | None = None,
    config: SolveConfig | None = None,
    *,
    factorization=None,
    operator: Callable | None = None,
    **overrides,
) -> SolveReport:
    """Solve the problem's linear system through the unified pipeline.

    Parameters
    ----------
    problem:
        Anything implementing :class:`~repro.api.problem.Problem`.
    b:
        Right-hand side, ``(N,)`` or ``(N, nrhs)``; ``None`` takes the
        problem's :meth:`default_rhs`.
    config:
        The :class:`~repro.api.config.SolveConfig`; field overrides may
        also be passed as keyword arguments
        (``solve(prob, b, method="pcg", tol=1e-10)``).
    factorization:
        Pre-built setup product to reuse (skips the setup stage; this
        is the :class:`Solver` cache path and the legacy-shim path).
    operator:
        Forward matvec for the iterative strategies: a callable
        overrides ``config.operator`` directly, a string
        (``"auto"``/``"dense"``/``"treecode"``) is shorthand for
        setting the config field.

    Returns
    -------
    SolveReport
        Solution plus residual, iteration, timing, memory, and
        communication metadata.
    """
    config = _make_config(config, overrides)
    if isinstance(operator, str):
        config, operator = replace(config, operator=operator), None
    check_problem(problem)
    strategy = resolve_strategy(config.method)
    strategy.check_execution(config)
    strategy.check_compatible(problem, config)
    execution = resolve_execution(config.execution)

    rhs = problem.default_rhs() if b is None else np.asarray(b)
    if rhs.shape[0] != problem.n:
        raise ValueError(f"rhs has {rhs.shape[0]} rows, expected {problem.n}")

    with trace.span(
        "solve", method=config.method, execution=execution, n=problem.n
    ) as root:
        if factorization is None:
            t0 = time.perf_counter()
            with trace.span("solve.setup", method=config.method):
                fact = strategy.setup(problem, config)
            t_setup = time.perf_counter() - t0
        else:
            fact, t_setup = factorization, 0.0

        t0 = time.perf_counter()
        with trace.span("solve.run", method=config.method):
            out = strategy.run(problem, rhs, fact, config, operator)
        t_solve = time.perf_counter() - t0
        root.set(iterations=out.iterations, converged=out.converged)

    _SOLVES.inc(method=config.method, execution=execution)
    if out.iterations:
        _ITERATIONS.inc(out.iterations, method=config.method)
    if out.krylov is not None:
        health.observe_krylov(config.method, out.krylov)

    return SolveReport(
        health=solve_health(fact, out.krylov),
        x=out.x,
        method=config.method,
        execution=execution,
        problem=problem,
        rhs=rhs,
        iterations=out.iterations,
        converged=out.converged,
        t_setup=t_setup,
        t_solve=t_solve,
        memory_bytes=(
            int(fact.memory_bytes()) if hasattr(fact, "memory_bytes") else None
        ),
        krylov=out.krylov,
        config=config,
        factorization=fact,
        **_parallel_extras(fact),
    )


class Solver:
    """A problem bound to a config, amortizing the factorization.

    The first :meth:`solve` (or touching :attr:`factorization`) builds
    the strategy's setup product; every later solve — new right-hand
    sides, tighter ``tol`` — reuses it::

        solver = repro.Solver(prob, method="pcg")
        r1 = solver.solve(b1)
        r2 = solver.solve(b2, tol=1e-8)   # same factorization, new target

    Reports from cached solves carry ``t_setup = 0``; the one-time cost
    is in :attr:`setup_time`.
    """

    def __init__(self, problem, config: SolveConfig | None = None, **overrides):
        check_problem(problem)
        self.problem = problem
        self.config = _make_config(config, overrides)
        self._strategy = resolve_strategy(self.config.method)
        self._strategy.check_execution(self.config)
        self._strategy.check_compatible(problem, self.config)
        self._fact = None
        #: wall seconds of the one-time setup (None until it runs)
        self.setup_time: float | None = None

    @property
    def factorization(self):
        """The cached setup product, built on first access."""
        if self._fact is None:
            t0 = time.perf_counter()
            with trace.span("solve.setup", method=self.config.method):
                self._fact = self._strategy.setup(self.problem, self.config)
            self.setup_time = time.perf_counter() - t0
        return self._fact

    def solve(
        self,
        b: np.ndarray | None = None,
        *,
        tol: float | None = None,
        maxiter: int | None = None,
        operator: Callable | None = None,
    ) -> SolveReport:
        """Solve one rhs on the cached factorization.

        ``tol``/``maxiter`` refine this call only; the factorization
        (whose accuracy is ``config.srs.tol``) is untouched.
        """
        cfg = self.config
        updates = {}
        if tol is not None:
            updates["tol"] = tol
        if maxiter is not None:
            updates["maxiter"] = maxiter
        if isinstance(operator, str):
            updates["operator"], operator = operator, None
        if updates:
            cfg = replace(cfg, **updates)
        return solve(
            self.problem, b, cfg, factorization=self.factorization, operator=operator
        )

    __call__ = solve
