"""The uniform outcome record of every ``repro.solve`` call."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class SolveReport:
    """What happened during one solve, identically shaped for all methods.

    Attributes
    ----------
    x:
        The computed solution, ``(N,)`` or ``(N, nrhs)``.
    method / execution:
        The strategy that ran and the *resolved* execution mode
        (``"auto"`` is reported as the thread/process choice it made).
    relres:
        True relative residual ``||A x - b|| / ||b||`` measured with the
        problem's forward operator — computed lazily on first access
        (one operator apply), so callers that never read it (the legacy
        shims, iteration-count sweeps) pay nothing.
    iterations:
        Krylov iteration count (0 for the direct methods).
    converged:
        Whether the iterative refinement met its tolerance (always
        ``True`` for direct methods).
    t_setup / t_solve:
        Wall-clock seconds building the factorization/preconditioner
        and applying it. ``t_setup`` is 0 when a cached factorization
        was supplied (the :class:`~repro.api.facade.Solver` path).
    memory_bytes:
        Bytes held by the factorization/preconditioner.
    sim_t_fact / sim_t_solve:
        Simulated parallel clock of the distributed engines (the
        paper's ``t_fact``/``t_solve``); ``None`` for sequential runs.
    sim_t_comp / sim_t_other:
        The critical-path split of ``sim_t_fact`` into compute vs
        communication/idle (Table II's ``t_comp``/``t_other``).
    messages / comm_bytes:
        Total messages and payload bytes sent during the distributed
        factorization; ``None`` for sequential runs.
    factorization:
        The setup product that produced ``x`` (an object satisfying the
        :class:`~repro.api.strategies.Factorization` protocol), for
        callers that want rank statistics, per-rank counters, or to
        reuse it via ``solve(..., factorization=...)``.
    problem / rhs:
        What was solved — kept so :attr:`relres` can be evaluated
        lazily.
    krylov:
        The raw :class:`~repro.iterative.cg.CGResult` /
        :class:`~repro.iterative.gmres.GMRESResult` when an iterative
        method ran (residual history lives here), else ``None``.
    config:
        The :class:`~repro.api.config.SolveConfig` that produced this.
    """

    x: np.ndarray
    method: str
    execution: str
    iterations: int
    converged: bool
    t_setup: float
    t_solve: float
    memory_bytes: int | None = None
    sim_t_fact: float | None = None
    sim_t_solve: float | None = None
    sim_t_comp: float | None = None
    sim_t_other: float | None = None
    messages: int | None = None
    comm_bytes: int | None = None
    #: serving metadata (set by :mod:`repro.service`, ``None`` otherwise):
    #: whether the factorization came out of the service cache
    cache_hit: bool | None = None
    #: how many requests shared the coalesced block solve (1 = solo)
    batch_size: int | None = None
    #: seconds between request submission and the start of its solve
    t_queue: float | None = None
    #: request id assigned by the service (echoed by the HTTP front)
    request_id: str | None = None
    #: per-request phase spans stamped by the service: a list of
    #: ``{"name": ..., "seconds": ...}`` dicts covering the
    #: queue -> factor -> solve pipeline of this request
    spans: list | None = None
    #: per-solve numerical summary (a
    #: :class:`~repro.obs.health.HealthReport`): per-level skeleton
    #: ranks/compression plus the Krylov refinement outcome; ``None``
    #: when the factorization carries no rank stats and no Krylov ran
    health: Any | None = None
    krylov: Any | None = field(default=None, repr=False)
    config: Any | None = field(default=None, repr=False)
    factorization: Any | None = field(default=None, repr=False)
    problem: Any | None = field(default=None, repr=False)
    rhs: np.ndarray | None = field(default=None, repr=False)
    _relres: float | None = field(default=None, repr=False)

    @property
    def relres(self) -> float:
        """True relative residual, computed (and cached) on demand."""
        if self._relres is None:
            if self.problem is None or self.rhs is None:
                raise ValueError("relres unavailable: report has no problem/rhs")
            self._relres = float(self.problem.relres(self.x, self.rhs))
        return self._relres

    @property
    def residual_history(self) -> list[float]:
        """Per-iteration relative residuals (``[relres]`` for direct)."""
        if self.krylov is not None:
            return self.krylov.residual_history
        return [self.relres]

    def to_dict(self, *, include_relres: bool = True) -> dict:
        """JSON-serializable scalars of this report (no arrays/objects).

        ``include_relres=True`` evaluates the lazy true residual (one
        forward-operator apply); pass ``False`` when the caller never
        needs it and wants the record for free.
        """
        out = {
            "method": self.method,
            "execution": self.execution,
            "n": int(np.asarray(self.x).shape[0]),
            "nrhs": (
                int(np.asarray(self.x).shape[1]) if np.asarray(self.x).ndim > 1 else 1
            ),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "t_setup": float(self.t_setup),
            "t_solve": float(self.t_solve),
            "memory_bytes": (
                None if self.memory_bytes is None else int(self.memory_bytes)
            ),
            "sim_t_fact": self.sim_t_fact,
            "sim_t_solve": self.sim_t_solve,
            "sim_t_comp": self.sim_t_comp,
            "sim_t_other": self.sim_t_other,
            "messages": self.messages,
            "comm_bytes": self.comm_bytes,
        }
        if self.cache_hit is not None:
            out["cache_hit"] = bool(self.cache_hit)
        if self.batch_size is not None:
            out["batch_size"] = int(self.batch_size)
        if self.t_queue is not None:
            out["t_queue"] = float(self.t_queue)
        if self.request_id is not None:
            out["request_id"] = str(self.request_id)
        if self.spans is not None:
            out["spans"] = [
                {"name": str(s["name"]), "seconds": float(s["seconds"])}
                for s in self.spans
            ]
        if self.health is not None:
            out["health"] = self.health.to_dict()
        if include_relres:
            out["relres"] = self.relres
        if self.krylov is not None:
            out["residual_history"] = [
                float(r) for r in self.krylov.residual_history
            ]
        return out

    def to_json(self, *, indent: int | None = None, include_relres: bool = True) -> str:
        """This report as a JSON string (the benchmark-harness format)."""
        return json.dumps(self.to_dict(include_relres=include_relres), indent=indent)

    def summary(self) -> str:
        """One informative line, for examples and benchmark logs."""
        its = f", {self.iterations} its" if self.iterations else ""
        mem = (
            f", {self.memory_bytes / 1e6:.1f} MB"
            if self.memory_bytes is not None
            else ""
        )
        sim = (
            f", sim t_fact {self.sim_t_fact:.3f}s"
            if self.sim_t_fact is not None
            else ""
        )
        return (
            f"{self.method}/{self.execution}: relres {self.relres:.2e}{its}, "
            f"setup {self.t_setup:.2f}s + solve {self.t_solve * 1e3:.1f}ms{mem}{sim}"
        )
