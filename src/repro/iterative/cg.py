"""(Preconditioned) conjugate gradients.

Matches the paper's usage for the symmetric Laplace systems: the RS-S
factorization is applied as the preconditioner ``M^{-1} ~ A^{-1}`` and
iterations stop when ``||r|| / ||b|| <= tol`` (1e-12 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.iterative.stall import refinement_stalled

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float]

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else np.inf

    @property
    def stalled(self) -> bool:
        """Unconverged with a plateaued residual (see ``refinement_stalled``)."""
        return refinement_stalled(self.residual_history, self.converged)


def cg(
    matvec: Operator,
    b: np.ndarray,
    *,
    preconditioner: Operator | None = None,
    tol: float = 1e-12,
    maxiter: int = 10_000,
    x0: np.ndarray | None = None,
) -> CGResult:
    """Preconditioned CG on ``A x = b``.

    ``matvec`` applies ``A``; ``preconditioner`` applies ``M^{-1}``.
    The residual history stores ``||b - A x_k|| / ||b||`` per iteration
    (the true residual is recomputed from the recurrence residual, not
    re-evaluated, as is standard).
    """
    b = np.asarray(b)
    bnorm = float(np.linalg.norm(b))
    # promote like GMRES does: an integer rhs must not keep iterates (or
    # the first recurrence residual) in integer arithmetic
    dtype = np.result_type(b.dtype, np.float64)
    eps = np.finfo(dtype).eps
    if bnorm == 0.0:
        return CGResult(np.zeros(b.shape, dtype=dtype), 0, True, [0.0])
    x = np.zeros(b.shape, dtype=dtype) if x0 is None else np.asarray(x0).astype(dtype)
    r = b - matvec(x) if x0 is not None else b.astype(dtype, copy=True)
    history = [float(np.linalg.norm(r)) / bnorm]
    if history[0] <= tol:
        return CGResult(x, 0, True, history)
    z = preconditioner(r) if preconditioner is not None else r
    p = z.copy()
    rz = np.vdot(r, z)
    for k in range(1, maxiter + 1):
        ap = matvec(p)
        denom = np.vdot(p, ap)
        # breakdown guard: ``p* A p`` indistinguishable from zero at the
        # working precision (exact == 0 misses the semi-definite case
        # where cancellation leaves a subnormal-sized denominator)
        if abs(denom) <= eps * float(np.linalg.norm(p)) * float(np.linalg.norm(ap)):
            return CGResult(x, k - 1, False, history)
        alpha = rz / denom
        x = x + alpha * p
        r = r - alpha * ap
        res = float(np.linalg.norm(r)) / bnorm
        history.append(res)
        if res <= tol:
            return CGResult(x, k, True, history)
        z = preconditioner(r) if preconditioner is not None else r
        rz_new = np.vdot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return CGResult(x, maxiter, False, history)
