"""Krylov solvers used to refine the approximate direct solver.

The paper reports ``nit``: the number of preconditioned CG (Laplace) or
GMRES (Helmholtz) iterations needed to reach a ``1e-12`` residual when
the RS-S factorization is used as a preconditioner, and the
unpreconditioned counts for contrast (Table V).
"""

from repro.iterative.cg import cg, CGResult
from repro.iterative.gmres import gmres, GMRESResult

__all__ = ["cg", "CGResult", "gmres", "GMRESResult"]
