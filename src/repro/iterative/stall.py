"""Refinement-stall detection over Krylov residual histories.

A stalled refinement — the residual plateauing above tolerance — is the
classic symptom of a factorization whose accuracy no longer matches the
requested ``tol`` (too loose an ID tolerance, an indefinite shift, a
lost digit in the preconditioner apply). The health telemetry surfaces
it per solve instead of letting it hide inside a large iteration count.

Pure function of the recorded history: no clocks, no randomness — safe
for the determinism contract of the parity packages.
"""

from __future__ import annotations

#: trailing iterations inspected for progress
STALL_WINDOW = 10
#: minimum factor the best residual must improve by across the window
STALL_IMPROVEMENT = 0.99


def refinement_stalled(
    residual_history: list[float],
    converged: bool,
    *,
    window: int = STALL_WINDOW,
    improvement: float = STALL_IMPROVEMENT,
) -> bool:
    """Whether an unconverged solve stopped making progress.

    True when the solve did not converge and the best residual over the
    last ``window`` iterations failed to improve on the best residual
    before that window by at least the ``improvement`` factor (i.e.
    ``best_recent > improvement * best_before``). Histories shorter
    than ``window + 1`` entries never count as stalled — there is no
    "before" to compare against.
    """
    if converged:
        return False
    if len(residual_history) < window + 1:
        return False
    best_before = min(residual_history[:-window])
    best_recent = min(residual_history[-window:])
    return best_recent > improvement * best_before
