"""Restarted GMRES with optional right preconditioning.

The paper solves the indefinite complex Helmholtz systems with GMRES
(restart = 20 for the unpreconditioned Table V baseline) and uses the
RS-S factorization as the preconditioner otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.iterative.stall import refinement_stalled

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class GMRESResult:
    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float]

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else np.inf

    @property
    def stalled(self) -> bool:
        """Unconverged with a plateaued residual (see ``refinement_stalled``)."""
        return refinement_stalled(self.residual_history, self.converged)


def gmres(
    matvec: Operator,
    b: np.ndarray,
    *,
    preconditioner: Operator | None = None,
    tol: float = 1e-12,
    restart: int = 20,
    maxiter: int = 10_000,
    x0: np.ndarray | None = None,
) -> GMRESResult:
    """Right-preconditioned restarted GMRES on ``A x = b``.

    With right preconditioning the solver iterates on
    ``A M^{-1} y = b``, ``x = M^{-1} y``, so the reported residual is
    the *true* residual of the original system. ``iterations`` counts
    total inner iterations (matvec count), matching the paper's ``nit``.
    """
    b = np.asarray(b)
    bnorm = float(np.linalg.norm(b))
    dtype = np.result_type(b.dtype, np.float64)
    if bnorm == 0.0:
        return GMRESResult(np.zeros(b.shape, dtype=dtype), 0, True, [0.0])
    if restart <= 0:
        raise ValueError(f"restart must be positive, got {restart}")
    x = np.zeros_like(b, dtype=dtype) if x0 is None else np.asarray(x0).astype(dtype)

    total_iters = 0
    history: list[float] = []
    while True:
        r = b - matvec(x)
        beta = float(np.linalg.norm(r))
        history.append(beta / bnorm)
        if beta / bnorm <= tol or total_iters >= maxiter:
            return GMRESResult(x, total_iters, beta / bnorm <= tol, history)

        # Arnoldi process
        mdim = min(restart, maxiter - total_iters)
        basis = np.empty((b.shape[0], mdim + 1), dtype=dtype)
        hess = np.zeros((mdim + 1, mdim), dtype=dtype)
        basis[:, 0] = r / beta
        # Givens rotations for the least-squares problem
        cs = np.zeros(mdim, dtype=dtype)
        sn = np.zeros(mdim, dtype=dtype)
        g = np.zeros(mdim + 1, dtype=dtype)
        g[0] = beta
        inner_used = 0
        for j in range(mdim):
            v = basis[:, j]
            w = matvec(preconditioner(v) if preconditioner is not None else v)
            # modified Gram-Schmidt
            for i in range(j + 1):
                hess[i, j] = np.vdot(basis[:, i], w)
                w = w - hess[i, j] * basis[:, i]
            # happy breakdown: K_{j+1} is A-invariant, so the least-squares
            # solution over it is exact — stop enlarging the basis (the
            # rotations below still run to finish the triangularization;
            # they see hess[j+1, j] = 0 and leave the residual at 0).
            # Without this, basis[:, j+1] would be left uninitialized
            # (np.empty garbage) while the Arnoldi loop kept running.
            hess[j + 1, j] = np.linalg.norm(w)
            happy = not (hess[j + 1, j] > 0)
            if not happy:
                basis[:, j + 1] = w / hess[j + 1, j]
            # apply previous rotations (c real, G = [[c, s], [-conj(s), c]])
            for i in range(j):
                temp = cs[i] * hess[i, j] + sn[i] * hess[i + 1, j]
                hess[i + 1, j] = -np.conj(sn[i]) * hess[i, j] + cs[i] * hess[i + 1, j]
                hess[i, j] = temp
            # new rotation annihilating hess[j+1, j]:
            # c = |a| / r (real), s = (a / |a|) conj(b) / r, r = sqrt(|a|^2 + |b|^2)
            a, bb = hess[j, j], hess[j + 1, j]
            r_abs = np.sqrt(abs(a) ** 2 + abs(bb) ** 2)
            if r_abs == 0:
                cs[j], sn[j] = 1.0, 0.0
            elif abs(a) == 0:
                cs[j], sn[j] = 0.0, np.conj(bb) / abs(bb)
            else:
                cs[j] = abs(a) / r_abs
                sn[j] = (a / abs(a)) * np.conj(bb) / r_abs
            temp = cs[j] * g[j]
            g[j + 1] = -np.conj(sn[j]) * g[j]
            g[j] = temp
            hess[j, j] = cs[j] * a + sn[j] * bb
            hess[j + 1, j] = 0.0
            inner_used = j + 1
            total_iters += 1
            rel = abs(g[j + 1]) / bnorm
            history.append(float(rel))
            if rel <= tol or happy:
                break
        # solve the triangular system and update x
        k = inner_used
        if k > 0:
            try:
                y = np.linalg.solve(hess[:k, :k], g[:k])
            except np.linalg.LinAlgError:
                # singular-operator breakdown (e.g. rank-deficient A with
                # rhs touching the nullspace): take the minimum-norm
                # least-squares solution over the Krylov space
                y = np.linalg.lstsq(hess[:k, :k], g[:k], rcond=None)[0]
            update = basis[:, :k] @ y
            if preconditioner is not None:
                update = preconditioner(update)
            x = x + update
        if happy:
            # the Krylov space is A-invariant and exhausted — restarting
            # would rebuild the same space, so report the true residual
            # and stop instead of spinning until maxiter
            r = b - matvec(x)
            rel = float(np.linalg.norm(r)) / bnorm
            history.append(rel)
            return GMRESResult(x, total_iters, rel <= tol, history)
        if total_iters >= maxiter:
            r = b - matvec(x)
            rel = float(np.linalg.norm(r)) / bnorm
            history.append(rel)
            return GMRESResult(x, total_iters, rel <= tol, history)
