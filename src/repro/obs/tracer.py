"""Hierarchical span tracer with a near-zero-cost disabled mode.

``trace.span("factor.level", level=3)`` opens a span: nesting comes
from a thread-local stack, timestamps from ``time.perf_counter()``
(CLOCK_MONOTONIC on Linux — system-wide, so spans recorded in rank
*processes* line up with the parent's timeline when merged). Finished
spans accumulate in the tracer; :meth:`Tracer.export_chrome` writes
them as Chrome ``trace_event`` JSON for ``chrome://tracing``/Perfetto.

Tracing is off by default (``REPRO_OBS=off``): a disabled ``span()``
call is one flag read returning a shared no-op context manager, so the
parity suites and hot loops pay essentially nothing. Every finished
span also feeds the ``repro_span_seconds`` histogram in the default
metrics registry.

Distributed runs: vmpi rank workers record spans into their own
process-local tracer under a ``rank<r>`` track; the backend drains them
into ``RankReport.spans`` (riding the existing pickle/shm result
channel) and ``run_spmd`` adopts them back into this tracer, merging
all ranks into one timeline with per-rank tracks.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from collections import deque
from typing import Any, Iterable

from repro.obs.lockwatch import make_lock
from repro.obs.metrics import LATENCY_BUCKETS, REGISTRY
from repro.util.config import obs_enabled, obs_max_spans, obs_trace_path


class Span:
    """One finished (or in-flight) span. Plain data; pickles cleanly."""

    __slots__ = ("name", "start", "duration", "track", "thread", "depth",
                 "parent", "attrs")

    def __init__(self, name: str, start: float, *, track: str | None = None,
                 thread: int = 0, depth: int = 0, parent: str | None = None,
                 attrs: dict[str, Any] | None = None):
        self.name = name
        self.start = start
        self.duration = 0.0
        self.track = track
        self.thread = thread
        self.depth = depth
        self.parent = parent
        self.attrs = attrs or {}

    # __slots__ classes need explicit state hooks only for protocol < 2;
    # the default reduce handles slots, but be explicit for clarity.
    def __getstate__(self) -> dict[str, Any]:
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for s in self.__slots__:
            setattr(self, s, state[s])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, start={self.start:.6f}, "
                f"dur={self.duration * 1e3:.3f}ms, depth={self.depth}, "
                f"track={self.track!r})")


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._span = Span(name, 0.0, attrs=attrs)

    def set(self, **attrs: Any) -> None:
        """Attach attributes after entry (e.g. iteration counts)."""
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        span = self._span
        span.thread = threading.get_ident()
        span.track = tracer._track()
        span.depth = len(stack)
        span.parent = stack[-1].name if stack else None
        stack.append(span)
        span.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        span = self._span
        span.duration = end - span.start
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unwound out of order (generator abuse): resync
            del stack[stack.index(span):]
        self._tracer._record(span)
        return False


class Tracer:
    """Collects spans from every thread of this process."""

    def __init__(self, enabled: bool | None = None):
        self._enabled = obs_enabled() if enabled is None else enabled
        self._lock = make_lock("obs.tracer")
        #: finished-span ring; at capacity, recording drops the oldest
        self._spans: deque[Span] = deque(maxlen=obs_max_spans() or None)
        self._local = threading.local()
        # Cross-thread mirrors of each thread's open-span stack and track
        # label, keyed by thread id, for the sampling profiler. Written
        # only via GIL-atomic dict item assignment, never under _lock —
        # readers (active_spans) tolerate concurrent pushes/pops.
        self._active: dict[int, list[Span]] = {}
        self._tracks: dict[int, str | None] = {}
        self._span_hist = REGISTRY.histogram(
            "repro_span_seconds", "Duration of traced spans by name",
            labelnames=("name",), buckets=LATENCY_BUCKETS,
        )
        self._dropped = REGISTRY.counter(
            "repro_obs_spans_dropped_total",
            "Finished spans evicted from the tracer's bounded ring buffer",
        )

    # -- enablement ----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def set_enabled(self, on: bool) -> None:
        self._enabled = bool(on)

    # -- recording -----------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            self._active[threading.get_ident()] = stack
        return stack

    def _track(self) -> str | None:
        return getattr(self._local, "track", None)

    def active_spans(self) -> dict[int, tuple[str | None, str | None]]:
        """``{thread_id: (innermost_open_span_name, track_label)}``.

        A lock-free snapshot for the sampling profiler: either element
        may be ``None`` (no open span / unlabeled thread). Entries for
        dead threads are pruned as a side effect.
        """
        active, tracks = self._active, self._tracks
        alive = {t.ident for t in threading.enumerate()}
        for tid in [t for t in list(active) if t not in alive]:
            active.pop(tid, None)
        for tid in [t for t in list(tracks) if t not in alive]:
            tracks.pop(tid, None)
        out: dict[int, tuple[str | None, str | None]] = {}
        for tid in set(active) | set(tracks):
            stack = active.get(tid)
            name: str | None = None
            if stack:
                try:
                    name = stack[-1].name
                except IndexError:  # raced the owner's pop
                    name = None
            out[tid] = (name, tracks.get(tid))
        return out

    def _record(self, span: Span) -> None:
        dropped = 0
        with self._lock:
            if self._spans.maxlen is not None and (
                len(self._spans) == self._spans.maxlen
            ):
                dropped = 1
            self._spans.append(span)
        if dropped:
            self._dropped.inc()
        self._span_hist.observe(span.duration, name=span.name)

    def span(self, name: str, **attrs: Any) -> Any:
        """Open a span named ``name``; extra kwargs become attributes."""
        if not self._enabled:
            return _NOOP
        return _LiveSpan(self, name, attrs)

    def track(self, name: str | None) -> "_TrackCtx":
        """Label spans opened by this thread (e.g. ``rank3``)."""
        return _TrackCtx(self, name)

    # -- harvest -------------------------------------------------------
    def snapshot(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Return all finished spans and clear the buffer."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def dropped_spans(self) -> float:
        """Spans evicted from the ring so far (process lifetime)."""
        return self._dropped.value()

    def max_spans(self) -> int:
        """The ring capacity (0 = unbounded)."""
        return self._spans.maxlen or 0

    def reset_in_child(self) -> None:
        """Start clean in a freshly-started worker process.

        A fork child inherits the parent's recorded spans and even the
        forking thread's open-span stack; both belong to the parent.
        """
        with self._lock:
            self._spans.clear()
        self._active = {}
        self._tracks = {}
        self._local.stack = []
        self._local.track = None
        self._active[threading.get_ident()] = self._local.stack

    def adopt(self, spans: Iterable[Span]) -> None:
        """Merge spans recorded elsewhere (rank workers) into this tracer."""
        spans = list(spans)
        if not spans:
            return
        dropped = 0
        with self._lock:
            maxlen = self._spans.maxlen
            if maxlen is not None:
                dropped = max(0, len(self._spans) + len(spans) - maxlen)
            self._spans.extend(spans)
        if dropped:
            self._dropped.inc(dropped)

    # -- export --------------------------------------------------------
    def export_chrome(self, path: str | None = None, *,
                      drain: bool = False) -> dict:
        """Render spans as Chrome ``trace_event`` JSON.

        Returns the trace dict; also writes it to ``path`` when given.
        ``drain=True`` clears the buffer after exporting.
        """
        spans = self.drain() if drain else self.snapshot()
        doc = chrome_trace(spans)
        if path is not None:
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        return doc


def chrome_trace(spans: Iterable[Span]) -> dict:
    """Build a ``chrome://tracing`` document from finished spans.

    Each distinct track (``main``, ``rank0``..., or ``thread-<id>`` for
    unlabeled non-main threads) becomes one named "thread" row; spans
    become "X" complete events with microsecond timestamps.
    """
    spans = sorted(spans, key=lambda s: s.start)
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        track = span.track or ("main" if span.thread == _MAIN_THREAD
                               else f"thread-{span.thread}")
        tid = tids.setdefault(track, len(tids) + 1)
        event = {
            "name": span.name,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": tid,
        }
        args = dict(span.attrs)
        if span.parent is not None:
            args.setdefault("parent", span.parent)
        args["depth"] = span.depth
        event["args"] = args
        events.append(event)
    meta = [{"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "repro"}}]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                     "args": {"name": track}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": 1,
                     "tid": tid, "args": {"sort_index": tid}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


_MAIN_THREAD = threading.main_thread().ident

#: the process-wide tracer every layer records into
trace = Tracer()


class _TrackCtx:
    __slots__ = ("_tracer", "_name", "_prev")

    def __init__(self, tracer: Tracer, name: str | None):
        self._tracer = tracer
        self._name = name
        self._prev: str | None = None

    def __enter__(self) -> "_TrackCtx":
        local = self._tracer._local
        self._prev = getattr(local, "track", None)
        local.track = self._name
        self._tracer._tracks[threading.get_ident()] = self._name
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._local.track = self._prev
        self._tracer._tracks[threading.get_ident()] = self._prev
        return False


class Stopwatch:
    """Monotonic duration of a ``with`` block, in seconds.

    The observability layer's answer to ad-hoc ``perf_counter`` pairs
    in hot loops: callers that need a measured duration as *data* (the
    shared-memory comparator's per-task times, batch occupancy attrs)
    wrap the work in ``with stopwatch() as sw`` and read ``sw.elapsed``
    afterwards. Uses ``time.perf_counter`` — never the wall clock — so
    the parity packages stay free of wall-clock reads.
    """

    __slots__ = ("start", "elapsed")

    def __enter__(self) -> "Stopwatch":
        self.elapsed = 0.0
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self.start
        return False


def stopwatch() -> Stopwatch:
    """A fresh :class:`Stopwatch` context manager."""
    return Stopwatch()


def _autosave() -> None:  # pragma: no cover - exercised via subprocess in CI
    path = obs_trace_path()
    if path is None or not trace.enabled:
        return
    if trace.snapshot():
        try:
            trace.export_chrome(path)
        except OSError:
            pass


atexit.register(_autosave)
