"""Opt-in resource watchdog: RSS, /dev/shm drift, pool liveness, residency.

Slow leaks only surface as outages: /dev/shm residue from a missed
sweep, RSS creep, a rank worker that died under a pinned pool. The
:class:`ResourceWatchdog` samples the process's resource posture every
``REPRO_OBS_WATCHDOG_MS`` and publishes it as ``repro_watchdog_*``
gauges, so dashboards see the drift long before the outage.

The shm cross-check is the core: the vmpi pool registry says which
shared-memory names *should* currently exist (job-transient blocks,
swept when the job completes); the watchdog lists ``/dev/shm`` and
flags any registered name that stays on disk for
:data:`LEAK_SAMPLES` consecutive samples — that drift means a sweep
missed it. Leaks are counted and logged once per name as a structured
``watchdog_leak`` event.

Read-only shm contract: the watchdog observes ``/dev/shm`` purely via
``os.listdir``/``os.stat``. It never attaches, creates, or unlinks a
block — reclamation stays exclusively with the vmpi codec (see the
shm-lifecycle invariant).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

from repro.obs.lockwatch import make_lock
from repro.obs.logs import log_event
from repro.obs.metrics import REGISTRY
from repro.util.config import obs_watchdog_s

#: consecutive samples a registered shm name must persist on disk
#: before it is reported as leaked
LEAK_SAMPLES = 3

_SHM_DIR = "/dev/shm"


def _rss_bytes() -> int:
    """Resident set size of this process (0 where /proc is absent)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return 0


def default_shm_tracked() -> set[str]:
    """Shm names the vmpi pool registry currently claims."""
    from repro.vmpi.pool import active_pools

    names: set[str] = set()
    for pool in active_pools():
        names |= pool.registered_shm_names()
    return names


def _pools_health() -> list[dict[str, Any]]:
    from repro.vmpi.pool import pools_health

    return pools_health()


class ResourceWatchdog:
    """Background sampler of this process's resource posture."""

    def __init__(
        self,
        interval_s: float | None = None,
        *,
        shm_tracked: Callable[[], set[str]] = default_shm_tracked,
        leak_samples: int = LEAK_SAMPLES,
    ):
        self._interval = obs_watchdog_s() if interval_s is None else float(interval_s)
        self._shm_tracked = shm_tracked
        self._leak_samples = int(leak_samples)
        self._lock = make_lock("obs.watchdog")
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: shm name -> consecutive samples it has persisted on disk
        self._persist: dict[str, int] = {}
        self._warned: set[str] = set()
        #: label -> callable returning {tier: bytes} (service cache/store)
        self._sources: dict[str, Callable[[], dict[str, int]]] = {}
        self._last: dict[str, Any] = {}
        self._count = 0
        self._rss = REGISTRY.gauge(
            "repro_watchdog_rss_bytes",
            "Resident set size of the sampled process",
        )
        self._shm_bytes = REGISTRY.gauge(
            "repro_watchdog_shm_tracked_bytes",
            "Bytes of vmpi-registered shared-memory blocks present in /dev/shm",
        )
        self._shm_blocks = REGISTRY.gauge(
            "repro_watchdog_shm_tracked_blocks",
            "vmpi-registered shared-memory blocks present in /dev/shm",
        )
        self._pool_workers = REGISTRY.gauge(
            "repro_watchdog_pool_workers",
            "Rank-pool worker processes, by liveness state",
            labelnames=("state",),
        )
        self._store_bytes = REGISTRY.gauge(
            "repro_watchdog_store_bytes",
            "Bytes resident per factorization-store tier",
            labelnames=("tier",),
        )
        self._leaks = REGISTRY.counter(
            "repro_watchdog_shm_leaks_total",
            "Registered shm blocks that outlived their registration",
        )
        self._samples = REGISTRY.counter(
            "repro_watchdog_samples_total",
            "Watchdog sampling passes completed",
        )

    # -- residency sources ---------------------------------------------
    def add_residency_source(
        self, name: str, fn: Callable[[], dict[str, int]]
    ) -> None:
        """Register a ``{tier: bytes}`` provider (e.g. the solve service)."""
        with self._lock:
            self._sources[name] = fn

    def remove_residency_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self, interval_s: float | None = None) -> bool:
        """Start the sampler thread; idempotent. False if the period is 0."""
        period = self._interval if interval_s is None else float(interval_s)
        if period <= 0:
            return False
        with self._lock:
            if self._thread is not None:
                return True
            worker = threading.Thread(
                target=self._run, args=(period,),
                name="repro-obs-watchdog", daemon=True,
            )
            self._thread = worker
        # touched only by the thread that won the registration above;
        # staying outside the lock keeps _stop out of the guarded set
        self._stop.clear()
        worker.start()
        return True

    def stop(self) -> None:
        with self._lock:
            worker, self._thread = self._thread, None
        if worker is not None:
            self._stop.set()
            worker.join(timeout=2.0)
            self._stop.clear()

    def _run(self, period: float) -> None:
        while not self._stop.wait(period):
            try:
                self.sample()
            except Exception:  # noqa: BLE001 - sampling must never kill the host
                pass

    # -- sampling ------------------------------------------------------
    def sample(self) -> dict[str, Any]:
        """One sampling pass; returns (and retains) the readings."""
        rss = _rss_bytes()
        try:
            tracked = set(self._shm_tracked())
        except Exception:  # noqa: BLE001 - provider races teardown
            tracked = set()
        on_disk: dict[str, int] = {}
        try:
            listing = os.listdir(_SHM_DIR)
        except OSError:  # pragma: no cover - no /dev/shm on this platform
            listing = []
        for name in listing:
            if name in tracked:
                try:
                    on_disk[name] = os.stat(os.path.join(_SHM_DIR, name)).st_size
                except OSError:  # unlinked between listdir and stat
                    pass
        try:
            pools = _pools_health()
        except Exception:  # noqa: BLE001 - pool layer mid-teardown
            pools = []
        residency: dict[str, int] = {}
        for fn in dict(self._sources).values():
            try:
                for tier, nbytes in fn().items():
                    residency[tier] = residency.get(tier, 0) + int(nbytes)
            except Exception:  # noqa: BLE001 - source races shutdown
                continue
        leaks: list[tuple[str, int, int]] = []
        with self._lock:
            persist = {name: self._persist.get(name, 0) + 1 for name in on_disk}
            self._persist = persist
            for name, seen in persist.items():
                if seen >= self._leak_samples and name not in self._warned:
                    self._warned.add(name)
                    leaks.append((name, on_disk[name], seen))
            self._count += 1
            info = {
                "rss_bytes": rss,
                "shm_tracked_blocks": len(on_disk),
                "shm_tracked_bytes": sum(on_disk.values()),
                "pools": pools,
                "store_bytes": dict(residency),
                "leaked": sorted(self._warned),
                "samples": self._count,
            }
            self._last = info
        self._rss.set(rss)
        self._shm_bytes.set(sum(on_disk.values()))
        self._shm_blocks.set(len(on_disk))
        alive = sum(p["alive"] for p in pools)
        total = sum(p["workers"] for p in pools)
        self._pool_workers.set(alive, state="alive")
        self._pool_workers.set(total - alive, state="dead")
        for tier, nbytes in residency.items():
            self._store_bytes.set(nbytes, tier=tier)
        for name, nbytes, seen in leaks:
            self._leaks.inc()
            log_event(
                "watchdog_leak", name=name, bytes=nbytes, samples=seen,
            )
        self._samples.inc()
        return info

    def last(self) -> dict[str, Any]:
        """The most recent sample's readings (empty before any sample)."""
        with self._lock:
            return dict(self._last)

    def reset(self) -> None:
        """Drop persistence/leak state (tests only)."""
        with self._lock:
            self._persist = {}
            self._warned = set()
            self._last = {}
            self._count = 0


#: the process-wide watchdog (started by the service when
#: ``REPRO_OBS_WATCHDOG_MS`` > 0, or manually via ``watchdog.start``)
watchdog = ResourceWatchdog()
