"""Numerical solver-health telemetry.

Spans say where time went; this module says whether the *numerics* are
drifting. Two feeds:

* the factor sweep (both the strict and the level-batched engine)
  reports every box compression through :meth:`HealthMonitor.record_box`
  — per-level skeleton-rank and compression-ratio histograms catch rank
  growth long before a benchmark notices;
* the facade reports every Krylov outcome through
  :meth:`HealthMonitor.observe_krylov` — iteration counts, convergence,
  refinement stalls, and final relative residuals per method.

The process-wide :data:`health` monitor backs the ``repro_health_*``
metric families and the ``/stats`` + ``/debug`` health tables;
:func:`solve_health` builds the per-solve :class:`HealthReport` the
facade stamps onto :class:`~repro.api.report.SolveReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.obs.lockwatch import make_lock
from repro.obs.metrics import COUNT_BUCKETS, REGISTRY

#: buckets for skeleton-rank / box-size compression ratios (rank/size)
RATIO_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
#: log-spaced buckets for final relative residuals
RELRES_BUCKETS = (1e-14, 1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0)


@dataclass(frozen=True)
class HealthReport:
    """Per-solve numerical summary stamped onto ``SolveReport.health``."""

    #: per-level rows: level, boxes, avg_rank, max_rank, avg_compression
    levels: tuple[dict[str, Any], ...] = ()
    iterations: int = 0
    converged: bool = True
    stalled: bool = False
    final_relres: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "levels": [dict(row) for row in self.levels],
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "stalled": bool(self.stalled),
            "final_relres": (
                None if self.final_relres is None else float(self.final_relres)
            ),
        }


def solve_health(fact: Any, krylov: Any) -> HealthReport | None:
    """The :class:`HealthReport` of one finished solve, or ``None``.

    ``fact`` contributes per-level rank rows when it carries a
    :class:`~repro.core.stats.RankStats` (``fact.stats``); ``krylov``
    contributes refinement outcome fields when an iterative method ran.
    """
    rows: list[dict[str, Any]] = []
    stats = getattr(fact, "stats", None)
    if stats is not None and hasattr(stats, "table"):
        try:
            for level, avg_rank, max_rank, avg_box in stats.table():
                rows.append({
                    "level": int(level),
                    "boxes": len(stats.ranks.get(level, ())),
                    "avg_rank": float(avg_rank),
                    "max_rank": int(max_rank),
                    "avg_compression": (
                        float(avg_rank) / float(avg_box) if avg_box else 0.0
                    ),
                })
        except (AttributeError, TypeError):  # not RankStats-shaped
            rows = []
    if not rows and krylov is None:
        return None
    final = getattr(krylov, "final_residual", None)
    if final is not None and not math.isfinite(float(final)):
        final = None
    return HealthReport(
        levels=tuple(rows),
        iterations=int(getattr(krylov, "iterations", 0) or 0),
        converged=bool(getattr(krylov, "converged", True)),
        stalled=bool(getattr(krylov, "stalled", False)),
        final_relres=None if final is None else float(final),
    )


class HealthMonitor:
    """Cumulative, process-wide solver-health aggregates + metrics."""

    def __init__(self) -> None:
        self._lock = make_lock("obs.health")
        #: level -> {boxes, rank_sum, max_rank, size_sum, ratio_sum}
        self._levels: dict[int, dict[str, float]] = {}
        #: method -> {solves, iterations, converged, stalls, last_relres}
        self._krylov: dict[str, dict[str, Any]] = {}
        self._rank_hist = REGISTRY.histogram(
            "repro_health_skeleton_rank",
            "Skeleton rank selected per compressed box, by tree level",
            labelnames=("level",), buckets=COUNT_BUCKETS,
        )
        self._ratio_hist = REGISTRY.histogram(
            "repro_health_compression_ratio",
            "Skeleton rank over pre-compression box size, by tree level",
            labelnames=("level",), buckets=RATIO_BUCKETS,
        )
        self._iters = REGISTRY.counter(
            "repro_health_krylov_iterations_total",
            "Krylov/refinement iterations spent, by method",
            labelnames=("method",),
        )
        self._solves = REGISTRY.counter(
            "repro_health_krylov_solves_total",
            "Krylov solves observed, by method and convergence outcome",
            labelnames=("method", "converged"),
        )
        self._stalls = REGISTRY.counter(
            "repro_health_refinement_stalls_total",
            "Krylov solves whose residual stopped improving before "
            "convergence, by method",
            labelnames=("method",),
        )
        self._relres = REGISTRY.histogram(
            "repro_health_final_relres",
            "Final relative residual of Krylov solves, by method",
            labelnames=("method",), buckets=RELRES_BUCKETS,
        )

    # -- factor sweep --------------------------------------------------
    def record_box(self, level: int, size_before: int, rank: int) -> None:
        """One box compression: pre-compression size and chosen rank."""
        ratio = float(rank) / float(size_before) if size_before else 0.0
        with self._lock:
            agg = self._levels.setdefault(level, {
                "boxes": 0.0, "rank_sum": 0.0, "max_rank": 0.0,
                "size_sum": 0.0, "ratio_sum": 0.0,
            })
            agg["boxes"] += 1
            agg["rank_sum"] += rank
            agg["max_rank"] = max(agg["max_rank"], float(rank))
            agg["size_sum"] += size_before
            agg["ratio_sum"] += ratio
        self._rank_hist.observe(rank, level=level)
        self._ratio_hist.observe(ratio, level=level)

    # -- Krylov --------------------------------------------------------
    def observe_krylov(self, method: str, result: Any) -> None:
        """One finished Krylov/refinement solve (CGResult/GMRESResult)."""
        iterations = int(getattr(result, "iterations", 0) or 0)
        converged = bool(getattr(result, "converged", True))
        stalled = bool(getattr(result, "stalled", False))
        final = getattr(result, "final_residual", None)
        if final is not None and not math.isfinite(float(final)):
            final = None
        with self._lock:
            agg = self._krylov.setdefault(method, {
                "solves": 0, "iterations": 0, "converged": 0,
                "stalls": 0, "last_relres": None,
            })
            agg["solves"] += 1
            agg["iterations"] += iterations
            agg["converged"] += 1 if converged else 0
            agg["stalls"] += 1 if stalled else 0
            if final is not None:
                agg["last_relres"] = float(final)
        if iterations:
            self._iters.inc(iterations, method=method)
        self._solves.inc(method=method, converged="yes" if converged else "no")
        if stalled:
            self._stalls.inc(method=method)
        if final is not None:
            self._relres.observe(float(final), method=method)

    # -- harvest -------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """``{"levels": [...], "krylov": [...]}`` cumulative rollup."""
        with self._lock:
            levels = {lvl: dict(agg) for lvl, agg in self._levels.items()}
            krylov = {m: dict(agg) for m, agg in self._krylov.items()}
        level_rows = []
        for lvl in sorted(levels):
            agg = levels[lvl]
            boxes = agg["boxes"] or 1.0
            level_rows.append({
                "level": int(lvl),
                "boxes": int(agg["boxes"]),
                "avg_rank": agg["rank_sum"] / boxes,
                "max_rank": int(agg["max_rank"]),
                "avg_compression": agg["ratio_sum"] / boxes,
            })
        krylov_rows = []
        for method in sorted(krylov):
            agg = krylov[method]
            krylov_rows.append({
                "method": method,
                "solves": int(agg["solves"]),
                "iterations": int(agg["iterations"]),
                "converged": int(agg["converged"]),
                "stalls": int(agg["stalls"]),
                "last_relres": agg["last_relres"],
            })
        return {"levels": level_rows, "krylov": krylov_rows}

    def reset(self) -> None:
        """Drop the aggregates (tests only; metric families persist)."""
        with self._lock:
            self._levels = {}
            self._krylov = {}


#: the process-wide health monitor every layer reports into
health = HealthMonitor()
