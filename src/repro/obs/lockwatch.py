"""Runtime lock-order watchdog behind the ``REPRO_OBS`` flag.

The static lock-order graph (``repro.analysis``, lock-discipline
checker) proves ordering over the acquisitions it can resolve; this
module observes the orders that *actually happen*, including paths the
static one-level call resolution cannot see. :func:`make_lock` is the
project's lock factory:

* with observability off (the default) it returns a plain
  ``threading.Lock``/``RLock`` — zero overhead, byte-identical
  behavior;
* with ``REPRO_OBS=on`` it returns a :class:`WatchedLock` that keeps a
  thread-local stack of held lock names and a process-wide edge set
  ``held -> acquired``. An acquisition whose new edge closes a cycle
  logs one warning (per direction pair) on the ``repro.lockwatch``
  logger with both paths — the debugging artifact a once-a-week
  deadlock hang never leaves behind.

The flag is read once, at lock *creation*: pools, caches and servers
create their locks at construction, so toggling ``REPRO_OBS`` later
changes new objects only — exactly the tracer's semantics.

Lock names follow the span grammar (``vmpi.pool``, ``service.cache``)
so watchdog warnings join against trace output.
"""

from __future__ import annotations

import logging
import threading
from typing import Any

from repro.util.config import obs_enabled

logger = logging.getLogger("repro.lockwatch")

#: observed acquisition orders: (held_name, acquired_name)
_EDGES: set = set()
#: directions already warned about, so a hot path warns once
_WARNED: set = set()
_EDGES_LOCK = threading.Lock()
_HELD = threading.local()


def _held_stack() -> list:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = _HELD.stack = []
    return stack


def _reaches(src: str, dst: str) -> bool:
    """Whether ``src`` can reach ``dst`` through the observed edges."""
    stack, seen = [src], {src}
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        for a, b in _EDGES:
            if a == node and b not in seen:
                seen.add(b)
                stack.append(b)
    return False


class WatchedLock:
    """A named lock recording acquisition order (REPRO_OBS=on only)."""

    def __init__(self, name: str, *, reentrant: bool = False):
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._note_order()
        got = self._inner.acquire(blocking, timeout)
        if got:
            _held_stack().append(self.name)
        return got

    def release(self) -> None:
        stack = _held_stack()
        # release order may differ from acquire order; drop the newest
        # matching entry
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == self.name:
                del stack[i]
                break
        self._inner.release()

    def __enter__(self) -> "WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _note_order(self) -> None:
        held = _held_stack()
        for prior in held:
            if prior == self.name:
                continue  # reentrant re-acquire: no ordering information
            edge = (prior, self.name)
            if edge in _EDGES:
                continue
            with _EDGES_LOCK:
                if edge in _EDGES:
                    continue
                cycle = _reaches(self.name, prior)
                _EDGES.add(edge)
                if cycle and edge not in _WARNED:
                    _WARNED.add(edge)
                    logger.warning(
                        "lock-order inversion: acquiring %r while holding "
                        "%r, but the opposite order %r -> %r was also "
                        "observed — two threads interleaving these paths "
                        "can deadlock (held stack: %r)",
                        self.name, prior, self.name, prior, list(held),
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"WatchedLock({self.name!r}, {kind})"


def make_lock(name: str, *, reentrant: bool = False) -> Any:
    """The project's lock factory: plain lock, or watched under REPRO_OBS.

    ``name`` follows the span grammar (``vmpi.pool.registry``) and is
    the node label in watchdog warnings.
    """
    if obs_enabled():
        return WatchedLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def lock_order_edges() -> set:
    """Snapshot of the observed (held, acquired) order edges."""
    with _EDGES_LOCK:
        return set(_EDGES)


def reset_lock_watch() -> None:
    """Clear observed edges and warning state (tests)."""
    with _EDGES_LOCK:
        _EDGES.clear()
        _WARNED.clear()
    _HELD.stack = []
