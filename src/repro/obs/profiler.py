"""Sampling wall-clock profiler with span attribution.

A background thread walks ``sys._current_frames()`` at
``REPRO_OBS_PROFILE_HZ`` and attributes each thread's sample to the
innermost open span from the tracer's cross-thread mirror
(:meth:`Tracer.active_spans`), so profiles answer *what Python code a
span spent its time in* — the hotspot question span timings alone
cannot. Samples aggregate as collapsed stacks keyed by
``(track, span, frames)``; exports are folded-stack text (flamegraph
tooling) and speedscope JSON (https://www.speedscope.app).

Distributed runs mirror the span pipeline: rank worker processes run
their own profiler per job, ship the sample table back on
``RankReport.profile`` over the existing result channel, and
``run_spmd`` adopts the tables into the parent profiler — one profile
covers the parent plus every rank, on per-rank tracks.

Daemon threads parked outside any span in a known idle wait (queue
feeders, selector loops) are not recorded; a span-covered wait *is*
recorded, since it is part of that span's time.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
from types import FrameType
from typing import Any, Mapping

from repro.obs.lockwatch import make_lock
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import trace
from repro.util.config import obs_profile_hz, obs_profile_path

#: fallback rate when started without an explicit or configured rate
DEFAULT_HZ = 97.0
#: deepest stack recorded per sample
MAX_DEPTH = 128
#: attribution label for samples taken outside any open span
NO_SPAN = "(no span)"

#: one stack frame: (function, filename, first line of the function)
Frame = tuple[str, str, int]
#: one aggregation key: (track label, span name, root-first frames)
SampleKey = tuple[str, str, tuple[Frame, ...]]

#: (file basename, function) pairs marking a thread as idle-parked
_IDLE_FRAMES = {
    ("threading.py", "wait"),
    ("threading.py", "_wait_for_tstate_lock"),
    ("queue.py", "get"),
    ("selectors.py", "select"),
    ("connection.py", "poll"),
    ("connection.py", "wait"),
    ("connection.py", "_recv"),
    ("connection.py", "recv_bytes"),
    ("socket.py", "accept"),
    ("synchronize.py", "acquire"),
}

_MAIN_THREAD = threading.main_thread().ident


def _is_idle(frame: FrameType) -> bool:
    code = frame.f_code
    return (os.path.basename(code.co_filename), code.co_name) in _IDLE_FRAMES


def _walk(frame: FrameType | None) -> tuple[Frame, ...]:
    """Root-first frame tuples for one thread's current stack."""
    stack: list[Frame] = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH:
        code = frame.f_code
        stack.append((code.co_name, code.co_filename, code.co_firstlineno))
        frame = frame.f_back
        depth += 1
    stack.reverse()
    return tuple(stack)


class SamplingProfiler:
    """Aggregating wall-clock sampler for every thread of this process."""

    def __init__(self, hz: float | None = None):
        self._hz = obs_profile_hz() if hz is None else float(hz)
        self._lock = make_lock("obs.profiler")
        self._samples: dict[SampleKey, int] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._running_hz = 0.0
        self._last_hz = 0.0
        self._sampled = REGISTRY.counter(
            "repro_profile_samples_total",
            "Profiler samples taken, by whether a span claimed them",
            labelnames=("attributed",),
        )

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def active_hz(self) -> float:
        """The live sampling rate — 0.0 while stopped.

        This is what the vmpi dispatch path forwards to rank workers,
        mirroring how the tracer's enabled flag travels per job.
        """
        return self._running_hz

    def start(self, hz: float | None = None) -> bool:
        """Start the sampler thread; idempotent. False if the rate is 0."""
        rate = (self._hz or DEFAULT_HZ) if hz is None else float(hz)
        if rate <= 0:
            return False
        with self._lock:
            if self._thread is not None:
                return True
            worker = threading.Thread(
                target=self._run, args=(rate,),
                name="repro-obs-profiler", daemon=True,
            )
            self._thread = worker
            self._running_hz = rate
            self._last_hz = rate
        # the stop event is only ever touched from the starting/stopping
        # thread after the registration above won the lock; keeping it
        # outside the locked region keeps _stop out of the guarded set
        self._stop.clear()
        worker.start()
        return True

    def stop(self) -> None:
        """Stop the sampler thread (keeps the sample table)."""
        with self._lock:
            worker, self._thread = self._thread, None
            self._running_hz = 0.0
        if worker is not None:
            self._stop.set()
            worker.join(timeout=2.0)
            self._stop.clear()

    def reset_in_child(self) -> None:
        """Start clean in a freshly-started worker process.

        A fork child inherits the parent's sample table and a dead
        sampler "thread"; both belong to the parent.
        """
        self._stop = threading.Event()
        with self._lock:
            self._thread = None
            self._running_hz = 0.0
            self._last_hz = 0.0
            self._samples = {}

    # -- sampling ------------------------------------------------------
    def _run(self, hz: float) -> None:
        period = 1.0 / hz
        while not self._stop.wait(period):
            try:
                self._sample_once()
            except Exception:  # noqa: BLE001 - sampling must never kill the host
                pass

    def _sample_once(self) -> None:
        frames = sys._current_frames()
        spans = trace.active_spans()
        me = threading.get_ident()
        entries: list[tuple[SampleKey, bool]] = []
        for tid, frame in frames.items():
            if tid == me:
                continue
            span_name, track = spans.get(tid, (None, None))
            if span_name is None and _is_idle(frame):
                continue
            label = track or ("main" if tid == _MAIN_THREAD else f"thread-{tid}")
            key = (label, span_name or NO_SPAN, _walk(frame))
            entries.append((key, span_name is not None))
        if not entries:
            return
        with self._lock:
            for key, _attributed in entries:
                self._samples[key] = self._samples.get(key, 0) + 1
        attributed = sum(1 for _key, a in entries if a)
        if attributed:
            self._sampled.inc(attributed, attributed="yes")
        if len(entries) - attributed:
            self._sampled.inc(len(entries) - attributed, attributed="no")

    # -- harvest -------------------------------------------------------
    def snapshot_table(self) -> dict[SampleKey, int]:
        with self._lock:
            return dict(self._samples)

    def drain_table(self) -> dict[SampleKey, int]:
        """Return the sample table and clear it (rank-report shipping)."""
        with self._lock:
            table, self._samples = self._samples, {}
        return table

    def adopt(self, table: Mapping[SampleKey, int]) -> None:
        """Merge a sample table recorded elsewhere (rank workers)."""
        if not table:
            return
        with self._lock:
            for key, count in table.items():
                self._samples[key] = self._samples.get(key, 0) + int(count)

    def clear(self) -> None:
        with self._lock:
            self._samples = {}

    def stats(self) -> dict[str, Any]:
        """Attribution/track/span rollup of the current sample table."""
        table = self.snapshot_table()
        total = sum(table.values())
        attributed = 0
        tracks: dict[str, int] = {}
        span_counts: dict[str, int] = {}
        for (track, span, _frames), count in table.items():
            tracks[track] = tracks.get(track, 0) + count
            span_counts[span] = span_counts.get(span, 0) + count
            if span != NO_SPAN:
                attributed += count
        return {
            "running": self.running,
            "hz": self.active_hz,
            "samples": total,
            "attributed": attributed,
            "tracks": dict(sorted(tracks.items())),
            "spans": dict(sorted(span_counts.items(),
                                 key=lambda kv: -kv[1])),
        }

    # -- export --------------------------------------------------------
    def folded(self) -> str:
        """Collapsed stacks: ``track;span;frame;... count`` per line."""
        lines = []
        for (track, span, frames), count in sorted(self.snapshot_table().items()):
            parts = [track, span] + [name for name, _file, _line in frames]
            lines.append(f"{';'.join(parts)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> dict[str, Any]:
        """A speedscope "sampled" document, one profile per track.

        Each sample's root frame is its attributed span name (or
        ``(no span)``), so span attribution survives into the UI and
        downstream checks can read it off the root frames. Weights are
        seconds (sample count over the sampling rate).
        """
        table = self.snapshot_table()
        hz = self.active_hz or self._last_hz or self._hz or DEFAULT_HZ
        frame_list: list[dict[str, Any]] = []
        frame_idx: dict[tuple[Any, ...], int] = {}

        def intern(key: tuple[Any, ...], entry: dict[str, Any]) -> int:
            got = frame_idx.get(key)
            if got is None:
                got = frame_idx[key] = len(frame_list)
                frame_list.append(entry)
            return got

        per_track: dict[str, list[tuple[list[int], float]]] = {}
        for (track, span, frames), count in sorted(table.items()):
            stack = [intern(("span", span), {"name": span})]
            for func, fname, line in frames:
                stack.append(intern(("frame", func, fname, line),
                                    {"name": func, "file": fname, "line": line}))
            per_track.setdefault(track, []).append((stack, count / hz))
        profiles: list[dict[str, Any]] = []
        for track in sorted(per_track):
            samples = [stack for stack, _w in per_track[track]]
            weights = [w for _stack, w in per_track[track]]
            profiles.append({
                "type": "sampled",
                "name": track,
                "unit": "seconds",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            })
        doc: dict[str, Any] = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frame_list},
            "profiles": profiles,
            "name": name,
            "exporter": "repro.obs.profiler",
        }
        if profiles:
            doc["activeProfileIndex"] = 0
        return doc

    def export_speedscope(self, path: str,
                          name: str = "repro profile") -> dict[str, Any]:
        """Write :meth:`speedscope` JSON to ``path`` (atomic replace)."""
        doc = self.speedscope(name)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)
        return doc

    def export_folded(self, path: str) -> None:
        """Write :meth:`folded` text to ``path`` (atomic replace)."""
        text = self.folded()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)


#: the process-wide profiler (what vmpi forwards to rank workers)
profile = SamplingProfiler()

if obs_profile_hz() > 0:  # pragma: no cover - exercised via subprocess in CI
    profile.start()


def _autosave() -> None:  # pragma: no cover - exercised via subprocess in CI
    path = obs_profile_path()
    if path is None:
        return
    profile.stop()
    if profile.snapshot_table():
        try:
            profile.export_speedscope(path)
            profile.export_folded(path + ".folded")
        except OSError:
            pass


atexit.register(_autosave)
