"""Structured JSON request logs.

One line per event on the ``repro.requests`` logger: a flat JSON object
with stable keys (``event``, ``request_id``, ``status``, plus whatever
the caller adds). Nothing is emitted unless the host process configures
logging (``logging.basicConfig(level=logging.INFO)`` or
:func:`enable_stderr_logs`), so the default cost is one disabled-logger
check per request.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any

LOGGER = logging.getLogger("repro.requests")


def log_event(event: str, **fields: Any) -> None:
    """Emit one structured JSON log line (INFO) for ``event``."""
    if not LOGGER.isEnabledFor(logging.INFO):
        return
    record = {"event": event, "ts": round(time.time(), 6)}
    for key, value in fields.items():
        if value is None:
            continue
        if isinstance(value, float):
            value = round(value, 9)
        record[key] = value
    LOGGER.info(json.dumps(record, sort_keys=True, default=str))


def enable_stderr_logs(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the request logger (idempotent-ish:
    callers should hold on to the returned handler to remove it)."""
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    LOGGER.addHandler(handler)
    LOGGER.setLevel(level)
    return handler
