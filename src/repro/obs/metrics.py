"""Typed metrics: counters, gauges, histograms, and Prometheus text output.

A :class:`MetricsRegistry` holds named metric families; each family
carries zero or more label names and a value per label-set. Unlike span
tracing (gated by ``REPRO_OBS``), metrics are always live: an increment
is a lock plus a dict update, in line with the counters the service and
vmpi layers already keep unconditionally.

:func:`render_prometheus` emits text exposition format 0.0.4 (the format
``GET /metrics`` serves); :func:`parse_prometheus` is the strict
well-formedness parser the tests and CI use to accept that output.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default seconds buckets for latency histograms
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: default buckets for payload-size histograms (bytes)
BYTES_BUCKETS = (1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 25, 1 << 28)
#: default buckets for small-count histograms (batch occupancy, ranks)
COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def _fmt(value: float) -> str:
    """Format a sample value the way Prometheus clients do."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(names: tuple[str, ...], values: tuple[str, ...],
                  extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Common storage: one value slot per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        # Any, not object: Counter/Gauge store floats, Histogram stores
        # mutable state dicts — subclasses narrow per use site
        self._values: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)


class Counter(_Metric):
    """Monotonically increasing value (per label-set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(self._values.get(key, 0.0)) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """Value that can go up and down (resident bytes, queue depth...)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(self._values.get(key, 0.0)) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Histogram(_Metric):
    """Fixed-bucket histogram; exposition uses cumulative ``le`` counts."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...],
                 buckets: tuple[float, ...]):
        super().__init__(name, help, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
                self._values[key] = state
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    state["counts"][i] += 1
                    break
            state["sum"] += float(value)
            state["count"] += 1

    def snapshot(self, **labels: object) -> dict:
        with self._lock:
            state = self._values.get(self._key(labels))
            if state is None:
                return {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            return {"counts": list(state["counts"]), "sum": state["sum"],
                    "count": state["count"]}


class MetricsRegistry:
    """Process-wide, thread-safe collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with the same name return the same family (so many service
    instances share one counter), and a name registered as one kind
    cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Iterable[str], **kwargs) -> _Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Iterable[str] = (),
                  buckets: tuple[float, ...] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def collect(self) -> list[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def reset(self) -> None:
        """Drop every family (tests only — live handles go stale)."""
        with self._lock:
            self._metrics.clear()

    def render(self) -> str:
        return render_prometheus(self)


#: the process-wide default registry (what ``GET /metrics`` serves)
REGISTRY = MetricsRegistry()


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in Prometheus text exposition format 0.0.4."""
    registry = REGISTRY if registry is None else registry
    lines: list[str] = []
    for metric in registry.collect():
        # HELP text has its own escaping rules (no quotes, unlike labels)
        help_text = (metric.help or metric.name).replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        with metric._lock:
            items = sorted(metric._values.items())
        if isinstance(metric, Histogram):
            for key, state in items:
                cumulative = 0
                for edge, count in zip(metric.buckets, state["counts"]):
                    cumulative += count
                    suffix = _label_suffix(metric.labelnames, key, (("le", _fmt(edge)),))
                    lines.append(f"{metric.name}_bucket{suffix} {cumulative}")
                suffix = _label_suffix(metric.labelnames, key, (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{suffix} {state['count']}")
                base = _label_suffix(metric.labelnames, key)
                lines.append(f"{metric.name}_sum{base} {_fmt(state['sum'])}")
                lines.append(f"{metric.name}_count{base} {state['count']}")
        else:
            if not items and not metric.labelnames:
                items = [((), 0.0)]
            for key, value in items:
                suffix = _label_suffix(metric.labelnames, key)
                lines.append(f"{metric.name}{suffix} {_fmt(float(value))}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# exposition-format parser (tests + CI well-formedness gate)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+(?P<ts>-?[0-9]+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse text exposition format; raise ``ValueError`` if malformed.

    Returns ``{sample_name: [(labels, value), ...]}``. Checks the
    invariants a Prometheus scraper enforces: HELP/TYPE comment syntax,
    known metric kinds, sample-line grammar, parseable values, and that
    every histogram has a ``+Inf`` bucket with matching ``_count``.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.split("\n"), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in {"HELP", "TYPE"}:
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in {
                    "counter", "gauge", "histogram", "summary", "untyped"
                }:
                    raise ValueError(f"line {lineno}: bad TYPE {line!r}")
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        labels: dict[str, str] = {}
        raw_labels = m.group("labels")
        if raw_labels is not None and raw_labels.strip():
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw_labels):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
            rest = raw_labels[consumed:].strip().strip(",")
            if rest:
                raise ValueError(f"line {lineno}: bad labels {raw_labels!r}")
        raw_value = m.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {raw_value!r}") from exc
        samples.setdefault(m.group("name"), []).append((labels, value))
    for name, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{name}_bucket", [])
        counts = samples.get(f"{name}_count", [])
        if buckets and not any(lb.get("le") == "+Inf" for lb, _v in buckets):
            raise ValueError(f"histogram {name} missing +Inf bucket")
        for labels, total in counts:
            inf = [v for lb, v in buckets
                   if lb.get("le") == "+Inf"
                   and {k: x for k, x in lb.items() if k != "le"} == labels]
            if inf and inf[0] != total:
                raise ValueError(f"histogram {name} +Inf bucket != _count")
    return samples
