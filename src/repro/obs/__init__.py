"""Observability: span tracing, typed metrics, structured request logs.

Three surfaces over one instrumentation layer:

* ``trace`` — the process-wide :class:`~repro.obs.tracer.Tracer`.
  ``with trace.span("factor.level", level=3): ...`` records nested
  spans when ``REPRO_OBS=on`` (off by default; disabled spans are a
  shared no-op). ``trace.export_chrome(path)`` writes the timeline as
  Chrome ``trace_event`` JSON; ``REPRO_OBS_TRACE_PATH`` autosaves at
  process exit.
* ``REGISTRY`` — the default :class:`~repro.obs.metrics.MetricsRegistry`
  of counters/gauges/histograms, always live, rendered by the service's
  ``GET /metrics`` in Prometheus text exposition format.
* ``log_event`` — structured JSON request-log lines on the
  ``repro.requests`` logger.
* ``profile`` — the process-wide sampling
  :class:`~repro.obs.profiler.SamplingProfiler` (span-attributed
  wall-clock samples at ``REPRO_OBS_PROFILE_HZ``, speedscope/folded
  export).
* ``health`` — the :class:`~repro.obs.health.HealthMonitor` of
  numerical solver-health aggregates (skeleton ranks, compression
  ratios, Krylov outcomes).
* ``watchdog`` — the opt-in :class:`~repro.obs.watchdog.ResourceWatchdog`
  publishing RSS, tracked /dev/shm bytes, pool liveness, and store
  residency as gauges (``REPRO_OBS_WATCHDOG_MS``).

Plus one guardrail: ``make_lock`` — the project's lock factory. Plain
``threading`` locks by default; under ``REPRO_OBS=on`` they become
:class:`~repro.obs.lockwatch.WatchedLock` s that record acquisition
order and warn on lock-order inversions (the runtime complement of the
static lock-order graph in ``repro.analysis``).
"""

from repro.obs.lockwatch import (
    WatchedLock,
    lock_order_edges,
    make_lock,
    reset_lock_watch,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.tracer import Span, Stopwatch, Tracer, chrome_trace, stopwatch, trace
from repro.obs.logs import enable_stderr_logs, log_event
from repro.obs.profiler import SamplingProfiler, profile
from repro.obs.health import HealthMonitor, HealthReport, health, solve_health
from repro.obs.watchdog import ResourceWatchdog, watchdog

#: every ``REPRO_OBS_*`` knob the observability layer reads — the
#: obs-conventions checker cross-checks this registry against the
#: accessors in ``repro.util.config``, so an undeclared knob is a CI
#: finding rather than a silently ignored environment variable.
OBS_KNOBS = (
    "REPRO_OBS",
    "REPRO_OBS_TRACE_PATH",
    "REPRO_OBS_PROFILE_HZ",
    "REPRO_OBS_PROFILE_PATH",
    "REPRO_OBS_MAX_SPANS",
    "REPRO_OBS_WATCHDOG_MS",
)

__all__ = [
    "HealthMonitor",
    "HealthReport",
    "OBS_KNOBS",
    "ResourceWatchdog",
    "SamplingProfiler",
    "health",
    "profile",
    "solve_health",
    "watchdog",
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Stopwatch",
    "Tracer",
    "WatchedLock",
    "chrome_trace",
    "enable_stderr_logs",
    "lock_order_edges",
    "log_event",
    "make_lock",
    "parse_prometheus",
    "render_prometheus",
    "reset_lock_watch",
    "stopwatch",
    "trace",
]
