"""Observability: span tracing, typed metrics, structured request logs.

Three surfaces over one instrumentation layer:

* ``trace`` — the process-wide :class:`~repro.obs.tracer.Tracer`.
  ``with trace.span("factor.level", level=3): ...`` records nested
  spans when ``REPRO_OBS=on`` (off by default; disabled spans are a
  shared no-op). ``trace.export_chrome(path)`` writes the timeline as
  Chrome ``trace_event`` JSON; ``REPRO_OBS_TRACE_PATH`` autosaves at
  process exit.
* ``REGISTRY`` — the default :class:`~repro.obs.metrics.MetricsRegistry`
  of counters/gauges/histograms, always live, rendered by the service's
  ``GET /metrics`` in Prometheus text exposition format.
* ``log_event`` — structured JSON request-log lines on the
  ``repro.requests`` logger.
"""

from repro.obs.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.tracer import Span, Tracer, chrome_trace, trace
from repro.obs.logs import enable_stderr_logs, log_event

__all__ = [
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Tracer",
    "chrome_trace",
    "enable_stderr_logs",
    "log_event",
    "parse_prometheus",
    "render_prometheus",
    "trace",
]
