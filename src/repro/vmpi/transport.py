"""In-process message transport: per-rank mailboxes.

Payloads are deep-copied on ``put`` so that ranks never share mutable
state — the only way data crosses rank boundaries is by value, exactly
as in a real distributed-memory machine.
"""

from __future__ import annotations

import copy
import dataclasses
import pickle
import queue
from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass
class Message:
    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    sent_time: float


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload in bytes.

    Sizes are dtype-accurate for arrays and numpy scalars (``.nbytes``)
    and use fixed wire widths for Python scalars (int64/double/complex
    double), so the per-rank byte counters behind ``SPMDRun.total_bytes``
    are comparable across runs, dtypes, and execution backends.
    """
    if obj is None:
        return 8
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, np.generic):  # before the Python-scalar branch:
        return obj.nbytes  # np.float64 etc. subclass Python float
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, bool):  # before int: bool subclasses int
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, complex):
        return 16
    if isinstance(obj, (list, tuple, set)):
        return 16 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 16 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return 16 + sum(
            payload_nbytes(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable payloads
        return 64


def sanitize(obj: Any) -> Any:
    """Deep-copy a payload (ndarray-aware, cheaper than pickle round-trip)."""
    if obj is None or isinstance(obj, (int, float, complex, bool, str, bytes, np.generic)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(sanitize(x) for x in obj)
    if isinstance(obj, list):
        return [sanitize(x) for x in obj]
    if isinstance(obj, set):
        return {sanitize(x) for x in obj}
    if isinstance(obj, dict):
        return {sanitize(k): sanitize(v) for k, v in obj.items()}
    return copy.deepcopy(obj)


class Transport:
    """One unbounded in-process mailbox per rank (thread backend).

    Ranks share an address space here, so ``needs_copy`` tells the
    communicator to deep-copy payloads on send; process-isolated
    transports (:class:`~repro.vmpi.process_backend.ProcessTransport`)
    set it to ``False`` because isolation is physical.
    """

    needs_copy = True

    def __init__(self, nranks: int):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self._mailboxes: list[queue.SimpleQueue] = [queue.SimpleQueue() for _ in range(nranks)]

    def put(self, message: Message) -> None:
        if not (0 <= message.dest < self.nranks):
            raise ValueError(f"invalid destination rank {message.dest}")
        self._mailboxes[message.dest].put(message)

    def get(self, rank: int, timeout: float) -> Message:
        return self._mailboxes[rank].get(timeout=timeout)
