"""The communicator: point-to-point sends/receives and collectives.

Collectives are built from point-to-point messages using binomial
trees, so their simulated cost follows from the alpha-beta model with
the textbook ``O(log p)`` depth — this is what makes the coarse levels
of the parallel factorization behave like a reduction (Sec. IV-B).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.vmpi.clock import CostModel, SimClock
from repro.vmpi.transport import Message, payload_nbytes, sanitize


class DeadlockError(RuntimeError):
    """A blocking receive timed out — the SPMD program is stuck."""


class Counters:
    """Per-rank communication counters (Sec. IV-B accounting)."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.bytes_received = 0

    def as_dict(self) -> dict[str, int]:
        return dict(
            messages_sent=self.messages_sent,
            bytes_sent=self.bytes_sent,
            messages_received=self.messages_received,
            bytes_received=self.bytes_received,
        )


class Comm:
    """Communicator bound to one rank of an SPMD run."""

    #: default blocking-receive timeout (seconds of *wall* time)
    TIMEOUT = 600.0

    def __init__(
        self,
        transport,  # Transport-shaped: .nranks, .put(Message), .get(rank, timeout)
        rank: int,
        *,
        cost_model: CostModel | None = None,
        copy_payloads: bool = True,
    ):
        self.transport = transport
        self.rank = rank
        self.size = transport.nranks
        self.clock = SimClock(cost_model)
        self.counters = Counters()
        self.copy_payloads = copy_payloads
        # out-of-order buffer: (source, tag) -> fifo list of messages
        self._pending: dict[tuple[int, int], list[Message]] = {}

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Buffered (non-blocking) send."""
        if dest == self.rank:
            raise ValueError("send to self is not supported; keep data local")
        # process-isolated transports make the defensive deep copy redundant
        needs_copy = self.copy_payloads and getattr(self.transport, "needs_copy", True)
        data = sanitize(payload) if needs_copy else payload
        nbytes = payload_nbytes(data)
        stamp = self.clock.on_send()
        self.transport.put(Message(self.rank, dest, tag, data, nbytes, stamp))
        # count only after the transport accepted the message, so a
        # failed put (e.g. unpicklable payload on the process backend)
        # does not skew cross-backend counter parity
        self.counters.messages_sent += 1
        self.counters.bytes_sent += nbytes

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive matching ``(source, tag)``."""
        msg = self._match(source, tag)
        self.clock.on_receive(msg.sent_time, msg.nbytes)
        self.counters.messages_received += 1
        self.counters.bytes_received += msg.nbytes
        return msg.payload

    def _match(self, source: int, tag: int) -> Message:
        key = (source, tag)
        fifo = self._pending.get(key)
        if fifo:
            msg = fifo.pop(0)
            if not fifo:
                del self._pending[key]
            return msg
        while True:
            try:
                msg = self.transport.get(self.rank, timeout=self.TIMEOUT)
            except Exception as exc:
                raise DeadlockError(
                    f"rank {self.rank}: timed out waiting for message "
                    f"(source={source}, tag={tag}); pending keys: {list(self._pending)}"
                ) from exc
            if msg.source == source and msg.tag == tag:
                return msg
            self._pending.setdefault((msg.source, msg.tag), []).append(msg)

    # ------------------------------------------------------------------
    # collectives (binomial trees rooted wherever needed)
    # ------------------------------------------------------------------
    def barrier(self, tag: int = -1) -> None:
        """Synchronize all ranks (reduce-to-0 then broadcast)."""
        self._reduce_tree(None, lambda a, b: None, 0, tag)
        self.bcast(None, 0, tag=tag)

    def bcast(self, payload: Any, root: int, tag: int = -2) -> Any:
        """Broadcast ``payload`` from ``root`` down a binomial tree."""
        rel = (self.rank - root) % self.size
        if rel != 0:
            parent = (root + _tree_parent(rel)) % self.size
            payload = self.recv(parent, tag)
        for child_rel in _tree_children(rel, self.size):
            self.send(payload, (root + child_rel) % self.size, tag)
        return payload

    def reduce(self, payload: Any, op: Callable[[Any, Any], Any], root: int, tag: int = -3) -> Any:
        """Reduce with ``op`` to ``root``; returns the result at root, else None."""
        return self._reduce_tree(payload, op, root, tag)

    def allreduce(self, payload: Any, op: Callable[[Any, Any], Any], tag: int = -4) -> Any:
        out = self._reduce_tree(payload, op, 0, tag)
        return self.bcast(out, 0, tag=tag)

    def gather(self, payload: Any, root: int, tag: int = -5) -> list[Any] | None:
        """Gather one payload per rank to ``root`` (rank order preserved)."""
        combined = self._reduce_tree({self.rank: payload}, _merge_dicts, root, tag)
        if self.rank != root:
            return None
        assert combined is not None
        return [combined[r] for r in range(self.size)]

    def allgather(self, payload: Any, tag: int = -6) -> list[Any]:
        out = self.gather(payload, 0, tag=tag)
        return self.bcast(out, 0, tag=tag)

    def scatter(self, payloads: list[Any] | None, root: int, tag: int = -7) -> Any:
        """Scatter one item per rank from ``root``."""
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("root must provide exactly one payload per rank")
            # send down a binomial tree: each subtree gets its slice
            items = {r: payloads[r] for r in range(self.size)}
        else:
            items = None
        mine = self._scatter_tree(items, root, tag)
        return mine

    # -- tree helpers ----------------------------------------------------
    def _reduce_tree(self, payload: Any, op: Callable[[Any, Any], Any], root: int, tag: int) -> Any:
        rel = (self.rank - root) % self.size
        acc = payload
        for child_rel in reversed(_tree_children(rel, self.size)):
            child_val = self.recv((root + child_rel) % self.size, tag)
            acc = op(acc, child_val)
        if rel != 0:
            self.send(acc, (root + _tree_parent(rel)) % self.size, tag)
            return None
        return acc

    def _scatter_tree(self, items: dict[int, Any] | None, root: int, tag: int) -> Any:
        rel = (self.rank - root) % self.size
        if rel != 0:
            parent = (root + _tree_parent(rel)) % self.size
            items = self.recv(parent, tag)
        assert items is not None
        for child_rel in _tree_children(rel, self.size):
            child_rank = (root + child_rel) % self.size
            subtree = _subtree_rel_ranks(child_rel, self.size)
            chunk = {(root + r) % self.size: items[(root + r) % self.size] for r in subtree}
            self.send(chunk, child_rank, tag)
        return items[self.rank]


def _tree_parent(rel: int) -> int:
    """Parent in the binomial broadcast tree (relative numbering)."""
    return rel & (rel - 1)  # clear lowest set bit


def _tree_children(rel: int, size: int) -> list[int]:
    """Children of ``rel`` in the binomial tree over ``range(size)``."""
    children = []
    low = rel & -rel if rel else 1 << 62
    bit = 1
    while bit < low and rel + bit < size:
        children.append(rel + bit)
        bit <<= 1
    if rel == 0:
        children = []
        bit = 1
        while bit < size:
            children.append(bit)
            bit <<= 1
    return children


def _subtree_rel_ranks(child_rel: int, size: int) -> list[int]:
    """All relative ranks in the binomial subtree rooted at ``child_rel``."""
    out = [child_rel]
    for grand in _tree_children(child_rel, size):
        out.extend(_subtree_rel_ranks(grand, size))
    return out


def _merge_dicts(a: dict | None, b: dict | None) -> dict:
    out = dict(a or {})
    out.update(b or {})
    return out
