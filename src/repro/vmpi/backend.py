"""Execution backends: how the ranks of an SPMD run actually execute.

Two interchangeable implementations sit behind
:func:`repro.vmpi.launcher.run_spmd`:

* :class:`ThreadBackend` — every rank is an OS thread in this process.
  Deterministic, cheap to launch, and payloads are deep-copied on send
  so rank state stays private; the GIL serializes rank *compute*, so
  wall-clock does not scale (simulated time still does). This is the
  default and what the test suite runs on.
* :class:`~repro.vmpi.process_backend.ProcessBackend` — every rank is
  an OS process; ``np.ndarray`` payloads travel through
  ``multiprocessing.shared_memory`` blocks (one producer copy, zero
  receiver copies) and everything else is pickled. Rank compute runs
  truly in parallel, so wall-clock scales with cores.

Both backends drive the exact same :class:`~repro.vmpi.comm.Comm`
protocol code, so message/byte counters and all computed results are
identical — only the physical execution differs. Select a backend with
the ``backend=`` argument to ``run_spmd``/``parallel_srs_factor`` or
globally with ``REPRO_VMPI_BACKEND=thread|process``.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import trace
from repro.util.config import vmpi_backend
from repro.vmpi.clock import CostModel
from repro.vmpi.comm import Comm
from repro.vmpi.transport import Transport


@dataclass
class RankReport:
    """Per-rank outcome of an SPMD run."""

    rank: int
    sim_time: float
    compute_time: float
    other_time: float
    messages_sent: int
    bytes_sent: int
    messages_received: int
    bytes_received: int
    #: spans recorded on this rank while tracing was enabled; process
    #: backends ship them back over the result channel, and ``run_spmd``
    #: adopts them into the parent tracer (empty when tracing is off,
    #: and for the thread backend, whose spans land in the parent
    #: tracer directly)
    spans: list = field(default_factory=list)
    #: profiler sample table recorded on this rank while the parent was
    #: profiling — shipped and adopted exactly like ``spans`` (empty for
    #: the thread backend, whose rank threads the parent profiler
    #: samples in-process)
    profile: dict = field(default_factory=dict)


@dataclass
class SPMDRun:
    """Results and reports of all ranks."""

    results: list[Any]
    reports: list[RankReport]

    @property
    def elapsed(self) -> float:
        """Simulated parallel wall time: the slowest rank's clock."""
        return max(r.sim_time for r in self.reports)

    @property
    def compute(self) -> float:
        """Simulated compute portion of the critical path (``t_comp``)."""
        slowest = max(self.reports, key=lambda r: r.sim_time)
        return slowest.compute_time

    @property
    def other(self) -> float:
        """Communication + overhead on the critical path (``t_other``)."""
        slowest = max(self.reports, key=lambda r: r.sim_time)
        return slowest.other_time

    @property
    def total_messages(self) -> int:
        return sum(r.messages_sent for r in self.reports)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.reports)

    def max_messages_per_rank(self) -> int:
        return max(r.messages_sent for r in self.reports)

    def max_bytes_per_rank(self) -> int:
        return max(r.bytes_sent for r in self.reports)


def report_from_comm(comm: Comm) -> RankReport:
    """Snapshot a rank's clock and counters into a :class:`RankReport`."""
    return RankReport(
        rank=comm.rank,
        sim_time=comm.clock.local_time,
        compute_time=comm.clock.compute_time,
        other_time=comm.clock.other_time,
        messages_sent=comm.counters.messages_sent,
        bytes_sent=comm.counters.bytes_sent,
        messages_received=comm.counters.messages_received,
        bytes_received=comm.counters.bytes_received,
    )


class ExecutionBackend(ABC):
    """Strategy for executing ``fn(comm, *args)`` on every rank."""

    #: short name used by config / benchmarks ("thread", "process")
    name: str

    @abstractmethod
    def run(
        self,
        nranks: int,
        fn: Callable[..., Any],
        args: tuple,
        *,
        cost_model: CostModel | None = None,
        copy_payloads: bool = True,
        timeout: float = 3600.0,
    ) -> SPMDRun:
        """Execute the SPMD program and collect per-rank results/reports."""


class ThreadBackend(ExecutionBackend):
    """One daemon thread per rank, in-process mailbox transport."""

    name = "thread"

    def run(
        self,
        nranks: int,
        fn: Callable[..., Any],
        args: tuple,
        *,
        cost_model: CostModel | None = None,
        copy_payloads: bool = True,
        timeout: float = 3600.0,
    ) -> SPMDRun:
        transport = Transport(nranks)
        comms = [
            Comm(transport, r, cost_model=cost_model, copy_payloads=copy_payloads)
            for r in range(nranks)
        ]
        results: list[Any] = [None] * nranks
        errors: list[tuple[int, BaseException]] = []

        def worker(rank: int) -> None:
            try:
                # spans from rank threads land in the parent tracer
                # directly, labeled with a per-rank track
                with trace.track(f"rank{rank}"), trace.span("vmpi.rank", rank=rank):
                    results[rank] = fn(comms[rank], *args)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((rank, exc))

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"vmpi-rank-{r}", daemon=True)
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)
            if t.is_alive():
                raise TimeoutError(
                    f"SPMD run did not finish within {timeout}s ({t.name} alive)"
                )
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc

        return SPMDRun(results, [report_from_comm(c) for c in comms])


def effective_cpu_count() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the cgroup/cpuset: a
    container pinned to one core of a 64-core host would look
    64-core. CPU affinity (``os.sched_getaffinity``) reflects the real
    budget where the platform exposes it (Linux); elsewhere fall back
    to the machine count.
    """
    import os

    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def auto_backend_name() -> str:
    """The backend ``auto`` resolves to: thread vs process by core budget.

    On a single usable core the process backend is pure overhead (fork +
    pickle with no parallel compute to win back), so ``auto`` keeps the
    deterministic thread backend there and switches to processes as
    soon as more cores are available and shared memory works. The core
    budget honors CPU affinity, so a cpuset-restricted container is
    treated as the small box it effectively is.
    """
    if effective_cpu_count() > 1:
        from repro.vmpi.process_backend import process_backend_available

        if process_backend_available():
            return "process"
    return "thread"


def resolve_backend(spec: str | ExecutionBackend | None = None) -> ExecutionBackend:
    """Turn a backend spec into a backend instance.

    ``None`` falls back to the configured default (the
    ``REPRO_VMPI_BACKEND`` environment variable, ``thread`` if unset).
    Strings name a built-in backend (``auto`` picks thread vs process
    by core count); instances pass through unchanged.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    # normalize explicit strings the same way the env path does
    # (empty/blank falls back to the configured default, like an unset var)
    name = (spec.strip().lower() or vmpi_backend()) if isinstance(spec, str) else vmpi_backend()
    if name == "auto":
        name = auto_backend_name()
    if name == "thread":
        return ThreadBackend()
    if name == "process":
        from repro.vmpi.process_backend import ProcessBackend, process_backend_available

        if not process_backend_available():
            raise RuntimeError(
                "the 'process' execution backend is unavailable on this platform "
                "(multiprocessing.shared_memory could not allocate); "
                "use REPRO_VMPI_BACKEND=thread"
            )
        return ProcessBackend()
    raise ValueError(
        f"unknown execution backend {name!r} (expected 'thread', 'process', or 'auto')"
    )
