"""2D process grid aligned with the quadtree, and its 4-coloring.

``p`` ranks form a ``sqrt(p) x sqrt(p)`` grid whose cells are exactly
the boxes at tree level ``log4(p)`` — each rank owns the subtree below
its cell. Rank ids follow the Morton order of grid coordinates so that
the 4-to-1 rank reduction at coarse levels (Sec. III-C) keeps sibling
ranks contiguous: the reduction leader of a sibling group is the rank
with the low two Morton bits cleared.

The 4-coloring is the parity coloring ``(px mod 2) + 2 (py mod 2)``
(Fig. 5): adjacent ranks always differ in at least one parity, and four
colors suffice for any 2D grid.
"""

from __future__ import annotations

import math

from repro.geometry.morton import morton_decode, morton_encode


class ProcessGrid2D:
    """Square process grid with Morton rank numbering."""

    def __init__(self, p: int):
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        side = math.isqrt(p)
        if side * side != p or (side & (side - 1)) != 0:
            raise ValueError(
                f"p must be a power-of-two squared (1, 4, 16, 64, ...), got {p}"
            )
        self.p = p
        self.side = side
        #: tree level whose boxes coincide with the grid cells
        self.level = side.bit_length() - 1

    def coords_of(self, rank: int) -> tuple[int, int]:
        if not (0 <= rank < self.p):
            raise ValueError(f"rank {rank} out of range for p={self.p}")
        return morton_decode(rank)

    def rank_of(self, px: int, py: int) -> int:
        if not (0 <= px < self.side and 0 <= py < self.side):
            raise ValueError(f"grid coords ({px},{py}) out of range (side={self.side})")
        return morton_encode(px, py)

    def color(self, rank: int) -> int:
        """Parity color in {0, 1, 2, 3} (Fig. 5)."""
        px, py = self.coords_of(rank)
        return (px % 2) + 2 * (py % 2)

    def neighbor_ranks(self, rank: int) -> list[int]:
        """Grid-adjacent ranks (Chebyshev distance 1)."""
        px, py = self.coords_of(rank)
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                qx, qy = px + dx, py + dy
                if 0 <= qx < self.side and 0 <= qy < self.side:
                    out.append(self.rank_of(qx, qy))
        return sorted(out)

    def colors_in_use(self) -> list[int]:
        """Distinct colors present (fewer than 4 on tiny grids)."""
        return sorted({self.color(r) for r in range(self.p)})

    # ------------------------------------------------------------------
    # 4-to-1 reduction (coarse levels)
    # ------------------------------------------------------------------
    @staticmethod
    def group_leader(rank: int) -> int:
        """Leader of the sibling quad containing ``rank``."""
        return rank & ~0x3

    @staticmethod
    def is_active_at_reduction(rank: int, reductions: int) -> bool:
        """Whether ``rank`` still participates after ``reductions`` 4-to-1 steps."""
        return rank % (4**reductions) == 0

    def active_side_after(self, reductions: int) -> int:
        return max(1, self.side >> reductions)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ProcessGrid2D(p={self.p}, side={self.side}, level={self.level})"
