"""Distributed arrays (the paper's ``DistributedArrays.jl`` substrate).

The paper stores its per-box data structures in distributed arrays with
the access rule: *"a process can make a fast local access but has only
read permission for a remote access"* (Sec. III). :class:`DArray`
reproduces exactly that contract over the vmpi communicator:

* the global index space is block-partitioned over ranks;
* local reads/writes touch the local block directly;
* remote reads go through an explicit request/serve message pair
  (one-sided access is emulated by a cooperative ``serve`` step, since
  Julia's ``Distributed`` has no RDMA either — the paper makes the same
  point and uses remote procedure calls);
* remote writes raise.

All ranks must call the collective methods (``gather``, ``exchange``)
together; ``fetch_remote`` is paired with ``serve`` on the owner.
"""

from __future__ import annotations

import numpy as np

from repro.vmpi.comm import Comm

_TAG_FETCH_REQ = -100
_TAG_FETCH_DATA = -101


def block_bounds(n: int, size: int, rank: int) -> tuple[int, int]:
    """Contiguous block partition of ``range(n)`` over ``size`` ranks."""
    base, extra = divmod(n, size)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


class DArray:
    """Block-distributed dense vector/matrix (rows distributed)."""

    def __init__(self, comm: Comm, n: int, *, dtype=np.float64, ncols: int = 0):
        if n < 0:
            raise ValueError(f"n must be nonnegative, got {n}")
        self.comm = comm
        self.n = n
        self.ncols = ncols
        self.dtype = np.dtype(dtype)
        self.lo, self.hi = block_bounds(n, comm.size, comm.rank)
        shape = (self.hi - self.lo,) if ncols == 0 else (self.hi - self.lo, ncols)
        self.local = np.zeros(shape, dtype=self.dtype)

    # ------------------------------------------------------------------
    def owner(self, index: int) -> int:
        """Rank owning global row ``index``."""
        if not (0 <= index < self.n):
            raise IndexError(f"index {index} out of range for DArray of length {self.n}")
        for r in range(self.comm.size):
            lo, hi = block_bounds(self.n, self.comm.size, r)
            if lo <= index < hi:
                return r
        raise AssertionError("unreachable")

    def is_local(self, index: int) -> bool:
        return self.lo <= index < self.hi

    # -- local access ----------------------------------------------------
    def __getitem__(self, index: int):
        if not self.is_local(index):
            raise PermissionError(
                f"rank {self.comm.rank}: direct read of remote index {index} "
                f"(owned by rank {self.owner(index)}); use fetch_remote/serve"
            )
        return self.local[index - self.lo]

    def __setitem__(self, index: int, value) -> None:
        if not self.is_local(index):
            raise PermissionError(
                f"rank {self.comm.rank}: write to remote index {index} denied "
                "(distributed arrays are remotely read-only, Sec. III)"
            )
        self.local[index - self.lo] = value

    def set_local_block(self, values: np.ndarray) -> None:
        if values.shape != self.local.shape:
            raise ValueError(f"expected shape {self.local.shape}, got {values.shape}")
        self.local[...] = values

    # -- remote access (request/serve pairs) ------------------------------
    def fetch_remote(self, indices: np.ndarray, source: int) -> np.ndarray:
        """Read rows owned by ``source``; the owner must call :meth:`serve`."""
        indices = np.asarray(indices, dtype=np.int64)
        self.comm.send(indices, source, tag=_TAG_FETCH_REQ)
        return self.comm.recv(source, tag=_TAG_FETCH_DATA)

    def serve(self, requester: int) -> None:
        """Answer one :meth:`fetch_remote` call from ``requester``."""
        indices = self.comm.recv(requester, tag=_TAG_FETCH_REQ)
        bad = (indices < self.lo) | (indices >= self.hi)
        if np.any(bad):
            raise IndexError(
                f"rank {self.comm.rank}: asked to serve non-local rows "
                f"{indices[bad][:5].tolist()}"
            )
        self.comm.send(self.local[indices - self.lo], requester, tag=_TAG_FETCH_DATA)

    # -- collectives -------------------------------------------------------
    def gather(self, root: int = 0) -> np.ndarray | None:
        """Assemble the full array on ``root`` (None elsewhere)."""
        parts = self.comm.gather((self.lo, self.local), root)
        if self.comm.rank != root:
            return None
        assert parts is not None
        shape = (self.n,) if self.ncols == 0 else (self.n, self.ncols)
        out = np.zeros(shape, dtype=self.dtype)
        for lo, block in parts:
            out[lo : lo + block.shape[0]] = block
        return out

    @classmethod
    def from_global(cls, comm: Comm, values: np.ndarray | None, root: int = 0) -> "DArray":
        """Scatter a root-resident global array into a DArray."""
        meta = comm.bcast(
            (values.shape, str(values.dtype)) if comm.rank == root else None, root
        )
        shape, dtype = meta
        n = shape[0]
        ncols = shape[1] if len(shape) > 1 else 0
        arr = cls(comm, n, dtype=np.dtype(dtype), ncols=ncols)
        if comm.rank == root:
            assert values is not None
            chunks = [
                values[slice(*block_bounds(n, comm.size, r))] for r in range(comm.size)
            ]
        else:
            chunks = None
        arr.set_local_block(comm.scatter(chunks, root))
        return arr

    def local_norm_sq(self) -> float:
        return float(np.vdot(self.local, self.local).real)

    def norm(self) -> float:
        """Global 2-norm (collective: allreduce of local squares)."""
        total = self.comm.allreduce(self.local_norm_sq(), lambda a, b: a + b)
        return float(np.sqrt(total))
