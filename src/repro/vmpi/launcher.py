"""SPMD launcher: run one function on every rank, thread-per-rank.

``run_spmd(p, fn, *args)`` mirrors ``mpiexec -n p``: it spawns ``p``
threads, hands each a :class:`~repro.vmpi.comm.Comm`, and collects the
per-rank return values plus a :class:`RankReport` of simulated time and
communication counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.vmpi.clock import CostModel
from repro.vmpi.comm import Comm
from repro.vmpi.transport import Transport


@dataclass
class RankReport:
    """Per-rank outcome of an SPMD run."""

    rank: int
    sim_time: float
    compute_time: float
    other_time: float
    messages_sent: int
    bytes_sent: int
    messages_received: int
    bytes_received: int


@dataclass
class SPMDRun:
    """Results and reports of all ranks."""

    results: list[Any]
    reports: list[RankReport]

    @property
    def elapsed(self) -> float:
        """Simulated parallel wall time: the slowest rank's clock."""
        return max(r.sim_time for r in self.reports)

    @property
    def compute(self) -> float:
        """Simulated compute portion of the critical path (``t_comp``)."""
        slowest = max(self.reports, key=lambda r: r.sim_time)
        return slowest.compute_time

    @property
    def other(self) -> float:
        """Communication + overhead on the critical path (``t_other``)."""
        slowest = max(self.reports, key=lambda r: r.sim_time)
        return slowest.other_time

    @property
    def total_messages(self) -> int:
        return sum(r.messages_sent for r in self.reports)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.reports)

    def max_messages_per_rank(self) -> int:
        return max(r.messages_sent for r in self.reports)

    def max_bytes_per_rank(self) -> int:
        return max(r.bytes_sent for r in self.reports)


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    cost_model: CostModel | None = None,
    copy_payloads: bool = True,
    timeout: float = 3600.0,
) -> SPMDRun:
    """Execute ``fn(comm, *args)`` on ``nranks`` ranks.

    Exceptions on any rank abort the run and re-raise with the failing
    rank identified. ``args`` are shared (read-only by convention; pass
    rank-specific data through scatter instead).
    """
    transport = Transport(nranks)
    comms = [
        Comm(transport, r, cost_model=cost_model, copy_payloads=copy_payloads)
        for r in range(nranks)
    ]
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append((rank, exc))

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"vmpi-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            raise TimeoutError(f"SPMD run did not finish within {timeout}s ({t.name} alive)")
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc

    reports = [
        RankReport(
            rank=c.rank,
            sim_time=c.clock.local_time,
            compute_time=c.clock.compute_time,
            other_time=c.clock.other_time,
            messages_sent=c.counters.messages_sent,
            bytes_sent=c.counters.bytes_sent,
            messages_received=c.counters.messages_received,
            bytes_received=c.counters.bytes_received,
        )
        for c in comms
    ]
    return SPMDRun(results, reports)
