"""SPMD launcher: run one function on every rank.

``run_spmd(p, fn, *args)`` mirrors ``mpiexec -n p``: it hands each of
``p`` ranks a :class:`~repro.vmpi.comm.Comm` and collects the per-rank
return values plus a :class:`RankReport` of simulated time and
communication counters. *How* the ranks execute — threads in this
process (default) or one OS process per rank with shared-memory array
transport — is delegated to an :mod:`~repro.vmpi.backend`
implementation, selected per call (``backend=``) or globally
(``REPRO_VMPI_BACKEND``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs import profile, trace
from repro.vmpi.backend import (  # noqa: F401 - re-exported for compatibility
    ExecutionBackend,
    SPMDRun,
    resolve_backend,
)
from repro.vmpi.clock import CostModel


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    cost_model: CostModel | None = None,
    copy_payloads: bool = True,
    timeout: float = 3600.0,
    backend: str | ExecutionBackend | None = None,
) -> SPMDRun:
    """Execute ``fn(comm, *args)`` on ``nranks`` ranks.

    Exceptions on any rank abort the run and re-raise with the failing
    rank identified. ``args`` are shared (read-only by convention; pass
    rank-specific data through scatter instead). ``backend`` picks the
    execution strategy ("thread" or "process"); ``None`` uses the
    configured default.
    """
    run = resolve_backend(backend).run(
        nranks,
        fn,
        args,
        cost_model=cost_model,
        copy_payloads=copy_payloads,
        timeout=timeout,
    )
    # merge spans the rank processes shipped back through their reports
    # into this process's timeline (per-rank tracks); thread-backend
    # ranks record into the parent tracer directly, so their reports
    # carry none
    for report in run.reports:
        spans = getattr(report, "spans", None)
        if spans:
            trace.adopt(spans)
            report.spans = []
        table = getattr(report, "profile", None)
        if table:
            profile.adopt(table)
            report.profile = {}
    return run
