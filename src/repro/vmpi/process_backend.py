"""Process-parallel execution backend with shared-memory array transport.

Every rank is an OS process, so rank compute runs truly in parallel
(no GIL). Messages travel through per-rank ``multiprocessing`` queues,
but ``np.ndarray`` payloads above a size threshold are carved out of
the message and shipped through ``multiprocessing.shared_memory``
blocks: the sender pays one copy into the block, the receiver maps the
block and wraps it in an ndarray *without copying*. Small control
payloads (tags, box coordinates, op logs) ride the pickle channel.

Lifetime protocol for a shared block: the sender creates it, copies the
array in, and closes its handle; exactly one receiver attaches, unlinks
the name immediately (POSIX keeps the mapping alive until the last
handle closes), and ties the handle's lifetime to the zero-copy ndarray
view with a ``weakref.finalize`` — resident shared memory tracks the
receiver's working set, not total traffic. Mailboxes are drained on
shutdown so blocks of never-received messages are still unlinked.

As a backstop for *abnormal* teardown — a terminated rank whose
queue-feeder thread still buffered messages nobody will ever attach —
every sender also registers the names of the blocks it creates on a
feeder-less ``SimpleQueue`` (a synchronous pipe write, so the names
survive the sender's death); the parent drains it while collecting
results and unlinks whatever still exists once all ranks are gone.
Without this, on Python 3.13+ (where blocks are created untracked)
such orphans persist in /dev/shm until reboot.
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing
import pickle
import queue
import time
import traceback
import weakref
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.obs import BYTES_BUCKETS, REGISTRY, profile, trace
from repro.util.config import vmpi_pool, vmpi_shm_min_bytes, vmpi_start_method
from repro.vmpi.backend import ExecutionBackend, RankReport, SPMDRun, report_from_comm
from repro.vmpi.clock import CostModel
from repro.vmpi.comm import Comm
from repro.vmpi.transport import Message

_SHM_BYTES = REGISTRY.counter(
    "repro_vmpi_shm_bytes_total",
    "Bytes shipped through shared-memory blocks by the process backend",
)
_SHM_BLOCK_BYTES = REGISTRY.histogram(
    "repro_vmpi_shm_block_bytes",
    "Size distribution of shared-memory blocks carved per array",
    buckets=BYTES_BUCKETS,
)


# ----------------------------------------------------------------------
# shared-memory codec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmRef:
    """Placeholder for an ndarray that travels out-of-band in a shm block.

    ``order`` preserves Fortran contiguity across the transport —
    LAPACK products (e.g. LU factors) are F-ordered, and normalizing
    them to C order would route later BLAS calls down different code
    paths, breaking bitwise cross-backend parity.

    ``shared`` switches the lifetime protocol: the default (point-to-
    point message payloads) is exactly-one-receiver — the receiver
    unlinks on attach. Shared refs (pool dispatch args, which
    ``run_spmd`` documents as shared read-only across ranks) are
    attached by *every* rank without unlinking; the dispatcher owns the
    name and reclaims it in the post-job registry sweep.
    """

    name: str
    shape: tuple
    dtype: str
    order: str = "C"
    shared: bool = False


def _close_when_collected(shm) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a rogue export outlived the array
        pass


def _create_shm(nbytes: int):
    """Allocate a block whose lifetime crosses processes.

    On 3.13+ tracking is disabled outright (the creator is not the
    destroyer, which the resource tracker cannot express). Before that,
    the fork start method means every rank shares the parent's tracker
    process, so the creator's implicit REGISTER is balanced by the
    receiver's ``unlink()`` UNREGISTER and no manual bookkeeping is
    needed; blocks orphaned by a crash get cleaned (with a warning) at
    tracker shutdown.
    """
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(create=True, size=nbytes, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
    return shm


def _attach_shm(name: str):
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: attaching never registers, nothing to undo
        shm = shared_memory.SharedMemory(name=name)
    return shm


def _ensure_resource_tracker() -> None:
    """Start the parent's resource tracker before launching ranks.

    Pre-3.13 every block creation REGISTERs with a tracker. If the
    first tracker use happens *inside* a rank, each rank lazily spawns
    its own — and a block created in rank A but unlinked in rank B (the
    normal lifetime protocol) leaves A's tracker convinced the block
    leaked, warning at shutdown. Starting the tracker here makes every
    rank inherit the one shared instance, so REGISTER and UNREGISTER
    pair up no matter which process performs them. On 3.13+ blocks are
    created untracked and this is a harmless no-op.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


def _walkable_fields(obj: Any) -> dict | None:
    """Attribute dict of payload objects the codec recurses into.

    Dataclass *instances* are walked automatically (``WorkerResult``,
    ``BoxRecord``, ``LevelPlan``, ``RankStats``, ...); plain classes opt
    in by setting ``__shm_walk__ = True`` (:class:`~repro.linalg.lu.PartialLU`).
    :class:`ShmRef` itself and anything without an instance ``__dict__``
    stay on the pickle channel.
    """
    if isinstance(obj, (ShmRef, type)):
        return None
    if dataclasses.is_dataclass(obj) or getattr(type(obj), "__shm_walk__", False):
        try:
            return vars(obj)
        except TypeError:  # pragma: no cover - slots-only classes
            return None
    return None


def encode_payload(
    obj: Any, min_bytes: int, created: list | None = None, *, shared: bool = False
) -> Any:
    """Replace large ndarrays in a payload tree with :class:`ShmRef` s.

    Containers (tuple/list/dict) and dataclass payloads (see
    :func:`_walkable_fields`) are walked recursively; anything else is
    left in place for the pickle channel. The fallback is deterministic
    — it depends only on the array's properties, never on a runtime
    failure: 0-byte and 0-d arrays (SharedMemory rejects size-0 blocks;
    scalars are control-message sized anyway), arrays below
    ``min_bytes``, object dtypes (not flat memory), and void/structured
    dtypes (field layout would be lost through the ``dtype.str``
    round-trip) all ride the pickle channel. Non-contiguous views are
    supported: they are carved through one contiguous copy.

    Unchanged subtrees are returned *by identity*, so walked containers
    and dataclasses are only rebuilt (shallow copies — the originals
    are never mutated) along paths that actually carved an array.
    ``created`` (when given) collects every :class:`ShmRef` made, so a
    caller that fails partway — mid-tree ``_create_shm`` ENOSPC, or a
    later pickling error — can unlink the blocks already carved.
    """
    if isinstance(obj, np.ndarray):
        if (
            obj.nbytes == 0
            or obj.ndim == 0
            or obj.nbytes < min_bytes
            or obj.dtype.hasobject
            or obj.dtype.kind == "V"
        ):
            return obj
        if obj.flags.f_contiguous and not obj.flags.c_contiguous:
            arr, order = np.asfortranarray(obj), "F"
        else:
            arr, order = np.ascontiguousarray(obj), "C"
        shm = _create_shm(arr.nbytes)
        ref = ShmRef(shm.name, arr.shape, arr.dtype.str, order, shared)
        _SHM_BYTES.inc(arr.nbytes)
        _SHM_BLOCK_BYTES.observe(arr.nbytes)
        # record the name before the (possibly large) copy: a crash or
        # terminate() mid-copy must still leave the block reclaimable
        if created is not None:
            created.append(ref)
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, order=order)[...] = arr
        shm.close()
        return ref
    if isinstance(obj, tuple):
        items = [encode_payload(x, min_bytes, created, shared=shared) for x in obj]
        if all(a is b for a, b in zip(items, obj)):
            return obj
        return tuple(items) if type(obj) is tuple else type(obj)(*items)
    if isinstance(obj, list):
        items = [encode_payload(x, min_bytes, created, shared=shared) for x in obj]
        return obj if all(a is b for a, b in zip(items, obj)) else items
    if isinstance(obj, dict):
        out = {
            k: encode_payload(v, min_bytes, created, shared=shared)
            for k, v in obj.items()
        }
        return obj if all(out[k] is v for k, v in obj.items()) else out
    fields = _walkable_fields(obj)
    if fields is not None:
        clone = None
        for name, val in fields.items():
            enc = encode_payload(val, min_bytes, created, shared=shared)
            if enc is not val:
                if clone is None:
                    clone = copy.copy(obj)
                object.__setattr__(clone, name, enc)
        return obj if clone is None else clone
    return obj


def decode_payload(obj: Any) -> Any:
    """Resolve :class:`ShmRef` s back into (zero-copy, writable) ndarrays.

    The block's handle lives exactly as long as the decoded array (a
    ``weakref.finalize`` closes it on collection), so resident shared
    memory tracks the receiver's *working set*, not the total bytes
    ever received. Walked dataclass payloads are patched in place —
    the decoded object graph belongs exclusively to the receiver.
    """
    if isinstance(obj, ShmRef):
        shm = _attach_shm(obj.name)
        if not obj.shared:
            try:
                shm.unlink()  # name released; mapping lives while handle does
            except FileNotFoundError:  # pragma: no cover - duplicate cleanup
                pass
        # shared refs (multi-receiver dispatch args): the name stays —
        # the dispatcher unlinks it in the post-job registry sweep
        arr = np.ndarray(
            obj.shape, dtype=np.dtype(obj.dtype), buffer=shm.buf, order=obj.order
        )
        weakref.finalize(arr, _close_when_collected, shm)
        return arr
    if isinstance(obj, tuple):
        items = [decode_payload(x) for x in obj]
        if all(a is b for a, b in zip(items, obj)):
            return obj
        return tuple(items) if type(obj) is tuple else type(obj)(*items)
    if isinstance(obj, list):
        items = [decode_payload(x) for x in obj]
        return obj if all(a is b for a, b in zip(items, obj)) else items
    if isinstance(obj, dict):
        out = {k: decode_payload(v) for k, v in obj.items()}
        return obj if all(out[k] is v for k, v in obj.items()) else out
    fields = _walkable_fields(obj)
    if fields is not None:
        for name, val in list(fields.items()):
            dec = decode_payload(val)
            if dec is not val:
                object.__setattr__(obj, name, dec)
        return obj
    return obj


def _release_refs(obj: Any) -> None:
    """Unlink every shm block referenced by an (undelivered) payload."""
    if isinstance(obj, ShmRef):
        try:
            shm = _attach_shm(obj.name)
            shm.unlink()
            shm.close()
        except FileNotFoundError:
            pass
        return
    if isinstance(obj, (tuple, list, set)):
        for x in obj:
            _release_refs(x)
    elif isinstance(obj, dict):
        for v in obj.values():
            _release_refs(v)
    else:
        fields = _walkable_fields(obj)
        if fields is not None:
            for v in fields.values():
                _release_refs(v)


def collect_refs(obj: Any, out: list | None = None) -> list:
    """Every :class:`ShmRef` reachable in a payload tree.

    The read-only companion of :func:`_release_refs`: holders of
    at-rest encoded payloads (``repro.store``'s shared tier) keep this
    list so they can account and later reclaim the blocks without
    retaining — or re-walking — the whole encoded tree.
    """
    if out is None:
        out = []
    if isinstance(obj, ShmRef):
        out.append(obj)
    elif isinstance(obj, (tuple, list, set)):
        for x in obj:
            collect_refs(x, out)
    elif isinstance(obj, dict):
        for v in obj.values():
            collect_refs(v, out)
    else:
        fields = _walkable_fields(obj)
        if fields is not None:
            for v in fields.values():
                collect_refs(v, out)
    return out


def ref_nbytes(ref: ShmRef) -> int:
    """Bytes of the shm block behind one :class:`ShmRef`."""
    n = 1
    for s in ref.shape:
        n *= int(s)
    return n * np.dtype(ref.dtype).itemsize


def _drain_mailbox(q) -> None:
    """Throw away queued messages, unlinking their shared blocks."""
    while True:
        try:
            item = q.get_nowait()
        except (queue.Empty, OSError, ValueError):
            return
        if isinstance(item, tuple) and len(item) == 2:  # (epoch, blob) wire format
            item = item[1]
        try:
            msg = pickle.loads(item) if isinstance(item, bytes) else item
        except Exception:  # pragma: no cover - truncated blob on teardown
            continue
        if isinstance(msg, Message):
            _release_refs(msg.payload)


def _drain_registry(registry, names: set) -> None:
    """Move sender-registered block names out of the registry pipe."""
    try:
        while not registry.empty():
            names.add(registry.get())
    except (OSError, ValueError, EOFError):  # pragma: no cover - closing
        pass


def _teardown_procs(procs: list, mailboxes: list, results_q, registry, registered: set) -> None:
    """Join/terminate rank processes and reclaim every transport resource.

    The shared end-of-life sequence of the per-call backend and the
    pool: pre-drain mailboxes (unblocks child queue feeders + frees
    shm), give ranks a short grace to exit, terminate survivors (stuck
    ranks must not wait out receive timeouts), drain + close every
    queue, then sweep the registry so blocks stranded in killed feeders
    or never-drained pipes are unlinked.
    """
    for q in mailboxes:
        _drain_mailbox(q)
    for pr in procs:
        pr.join(timeout=1.0)
    for pr in procs:
        if pr.is_alive():
            pr.terminate()
    for pr in procs:
        if pr.is_alive():
            pr.join(timeout=10.0)
    for q in [*mailboxes, results_q]:
        _drain_mailbox(q)
        q.close()
        q.join_thread()
    _drain_registry(registry, registered)
    _unlink_registered(registered)
    registry.close()


def _unlink_registered(names: set) -> None:
    """Unlink every registered block that still has a name.

    Blocks that were delivered normally are already unlinked by their
    receiver (or by :func:`_drain_mailbox`), so attaching raises
    ``FileNotFoundError`` and they are skipped; anything left is an
    orphan of an abnormal teardown.
    """
    for name in names:
        try:
            shm = _attach_shm(name)
        except FileNotFoundError:
            continue
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - receiver race
            pass
        shm.close()


# ----------------------------------------------------------------------
# transport + backend
# ----------------------------------------------------------------------
class _RegisteredRefs(list):
    """Collects :class:`ShmRef` s, mirroring each name into the registry
    pipe the moment the block is created — before its payload copy — so
    a rank killed mid-send leaves no unregistered orphan."""

    def __init__(self, registry):
        super().__init__()
        self._registry = registry

    def append(self, ref) -> None:
        if self._registry is not None:
            self._registry.put(ref.name)
        super().append(ref)


class ProcessTransport:
    """Per-rank ``multiprocessing`` queues with the shm array codec.

    Process isolation makes deep-copying payloads on ``put`` redundant,
    hence ``needs_copy = False`` (:class:`~repro.vmpi.comm.Comm` skips
    ``sanitize``). Buffered-send semantics still require snapshotting
    the payload *at put time*: large arrays are copied into their shm
    blocks synchronously by ``encode_payload``, and the remainder is
    pickled here rather than lazily in the queue's feeder thread —
    otherwise a sender mutating a small array after ``send`` would leak
    the mutation to the receiver.

    ``epoch`` stamps every message on the wire. Long-lived pool workers
    bump it per dispatched job, so a message stranded by one SPMD
    program (sent but never received) can never be matched by a *later*
    program reusing the same (source, tag) pair — stale messages are
    discarded on receipt and their shm blocks unlinked. Per-call
    backends use the constant epoch 0 on both sides.
    """

    needs_copy = False

    def __init__(self, mailboxes: list, min_shm_bytes: int, registry=None, epoch: int = 0):
        self.nranks = len(mailboxes)
        self._mailboxes = mailboxes
        self._min_shm_bytes = int(min_shm_bytes)
        self._registry = registry
        self.epoch = int(epoch)

    def put(self, message: Message) -> None:
        if not (0 <= message.dest < self.nranks):
            raise ValueError(f"invalid destination rank {message.dest}")
        created = _RegisteredRefs(self._registry)
        try:
            payload = encode_payload(message.payload, self._min_shm_bytes, created)
            blob = pickle.dumps(
                dataclasses.replace(message, payload=payload),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            # encoding or pickling failed after some arrays were carved
            # into shm blocks — unlink them or they outlive the run
            _release_refs(created)
            raise
        self._mailboxes[message.dest].put((self.epoch, blob))

    def get(self, rank: int, timeout: float) -> Message:
        # one overall deadline: discarding stale-epoch strays must not
        # restart the clock, or a deadlocked program would wait
        # (strays + 1) x timeout instead of timeout
        deadline = time.monotonic() + timeout
        with trace.span("vmpi.recv", rank=rank) as sp:
            while True:
                remaining = max(deadline - time.monotonic(), 0.0)
                epoch, blob = self._mailboxes[rank].get(timeout=remaining)
                msg = pickle.loads(blob)
                if epoch != self.epoch:  # stranded by an earlier pool job
                    _release_refs(msg.payload)
                    continue
                sp.set(source=msg.source, bytes=len(blob))
                return dataclasses.replace(msg, payload=decode_payload(msg.payload))


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"


def _rank_main(
    rank: int,
    fn: Callable[..., Any],
    args: tuple,
    mailboxes: list,
    results_q,
    cost_model: CostModel | None,
    copy_payloads: bool,
    min_shm_bytes: int,
    registry=None,
    trace_on: bool = False,
    profile_hz: float = 0.0,
) -> None:
    """Entry point of one rank process."""
    # adopt the parent's live tracing state and start from a clean span
    # buffer — a fork child inherits the parent's recorded spans, which
    # must not be shipped back (the parent already has them)
    trace.set_enabled(trace_on)
    trace.reset_in_child()
    profile.reset_in_child()
    if profile_hz > 0:
        profile.start(profile_hz)
    transport = ProcessTransport(mailboxes, min_shm_bytes, registry=registry)
    comm = Comm(transport, rank, cost_model=cost_model, copy_payloads=copy_payloads)
    created = _RegisteredRefs(registry)
    try:
        with trace.track(f"rank{rank}"), trace.span("vmpi.rank", rank=rank):
            result = fn(comm, *args)
        report = report_from_comm(comm)
        # spans recorded on this rank ride the pickle side of the result
        # channel; run_spmd adopts them into the parent tracer
        report.spans = trace.drain()
        if profile_hz > 0:
            profile.stop()
            report.profile = profile.drain_table()
        # results round-trip through the shm codec too: factorization
        # products (WorkerResult trees of BoxRecord/PartialLU arrays)
        # travel zero-copy, leaving only control-message-sized pickles
        # on the result queue
        payload = encode_payload(result, min_shm_bytes, created)
        results_q.put((rank, True, payload, report))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        _release_refs(created)
        results_q.put((rank, False, _describe(exc), None))
    finally:
        _drain_mailbox(mailboxes[rank])


_AVAILABLE: bool | None = None


def process_backend_available() -> bool:
    """True when this platform can actually allocate shared memory.

    Configuration errors — an invalid or platform-unavailable
    ``REPRO_VMPI_START_METHOD`` — propagate as :class:`ValueError`
    instead of being cached as "platform unavailable": a typo'd env var
    must not masquerade as a missing shared-memory implementation (or
    silently demote ``auto`` to the thread backend).
    """
    global _AVAILABLE
    _pick_start_method()  # raises on a bad override; validated, so the
    # context for it always exists — only shm allocation needs probing
    if _AVAILABLE is None:
        try:
            shm = _create_shm(16)  # repro: allow(shm-lifecycle) -- availability probe: the block is unlinked on the next line, before any payload protocol begins
            shm.unlink()
            shm.close()
            _AVAILABLE = True
        except Exception:  # pragma: no cover - platform-dependent
            _AVAILABLE = False
    return _AVAILABLE


def _pick_start_method() -> str:
    """Resolve the start method: explicit override, else platform default.

    ``REPRO_VMPI_START_METHOD`` wins when set (and must be available on
    this platform). Otherwise prefer fork on Linux (cheap launch, args
    inherited); elsewhere keep the platform default — macOS lists fork
    as available but forking after framework/BLAS initialization is
    unsafe there, which is why CPython switched its default to spawn.
    Everything the backend ships across the process boundary (the rank
    entry point, the SPMD program, its args, queues) is picklable, so
    any start method is correct — they differ only in launch cost.
    """
    import sys

    methods = multiprocessing.get_all_start_methods()
    override = vmpi_start_method()
    if override is not None:
        if override not in methods:
            raise ValueError(
                f"REPRO_VMPI_START_METHOD={override!r} is unavailable on this "
                f"platform (available: {'/'.join(methods)})"
            )
        return override
    if sys.platform == "linux" and "fork" in methods:
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


class ProcessBackend(ExecutionBackend):
    """One OS process per rank, shared-memory array transport.

    ``pool`` selects the rank-process lifecycle: ``"persistent"`` (the
    ``REPRO_VMPI_POOL`` default) dispatches through a long-lived
    :class:`~repro.vmpi.pool.RankPool` — workers are spawned once and
    successive ``run`` calls (``factor`` then many ``solve`` s) reuse
    them; ``"per_call"`` spawns and tears down fresh processes every
    call. Booleans are accepted as shorthand (``True`` = persistent).
    """

    name = "process"

    def __init__(
        self,
        start_method: str | None = None,
        min_shm_bytes: int | None = None,
        pool: str | bool | None = None,
    ):
        self.start_method = start_method or _pick_start_method()
        self.min_shm_bytes = (
            vmpi_shm_min_bytes() if min_shm_bytes is None else int(min_shm_bytes)
        )
        if pool is None:
            self.pool_mode = vmpi_pool()
        elif isinstance(pool, bool):
            self.pool_mode = "persistent" if pool else "per_call"
        else:
            from repro.util.config import VMPI_POOL_MODES

            if pool not in VMPI_POOL_MODES:
                raise ValueError(
                    f"pool must be one of {'/'.join(VMPI_POOL_MODES)}, got {pool!r}"
                )
            self.pool_mode = pool
        self._pool = None  # pinned RankPool (persistent mode, after first run)

    @property
    def pool(self):
        """The :class:`~repro.vmpi.pool.RankPool` of the last dispatch.

        ``None`` before the first ``run`` or in per-call mode. Holders
        of long-lived factorizations (the serving cache) pin it so the
        registry's idle LRU eviction keeps its ranks resident.
        """
        return self._pool

    def __getstate__(self) -> dict:
        # a live pool (processes, queues) cannot cross pickling — e.g.
        # a ParallelFactorization carrying this backend; re-acquired
        # from the registry on the next run
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def run(
        self,
        nranks: int,
        fn: Callable[..., Any],
        args: tuple,
        *,
        cost_model: CostModel | None = None,
        copy_payloads: bool = True,
        timeout: float = 3600.0,
    ) -> SPMDRun:
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        if self.pool_mode == "persistent":
            from repro.vmpi.pool import DispatchEncodeError, get_pool

            # always (re)acquire through the registry: it returns the
            # same live pool, refreshing its LRU recency so an actively
            # used pool is never the eviction candidate, and it
            # replaces dead pools transparently
            pool = get_pool(nranks, self.start_method, self.min_shm_bytes)
            self._pool = pool
            try:
                return pool.run(
                    fn,
                    args,
                    cost_model=cost_model,
                    copy_payloads=copy_payloads,
                    timeout=timeout,
                )
            except DispatchEncodeError:
                # the dispatch payload could not be pickled (closure/
                # lambda rank program, unpicklable args) — by contract
                # raised before anything was dispatched, so the pool is
                # unharmed. Under fork the per-call path still handles
                # such programs by inheritance, exactly as it did before
                # pools existed; elsewhere pickling is unavoidable.
                if self.start_method != "fork":
                    raise
        return self._run_per_call(
            nranks,
            fn,
            args,
            cost_model=cost_model,
            copy_payloads=copy_payloads,
            timeout=timeout,
        )

    def _run_per_call(
        self,
        nranks: int,
        fn: Callable[..., Any],
        args: tuple,
        *,
        cost_model: CostModel | None = None,
        copy_payloads: bool = True,
        timeout: float = 3600.0,
    ) -> SPMDRun:
        _ensure_resource_tracker()
        ctx = multiprocessing.get_context(self.start_method)
        mailboxes = [ctx.Queue() for _ in range(nranks)]
        results_q = ctx.Queue()
        # sender-side registry of created shm block names: a feeder-less
        # SimpleQueue, so names written by a rank survive its death
        registry = ctx.SimpleQueue()
        registered: set = set()
        procs = [
            ctx.Process(
                target=_rank_main,
                args=(
                    r,
                    fn,
                    args,
                    mailboxes,
                    results_q,
                    cost_model,
                    copy_payloads,
                    self.min_shm_bytes,
                    registry,
                    trace.enabled,
                    profile.active_hz,
                ),
                name=f"vmpi-rank-{r}",
                daemon=True,
            )
            for r in range(nranks)
        ]
        outcomes: dict[int, tuple] = {}
        try:
            for pr in procs:
                pr.start()
            self._collect(procs, results_q, outcomes, nranks, timeout, registry, registered)
            failures = [o for o in outcomes.values() if not o[1]]
            if failures:
                rank, _ok, desc, _rep = min(failures, key=lambda o: o[0])
                raise RuntimeError(f"rank {rank} failed: {desc}")
            # results came through the shm codec; attach/unlink now.
            # (On the failure path above, successful ranks' undecoded
            # blocks are reclaimed by the registry sweep in finally.)
            results = [decode_payload(outcomes[r][2]) for r in range(nranks)]
            reports: list[RankReport] = [outcomes[r][3] for r in range(nranks)]
            return SPMDRun(results, reports)
        finally:
            _teardown_procs(procs, mailboxes, results_q, registry, registered)

    def _collect(
        self,
        procs: list,
        results_q,
        outcomes: dict[int, tuple],
        nranks: int,
        timeout: float,
        registry=None,
        registered: set | None = None,
    ) -> None:
        """Gather one outcome per rank, stopping early on failure."""
        deadline = time.monotonic() + timeout
        while len(outcomes) < nranks:
            if registry is not None:
                # keep the (bounded) registry pipe drained while ranks run
                _drain_registry(registry, registered)
            try:
                item = results_q.get(timeout=0.2)
            except queue.Empty:
                if time.monotonic() > deadline:
                    pending = sorted(set(range(nranks)) - set(outcomes))
                    raise TimeoutError(
                        f"SPMD run did not finish within {timeout}s (ranks {pending} alive)"
                    ) from None
                dead = [
                    r
                    for r, pr in enumerate(procs)
                    if r not in outcomes and pr.exitcode is not None
                ]
                if dead:
                    try:  # the result may still be in flight; one grace read
                        item = results_q.get(timeout=1.0)
                    except queue.Empty:
                        code = procs[dead[0]].exitcode
                        detail = (
                            "exited without reporting a result "
                            "(unpicklable return value?)"
                            if code == 0
                            else f"died with exit code {code}"
                        )
                        raise RuntimeError(f"rank {dead[0]} {detail}") from None
                else:
                    continue
            outcomes[item[0]] = item
            if not item[1]:  # a failed rank poisons the whole run: stop waiting
                grace = time.monotonic() + 1.0
                while time.monotonic() < grace:
                    try:
                        late = results_q.get(timeout=0.1)
                        outcomes[late[0]] = late
                    except queue.Empty:
                        pass
                return
