"""Virtual MPI: a simulated distributed-memory runtime.

The paper's solver runs on Julia ``Distributed.jl`` workers spread over
a supercomputer. Here the *algorithm* is executed faithfully over an
mpi4py-shaped API (``send``/``recv``, ``bcast``, ``gather``,
``allreduce``, ``barrier``, …) while the *runtime* is pluggable
(:mod:`repro.vmpi.backend`):

* every rank has strictly private state — with the default **thread
  backend** each rank is an OS thread and payloads are deep-copied on
  send; with the **process backend** each rank is an OS process and
  ndarray payloads travel through ``multiprocessing.shared_memory``
  blocks (zero-copy on receive), so compute is GIL-free and wall-clock
  scales with cores;
* a LogP-style simulated clock tracks per-rank time: compute segments
  advance it by the rank's measured CPU time, and a received message
  cannot be consumed before ``sender_time + alpha + beta * bytes``;
* per-rank counters record messages and words sent, so the paper's
  communication-complexity claims (Sec. IV-B) are checked directly —
  and are identical across backends, which only change the physics of
  delivery, never the protocol.

Pick a backend per call (``run_spmd(..., backend="process")``) or
globally (``REPRO_VMPI_BACKEND=process``).
"""

from repro.vmpi.backend import (
    ExecutionBackend,
    RankReport,
    SPMDRun,
    ThreadBackend,
    effective_cpu_count,
    resolve_backend,
)
from repro.vmpi.clock import CostModel, SimClock, INTRA_NODE, INTER_NODE
from repro.vmpi.comm import Comm, DeadlockError
from repro.vmpi.darray import DArray
from repro.vmpi.grid import ProcessGrid2D
from repro.vmpi.launcher import run_spmd
from repro.vmpi.pool import RankPool, active_pools, get_pool, shutdown_all_pools
from repro.vmpi.process_backend import ProcessBackend, process_backend_available

__all__ = [
    "CostModel",
    "SimClock",
    "INTRA_NODE",
    "INTER_NODE",
    "Comm",
    "DArray",
    "DeadlockError",
    "run_spmd",
    "SPMDRun",
    "RankReport",
    "ProcessGrid2D",
    "ExecutionBackend",
    "ThreadBackend",
    "ProcessBackend",
    "RankPool",
    "active_pools",
    "get_pool",
    "shutdown_all_pools",
    "effective_cpu_count",
    "resolve_backend",
    "process_backend_available",
]
