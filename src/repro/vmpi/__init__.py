"""Virtual MPI: a simulated distributed-memory runtime.

The paper's solver runs on Julia ``Distributed.jl`` workers spread over
a supercomputer. This environment has one CPU core and no MPI, so the
*runtime* is simulated while the *algorithm* is executed faithfully:

* every rank is an OS thread with strictly private state;
* all interaction happens through explicit messages (payloads are
  deep-copied on send, so there is no shared mutable data — a rank can
  only learn what another rank sent it);
* a LogP-style simulated clock tracks per-rank time: compute segments
  advance it by the thread's measured CPU time, and a received message
  cannot be consumed before ``sender_time + alpha + beta * bytes``;
* per-rank counters record messages and words sent, so the paper's
  communication-complexity claims (Sec. IV-B) are checked directly.

The API deliberately mirrors mpi4py (``send``/``recv``, ``bcast``,
``gather``, ``allreduce``, ``barrier``, …).
"""

from repro.vmpi.clock import CostModel, SimClock, INTRA_NODE, INTER_NODE
from repro.vmpi.comm import Comm, DeadlockError
from repro.vmpi.darray import DArray
from repro.vmpi.launcher import run_spmd, SPMDRun, RankReport
from repro.vmpi.grid import ProcessGrid2D

__all__ = [
    "CostModel",
    "SimClock",
    "INTRA_NODE",
    "INTER_NODE",
    "Comm",
    "DArray",
    "DeadlockError",
    "run_spmd",
    "SPMDRun",
    "RankReport",
    "ProcessGrid2D",
]
