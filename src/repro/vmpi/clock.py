"""Simulated per-rank clocks and the alpha-beta communication model.

Each rank owns a :class:`SimClock`. Compute sections are timed with
``time.thread_time`` (per-thread CPU time, which under the GIL measures
exactly the work this rank performed, regardless of interleaving) and
advance the simulated clock. Message delivery follows the classic
postal/LogP model: a message sent at sender-time ``t`` with ``n``
payload bytes becomes available to the receiver at
``t + alpha + beta * n``; a blocking receive advances the receiver's
clock to at least that availability time.

Two presets mirror the paper's two placements (Table IV vs Table VII):
``INTRA_NODE`` (many processes per node, shared-memory transport) and
``INTER_NODE`` (one process per compute node, network transport).
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Alpha-beta cost model for point-to-point messages.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds (inverse bandwidth).
    sender_overhead:
        CPU time the *sender* spends injecting a message.
    compute_scale:
        Multiplier applied to measured compute time — lets benchmarks
        model faster/slower cores without changing the workload.
    """

    alpha: float = 1.0e-6
    beta: float = 1.0 / 10.0e9
    sender_overhead: float = 2.5e-7
    compute_scale: float = 1.0

    def transfer_time(self, nbytes: int) -> float:
        return self.alpha + self.beta * float(nbytes)


#: shared-memory transport between processes on one node
INTRA_NODE = CostModel(alpha=1.0e-6, beta=1.0 / 20.0e9, sender_overhead=2.5e-7)
#: network transport, one process per node (HPE Slingshot-ish numbers)
INTER_NODE = CostModel(alpha=5.0e-6, beta=1.0 / 10.0e9, sender_overhead=5.0e-7)


class SimClock:
    """Simulated local time of one rank."""

    def __init__(self, cost_model: CostModel | None = None):
        self.model = cost_model or CostModel()
        self.local_time = 0.0
        self.compute_time = 0.0
        self.comm_time = 0.0  # time spent waiting on / paying for messages

    def compute(self) -> "_ComputeSection":
        """Context manager: measured CPU time advances the clock."""
        return _ComputeSection(self)

    def add_compute(self, seconds: float) -> None:
        seconds *= self.model.compute_scale
        self.local_time += seconds
        self.compute_time += seconds

    def on_send(self) -> float:
        """Charge the send overhead; returns the message timestamp."""
        self.local_time += self.model.sender_overhead
        self.comm_time += self.model.sender_overhead
        return self.local_time

    def on_receive(self, sent_time: float, nbytes: int) -> None:
        """Advance to the message availability time (blocking receive)."""
        available = sent_time + self.model.transfer_time(nbytes)
        if available > self.local_time:
            self.comm_time += available - self.local_time
            self.local_time = available

    @property
    def other_time(self) -> float:
        """Everything that is not compute (the paper's ``t_other``)."""
        return self.local_time - self.compute_time


class _ComputeSection:
    def __init__(self, clock: SimClock):
        self._clock = clock
        self._t0 = 0.0

    def __enter__(self) -> "_ComputeSection":
        self._t0 = time.thread_time()
        return self

    def __exit__(self, *exc) -> None:
        self._clock.add_compute(time.thread_time() - self._t0)
