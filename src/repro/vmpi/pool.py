"""Persistent rank-process pool for the process execution backend.

A :class:`RankPool` spawns ``p`` long-lived worker processes *once* and
then dispatches successive SPMD programs to them — ``factor`` followed
by many ``solve`` s through one :class:`~repro.api.facade.Solver` pays
the fork/spawn + interpreter-warmup cost exactly one time instead of
per call. The per-rank mailboxes, the shared-memory name registry, and
the result queue all stay alive across dispatches.

Protocol per dispatch (one *job*):

1. The parent encodes ``(fn, args, cost_model, copy_payloads)`` through
   the shm codec (large arrays — e.g. the ``WorkerResult`` list a
   distributed solve re-ships — travel as shared-memory blocks, mapped
   zero-copy by each worker) and writes one pre-pickled command blob
   per rank to that rank's command queue.
2. Each worker builds a fresh :class:`~repro.vmpi.comm.Comm` over the
   persistent mailboxes, stamped with the job id as the transport
   *epoch*: a message stranded by an earlier job (sent but never
   received) is discarded on receipt — with its shm blocks unlinked —
   instead of corrupting a later program that reuses the same
   (source, tag) pair.
3. Workers run ``fn(comm, *args)``, encode the result through the shm
   codec (factorization dataclasses travel zero-copy), and pre-pickle
   the outcome — so an unpicklable result is reported as that rank's
   failure instead of dying silently in a queue feeder thread.
4. The parent collects one outcome per rank, decodes results, and
   sweeps the registry: with all workers idle, any registered block
   that still has a name is an orphan and is unlinked — repeated
   dispatches leave ``/dev/shm`` exactly as they found it.

Failure policy: if every rank reported an outcome the pool survives a
failed job (workers are idle again; mailboxes are drained and stale
messages are epoch-guarded). If ranks are missing — stuck in a receive
that can never complete, or dead — the pool is torn down hard
(terminate + drain + registry sweep) and the caller gets the error;
the next dispatch transparently starts a fresh pool.

Pools are cached process-wide by ``(nranks, start_method,
min_shm_bytes)`` in an LRU registry capped at ``REPRO_VMPI_POOL_MAX``
(the idle policy), and shut down cleanly at interpreter exit.
"""

from __future__ import annotations

import atexit
import pickle
import queue
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.obs import profile, trace
from repro.obs.lockwatch import make_lock
from repro.util.config import vmpi_pool_max
from repro.vmpi.backend import RankReport, SPMDRun, report_from_comm
from repro.vmpi.clock import CostModel
from repro.vmpi.comm import Comm
from repro.vmpi.process_backend import (
    ProcessTransport,
    _describe,
    _drain_mailbox,
    _drain_registry,
    _ensure_resource_tracker,
    _RegisteredRefs,
    _release_refs,
    _teardown_procs,
    _unlink_registered,
    decode_payload,
    encode_payload,
)

_PICKLE = pickle.HIGHEST_PROTOCOL


class DispatchEncodeError(Exception):
    """The job payload could not be encoded/pickled for dispatch.

    Raised *before* any worker saw the job, so the pool is untouched —
    the guarantee :class:`~repro.vmpi.process_backend.ProcessBackend`
    relies on to fall back to the per-call fork path for closure/lambda
    programs. Chains the original pickling error as ``__cause__``.
    """


def _pool_worker_main(
    rank: int,
    cmd_q,
    results_q,
    mailboxes: list,
    registry,
    min_shm_bytes: int,
) -> None:
    """Entry point of one persistent rank worker (module-level: must be
    importable under the spawn start method). One job per loop turn; the
    job body lives in :func:`_execute_job` so its locals — the decoded
    args, the program's result, the Comm — die when it returns, instead
    of pinning factorization-sized memory while the worker idles on the
    next command."""
    trace.reset_in_child()  # fork children inherit the parent's span buffer
    profile.reset_in_child()  # ... and the parent's profiler samples
    while True:
        try:
            blob = cmd_q.get()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            return
        cmd = pickle.loads(blob)
        if cmd[0] == "stop":
            return
        results_q.put(_execute_job(rank, cmd, mailboxes, registry, min_shm_bytes))


def _execute_job(rank: int, cmd, mailboxes: list, registry, min_shm_bytes: int) -> bytes:
    """Run one dispatched SPMD program; returns the pre-pickled outcome.

    The command's payload arrives as a nested pickle blob, opened *here*
    inside the failure-reporting try: unpickling the program triggers
    module imports in this process (by-reference functions under spawn),
    and an import/decode error must surface as a clean rank failure —
    traceback preserved, pool kept alive — not a dead worker.
    """
    _, job_id, payload_blob = cmd[:3]
    # the dispatcher forwards its live tracing flag per job, so tracing
    # toggled after the pool started (or enabled without REPRO_OBS in
    # the environment, under the spawn start method) still reaches
    # long-lived workers
    trace.set_enabled(bool(cmd[3]) if len(cmd) > 3 else False)
    trace.clear()
    # the parent's live profiling rate travels the same way: the worker
    # profiles only while a job runs (an idle worker would accumulate
    # unattributable samples between jobs) and ships its table back
    profile_hz = float(cmd[4]) if len(cmd) > 4 else 0.0
    profile.clear()
    if profile_hz > 0:
        profile.start(profile_hz)
    created = _RegisteredRefs(registry)
    try:
        fn, args, cost_model, copy_payloads = decode_payload(pickle.loads(payload_blob))
        transport = ProcessTransport(
            mailboxes, min_shm_bytes, registry=registry, epoch=job_id
        )
        comm = Comm(
            transport, rank, cost_model=cost_model, copy_payloads=copy_payloads
        )
        with trace.track(f"rank{rank}"), trace.span("vmpi.rank", rank=rank, job=job_id):
            result = fn(comm, *args)
        report = report_from_comm(comm)
        report.spans = trace.drain()
        if profile_hz > 0:
            profile.stop()
            report.profile = profile.drain_table()
        out = (
            rank,
            job_id,
            True,
            encode_payload(result, min_shm_bytes, created),
            report,
        )
        return pickle.dumps(out, protocol=_PICKLE)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        if profile_hz > 0:
            profile.stop()
        _release_refs(created)
        return pickle.dumps(
            (rank, job_id, False, _describe(exc), None), protocol=_PICKLE
        )


class RankPool:
    """``p`` long-lived rank processes dispatching SPMD programs."""

    def __init__(self, nranks: int, start_method: str, min_shm_bytes: int):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = int(nranks)
        self.start_method = start_method
        self.min_shm_bytes = int(min_shm_bytes)
        #: total processes ever started by this pool (the spawn probe:
        #: stays at ``nranks`` across any number of dispatches)
        self.spawn_count = 0
        #: dispatches completed or failed through this pool
        self.jobs_run = 0
        #: worker-cohort epoch: bumped every (re)spawn. Holders of
        #: worker-resident state (repro.store) compare it to detect that
        #: the ranks they seeded are gone and must be re-seeded.
        self.generation = 0
        self._job_id = 0
        self._procs: list | None = None
        self._registered: set = set()
        # one job at a time per pool: the mailboxes/result queue carry a
        # single SPMD program, so concurrent run_spmd calls from
        # different threads serialize here (the per-call backend, whose
        # state is all call-local, stays fully reentrant). RLock because
        # run() calls ensure_started()/shutdown() internally.
        self._lock = make_lock("vmpi.pool", reentrant=True)
        #: registry membership: _origin_registry is sticky (ever owned a
        #: slot), _in_registry is current. A registry pool revived after
        #: a concurrent idle-eviction either reclaims its slot or
        #: self-retires after its current job — never leaks workers.
        self._origin_registry = False
        self._in_registry = False
        # pin count: holders of long-lived factorizations (the serving
        # layer's cache) pin the pool so the registry's idle LRU
        # eviction skips it — their resident ranks stay warm
        self._pins = 0

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self) -> None:
        """Protect this pool from registry LRU eviction (refcounted)."""
        with self._lock:
            self._pins += 1

    def unpin(self) -> None:
        """Release one :meth:`pin`; never drops below zero."""
        with self._lock:
            self._pins = max(0, self._pins - 1)

    @property
    def pinned(self) -> bool:
        """Whether any holder currently pins this pool."""
        return self._pins > 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Workers are up and able to take a dispatch."""
        return self._procs is not None and all(pr.is_alive() for pr in self._procs)

    @property
    def never_started(self) -> bool:
        """Freshly constructed — distinct from a pool whose workers died."""
        return self._procs is None and self.spawn_count == 0

    def ensure_started(self) -> None:
        """Spawn the workers (or respawn after a hard shutdown/death)."""
        with self._lock:
            self._ensure_started_locked()

    def _ensure_started_locked(self) -> None:
        if self.alive:
            return
        if self._procs is not None:
            # a worker died: rebuild from scratch, but stay registered —
            # this pool object is being revived, and dropping it from
            # the registry would orphan it from the atexit hook and let
            # get_pool spawn a duplicate under the same key
            self.shutdown(forget=False)
        import multiprocessing

        _ensure_resource_tracker()
        ctx = multiprocessing.get_context(self.start_method)
        self._mailboxes = [ctx.Queue() for _ in range(self.nranks)]
        self._cmd_qs = [ctx.SimpleQueue() for _ in range(self.nranks)]
        self._results_q = ctx.Queue()
        # feeder-less pipe: shm names written by a rank survive its death
        self._registry_q = ctx.SimpleQueue()
        self._registered = set()
        self._procs = [
            ctx.Process(
                target=_pool_worker_main,
                args=(
                    r,
                    self._cmd_qs[r],
                    self._results_q,
                    self._mailboxes,
                    self._registry_q,
                    self.min_shm_bytes,
                ),
                name=f"vmpi-pool-rank-{r}",
                daemon=True,
            )
            for r in range(self.nranks)
        ]
        started: list = []
        try:
            for pr in self._procs:
                pr.start()
                started.append(pr)
        except BaseException:
            # partial start (e.g. fork EAGAIN on a loaded box): reap the
            # ranks that did come up — leaving them would orphan daemon
            # workers, and a later shutdown() would fail joining the
            # never-started Process objects
            self.spawn_count += len(started)
            self._procs = started
            self.shutdown(forget=False)
            raise
        self.spawn_count += len(self._procs)
        self.generation += 1
        if self._origin_registry and not self._in_registry:
            # concurrently evicted from the registry while idle, now
            # revived: reclaim the slot if it is free or held by a dead
            # pool; if a live replacement owns it, this pool finishes
            # its current job and self-retires (_retire_if_orphaned)
            key = (self.nranks, self.start_method, self.min_shm_bytes)
            stale = None
            with _POOLS_LOCK:
                cur = _POOLS.get(key)
                if cur is None or not (cur.alive or cur.never_started):
                    if cur is not None:
                        cur._in_registry = False
                        stale = cur
                    _POOLS[key] = self
                    self._in_registry = True
            if stale is not None:
                # displaced dead pool: drain/sweep its resources like
                # get_pool does, or its registry-recorded shm names
                # would never be unlinked
                stale.shutdown(forget=False)  # repro: allow(lock-discipline) -- stale is dead (not alive/never_started, checked under _POOLS_LOCK), so its workers hold no locks and its RLock is uncontended; ordering with our held _lock cannot deadlock

    def shutdown(self, *, forget: bool = True) -> None:
        """Stop the workers and reclaim every transport resource.

        ``forget=False`` keeps the pool in the process-wide registry —
        used by :meth:`ensure_started` when tearing down dead workers
        immediately before respawning them.
        """
        with self._lock:
            self._shutdown_locked(forget=forget)

    def _shutdown_locked(self, *, forget: bool) -> None:
        if self._procs is None:
            return
        procs, self._procs = self._procs, None
        stop = pickle.dumps(("stop",), protocol=_PICKLE)
        for q in self._cmd_qs:
            try:
                q.put(stop)
            except (OSError, ValueError):  # pragma: no cover - closing
                pass
        _teardown_procs(
            procs, self._mailboxes, self._results_q, self._registry_q, self._registered
        )
        self._registered = set()
        for q in self._cmd_qs:
            q.close()
        if forget:
            _forget(self)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        args: tuple,
        *,
        cost_model: CostModel | None = None,
        copy_payloads: bool = True,
        timeout: float = 3600.0,
    ) -> SPMDRun:
        """Dispatch one SPMD program to the resident workers.

        Serialized per pool: the persistent mailboxes and result queue
        carry exactly one job, so a second thread dispatching through
        the same pool blocks until the first job completes.
        """
        with self._lock:
            return self._run_locked(
                fn,
                args,
                cost_model=cost_model,
                copy_payloads=copy_payloads,
                timeout=timeout,
            )

    def _run_locked(
        self,
        fn: Callable[..., Any],
        args: tuple,
        *,
        cost_model: CostModel | None,
        copy_payloads: bool,
        timeout: float,
    ) -> SPMDRun:
        self.ensure_started()
        # probe the program itself before touching the (possibly huge)
        # args: a closure/lambda fn fails cheaply here, before any array
        # is copied into shm — the fork fallback then costs nothing
        try:
            pickle.dumps((fn, cost_model), protocol=_PICKLE)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise DispatchEncodeError(
                f"SPMD program could not be pickled for dispatch: {exc!r}"
            ) from exc
        # args are shared read-only across ranks (the run_spmd contract;
        # the thread backend shares the very same objects), so encode
        # them ONCE into multi-receiver shm blocks: every rank maps the
        # same copy, and a distributed solve re-shipping the whole
        # factorization costs one memcpy instead of p
        created = _RegisteredRefs(self._registry_q)
        try:
            with trace.span("vmpi.encode", ranks=self.nranks) as esp:
                payload = encode_payload(
                    (fn, args, cost_model, copy_payloads),
                    self.min_shm_bytes,
                    created,
                    shared=True,
                )
                # nested blob: the outer control tuple is always loadable in
                # the worker; the payload is unpickled inside the worker's
                # failure-reporting path (see _execute_job)
                payload_blob = pickle.dumps(payload, protocol=_PICKLE)
                esp.set(bytes=len(payload_blob), shm_blocks=len(created))
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            _release_refs(created)
            raise DispatchEncodeError(
                f"SPMD job payload could not be pickled for dispatch: {exc!r}"
            ) from exc
        except Exception:
            _release_refs(created)
            raise
        # the job exists only once its payload is dispatchable
        self._job_id += 1
        self.jobs_run += 1
        job = self._job_id
        blob = pickle.dumps(
            ("run", job, payload_blob, trace.enabled, profile.active_hz),
            protocol=_PICKLE,
        )
        try:
            with trace.span("vmpi.dispatch", ranks=self.nranks, job=job):
                for rank in range(self.nranks):
                    self._cmd_qs[rank].put(blob)
        except Exception:
            # a partially dispatched job leaves some ranks blocked in
            # receives that can never complete — tear down hard
            self.shutdown()
            raise
        with trace.span("vmpi.collect", ranks=self.nranks, job=job):
            outcomes = self._collect(job, timeout)
        failures = [o for o in outcomes.values() if not o[2]]
        if failures:
            if len(outcomes) < self.nranks:
                # ranks still missing are stuck in receives that can
                # never complete: tear the pool down hard
                self.shutdown()
            else:
                # every rank reported, so the workers are idle again:
                # the pool survives a clean failure. Drain stranded
                # messages and sweep; blocks of the never-decoded
                # successful results are reclaimed by the registry sweep
                for q in self._mailboxes:
                    _drain_mailbox(q)
                self._sweep()
            rank, _job, _ok, desc, _rep = min(failures, key=lambda o: o[0])
            self._retire_if_orphaned()
            raise RuntimeError(f"rank {rank} failed: {desc}")
        results = [decode_payload(outcomes[r][3]) for r in range(self.nranks)]
        reports: list[RankReport] = [outcomes[r][4] for r in range(self.nranks)]
        self._sweep()
        self._retire_if_orphaned()
        return SPMDRun(results, reports)

    def _retire_if_orphaned(self) -> None:
        """Shut down a revived registry pool that lost its slot to a
        live replacement — nothing re-acquires it (``ProcessBackend``
        always goes through ``get_pool``), so without this its workers
        would idle unowned for the rest of the process."""
        if self._origin_registry and not self._in_registry:
            self._shutdown_locked(forget=False)

    def _collect(self, job: int, timeout: float) -> dict[int, tuple]:
        """One outcome per rank; stops early (1s grace) once a rank fails."""
        outcomes: dict[int, tuple] = {}
        deadline = time.monotonic() + timeout
        fail_grace: float | None = None
        while len(outcomes) < self.nranks:
            _drain_registry(self._registry_q, self._registered)
            now = time.monotonic()
            if fail_grace is not None and now > fail_grace:
                return outcomes
            if now > deadline:
                pending = sorted(set(range(self.nranks)) - set(outcomes))
                self.shutdown()
                raise TimeoutError(
                    f"SPMD run did not finish within {timeout}s (ranks {pending} alive)"
                )
            try:
                blob = self._results_q.get(timeout=0.2)
            except queue.Empty:
                dead = [
                    r
                    for r, pr in enumerate(self._procs)
                    if r not in outcomes and pr.exitcode is not None
                ]
                if not dead:
                    continue
                try:  # the outcome may still be in flight; one grace read
                    blob = self._results_q.get(timeout=1.0)
                except queue.Empty:
                    code = self._procs[dead[0]].exitcode
                    self.shutdown()
                    raise RuntimeError(
                        f"pool rank {dead[0]} died with exit code {code}"
                    ) from None
            item = pickle.loads(blob)
            if item[1] != job:  # pragma: no cover - job aborted earlier
                _release_refs(item[3])
                continue
            outcomes[item[0]] = item
            if not item[2] and fail_grace is None:
                fail_grace = time.monotonic() + 1.0
        return outcomes

    def registered_shm_names(self) -> set:
        """Names of shm blocks currently registered by this pool's workers.

        A lock-free snapshot for the resource watchdog: racing a
        dispatch may show a block one beat early or late, which the
        watchdog's multi-sample persistence requirement absorbs. Never
        attaches or unlinks anything — observation only.
        """
        try:
            return set(self._registered)
        except RuntimeError:  # pragma: no cover - set resized mid-copy
            return set()

    def _sweep(self) -> None:
        """Unlink orphaned shm blocks (workers must be idle).

        Every block delivered normally was already unlinked by its
        receiver, so attaching fails and it is skipped; anything still
        named is stranded — a message nobody received, or a result of a
        failed job — and is reclaimed here.
        """
        _drain_registry(self._registry_q, self._registered)
        _unlink_registered(self._registered)
        self._registered = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "down"
        return (
            f"RankPool(nranks={self.nranks}, start_method={self.start_method!r}, "
            f"{state}, spawns={self.spawn_count}, jobs={self.jobs_run})"
        )


# ----------------------------------------------------------------------
# process-wide pool registry (LRU, capped by REPRO_VMPI_POOL_MAX)
# ----------------------------------------------------------------------
_POOLS: "OrderedDict[tuple, RankPool]" = OrderedDict()
#: guards _POOLS only. Lock order is always pool._lock -> _POOLS_LOCK
#: (shutdown -> _forget); pools to shut down are collected under the
#: registry lock but torn down after releasing it, never the reverse.
_POOLS_LOCK = make_lock("vmpi.pool.registry")
_ATEXIT_REGISTERED = False


def get_pool(nranks: int, start_method: str, min_shm_bytes: int) -> RankPool:
    """The shared pool for this shape, started; LRU-evicts beyond the cap."""
    global _ATEXIT_REGISTERED
    key = (int(nranks), start_method, int(min_shm_bytes))
    evict: list[RankPool] = []
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        # reuse live pools AND freshly inserted ones another thread has
        # not finished starting (ensure_started below is idempotent)
        if pool is not None and (pool.alive or pool.never_started):
            _POOLS.move_to_end(key)
        else:
            if pool is not None:  # dead pool: replace it
                evict.append(_POOLS.pop(key))
            pool = RankPool(nranks, start_method, min_shm_bytes)
            pool._origin_registry = pool._in_registry = True
            _POOLS[key] = pool
            # LRU-evict beyond the cap, skipping pinned pools (their
            # ranks back factorizations resident in a serving cache);
            # if every candidate is pinned the cap is allowed to bulge
            while len(_POOLS) > vmpi_pool_max():
                victim_key = next(
                    (k for k, cand in _POOLS.items() if not cand.pinned and cand is not pool),
                    None,
                )
                if victim_key is None:
                    break
                evict.append(_POOLS.pop(victim_key))
        for old in evict:
            old._in_registry = False
        if not _ATEXIT_REGISTERED:
            # registered after multiprocessing's own atexit hook, so
            # (LIFO) this runs first, while worker teardown still works
            atexit.register(shutdown_all_pools)
            _ATEXIT_REGISTERED = True
    for old in evict:
        old.shutdown()
    pool.ensure_started()
    return pool


def active_pools() -> list[RankPool]:
    """Snapshot of the cached pools (introspection/tests)."""
    with _POOLS_LOCK:
        return list(_POOLS.values())


def pools_health() -> list[dict]:
    """Liveness rollup of every cached pool (watchdog/debug feed).

    Lock-free over each pool's worker list: a pool mid-(re)spawn or
    mid-teardown may report a transient mix, which periodic samplers
    tolerate by design.
    """
    out = []
    for pool in active_pools():
        procs = pool._procs
        alive = 0
        for pr in procs or ():
            try:
                alive += 1 if pr.is_alive() else 0
            except ValueError:  # pragma: no cover - process already closed
                pass
        out.append({
            "nranks": pool.nranks,
            "start_method": pool.start_method,
            "workers": len(procs) if procs is not None else 0,
            "alive": alive,
            "pinned": pool.pinned,
            "jobs_run": pool.jobs_run,
            "generation": pool.generation,
        })
    return out


def _forget(pool: RankPool) -> None:
    """Drop a pool from the registry (called from ``shutdown``)."""
    with _POOLS_LOCK:
        pool._in_registry = False
        for key, cached in list(_POOLS.items()):
            if cached is pool:
                del _POOLS[key]


def shutdown_all_pools() -> None:
    """Shut down every cached pool (interpreter-exit hook)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
        for pool in pools:
            pool._in_registry = False
    for pool in pools:
        pool.shutdown()
