"""Smooth Gaussian test kernel.

``g(r) = exp(-r^2 / (2 sigma^2))`` has no singularity, so exact dense
reference computations are trivial — used throughout the test suite to
validate the factorization machinery independently of singular
quadrature concerns. An identity shift keeps the matrix well
conditioned.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelMatrix, pairwise_distances, squared_distances


class GaussianKernelMatrix(KernelMatrix):
    """``A = shift * I + h^2 * exp(-r^2 / (2 sigma^2))`` on any planar cloud."""

    greens_vectorized = True
    hermitian = True  # real symmetric: rw = 1, cw = h^2, g radial

    def __init__(self, points: np.ndarray, h: float, *, sigma: float = 0.1, shift: float = 1.0):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if h <= 0 or sigma <= 0:
            raise ValueError("h and sigma must be positive")
        self.points = points
        self.h = float(h)
        self.sigma = float(sigma)
        self.shift = float(shift)
        self.dtype = np.dtype(np.float64)

    def greens(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        r = pairwise_distances(np.atleast_2d(x), np.atleast_2d(y))
        return np.exp(-(r**2) / (2.0 * self.sigma**2))

    def greens_stack(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # g is radial in r^2 already: skip the sqrt/re-square round trip
        return np.exp(-squared_distances(x, y) / (2.0 * self.sigma**2))

    def col_weights(self, index: np.ndarray) -> np.ndarray:
        return np.full(len(index), self.h * self.h, dtype=self.dtype)

    def diagonal(self) -> np.ndarray:
        # g(0) = 1 contributes h^2 on the diagonal plus the identity shift
        return np.full(self.n, self.shift + self.h * self.h, dtype=self.dtype)

    def spawn(self, points: np.ndarray, data: dict[str, np.ndarray]) -> "GaussianKernelMatrix":
        return GaussianKernelMatrix(points, self.h, sigma=self.sigma, shift=self.shift)
