"""Singular self-interaction quadrature over a grid cell.

The diagonal entries of the discretized integral operators are
``Integral over [-h/2, h/2]^2 of K(|x|) dx`` (Eqns. 17 and 21 of the
paper). The integrand is radially symmetric with an integrable
singularity at the origin, so we integrate in polar coordinates:

    I = 8 * Integral_{0}^{pi/4} P(h / (2 cos t)) dt,

where ``P(R) = Integral_0^R K(r) r dr`` is the *radial primitive*.
For the kernels in this package ``P`` is known in closed form (log,
Hankel, Bessel-K), so only the smooth angular integral is numerical —
a short Gauss–Legendre rule gives near machine precision, replacing the
paper's adaptive ``dblquad`` from ``MultiQuad.jl``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

_GL_NODES_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _gauss_legendre(n: int) -> tuple[np.ndarray, np.ndarray]:
    if n not in _GL_NODES_CACHE:
        _GL_NODES_CACHE[n] = np.polynomial.legendre.leggauss(n)
    return _GL_NODES_CACHE[n]


def square_self_integral(
    radial_primitive: Callable[[np.ndarray], np.ndarray],
    h: float,
    *,
    order: int = 64,
) -> complex:
    """``Integral of K(|x|)`` over the square ``[-h/2, h/2]^2``.

    Parameters
    ----------
    radial_primitive:
        Vectorized ``P(R) = Integral_0^R K(r) r dr``.
    h:
        Cell side length.
    order:
        Gauss–Legendre order for the angular integral.
    """
    if h <= 0:
        raise ValueError(f"cell size must be positive, got {h}")
    nodes, weights = _gauss_legendre(order)
    # map [-1, 1] -> [0, pi/4]
    theta = (nodes + 1.0) * (np.pi / 8.0)
    w = weights * (np.pi / 8.0)
    radius = h / (2.0 * np.cos(theta))
    vals = radial_primitive(radius)
    total = 8.0 * np.sum(w * vals)
    return complex(total)


def log_radial_primitive(radius: np.ndarray) -> np.ndarray:
    """``P(R)`` for ``K(r) = ln r``: ``R^2/2 (ln R - 1/2)``."""
    radius = np.asarray(radius, dtype=float)
    return 0.5 * radius**2 * (np.log(radius) - 0.5)


def log_square_self_integral(h: float, *, order: int = 64) -> float:
    """``Integral of ln|x|`` over ``[-h/2, h/2]^2`` (exact closed form known).

    The closed form is ``h^2 (ln(h/sqrt(2)) - 3/2 + pi/4)`` — kept as
    the reference in tests; this function evaluates the polar quadrature.
    """
    return float(square_self_integral(log_radial_primitive, h, order=order).real)


def log_square_self_integral_exact(h: float) -> float:
    """Closed form of :func:`log_square_self_integral`."""
    return h * h * (np.log(h / np.sqrt(2.0)) - 1.5 + 0.25 * np.pi)
