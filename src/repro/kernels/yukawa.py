"""2D Yukawa (modified Helmholtz) kernel.

``g(r) = K0(lambda r) / (2 pi)`` — the free-space Green's function of
``(-Delta + lambda^2)``. Not part of the paper's evaluation, but a
natural additional non-oscillatory kernel: it decays exponentially, is
symmetric positive definite after discretization, and stresses the same
code paths as the Laplace kernel with a very different conditioning
profile.

Radial primitive (for the singular diagonal):
``Integral_0^R K0(lambda r) r dr = 1/lambda^2 - R K1(lambda R)/lambda``
from ``d/dr [r K1(lambda r)] = -lambda r K0(lambda r)`` and
``r K1(lambda r) -> 1/lambda``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import k0, k1

from repro.kernels.base import KernelMatrix, pairwise_distances
from repro.kernels.selfquad import square_self_integral


class YukawaKernelMatrix(KernelMatrix):
    """Second-kind volume IE matrix ``A = I + h^2 G_lambda`` on a uniform grid."""

    greens_vectorized = True
    hermitian = True  # real symmetric: rw = 1, cw = h^2, K0 radial

    def __init__(self, points: np.ndarray, h: float, lam: float, *, identity_shift: float = 1.0):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if h <= 0 or lam <= 0:
            raise ValueError("grid spacing and lambda must be positive")
        self.points = points
        self.h = float(h)
        self.lam = float(lam)
        self.identity_shift = float(identity_shift)
        self.dtype = np.dtype(np.float64)

        def primitive(radius: np.ndarray) -> np.ndarray:
            z = self.lam * np.asarray(radius, dtype=float)
            return (1.0 / self.lam**2 - radius * k1(z) / self.lam) / (2.0 * np.pi)

        self._cell_integral = float(square_self_integral(primitive, self.h).real)

    def greens(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        r = pairwise_distances(np.atleast_2d(x), np.atleast_2d(y))
        with np.errstate(divide="ignore", invalid="ignore"):
            return k0(self.lam * r) / (2.0 * np.pi)

    def col_weights(self, index: np.ndarray) -> np.ndarray:
        return np.full(len(index), self.h * self.h, dtype=self.dtype)

    def diagonal(self) -> np.ndarray:
        return np.full(self.n, self.identity_shift + self._cell_integral, dtype=self.dtype)

    def spawn(self, points: np.ndarray, data: dict[str, np.ndarray]) -> "YukawaKernelMatrix":
        return YukawaKernelMatrix(
            points, self.h, self.lam, identity_shift=self.identity_shift
        )
