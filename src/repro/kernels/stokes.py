"""2D Stokeslet (vector-valued) kernel utilities.

The paper's introduction motivates first-kind Fredholm equations for the
Stokes equation; the scalar RS-S solver in this repository factors
scalar kernels, so the Stokeslet is provided as a substrate (matrix
assembly + FFT-compatible component split) and exercised by tests. Full
multi-DOF skeletonization is a documented extension point.

    G(x, y) = (1 / 4 pi) [ -ln r I + (x-y)(x-y)^T / r^2 ]
"""

from __future__ import annotations

import numpy as np


def stokeslet_matrix(x: np.ndarray, y: np.ndarray, *, viscosity: float = 1.0) -> np.ndarray:
    """Dense 2D Stokeslet matrix, shape ``(2 len(x), 2 len(y))``.

    Coincident points get zero blocks (self-interaction must be supplied
    by the discretization, as for the scalar kernels).
    """
    x = np.atleast_2d(x)
    y = np.atleast_2d(y)
    dx = x[:, 0][:, None] - y[:, 0][None, :]
    dy = x[:, 1][:, None] - y[:, 1][None, :]
    r2 = dx * dx + dy * dy
    coincident = r2 == 0.0
    scale = 1.0 / (4.0 * np.pi * viscosity)
    m, n = x.shape[0], y.shape[0]
    out = np.zeros((2 * m, 2 * n))
    with np.errstate(divide="ignore", invalid="ignore"):
        lnr = 0.5 * np.log(r2)
        inv_r2 = 1.0 / r2
        gxx = scale * (-lnr + dx * dx * inv_r2)
        gxy = scale * (dx * dy * inv_r2)
        gyy = scale * (-lnr + dy * dy * inv_r2)
    for g in (gxx, gxy, gyy):
        g[coincident] = 0.0
    out[0::2, 0::2] = gxx
    out[0::2, 1::2] = gxy
    out[1::2, 0::2] = gxy
    out[1::2, 1::2] = gyy
    return out
