"""Kernel-matrix protocol shared by all kernels.

Every kernel matrix in this package has the factored form

    A[i, j] = row_w[i] * g(x_i, x_j) * col_w[j]      for i != j
    A[i, i] = diagonal()[i]                          (singular self term)

where ``g`` is the (translation-invariant) Green's function and the
row/column weights carry the quadrature weight ``h^2`` and any variable
coefficient (e.g. ``kappa^2 sqrt(b_i b_j)`` for Lippmann–Schwinger).

The split matters for proxy compression: the column space of
``A[F, B]`` equals the column space of ``g(x_F, x_B) @ diag(col_w[B])``
because the far-field row scaling ``diag(row_w[F])`` is nonsingular, so
the proxy surrogate only needs the *B-side* weights (see
``proxy_row_block`` / ``proxy_col_block``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class KernelMatrix(ABC):
    """Dense kernel matrix ``A`` over a fixed planar point set."""

    #: point coordinates, shape (N, 2)
    points: np.ndarray
    #: numpy dtype of matrix entries
    dtype: np.dtype

    @abstractmethod
    def greens(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Raw Green's function matrix ``g(x_i, y_j)``, shape (len(x), len(y)).

        ``g`` must be finite for distinct arguments; entries with
        coincident arguments may be arbitrary (callers mask them).
        """

    @abstractmethod
    def diagonal(self) -> np.ndarray:
        """Singular self-interaction entries ``A[i, i]``, shape (N,)."""

    def row_weights(self, index: np.ndarray) -> np.ndarray:
        """Row scaling ``row_w[index]``; default all-ones."""
        return np.ones(len(index), dtype=self.dtype)

    def col_weights(self, index: np.ndarray) -> np.ndarray:
        """Column scaling ``col_w[index]``; default all-ones."""
        return np.ones(len(index), dtype=self.dtype)

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def is_translation_invariant(self) -> bool:
        """True when ``g(x, y)`` depends only on ``x - y`` (enables FFT matvec)."""
        return True

    #: True when :meth:`greens` accepts stacked ``(nb, m, 2)`` inputs and
    #: broadcasts to ``(nb, m, k)`` — the isotropic radial kernels built
    #: on :func:`pairwise_distances` set this so the multi-box block API
    #: below evaluates a whole same-shape group in one ufunc sweep.
    #: Kernels with per-pair logic (layer potentials with local
    #: quadrature corrections) leave it False and take the per-box loop.
    greens_vectorized: bool = False

    #: True when ``A == A^H`` exactly: ``g`` real and symmetric with
    #: uniform real row/column weights (Laplace, Gaussian, Yukawa). The
    #: batched sweep then assembles only ``A[M, B]`` in the compression
    #: matrix — ``A[B, M]^*`` duplicates it row for row, so dropping it
    #: halves both the far-field evaluation and the CPQR row count
    #: without changing the constraint set of the ID — and fills each
    #: near pair once, storing the transpose for the reverse direction.
    #: Complex-symmetric kernels (Helmholtz: ``A == A^T != A^H``) must
    #: leave this False.
    hermitian: bool = False

    def greens_stack(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Green's function over stacked ``(nb, m, 2)`` point sets.

        Defaults to :meth:`greens` (which broadcasts when
        ``greens_vectorized`` is set). Radial kernels whose ``g`` has a
        closed form in the *squared* distance override this to skip the
        square-root pass over the whole ``(nb, m, k)`` stack; such
        overrides may differ from :meth:`greens` in the last float ulp
        (e.g. ``log(sqrt(s))`` vs ``log(s)/2``), which is why only the
        batched sweep uses this entry point — the strict per-box path
        always goes through :meth:`greens`.
        """
        return self.greens(x, y)

    def check_tree_resolution(self, tree) -> None:
        """Validate a quadtree against this kernel's locality assumptions.

        Tree consumers (``srs_factor``, ``TreecodeMatVec``) call this
        before use. The default kernel entries are pure evaluations of
        ``g``, so any tree works; kernels with locally corrected
        quadrature (:mod:`repro.bie`) override this to require the
        corrected band to stay inside the leaf-level near field.
        """

    # ------------------------------------------------------------------
    # distributed support: ranks only know a subset of the points
    # ------------------------------------------------------------------
    def per_point_data(self, index: np.ndarray) -> dict[str, np.ndarray]:
        """Per-point auxiliary data (e.g. the scattering potential) for a subset.

        This is what a rank must *communicate* alongside coordinates so
        a remote rank can evaluate kernel entries involving its points.
        """
        return {}

    def spawn(self, points: np.ndarray, data: dict[str, np.ndarray]) -> "KernelMatrix":
        """Rebuild the same kernel over a different point set.

        Used by the distributed workers: a rank reconstructs a local
        kernel from the coordinates (+ ``per_point_data``) it received.
        Scalar parameters (``h``, ``kappa``, …) are program constants
        shared by all ranks.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support spawn()")

    # ------------------------------------------------------------------
    # assembled blocks
    # ------------------------------------------------------------------
    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Submatrix ``A[rows][:, cols]`` with correct diagonal entries."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size == 0 or cols.size == 0:
            return np.zeros((rows.size, cols.size), dtype=self.dtype)
        same = rows[:, None] == cols[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            g = self.greens(self.points[rows], self.points[cols])
        blk = (
            self.row_weights(rows)[:, None] * g * self.col_weights(cols)[None, :]
        ).astype(self.dtype, copy=False)
        if same.any():
            d = self.diagonal()
            ii, jj = np.nonzero(same)
            blk[ii, jj] = d[rows[ii]]
        return blk

    def proxy_row_block(self, proxy_points: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Surrogate for the rows of ``A[F, cols]``: ``g(proxy, x_cols) diag(col_w)``."""
        cols = np.asarray(cols, dtype=np.int64)
        if proxy_points.shape[0] == 0 or cols.size == 0:
            return np.zeros((proxy_points.shape[0], cols.size), dtype=self.dtype)
        g = self.greens(proxy_points, self.points[cols])
        return (g * self.col_weights(cols)[None, :]).astype(self.dtype, copy=False)

    def proxy_col_block(self, rows: np.ndarray, proxy_points: np.ndarray) -> np.ndarray:
        """Surrogate for the columns of ``A[rows, F]``: ``diag(row_w) g(x_rows, proxy)``."""
        rows = np.asarray(rows, dtype=np.int64)
        if proxy_points.shape[0] == 0 or rows.size == 0:
            return np.zeros((rows.size, proxy_points.shape[0]), dtype=self.dtype)
        g = self.greens(self.points[rows], proxy_points)
        return (self.row_weights(rows)[:, None] * g).astype(self.dtype, copy=False)

    # ------------------------------------------------------------------
    # multi-box (stacked) blocks — the level-batched factor sweep
    # evaluates a whole group of same-shape blocks at once. All three
    # methods take index/point stacks with a leading box axis ``nb`` and
    # return ``(nb, rows, cols)``. The defaults loop over the per-box
    # methods (and therefore respect any subclass overrides of
    # ``block``/``proxy_*_block``); kernels with ``greens_vectorized``
    # get a single broadcast kernel evaluation instead.
    # ------------------------------------------------------------------
    def block_stack(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Stacked submatrices ``A[rows[b]][:, cols[b]]`` for every box ``b``.

        ``rows``/``cols`` are integer index stacks of shape ``(nb, r)``
        and ``(nb, c)``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        nb, r = rows.shape
        c = cols.shape[1]
        if nb == 0 or r == 0 or c == 0:
            return np.zeros((nb, r, c), dtype=self.dtype)
        if not self.greens_vectorized:
            out = np.empty((nb, r, c), dtype=self.dtype)
            for b in range(nb):
                out[b, :, :] = self.block(rows[b], cols[b])
            return out
        with np.errstate(divide="ignore", invalid="ignore"):
            g = self.greens_stack(self.points[rows], self.points[cols])
        rw = self.row_weights(rows.reshape(-1)).reshape(nb, r, 1)
        cw = self.col_weights(cols.reshape(-1)).reshape(nb, 1, c)
        blk = (rw * g * cw).astype(self.dtype, copy=False)
        same = rows[:, :, None] == cols[:, None, :]
        if same.any():
            d = self.diagonal()
            bb, ii, jj = np.nonzero(same)
            blk[bb, ii, jj] = d[rows[bb, ii]]
        return blk

    def proxy_row_block_stack(
        self, proxy_points: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`proxy_row_block`: ``(nb, p, 2)`` x ``(nb, c)``."""
        cols = np.asarray(cols, dtype=np.int64)
        nb, p = proxy_points.shape[0], proxy_points.shape[1]
        c = cols.shape[1]
        if nb == 0 or p == 0 or c == 0:
            return np.zeros((nb, p, c), dtype=self.dtype)
        if not self.greens_vectorized:
            out = np.empty((nb, p, c), dtype=self.dtype)
            for b in range(nb):
                out[b, :, :] = self.proxy_row_block(proxy_points[b], cols[b])
            return out
        g = self.greens_stack(proxy_points, self.points[cols])
        cw = self.col_weights(cols.reshape(-1)).reshape(nb, 1, c)
        return (g * cw).astype(self.dtype, copy=False)

    def proxy_col_block_stack(
        self, rows: np.ndarray, proxy_points: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`proxy_col_block`: ``(nb, r)`` x ``(nb, p, 2)``."""
        rows = np.asarray(rows, dtype=np.int64)
        nb, p = proxy_points.shape[0], proxy_points.shape[1]
        r = rows.shape[1]
        if nb == 0 or p == 0 or r == 0:
            return np.zeros((nb, r, p), dtype=self.dtype)
        if not self.greens_vectorized:
            out = np.empty((nb, r, p), dtype=self.dtype)
            for b in range(nb):
                out[b, :, :] = self.proxy_col_block(rows[b], proxy_points[b])
            return out
        g = self.greens_stack(self.points[rows], proxy_points)
        rw = self.row_weights(rows.reshape(-1)).reshape(nb, r, 1)
        return (rw * g).astype(self.dtype, copy=False)


def dense_matrix(kernel: KernelMatrix) -> np.ndarray:
    """Assemble the full ``N x N`` matrix (testing / small problems only)."""
    idx = np.arange(kernel.n, dtype=np.int64)
    return kernel.block(idx, idx)


def pairwise_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between two planar point sets.

    Accepts plain ``(m, 2)`` x ``(k, 2)`` sets (returns ``(m, k)``) or
    stacked ``(nb, m, 2)`` x ``(nb, k, 2)`` sets (returns
    ``(nb, m, k)``) — the broadcast form the multi-box block API feeds
    to vectorized kernels.
    """
    dx = x[..., :, None, 0] - y[..., None, :, 0]
    dy = x[..., :, None, 1] - y[..., None, :, 1]
    return np.hypot(dx, dy)


def squared_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix; broadcasts like
    :func:`pairwise_distances` but without the square root (or
    ``hypot``'s overflow guards) — the cheap input for ``greens_stack``
    overrides of kernels radial in ``r^2``."""
    dx = x[..., :, None, 0] - y[..., None, :, 0]
    dy = x[..., :, None, 1] - y[..., None, :, 1]
    return dx * dx + dy * dy
