"""2D Helmholtz / Lippmann–Schwinger kernel (Sec. V-B of the paper).

The symmetrized Lippmann–Schwinger equation (Eq. 18 with
``mu = sigma / sqrt(b)``) discretized by piecewise-constant collocation
gives the complex symmetric system

    A[i, j] = h^2 kappa^2 sqrt(b_i b_j) * (i/4) H0^(1)(kappa |x_i - x_j|)   (Eq. 20)
    A[i, i] = 1 + kappa^2 b_i * Integral over h-cell of (i/4) H0^(1)(kappa |x|)  (Eq. 21)

The Green's function is ``g = (i/4) H0^(1)(kappa r)`` and both row and
column weights are ``kappa h sqrt(b)`` (their product restores
``h^2 kappa^2 sqrt(b_i b_j)``).

The singular diagonal uses the closed-form radial primitive

    Integral_0^R H0(kappa r) r dr = R H1(kappa R)/kappa + 2i/(pi kappa^2),

which follows from ``d/dz [z H1(z)] = z H0(z)`` and
``z H1^(1)(z) -> -2i/pi`` as ``z -> 0``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.special import hankel1

from repro.kernels.base import KernelMatrix, pairwise_distances
from repro.kernels.selfquad import square_self_integral


def helmholtz_greens(x: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """``(i/4) H0^(1)(kappa |x - y|)`` (coincident entries are nan/inf)."""
    r = pairwise_distances(np.atleast_2d(x), np.atleast_2d(y))
    with np.errstate(divide="ignore", invalid="ignore"):
        return 0.25j * hankel1(0, kappa * r)


def hankel_cell_self_integral(kappa: float, h: float, *, order: int = 64) -> complex:
    """``Integral of (i/4) H0^(1)(kappa |x|)`` over ``[-h/2, h/2]^2``."""

    def primitive(radius: np.ndarray) -> np.ndarray:
        z = kappa * np.asarray(radius, dtype=float)
        return 0.25j * (radius * hankel1(1, z) / kappa + 2.0j / (np.pi * kappa**2))

    return square_self_integral(primitive, h, order=order)


def plane_wave(points: np.ndarray, kappa: float, direction=(1.0, 0.0)) -> np.ndarray:
    """Incident plane wave ``exp(i kappa d . x)`` (paper: traveling right)."""
    d = np.asarray(direction, dtype=float)
    d = d / np.linalg.norm(d)
    phase = kappa * (points @ d)
    return np.exp(1j * phase)


def gaussian_bump(points: np.ndarray, *, center=(0.5, 0.5), sharpness: float = 32.0) -> np.ndarray:
    """The paper's scattering potential ``b(x) = exp(-32 |x - c|^2)`` (Fig. 7a)."""
    pts = np.atleast_2d(points)
    d2 = (pts[:, 0] - center[0]) ** 2 + (pts[:, 1] - center[1]) ** 2
    return np.exp(-sharpness * d2)


class HelmholtzKernelMatrix(KernelMatrix):
    """Kernel matrix of the symmetrized Lippmann–Schwinger equation.

    Parameters
    ----------
    points:
        Collocation grid points.
    h:
        Grid spacing.
    kappa:
        Wave number of the incoming wave.
    b:
        Scattering potential values ``b(x_i)`` in ``(0, 1]``; defaults
        to all-ones (constant-coefficient Helmholtz).
    """

    greens_vectorized = True

    def __init__(
        self,
        points: np.ndarray,
        h: float,
        kappa: float,
        *,
        b: np.ndarray | Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if h <= 0:
            raise ValueError(f"grid spacing must be positive, got {h}")
        if kappa <= 0:
            raise ValueError(f"wave number must be positive, got {kappa}")
        self.points = points
        self.h = float(h)
        self.kappa = float(kappa)
        if b is None:
            bvals = np.ones(points.shape[0])
        elif callable(b):
            bvals = np.asarray(b(points), dtype=float)
        else:
            bvals = np.asarray(b, dtype=float)
        if bvals.shape != (points.shape[0],):
            raise ValueError(f"b must have shape ({points.shape[0]},), got {bvals.shape}")
        if np.any(bvals <= 0) or np.any(bvals > 1 + 1e-12):
            raise ValueError("scattering potential must satisfy 0 < b(x) <= 1")
        self.b = bvals
        self.dtype = np.dtype(np.complex128)
        self._sqrt_b = np.sqrt(bvals)
        self._cell_integral = hankel_cell_self_integral(self.kappa, self.h)

    def greens(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return helmholtz_greens(x, y, self.kappa)

    def row_weights(self, index: np.ndarray) -> np.ndarray:
        return (self.kappa * self.h * self._sqrt_b[index]).astype(self.dtype)

    def col_weights(self, index: np.ndarray) -> np.ndarray:
        return (self.kappa * self.h * self._sqrt_b[index]).astype(self.dtype)

    def diagonal(self) -> np.ndarray:
        return (1.0 + self.kappa**2 * self.b * self._cell_integral).astype(self.dtype)

    def points_per_wavelength(self) -> float:
        """Grid points per wavelength ``2 pi / (kappa h)``."""
        return 2.0 * np.pi / (self.kappa * self.h)

    def per_point_data(self, index: np.ndarray) -> dict[str, np.ndarray]:
        return {"b": self.b[np.asarray(index, dtype=np.int64)]}

    def spawn(self, points: np.ndarray, data: dict[str, np.ndarray]) -> "HelmholtzKernelMatrix":
        return HelmholtzKernelMatrix(points, self.h, self.kappa, b=data["b"])
