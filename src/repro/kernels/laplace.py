"""2D Laplace kernel (Sec. V-A of the paper).

First-kind volume integral equation on the unit square discretized by
piecewise-constant collocation on a ``sqrt(N) x sqrt(N)`` grid:

    A[i, j] = -(h^2 / 2 pi) ln |x_i - x_j|        (i != j, Eq. 16)
    A[i, i] = Integral over the h-cell of -(1/2 pi) ln |x|   (Eq. 17)

The Green's function is ``g(x, y) = -(1/2 pi) ln|x - y|`` and the
column weight carries the quadrature weight ``h^2``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelMatrix, pairwise_distances, squared_distances
from repro.kernels.selfquad import log_square_self_integral_exact


def laplace_greens(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``-(1/2 pi) ln|x - y|`` (entries with ``x == y`` are ``+inf``)."""
    r = pairwise_distances(np.atleast_2d(x), np.atleast_2d(y))
    with np.errstate(divide="ignore"):
        return -np.log(r) / (2.0 * np.pi)


class LaplaceKernelMatrix(KernelMatrix):
    """Kernel matrix of the first-kind Laplace volume IE on a uniform grid.

    Parameters
    ----------
    points:
        Collocation points (typically :func:`repro.geometry.uniform_grid`).
    h:
        Grid spacing (``1/sqrt(N)`` on the unit square); sets the
        quadrature weight and the singular diagonal entry.
    """

    greens_vectorized = True
    hermitian = True  # real symmetric: rw = 1, cw = h^2, g(x, y) = g(y, x)

    def __init__(self, points: np.ndarray, h: float):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if h <= 0:
            raise ValueError(f"grid spacing must be positive, got {h}")
        self.points = points
        self.h = float(h)
        self.dtype = np.dtype(np.float64)
        # Eq. (17): cell self-integral of -(1/2 pi) ln r (no extra h^2)
        self._diag_value = -log_square_self_integral_exact(self.h) / (2.0 * np.pi)

    def greens(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return laplace_greens(x, y)

    def greens_stack(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # -(1/2 pi) ln r == -(1/4 pi) ln r^2: same function of the
        # squared distance, sparing the sqrt pass over the whole stack
        with np.errstate(divide="ignore"):
            return -np.log(squared_distances(x, y)) / (4.0 * np.pi)

    def col_weights(self, index: np.ndarray) -> np.ndarray:
        return np.full(len(index), self.h * self.h, dtype=self.dtype)

    def diagonal(self) -> np.ndarray:
        return np.full(self.n, self._diag_value, dtype=self.dtype)

    def spawn(self, points: np.ndarray, data: dict[str, np.ndarray]) -> "LaplaceKernelMatrix":
        return LaplaceKernelMatrix(points, self.h)
