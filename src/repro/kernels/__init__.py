"""Kernel matrices for planar integral equations.

A :class:`~repro.kernels.base.KernelMatrix` defines the entries of the
dense system matrix ``A`` over a fixed planar point set, including the
discretization weights and the singular diagonal (self-interaction)
entries, and exposes the raw Green's function needed by the
proxy-compression step (Sec. II-C of the paper).
"""

from repro.kernels.base import KernelMatrix, dense_matrix
from repro.kernels.laplace import LaplaceKernelMatrix, laplace_greens
from repro.kernels.helmholtz import HelmholtzKernelMatrix, helmholtz_greens, plane_wave
from repro.kernels.yukawa import YukawaKernelMatrix
from repro.kernels.gaussian import GaussianKernelMatrix
from repro.kernels.selfquad import square_self_integral
from repro.kernels.stokes import stokeslet_matrix

__all__ = [
    "KernelMatrix",
    "dense_matrix",
    "LaplaceKernelMatrix",
    "laplace_greens",
    "HelmholtzKernelMatrix",
    "helmholtz_greens",
    "plane_wave",
    "YukawaKernelMatrix",
    "GaussianKernelMatrix",
    "square_self_integral",
    "stokeslet_matrix",
]
