"""Kernel-independent treecode matvec for non-uniform point clouds.

The paper's experiments use an FFT matvec because their grids are
uniform, noting "Otherwise, a fast summation algorithm such as the
distributed-memory FMM is required" (Sec. V). This module provides that
substrate for non-uniform clouds: an O(N log N) treecode with
*kernel-independent* multipoles in the style of Ying–Biros–Zorin —
each box's far influence is represented by an equivalent density on a
proxy circle, fitted by matching the true potential on a check circle
(the same proxy machinery the factorization uses, run in the forward
direction).

As with any kernel-independent FMM, the equivalent-surface
representation is exact (to fit tolerance) for kernels satisfying an
elliptic PDE away from their sources (Laplace, Helmholtz, Yukawa,
Stokes); for a generic smooth kernel (e.g. Gaussian) it is only
approximate.

Structure:

* upward pass: leaf sources -> equivalent densities; children's
  equivalents merge into the parent's (M2M) by the same fit;
* evaluation: for every target leaf, direct near-field (self +
  neighbors) plus, at every level, the interaction list (boxes at
  Chebyshev distance 2-3 of the target's ancestor, i.e. the far boxes
  whose parents were near at the coarser level) evaluated from their
  equivalent densities.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.proxy import proxy_circle
from repro.kernels.base import KernelMatrix
from repro.obs import REGISTRY, trace
from repro.tree.quadtree import QuadTree

_MATVECS = REGISTRY.counter(
    "repro_treecode_matvecs_total", "Treecode matrix-vector applications"
)
_NEAR_SECONDS = REGISTRY.counter(
    "repro_treecode_near_seconds_total",
    "Wall time in treecode near-field (direct block) evaluation",
)
_FAR_SECONDS = REGISTRY.counter(
    "repro_treecode_far_seconds_total",
    "Wall time in treecode far-field (equivalent density) evaluation",
)

Coord = tuple[int, int]


class TreecodeMatVec:
    """O(N log N) matvec ``y = A x`` for an arbitrary planar cloud.

    Parameters
    ----------
    kernel:
        Kernel matrix over its points (weights + diagonal included).
    tree:
        Quadtree over the same points; built from ``leaf_size`` if
        omitted.
    n_equiv:
        Points on each equivalent (proxy) circle; accuracy knob.
    check_factor / equiv_factor:
        Radii of the check and equivalent circles as multiples of the
        box side. The equivalent circle must enclose the box
        (factor > sqrt(2)/2); the check circle must stay inside the
        near-field ring (factor < 1.5) so the fit is valid for all
        distance->=2 evaluation points.
    """

    def __init__(
        self,
        kernel: KernelMatrix,
        tree: QuadTree | None = None,
        *,
        leaf_size: int = 64,
        n_equiv: int = 48,
        equiv_factor: float = 0.8,
        check_factor: float = 1.45,
        rcond: float = 1e-12,
    ):
        if not (equiv_factor > 0.7071):
            raise ValueError("equivalent circle must enclose the box (factor > sqrt(2)/2)")
        if not (equiv_factor < check_factor <= 1.5):
            raise ValueError("need equiv_factor < check_factor <= 1.5")
        self.kernel = kernel
        self.tree = tree or QuadTree.for_leaf_size(kernel.points, leaf_size)
        if self.tree.N != kernel.n:
            raise ValueError("tree and kernel must share the point set")
        kernel.check_tree_resolution(self.tree)
        self.n_equiv = int(n_equiv)
        self.equiv_factor = float(equiv_factor)
        self.check_factor = float(check_factor)
        self.rcond = float(rcond)
        self.shape = (kernel.n, kernel.n)
        self.dtype = np.dtype(np.result_type(kernel.dtype, np.float64))
        self._build_operators()

    # ------------------------------------------------------------------
    def _circles(self, level: int, box: Coord) -> tuple[np.ndarray, np.ndarray]:
        center = self.tree.box_center(level, *box)
        side = self.tree.box_side(level)
        eq = proxy_circle(center, self.equiv_factor * side, self.n_equiv)
        ck = proxy_circle(center, self.check_factor * side, 2 * self.n_equiv)
        return eq, ck

    def _fit(self, check_pts: np.ndarray, equiv_pts: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve K(check, equiv) q = rhs in the least-squares sense."""
        a = self.kernel.greens(check_pts, equiv_pts)
        q, *_ = np.linalg.lstsq(a, rhs, rcond=self.rcond)
        return q

    def _build_operators(self) -> None:
        """Precompute per-box source-to-equivalent and M2M fit operators."""
        tree, kernel = self.tree, self.kernel
        self._equiv_pts: dict[tuple[int, Coord], np.ndarray] = {}
        self._s2e: dict[tuple[int, Coord], tuple[np.ndarray, np.ndarray]] = {}
        self._m2m: dict[tuple[int, Coord], list[tuple[Coord, np.ndarray]]] = {}

        leaf = tree.nlevels
        for box in tree.nonempty_leaves():
            idx = tree.leaf_points(*box)
            eq, ck = self._circles(leaf, box)
            self._equiv_pts[(leaf, box)] = eq
            # rhs operator: potentials of the true (weighted) sources on the
            # check circle: K(ck, x_B) diag(col_w)
            src = kernel.proxy_row_block(ck, idx)  # (n_check, |B|)
            a = kernel.greens(ck, eq)
            op, *_ = np.linalg.lstsq(a, src, rcond=self.rcond)
            self._s2e[(leaf, box)] = (idx, op)

        self._nonempty: dict[int, list[Coord]] = {leaf: tree.nonempty_leaves()}
        for level in range(leaf - 1, 1, -1):
            parents = sorted(
                {(b[0] >> 1, b[1] >> 1) for b in self._nonempty[level + 1]}
            )
            self._nonempty[level] = parents
            for box in parents:
                eq, ck = self._circles(level, box)
                self._equiv_pts[(level, box)] = eq
                merges = []
                for child in tree.children(level, *box):
                    if (level + 1, child) not in self._equiv_pts:
                        continue
                    child_eq = self._equiv_pts[(level + 1, child)]
                    src = kernel.greens(ck, child_eq)
                    a = kernel.greens(ck, eq)
                    op, *_ = np.linalg.lstsq(a, src, rcond=self.rcond)
                    merges.append((child, op))
                self._m2m[(level, box)] = merges

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply ``A`` to a vector ``(N,)`` or a block of them ``(N, nrhs)``,
        matching :meth:`repro.core.factorization.SRSFactorization.solve`'s
        multiple-RHS contract."""
        x = np.asarray(x)
        if x.ndim not in (1, 2) or x.shape[0] != self.kernel.n:
            raise ValueError(
                f"expected a length-{self.kernel.n} vector or an "
                f"({self.kernel.n}, nrhs) block, got shape {x.shape}"
            )
        single = x.ndim == 1
        x = x[:, None] if single else x
        tree, kernel = self.tree, self.kernel
        leaf = tree.nlevels
        out_dtype = np.result_type(self.dtype, x.dtype)

        _MATVECS.inc()
        # upward pass: equivalent densities
        density: dict[tuple[int, Coord], np.ndarray] = {}
        with trace.span("treecode.upward", n=kernel.n, nrhs=x.shape[1]):
            for box in self._nonempty[leaf]:
                idx, op = self._s2e[(leaf, box)]
                density[(leaf, box)] = op @ x[idx]
            for level in range(leaf - 1, 1, -1):
                for box in self._nonempty[level]:
                    q = np.zeros((self.n_equiv, x.shape[1]), dtype=out_dtype)
                    for child, op in self._m2m[(level, box)]:
                        q = q + op @ density[(level + 1, child)]
                    density[(level, box)] = q

        # evaluation — near and far field interleave per target leaf, so
        # the phases are reported as accumulated seconds, not one span each
        y = np.zeros((kernel.n, x.shape[1]), dtype=out_dtype)
        nonempty_by_level = {lvl: set(boxes) for lvl, boxes in self._nonempty.items()}
        near_s = far_s = 0.0
        with trace.span("treecode.eval", n=kernel.n, nrhs=x.shape[1]) as espan:
            for box in self._nonempty[leaf]:
                tidx = tree.leaf_points(*box)
                targets = kernel.points[tidx]
                # near field: direct kernel blocks (self + neighbors)
                t0 = time.perf_counter()
                for nb in [box] + tree.neighbors(leaf, *box):
                    if nb not in nonempty_by_level[leaf]:
                        continue
                    sidx = tree.leaf_points(*nb)
                    y[tidx] += kernel.block(tidx, sidx) @ x[sidx]
                t1 = time.perf_counter()
                # far field: interaction lists up the tree
                anc = box
                for level in range(leaf, 1, -1):
                    for far in _interaction_list(tree, level, anc):
                        if far not in nonempty_by_level.get(level, ()):
                            continue
                        eq = self._equiv_pts[(level, far)]
                        y[tidx] += kernel.proxy_col_block(tidx, eq) @ density[(level, far)]
                    anc = (anc[0] >> 1, anc[1] >> 1)
                t2 = time.perf_counter()
                near_s += t1 - t0
                far_s += t2 - t1
            espan.set(near_seconds=near_s, far_seconds=far_s)
        _NEAR_SECONDS.inc(near_s)
        _FAR_SECONDS.inc(far_s)
        return y[:, 0] if single else y

    __call__ = matvec


def _interaction_list(tree: QuadTree, level: int, box: Coord) -> list[Coord]:
    """The standard FMM interaction list: children of the parent's
    near boxes that are no longer near ``box``. Walking this list at
    every level covers each far box at exactly one level."""
    parent = (box[0] >> 1, box[1] >> 1)
    n_par = tree.nside(level - 1)
    out = []
    for dx in (-1, 0, 1):
        px = parent[0] + dx
        if px < 0 or px >= n_par:
            continue
        for dy in (-1, 0, 1):
            py = parent[1] + dy
            if py < 0 or py >= n_par:
                continue
            for child in tree.children(level - 1, px, py):
                d = max(abs(child[0] - box[0]), abs(child[1] - box[1]))
                if d >= 2:
                    out.append(child)
    return out
