"""Fast application of the dense kernel matrix ``A`` to vectors.

The paper evaluates residuals and runs unpreconditioned iterations with
an FFT-based matvec (uniform grid => ``A`` is block Toeplitz up to
diagonal scaling). ``DenseMatVec`` is the quadratic-cost reference used
in tests.
"""

from repro.matvec.dense import DenseMatVec
from repro.matvec.toeplitz import FFTMatVec
from repro.matvec.treecode import TreecodeMatVec

__all__ = ["DenseMatVec", "FFTMatVec", "TreecodeMatVec"]
