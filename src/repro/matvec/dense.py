"""Dense reference matvec (O(N^2) memory-free assembly in row chunks)."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelMatrix


class DenseMatVec:
    """Applies ``A`` by assembling row blocks on the fly.

    Never stores the full matrix; memory is ``O(chunk * N)``. Used as
    the exactness reference for :class:`repro.matvec.FFTMatVec` and for
    small-problem residual checks on non-uniform clouds.
    """

    def __init__(self, kernel: KernelMatrix, *, chunk: int = 2048):
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        self.kernel = kernel
        self.chunk = int(chunk)
        self.shape = (kernel.n, kernel.n)
        self.dtype = kernel.dtype

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        squeeze = x.ndim == 1
        xm = x[:, None] if squeeze else x
        n = self.kernel.n
        if xm.shape[0] != n:
            raise ValueError(f"dimension mismatch: A is {n}x{n}, x has {xm.shape[0]} rows")
        out_dtype = np.result_type(self.dtype, xm.dtype)
        out = np.empty((n, xm.shape[1]), dtype=out_dtype)
        cols = np.arange(n, dtype=np.int64)
        for start in range(0, n, self.chunk):
            rows = np.arange(start, min(start + self.chunk, n), dtype=np.int64)
            out[rows] = self.kernel.block(rows, cols) @ xm
        return out[:, 0] if squeeze else out

    __call__ = matvec
