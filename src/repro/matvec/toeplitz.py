"""FFT matvec for translation-invariant kernels on uniform grids.

On the cell-centered ``m x m`` grid, ``A = D + diag(row_w) G diag(col_w)``
where ``G[i j, i' j'] = g((i - i') h, (j - j') h)`` (zero on the exact
diagonal) is block Toeplitz with Toeplitz blocks. Embedding the offset
table in a ``2m x 2m`` circulant turns the application of ``G`` into two
2D FFTs — the standard trick the paper uses to check residuals without a
distributed FMM (Sec. V: "the matrix-vector product with dense matrix A
can be performed efficiently via the fast Fourier transform").
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelMatrix


class FFTMatVec:
    """O(N log N) application of a translation-invariant kernel matrix.

    Parameters
    ----------
    kernel:
        Kernel matrix whose points are exactly
        ``repro.geometry.uniform_grid(m)`` (row-major ``k = i*m + j``).
    m:
        Grid side; ``kernel.n`` must equal ``m**2``.
    """

    def __init__(self, kernel: KernelMatrix, m: int):
        if not kernel.is_translation_invariant:
            raise ValueError("FFTMatVec requires a translation-invariant kernel")
        if kernel.n != m * m:
            raise ValueError(f"kernel has {kernel.n} points, expected m^2 = {m * m}")
        self.kernel = kernel
        self.m = int(m)
        self.shape = (kernel.n, kernel.n)
        self.dtype = kernel.dtype

        idx = np.arange(kernel.n, dtype=np.int64)
        self._row_w = kernel.row_weights(idx)
        self._col_w = kernel.col_weights(idx)
        self._diag = kernel.diagonal()
        self._ghat = self._build_symbol()

    def _build_symbol(self) -> np.ndarray:
        m = self.m
        pts = self.kernel.points
        # infer spacing from the first two grid points (row-major j fastest)
        h = float(pts[1, 1] - pts[0, 1]) if m > 1 else 1.0
        # wrapped offsets: index p in [0, 2m) encodes offset p (p < m) or p - 2m
        offs = np.arange(2 * m)
        offs = np.where(offs < m, offs, offs - 2 * m).astype(float) * h
        ox, oy = np.meshgrid(offs, offs, indexing="ij")
        offset_pts = np.column_stack([ox.ravel(), oy.ravel()])
        origin = np.zeros((1, 2))
        with np.errstate(divide="ignore", invalid="ignore"):
            table = self.kernel.greens(offset_pts, origin)[:, 0].reshape(2 * m, 2 * m)
        table = np.asarray(table, dtype=np.complex128)
        table[0, 0] = 0.0  # exact diagonal handled separately
        table[~np.isfinite(table)] = 0.0  # unused wrap row/col (offset +-m)
        return np.fft.fft2(table)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        squeeze = x.ndim == 1
        xm = x[:, None] if squeeze else x
        if xm.shape[0] != self.kernel.n:
            raise ValueError("dimension mismatch")
        m = self.m
        out_dtype = np.result_type(self.dtype, xm.dtype)
        out = np.empty((self.kernel.n, xm.shape[1]), dtype=np.complex128)
        for k in range(xm.shape[1]):
            xw = (self._col_w * xm[:, k]).reshape(m, m)
            pad = np.zeros((2 * m, 2 * m), dtype=np.complex128)
            pad[:m, :m] = xw
            conv = np.fft.ifft2(np.fft.fft2(pad) * self._ghat)[:m, :m]
            out[:, k] = self._row_w * conv.ravel()
        out += self._diag[:, None] * xm
        if not np.iscomplexobj(np.empty(0, dtype=out_dtype)):
            out = out.real
        out = out.astype(out_dtype, copy=False)
        return out[:, 0] if squeeze else out

    __call__ = matvec

    def residual_norm(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual ``||A x - b|| / ||b||`` (the paper's ``relres``)."""
        r = self.matvec(x) - b
        return float(np.linalg.norm(r) / np.linalg.norm(b))
