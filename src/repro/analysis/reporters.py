"""Render analysis results as terminal text or machine-readable JSON.

The JSON document is versioned (``schema``) and stable — CI uploads it
as an artifact on failure, and ``tests/test_analysis.py`` pins the
shape so downstream tooling can rely on it.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.core import AnalysisResult

#: bump when the JSON document shape changes incompatibly
JSON_SCHEMA = 1


def render_text(result: AnalysisResult, *, verbose: bool = False) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: [{finding.checker}] {finding.message}"
        )
    if verbose:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: [{finding.checker}] suppressed: "
                f"{finding.message}"
            )
        for finding in result.baselined:
            lines.append(
                f"{finding.location()}: [{finding.checker}] baselined: "
                f"{finding.message}"
            )
    counts = Counter(f.checker for f in result.findings)
    summary = ", ".join(f"{name}={n}" for name, n in sorted(counts.items()))
    status = "FAIL" if result.findings else "OK"
    lines.append(
        f"{status}: {len(result.findings)} finding(s) "
        f"({summary or 'none'}) in {result.files} file(s); "
        f"{len(result.suppressed)} suppressed, {len(result.baselined)} baselined"
    )
    return "\n".join(lines) + "\n"


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (see ``JSON_SCHEMA``)."""
    doc = {
        "schema": JSON_SCHEMA,
        "ok": result.clean,
        "files": result.files,
        "checkers": list(result.checkers),
        "counts": dict(Counter(f.checker for f in result.findings)),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
