"""Committed-baseline support: tolerate known findings, catch new ones.

A baseline is a JSON file of previously-accepted findings. Matching is
by ``(checker, path, symbol-or-message)`` — deliberately *not* by line
number, so unrelated edits that shift code do not churn the baseline.
Matching is count-aware: two identical findings need two baseline
entries, so fixing one of them is visible.

The committed state of this repository is a zero-finding tree (no
baseline file is checked in); the mechanism exists so a future large
refactor can land incrementally without loosening the CI gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def _key(entry: dict) -> tuple[str, str, str]:
    return (
        str(entry.get("checker", "")),
        str(entry.get("path", "")),
        str(entry.get("symbol") or entry.get("message", "")),
    )


def _finding_key(finding: Finding) -> tuple[str, str, str]:
    return (finding.checker, finding.path, finding.symbol or finding.message)


def save_baseline(findings: Iterable[Finding], path: str | Path) -> None:
    """Write ``findings`` as the new accepted baseline."""
    doc = {
        "version": BASELINE_VERSION,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def load_baseline(path: str | Path) -> list[dict]:
    """Read a baseline file; returns its finding entries."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError(f"{path}: not a baseline file (no 'findings' key)")
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {version!r} != {BASELINE_VERSION}"
        )
    findings = doc["findings"]
    if not isinstance(findings, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    return findings


def filter_baseline(
    findings: list[Finding], baseline: list[dict]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined); baseline entries are consumed."""
    budget: dict[tuple[str, str, str], int] = {}
    for entry in baseline:
        key = _key(entry)
        budget[key] = budget.get(key, 0) + 1
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        key = _finding_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    return new, matched
