"""Checker registry: importing this package registers every checker."""

from repro.analysis.checkers import (  # noqa: F401  - registration side effect
    dead_code,
    determinism,
    env_discipline,
    lock_discipline,
    obs_conventions,
    shm_lifecycle,
)
