"""shm-lifecycle: confine the shared-memory lifetime protocol to its codec.

The process backend's create->registry->unlink protocol only stays
auditable if every block is born in one place. Enforced:

* ``SharedMemory(create=True)`` construction is confined to the codec
  module (``repro.vmpi.process_backend``), and inside it to the single
  ``_create_shm`` helper (the one spot that knows about the 3.13
  ``track=False`` split).
* ``.unlink()`` calls are confined to the codec module — everyone else
  must go through the registry sweep (``_unlink_registered``) or the
  receive path, so a stray unlink can never race the lifetime protocol.
* every ``_create_shm`` call site must register the new block's name
  (an ``.append``/``.add`` into a registry collection in the same
  function) *before* anything can fail — otherwise a crash mid-copy
  strands the block in ``/dev/shm`` forever.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    dotted_name,
    enclosing_functions,
    iter_calls,
    register_checker,
)

#: the one module allowed to construct and unlink shared-memory blocks
CODEC_MODULE = "repro.vmpi.process_backend"
#: the one function allowed to call SharedMemory(create=True)
CREATE_HELPER = "_create_shm"


def _is_shm_constructor(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return name is not None and name.split(".")[-1] == "SharedMemory"


def _creates(call: ast.Call) -> bool:
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in call.keywords
    )


def _is_unlink(call: ast.Call) -> bool:
    """A zero-argument ``x.unlink()`` method call (not ``os.unlink(path)``)."""
    if not isinstance(call.func, ast.Attribute) or call.func.attr != "unlink":
        return False
    if call.args or call.keywords:
        return False  # os.unlink(p) / Path.unlink(missing_ok=...) shapes
    receiver = dotted_name(call.func.value)
    return receiver != "os"


def _registers_name(fn: ast.AST) -> bool:
    """Does this function feed a registry collection (append/add)?"""
    for call in iter_calls(fn):
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "append", "add"
        ):
            return True
    return False


@register_checker
class ShmLifecycleChecker(Checker):
    name = "shm-lifecycle"
    description = (
        "SharedMemory(create=True)/unlink() confined to the vmpi codec; "
        "every created block is registered for the sweep"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for mod in project.modules:
            in_codec = mod.module == CODEC_MODULE
            owners = enclosing_functions(mod.tree) if in_codec else {}
            for call in iter_calls(mod.tree):
                if _is_shm_constructor(call) and _creates(call):
                    if not in_codec:
                        findings.append(mod.finding(
                            call, self.name,
                            "raw SharedMemory(create=True) outside the codec "
                            f"({CODEC_MODULE}); route allocations through "
                            "its encode path so the registry sweep sees them",
                            "raw-create",
                        ))
                    else:
                        owner = owners.get(call)
                        fn_name = getattr(owner, "name", "<module>")
                        if fn_name != CREATE_HELPER:
                            findings.append(mod.finding(
                                call, self.name,
                                f"SharedMemory(create=True) outside "
                                f"{CREATE_HELPER}(); the track=False split "
                                "must stay in one place",
                                "create-outside-helper",
                            ))
                elif _is_unlink(call) and not in_codec:
                    findings.append(mod.finding(
                        call, self.name,
                        "raw .unlink() outside the codec "
                        f"({CODEC_MODULE}); blocks are reclaimed by their "
                        "receiver or the registry sweep, never ad hoc",
                        "raw-unlink",
                    ))
            if in_codec:
                for call in iter_calls(mod.tree):
                    name = dotted_name(call.func)
                    if name == CREATE_HELPER:
                        owner = owners.get(call)
                        fn_name = getattr(owner, "name", "<module>")
                        if fn_name == CREATE_HELPER or owner is None:
                            continue
                        if not _registers_name(owner):
                            findings.append(mod.finding(
                                call, self.name,
                                f"{CREATE_HELPER}() call in {fn_name}() does "
                                "not register the block name "
                                "(no .append/.add into a registry collection) "
                                "— a crash here strands the block in /dev/shm",
                                f"unregistered-create:{fn_name}",
                            ))
        return findings
