"""lock-discipline: guarded attributes stay guarded; lock order stays acyclic.

Two related analyses over the threaded packages (``repro.service``,
``repro.vmpi``, ``repro.obs``):

**Guarded-attribute inference.** For every class owning a lock
attribute (``self._lock = threading.Lock()`` / ``RLock()`` /
``make_lock(...)``), infer which instance attributes the class treats
as lock-guarded: any attribute written at least once in a *lock-held
context*. A context is lock-held when it sits inside ``with
self.<lock>:``, inside a method named ``*_locked``, or inside a private
method whose intra-class call sites are all lock-held (computed to a
fixpoint, so helpers called only from held helpers count). ``__init__``
is construction-time and exempt. A guarded attribute written *outside*
every held context is a data race waiting for a second thread, and is
reported at the unguarded write.

**Static lock-order graph.** Nodes are class lock attributes
(``repro.vmpi.pool.RankPool._lock``) and module-level locks
(``repro.vmpi.pool._POOLS_LOCK``). Acquiring B while holding A adds an
edge A->B — from nested ``with`` blocks directly, and through one level
of call resolution: a call made while holding A contributes edges to
whatever the callee's body acquires. Callees resolve by unique name
(bare names to module functions in scope; ``x.m()`` to ``m`` when
exactly one scoped class defines it and ``m`` is not a builtin
container method, which would alias ``dict.get``/``list.pop`` into
class APIs). ``self.m()`` re-acquiring the already-held reentrant lock
is legal and skipped; the same call shape on a *foreign* instance of
the same class (``other.m()``) is a self-deadlock/ordering hazard on
two instances of one lock and is reported at the call site. A cycle
among the surviving edges is reported once per cycle. Suppressing the
finding at an edge's source line removes that edge from the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    ParsedModule,
    Project,
    dotted_name,
    register_checker,
)

#: the packages participating in the whole-program lock-order graph
LOCK_PACKAGES = ("repro.service", "repro.vmpi", "repro.obs", "repro.store")

#: constructors that produce a lock object
_LOCK_CTORS = {"Lock", "RLock", "make_lock"}
_REENTRANT_CTORS = {"RLock"}

#: collection-mutation method names treated as writes to the receiver
_MUTATORS = {
    "append", "add", "pop", "popitem", "clear", "update", "remove",
    "discard", "extend", "insert", "setdefault", "move_to_end", "sort",
}

#: builtin container/stdlib method names never resolved to class methods
#: (a foreign ``_POOLS.get(...)`` must not alias into ``FactorCache.get``)
_NO_RESOLVE = _MUTATORS | {
    "get", "items", "keys", "values", "put", "join", "start", "close",
    "copy", "count", "index", "acquire", "release", "wait", "set",
    "is_set", "notify", "notify_all", "submit", "result", "cancel",
    "read", "write", "send", "recv", "flush", "is_alive", "terminate",
    "kill", "encode", "decode", "strip", "split", "format", "register",
}


def _lock_ctor(value: ast.AST) -> tuple[bool, bool]:
    """(is_lock, reentrant) for an assigned value expression."""
    if not isinstance(value, ast.Call):
        return False, False
    name = dotted_name(value.func)
    if name is None:
        return False, False
    tail = name.split(".")[-1]
    if tail not in _LOCK_CTORS:
        return False, False
    reentrant = tail in _REENTRANT_CTORS
    if tail == "make_lock":
        for kw in value.keywords:
            if kw.arg == "reentrant" and isinstance(kw.value, ast.Constant):
                reentrant = bool(kw.value.value)
    return True, reentrant


def _self_attr(node: ast.AST) -> str | None:
    """``X`` for a ``self.X`` expression."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_self_attrs(stmt: ast.AST) -> list[tuple[str, ast.AST]]:
    """(attr, site) pairs for every ``self.X`` write inside one node."""
    writes: list[tuple[str, ast.AST]] = []

    def targets_of(node: ast.AST) -> list[ast.AST]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        if isinstance(node, ast.Delete):
            return list(node.targets)
        return []

    def flatten(target: ast.AST) -> Iterable[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                yield from flatten(el)
        else:
            yield target

    for node in ast.walk(stmt):
        for raw in targets_of(node):
            for target in flatten(raw):
                attr = _self_attr(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value)
                if attr is not None:
                    writes.append((attr, target))
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                attr = _self_attr(node.func.value)
                if attr is not None:
                    writes.append((attr, node))
    return writes


@dataclass
class ClassLocks:
    """One scoped class and its lock layout."""

    mod: ParsedModule
    node: ast.ClassDef
    locks: dict[str, bool] = field(default_factory=dict)  #: attr -> reentrant
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    held_methods: set[str] = field(default_factory=set)

    @property
    def sole_lock(self) -> str | None:
        return next(iter(self.locks)) if len(self.locks) == 1 else None

    def lock_node(self, attr: str) -> str:
        return f"{self.mod.module}.{self.node.name}.{attr}"


def _collect_class(mod: ParsedModule, cls: ast.ClassDef) -> ClassLocks:
    info = ClassLocks(mod, cls)
    for item in cls.body:
        if isinstance(item, ast.FunctionDef):
            info.methods[item.name] = item
    for fn in info.methods.values():
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
                if attr is not None:
                    is_lock, reentrant = _lock_ctor(node.value)
                    if is_lock:
                        info.locks[attr] = reentrant
    # a lock attr used in ``with self.X`` but assigned elsewhere (e.g.
    # injected) still counts, as long as the name says it is a lock
    for fn in info.methods.values():
        for node in ast.walk(fn):
            if isinstance(node, ast.With):
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr and attr.lower().endswith("lock"):
                        info.locks.setdefault(attr, False)
    return info


def _method_held_regions(info: ClassLocks, fn: ast.FunctionDef) -> set[int]:
    """Line numbers inside ``with self.<lock>`` blocks of one method."""
    lines: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.With) and any(
            _self_attr(item.context_expr) in info.locks for item in node.items
        ):
            end = getattr(node, "end_lineno", node.lineno)
            lines.update(range(node.lineno, end + 1))
    return lines


def _infer_held_methods(info: ClassLocks) -> None:
    """Fixpoint: ``*_locked`` methods, plus private methods all of whose
    intra-class call sites are lock-held."""
    held = {name for name in info.methods if name.endswith("_locked")}
    regions = {
        name: _method_held_regions(info, fn) for name, fn in info.methods.items()
    }
    # call sites: callee -> list of (caller, line)
    sites: dict[str, list[tuple[str, int]]] = {}
    for caller, fn in info.methods.items():
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                callee = _self_attr(node.func)
                if callee in info.methods:
                    sites.setdefault(callee, []).append((caller, node.lineno))
    changed = True
    while changed:
        changed = False
        for name in info.methods:
            if name in held or not name.startswith("_") or name == "__init__":
                continue
            calls = sites.get(name)
            if not calls:
                continue
            if all(
                caller in held or line in regions[caller]
                for caller, line in calls
            ):
                held.add(name)
                changed = True
    info.held_methods = held


def _check_guarded_attrs(info: ClassLocks) -> Iterable[Finding]:
    if not info.locks:
        return
    guarded: dict[str, int] = {}   # attr -> first held-write line
    unguarded: list[tuple[str, ast.AST]] = []
    for name, fn in info.methods.items():
        if name == "__init__":
            continue
        regions = _method_held_regions(info, fn)
        body_held = name in info.held_methods
        for attr, site in _written_self_attrs(fn):
            if attr in info.locks:
                continue
            line = getattr(site, "lineno", fn.lineno)
            if body_held or line in regions:
                guarded.setdefault(attr, line)
            else:
                unguarded.append((attr, site))
    for attr, site in unguarded:
        if attr in guarded:
            yield info.mod.finding(
                site, "lock-discipline",
                f"{info.node.name}.{attr} is written under "
                f"{info.node.name}'s lock elsewhere (line {guarded[attr]}) "
                "but written here without it — guard this write or move "
                "the attribute out of the locked set",
                f"{info.node.name}.{attr}",
            )


# ----------------------------------------------------------------------
# lock-order graph
# ----------------------------------------------------------------------
@dataclass
class _Scope:
    """Everything the graph walker needs to resolve names."""

    classes: list[ClassLocks]
    module_locks: dict[str, dict[str, bool]]        #: module -> name -> reentrant
    methods_by_name: dict[str, list[tuple[ClassLocks, ast.FunctionDef]]]
    functions: dict[str, list[tuple[ParsedModule, ast.FunctionDef]]]
    acquires: dict[ast.AST, set[str]]               #: funcdef -> lock nodes


@dataclass(frozen=True)
class _Edge:
    src: str
    dst: str
    mod: ParsedModule
    line: int
    via: str


def _module_lock_node(mod: ParsedModule, name: str) -> str:
    return f"{mod.module}.{name}"


def _resolve_lock_expr(
    expr: ast.AST, mod: ParsedModule, cls: ClassLocks | None, scope: _Scope
) -> tuple[str, bool] | None:
    """(node, reentrant) for a ``with`` context expression, if a lock."""
    attr = _self_attr(expr)
    if attr is not None and cls is not None and attr in cls.locks:
        return cls.lock_node(attr), cls.locks[attr]
    if isinstance(expr, ast.Name):
        mod_locks = scope.module_locks.get(mod.module or "", {})
        if expr.id in mod_locks:
            return _module_lock_node(mod, expr.id), mod_locks[expr.id]
    return None


def _direct_acquires(
    fn: ast.AST, mod: ParsedModule, cls: ClassLocks | None, scope: _Scope
) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.With):
            for item in node.items:
                resolved = _resolve_lock_expr(item.context_expr, mod, cls, scope)
                if resolved is not None:
                    out.add(resolved[0])
    return out


def _build_scope(project: Project) -> _Scope:
    classes: list[ClassLocks] = []
    module_locks: dict[str, dict[str, bool]] = {}
    functions: dict[str, list[tuple[ParsedModule, ast.FunctionDef]]] = {}
    for mod in project.in_packages(LOCK_PACKAGES):
        locks: dict[str, bool] = {}
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and (
                isinstance(stmt.targets[0], ast.Name)
            ):
                is_lock, reentrant = _lock_ctor(stmt.value)
                if is_lock:
                    locks[stmt.targets[0].id] = reentrant
            if isinstance(stmt, ast.FunctionDef):
                functions.setdefault(stmt.name, []).append((mod, stmt))
            if isinstance(stmt, ast.ClassDef):
                info = _collect_class(mod, stmt)
                _infer_held_methods(info)
                classes.append(info)
        if locks:
            module_locks[mod.module or ""] = locks
    methods_by_name: dict[str, list[tuple[ClassLocks, ast.FunctionDef]]] = {}
    for info in classes:
        for name, fn in info.methods.items():
            methods_by_name.setdefault(name, []).append((info, fn))
    scope = _Scope(classes, module_locks, methods_by_name, functions, {})
    for info in classes:
        for fn in info.methods.values():
            scope.acquires[fn] = _direct_acquires(fn, info.mod, info, scope)
    for name, defs in functions.items():
        for mod, fn in defs:
            scope.acquires[fn] = _direct_acquires(fn, mod, None, scope)
    return scope


def _resolve_call(
    call: ast.Call, mod: ParsedModule, cls: ClassLocks | None, scope: _Scope
) -> tuple[ClassLocks | None, ast.FunctionDef, str] | None:
    """(owning class, funcdef, receiver) for a resolvable callee."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        receiver, name = func.value.id, func.attr
        if receiver == "self" and cls is not None and name in cls.methods:
            return cls, cls.methods[name], receiver
        if name in _NO_RESOLVE:
            return None
        owners = scope.methods_by_name.get(name, [])
        if len(owners) == 1:
            return owners[0][0], owners[0][1], receiver
        return None
    if isinstance(func, ast.Name):
        if cls is not None and func.id in cls.methods:
            return None  # bare method name: a local, not a call on self
        defs = scope.functions.get(func.id, [])
        same_mod = [d for d in defs if d[0] is mod]
        if len(same_mod) == 1:
            return None, same_mod[0][1], ""
        if len(defs) == 1:
            return None, defs[0][1], ""
    return None


def _walk_function(
    fn: ast.FunctionDef,
    mod: ParsedModule,
    cls: ClassLocks | None,
    scope: _Scope,
    initial_held: list[tuple[str, bool]],
    edges: list[_Edge],
    findings: list[Finding],
) -> None:
    def visit(node: ast.AST, held: list[tuple[str, bool]]) -> None:
        if isinstance(node, ast.With):
            acquired: list[tuple[str, bool]] = []
            for item in node.items:
                resolved = _resolve_lock_expr(item.context_expr, mod, cls, scope)
                if resolved is not None:
                    for src, _re in held + acquired:
                        if src != resolved[0]:
                            edges.append(_Edge(
                                src, resolved[0], mod, node.lineno, "with"
                            ))
                    acquired.append(resolved)
            for child in node.body:
                visit(child, held + acquired)
            return
        if isinstance(node, ast.Call) and held:
            resolved = _resolve_call(node, mod, cls, scope)
            if resolved is not None:
                target_cls, target_fn, receiver = resolved
                for dst in sorted(scope.acquires.get(target_fn, ())):
                    skip = False
                    for src, reentrant in held:
                        if src != dst:
                            continue
                        if receiver == "self" and reentrant:
                            skip = True  # legal reentrant re-acquire
                        else:
                            findings.append(mod.finding(
                                node, "lock-discipline",
                                f"call to {target_cls.node.name}."
                                f"{target_fn.name}() on a foreign instance "
                                f"while holding this instance's {dst.rsplit('.', 1)[-1]} — "
                                "two instances of one lock class have no "
                                "defined order (and a non-reentrant lock "
                                "would self-deadlock)"
                                if target_cls is not None else
                                f"call re-acquires held lock {dst}",
                                f"foreign:{dst}",
                            ))
                            skip = True
                    if skip:
                        continue
                    for src, _re in held:
                        if src != dst:
                            edges.append(_Edge(
                                src, dst, mod, node.lineno,
                                f"call:{target_fn.name}"
                            ))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not fn
        ):
            return  # nested defs execute later, under unknown locks
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in fn.body:
        visit(stmt, list(initial_held))


def _find_cycles(edges: list[_Edge]) -> list[list[_Edge]]:
    """One representative edge-path per elementary cycle found by DFS."""
    graph: dict[str, list[_Edge]] = {}
    for edge in edges:
        graph.setdefault(edge.src, []).append(edge)
    cycles: list[list[_Edge]] = []
    seen_keys: set[tuple[str, ...]] = set()
    done: set[str] = set()

    def dfs(node: str, stack: list[_Edge], on_stack: list[str]) -> None:
        for edge in graph.get(node, ()):
            if edge.dst in on_stack:
                start = on_stack.index(edge.dst)
                cycle = stack[start:] + [edge]
                key = tuple(sorted({e.src for e in cycle}))
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(cycle)
            elif edge.dst not in done:
                dfs(edge.dst, stack + [edge], on_stack + [edge.dst])
        done.add(node)

    for node in list(graph):
        if node not in done:
            dfs(node, [], [node])
    return cycles


@register_checker
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "lock-guarded attributes never written unguarded; the "
        "service/vmpi/obs lock-order graph stays acyclic"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        scope = _build_scope(project)
        for info in scope.classes:
            findings.extend(_check_guarded_attrs(info))

        edges: list[_Edge] = []
        for info in scope.classes:
            for name, fn in info.methods.items():
                initial: list[tuple[str, bool]] = []
                sole = info.sole_lock
                if name in info.held_methods and sole is not None:
                    initial = [(info.lock_node(sole), info.locks[sole])]
                _walk_function(fn, info.mod, info, scope, initial, edges, findings)
        for defs in scope.functions.values():
            for mod, fn in defs:
                _walk_function(fn, mod, None, scope, [], edges, findings)

        live = [
            e for e in edges
            if not e.mod.suppressed(e.line, self.name) and e.src != e.dst
        ]
        for cycle in _find_cycles(live):
            path = " -> ".join([cycle[0].src] + [e.dst for e in cycle])
            sites = ", ".join(
                f"{e.mod.rel}:{e.line} ({e.via})" for e in cycle
            )
            findings.append(cycle[0].mod.finding(
                cycle[0].line, self.name,
                f"lock-order cycle: {path} [edges at {sites}] — two threads "
                "taking these locks in opposite orders can deadlock; pick "
                "one order and restructure the odd acquisition",
                f"cycle:{path}",
            ))
        return findings
