"""dead-code: no unused imports, no unreferenced private module symbols.

Two passes with whole-project reference tracking:

* **unused imports** — a name bound by ``import``/``from .. import``
  and never referenced in its module (as a bare name, including inside
  annotations, decorators and nested scopes, or via ``__all__``). Files
  named ``__init__.py`` are exempt: their imports *are* the package's
  re-export surface. ``from __future__ import ...`` is always exempt.
* **unreferenced private symbols** — a module-level ``_name``
  function/class/constant nothing references: no load in its own
  module, no ``from mod import _name`` anywhere in the project, and no
  ``anything._name`` attribute access anywhere in the project (the
  coarse attribute net is deliberate — one stray match keeps a symbol
  alive, which is the right failure direction for a deletion checker).

Dunder names (``__all__``, ``__version__``) are configuration, not
code, and are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    ParsedModule,
    Project,
    register_checker,
)


def _imported_bindings(mod: ParsedModule) -> list[tuple[str, ast.stmt, str]]:
    """(bound name, statement, display) for every import in the module."""
    out: list[tuple[str, ast.stmt, str]] = []
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                out.append((bound, node, f"import {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out.append((
                    bound, node,
                    f"from {'.' * node.level}{node.module or ''} "
                    f"import {alias.name}",
                ))
    return out


def _loaded_names(mod: ParsedModule) -> set[str]:
    """Every name the module references: loads, ``__all__`` strings,
    ``global``/``nonlocal`` declarations."""
    used: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            used.update(node.names)
    for stmt in mod.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in stmt.targets
            )
            and isinstance(stmt.value, (ast.List, ast.Tuple))
        ):
            for el in stmt.value.elts:
                if isinstance(el, ast.Constant) and isinstance(el.value, str):
                    used.add(el.value)
    return used


def _private_module_symbols(mod: ParsedModule) -> dict[str, ast.stmt]:
    """Module-level ``_name`` definitions (no dunders)."""
    out: dict[str, ast.stmt] = {}
    for stmt in mod.tree.body:
        names: list[str] = []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names = [stmt.name]
        elif isinstance(stmt, ast.Assign):
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names = [stmt.target.id]
        for name in names:
            if name.startswith("_") and not name.startswith("__"):
                out.setdefault(name, stmt)
    return out


@register_checker
class DeadCodeChecker(Checker):
    name = "dead-code"
    description = (
        "unused imports and unreferenced private module-level symbols"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []

        # project-wide reference pools for the private-symbol pass:
        # matching is by bare name — coarse, but a false "still alive"
        # only delays a deletion, while a false "dead" breaks the build
        attr_refs: set[str] = set()
        from_imports: set[str] = set()
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Attribute):
                    attr_refs.add(node.attr)
                elif isinstance(node, ast.ImportFrom):
                    from_imports.update(alias.name for alias in node.names)

        for mod in project.modules:
            used = _loaded_names(mod)
            if mod.path.name != "__init__.py":
                for bound, stmt, display in _imported_bindings(mod):
                    if bound not in used:
                        findings.append(mod.finding(
                            stmt, self.name,
                            f"unused import: {display} binds {bound!r} but "
                            "nothing in this module references it",
                            f"import:{bound}",
                        ))
            if mod.module is None:
                continue
            imported_names = {b for b, _s, _d in _imported_bindings(mod)}
            for name, stmt in _private_module_symbols(mod).items():
                if name in imported_names:
                    continue  # re-bound import, handled above
                if name in used:
                    continue
                if name in attr_refs:
                    continue
                if name in from_imports:
                    continue
                kind = (
                    "function" if isinstance(stmt, ast.FunctionDef)
                    else "class" if isinstance(stmt, ast.ClassDef)
                    else "constant"
                )
                findings.append(mod.finding(
                    stmt, self.name,
                    f"private {kind} {name!r} is never referenced (no load "
                    "in this module, no import or attribute access "
                    "anywhere in the project) — delete it",
                    f"private:{name}",
                ))
        return findings
