"""determinism: keep the bitwise-parity packages bitwise-reproducible.

The cross-backend parity suites assert *bitwise identical* results, so
the numerics packages must stay free of every nondeterminism source:

* wall-clock reads (``time.time``/``time_ns``, ``datetime.now`` family)
  feeding into computations;
* the stdlib ``random`` module (global, seed-shared state);
* NumPy's legacy global RNG (``np.random.rand`` etc.) and *unseeded*
  ``np.random.default_rng()`` — generators must take an explicit seed;
* ``np.empty`` escapes: a non-zero-size uninitialized buffer that is
  never subscript-assigned in its function can leak heap garbage into
  results. Zero-size sentinels (``np.empty(0, ...)``) are exempt; a
  buffer is accepted once the function stores into it (``out[...]=``,
  ``out.fill``) or hands it to a documented out-parameter;
* function-local ``import time``: a hot loop importing the clock
  inline hides wall-clock usage from review — time a section with
  :func:`repro.obs.stopwatch` (or a module-level import for
  reporting), never an ad-hoc local import.

``time.perf_counter`` stays allowed: timing *reports* may vary, the
numbers in the solution vector may not.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    ParsedModule,
    Project,
    dotted_name,
    enclosing_functions,
    register_checker,
)

#: packages where the bitwise-parity suites must hold
NUMERICS_PACKAGES = (
    "repro.core",
    "repro.linalg",
    "repro.iterative",
    "repro.matvec",
    "repro.kernels",
    "repro.bie",
)

_WALL_CLOCK = {"time.time", "time.time_ns"}
_DATETIME = {"now", "utcnow", "today", "fromtimestamp"}
_NP_LEGACY_RNG = {
    "seed", "rand", "randn", "random", "randint", "random_sample",
    "normal", "uniform", "shuffle", "permutation", "choice", "standard_normal",
}


def _is_zero_size(call: ast.Call) -> bool:
    """``np.empty(0, ...)`` / ``np.empty((0, k), ...)`` sentinels."""
    if not call.args:
        return False
    shape = call.args[0]
    if isinstance(shape, ast.Constant):
        return shape.value == 0
    if isinstance(shape, ast.Tuple):
        return any(
            isinstance(el, ast.Constant) and el.value == 0 for el in shape.elts
        )
    return False


def _assigned_name(call: ast.Call, parents: dict[ast.AST, ast.AST]) -> str | None:
    """The simple name ``x`` when the call is exactly ``x = np.empty(...)``."""
    parent = parents.get(call)
    if isinstance(parent, ast.Assign) and parent.value is call:
        if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
            return parent.targets[0].id
    if isinstance(parent, ast.AnnAssign) and parent.value is call:
        if isinstance(parent.target, ast.Name):
            return parent.target.id
    return None


def _buffer_is_written(fn: ast.AST, name: str) -> bool:
    """Any ``name[...] = ...``, ``name.fill(...)``, augmented subscript
    store, or use as an ``out=`` argument inside ``fn``."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name
                ):
                    return True
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "fill"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
            for kw in node.keywords:
                if (
                    kw.arg == "out"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id == name
                ):
                    return True
    return False


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no wall clock, stdlib random, legacy/unseeded np.random, or "
        "escaping np.empty buffers in the bitwise-parity packages"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for mod in project.in_packages(NUMERICS_PACKAGES):
            findings.extend(self._check_module(mod))
        return findings

    def _check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        imports_random = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(mod.tree)
        )
        owners = enclosing_functions(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" and isinstance(
                        owners.get(node),
                        (ast.FunctionDef, ast.AsyncFunctionDef),
                    ):
                        yield mod.finding(
                            node, self.name,
                            "function-local `import time` in a parity "
                            "package hides wall-clock use in a hot loop; "
                            "time sections with repro.obs.stopwatch (or a "
                            "module-level import for reporting)",
                            "local-time-import",
                        )
            if isinstance(node, ast.ImportFrom):
                if node.module == "time" and any(
                    alias.name in {"time", "time_ns"} for alias in node.names
                ):
                    yield mod.finding(
                        node, self.name,
                        "wall-clock import in a parity package "
                        "(from time import time)", "wall-clock",
                    )
                if node.module == "random":
                    yield mod.finding(
                        node, self.name,
                        "stdlib random import in a parity package; use a "
                        "seeded np.random.default_rng passed in explicitly",
                        "stdlib-random",
                    )
            if isinstance(node, ast.Import) and imports_random:
                for alias in node.names:
                    if alias.name == "random":
                        yield mod.finding(
                            node, self.name,
                            "stdlib random import in a parity package; use a "
                            "seeded np.random.default_rng passed in explicitly",
                            "stdlib-random",
                        )

        parents = _parent_map(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if func in _WALL_CLOCK:
                yield mod.finding(
                    node, self.name,
                    f"{func}() in a parity package; wall-clock values must "
                    "not feed numerics (time.perf_counter for timing reports "
                    "is fine)", "wall-clock",
                )
            elif func is not None and func.startswith("datetime.") and (
                func.split(".")[-1] in _DATETIME
            ):
                yield mod.finding(
                    node, self.name,
                    f"{func}() in a parity package; dates must not feed "
                    "numerics", "wall-clock",
                )
            elif func is not None and func.startswith("random.") and imports_random:
                yield mod.finding(
                    node, self.name,
                    f"{func}() uses the stdlib global RNG; pass a seeded "
                    "np.random.default_rng instead", "stdlib-random",
                )
            elif func is not None and ".random." in f".{func}.":
                tail = func.split(".")[-1]
                if tail in _NP_LEGACY_RNG:
                    yield mod.finding(
                        node, self.name,
                        f"{func}() uses NumPy's legacy global RNG; construct "
                        "an explicitly seeded Generator instead",
                        "np-legacy-rng",
                    )
                elif tail == "default_rng" and not node.args and not node.keywords:
                    yield mod.finding(
                        node, self.name,
                        "unseeded np.random.default_rng() draws OS entropy; "
                        "parity packages must seed explicitly",
                        "unseeded-rng",
                    )
            elif func == "default_rng" and not node.args and not node.keywords:
                yield mod.finding(
                    node, self.name,
                    "unseeded default_rng() draws OS entropy; parity "
                    "packages must seed explicitly", "unseeded-rng",
                )
            elif func is not None and func.split(".")[-1] in ("empty", "empty_like"):
                root = func.split(".")[0]
                if root not in ("np", "numpy"):
                    continue
                if func.split(".")[-1] == "empty" and _is_zero_size(node):
                    continue
                name = _assigned_name(node, parents)
                fn = owners.get(node)
                if name is not None and fn is not None and (
                    _buffer_is_written(fn, name)
                ):
                    continue
                yield mod.finding(
                    node, self.name,
                    f"{func}(...) buffer escapes without a subscript store "
                    "in this function — uninitialized memory can leak into "
                    "results; use np.zeros, or fill the buffer before it "
                    "escapes", "empty-escape",
                )
