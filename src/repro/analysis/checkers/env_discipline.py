"""env-discipline: every knob goes through util.config and the README.

The ``REPRO_*`` environment contract has one source of truth,
``repro.util.config``: accessors validate values, document defaults,
and give the README knob tables something stable to point at. Enforced:

* ``os.environ`` / ``os.getenv`` / ``os.putenv`` reads only inside
  ``repro.util.config`` — everywhere else must call an accessor.
* every ``REPRO_*`` name appearing anywhere (string literals, comments,
  docstrings) must be a knob that ``util.config`` actually reads —
  catching both typoed knob references and knobs added without an
  accessor. A trailing-underscore match directly followed by ``*``
  (``REPRO_SERVICE_*``) is a documented prefix, accepted when at least
  one real knob carries the prefix.
* every knob read by ``util.config`` must appear in the README knob
  tables, so no knob ships undocumented.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    ParsedModule,
    Project,
    dotted_name,
    iter_calls,
    literal_str,
    register_checker,
)

CONFIG_MODULE = "repro.util.config"

_KNOB_RE = re.compile(r"REPRO_[A-Z][A-Z0-9_]*")
#: env accessor helpers defined by util.config
_ENV_HELPERS = {"env_int", "env_float", "env_flag"}
#: os-level env entry points that must not appear outside util.config
_OS_ENV_FUNCS = {"os.getenv", "os.putenv", "os.unsetenv"}


def collect_knobs(config: ParsedModule) -> dict[str, int]:
    """Knob name -> first line where ``util.config`` reads it."""
    knobs: dict[str, int] = {}

    def record(name: str | None, line: int) -> None:
        if name and name.startswith("REPRO_") and name not in knobs:
            knobs[name] = line

    for call in iter_calls(config.tree):
        func = dotted_name(call.func)
        if func in {"os.environ.get", "os.getenv"} or (
            func is not None and func.split(".")[-1] in _ENV_HELPERS
        ):
            if call.args:
                record(literal_str(call.args[0]), call.lineno)
    for node in ast.walk(config.tree):
        if isinstance(node, ast.Subscript):
            target = dotted_name(node.value)
            if target == "os.environ":
                record(literal_str(node.slice), node.lineno)
    return knobs


@register_checker
class EnvDisciplineChecker(Checker):
    name = "env-discipline"
    description = (
        "os.environ reads only in util.config; REPRO_* literals resolve to "
        "real knobs; every knob is in the README tables"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        config = project.module(CONFIG_MODULE)
        knobs = collect_knobs(config) if config is not None else {}

        for mod in project.modules:
            if mod.module != CONFIG_MODULE:
                findings.extend(self._env_reads(mod))
            findings.extend(self._knob_literals(mod, knobs))

        if config is not None and knobs:
            readme = project.root / "README.md"
            readme_text = readme.read_text(encoding="utf-8") if readme.exists() else ""
            for knob, line in sorted(knobs.items()):
                if knob not in readme_text:
                    findings.append(config.finding(
                        line, self.name,
                        f"knob {knob} is read by util.config but missing from "
                        "the README knob tables — document it",
                        f"undocumented:{knob}",
                    ))
        return findings

    def _env_reads(self, mod: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            name = None
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name == "os.environ":
                    yield mod.finding(
                        node, self.name,
                        "os.environ access outside util.config; add an "
                        "accessor there (validated default + docstring) and "
                        "call it instead",
                        "environ",
                    )
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _OS_ENV_FUNCS:
                    yield mod.finding(
                        node, self.name,
                        f"{name}() outside util.config; the env contract is "
                        "centralized there",
                        name or "",
                    )

    def _knob_literals(
        self, mod: ParsedModule, knobs: dict[str, int]
    ) -> Iterable[Finding]:
        if not knobs:
            return
        for lineno, line in enumerate(mod.lines, 1):
            for m in _KNOB_RE.finditer(line):
                name = m.group(0)
                if name in knobs:
                    continue
                after = line[m.end():m.end() + 1]
                if name.endswith("_") and after == "*":
                    if any(k.startswith(name) for k in knobs):
                        continue
                yield mod.finding(
                    lineno, self.name,
                    f"{name} does not resolve to a knob defined in "
                    "util.config (typo, or a knob missing its accessor)",
                    f"unknown:{name}",
                )
