"""obs-conventions: span and metric names follow one grammar, project-wide.

The observability layer's exports are only greppable/joinable if names
are uniform. Enforced:

* ``trace.span(...)`` / ``trace.track(...)`` take a *literal* first
  argument (a dynamic span name defeats both this checker and any
  dashboard query), and span names match
  ``segment(.segment)*`` with ``[a-z][a-z0-9_]*`` segments.
* span *attributes* are named keyword arguments matching
  ``[a-z][a-z0-9_]*`` — no ``**dynamic`` unpacking (unjoinable keys)
  and no camel/upper-case attribute names.
* metric families declared through ``REGISTRY.counter/gauge/histogram``
  (or the module-level helpers) are literal, match
  ``repro_[a-z][a-z0-9_]*``, counters end in ``_total`` and
  non-counters do not, and nothing ends in the Prometheus-reserved
  ``_bucket``/``_sum``/``_count`` suffixes.
* one family name is declared with one kind and one label set: the
  same name declared elsewhere with a different kind or different
  ``labelnames`` would corrupt the shared registry at runtime.

``trace.track(...)`` names are worker-tag prefixes (``rank{r}``) and
are exempt from the dotted grammar but must still be literal or a
single f-string.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    ParsedModule,
    Project,
    dotted_name,
    iter_calls,
    literal_str,
    register_checker,
)

SPAN_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
ATTR_RE = re.compile(r"^[a-z][a-z0-9_]*$")
METRIC_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_RESERVED_SUFFIXES = ("_bucket", "_sum", "_count")
_METRIC_KINDS = {"counter", "gauge", "histogram"}


def _metric_call_kind(call: ast.Call) -> str | None:
    """'counter'/'gauge'/'histogram' for a metric-declaration call."""
    name = dotted_name(call.func)
    if name is None:
        return None
    tail = name.split(".")[-1]
    return tail if tail in _METRIC_KINDS else None


def _labelnames(call: ast.Call) -> tuple[str, ...] | None:
    """The literal ``labelnames=(...)`` tuple, or () when absent."""
    for kw in call.keywords:
        if kw.arg == "labelnames":
            if isinstance(kw.value, (ast.Tuple, ast.List)):
                labels = [literal_str(el) for el in kw.value.elts]
                if all(lbl is not None for lbl in labels):
                    return tuple(labels)  # type: ignore[arg-type]
            return None  # dynamic label set: can't verify
    return ()


@register_checker
class ObsConventionsChecker(Checker):
    name = "obs-conventions"
    description = (
        "span/metric names are literal and follow the naming grammar; "
        "no family is re-declared with a conflicting kind or labels"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        #: family name -> (kind, labels, module, line) of first declaration
        families: dict[str, tuple[str, tuple[str, ...] | None, str, int]] = {}
        for mod in project.modules:
            if mod.module is not None and mod.module.startswith("repro.analysis"):
                continue  # the analyzer's own fixtures/grammar constants
            for call in iter_calls(mod.tree):
                findings.extend(self._check_span(mod, call))
                findings.extend(self._check_metric(mod, call, families))
        return findings

    def _check_span(self, mod: ParsedModule, call: ast.Call) -> Iterable[Finding]:
        func = dotted_name(call.func)
        if func is None or not isinstance(call.func, ast.Attribute):
            return
        method = call.func.attr
        receiver = func.rsplit(".", 1)[0]
        if method not in ("span", "track") or "trace" not in receiver:
            return
        if not call.args:
            return
        name = literal_str(call.args[0])
        if name is None:
            if method == "track" and isinstance(call.args[0], ast.JoinedStr):
                return  # rank{r} worker tags are legitimately dynamic
            yield mod.finding(
                call, self.name,
                f"trace.{method}() name is not a string literal; dynamic "
                "span names defeat dashboards and this checker",
                f"dynamic-{method}",
            )
            return
        if method == "span" and not SPAN_RE.match(name):
            yield mod.finding(
                call, self.name,
                f"span name {name!r} violates the grammar "
                "lowercase.dotted_segments (^[a-z][a-z0-9_]*"
                "(\\.[a-z][a-z0-9_]*)*$)",
                f"span:{name}",
            )
        if method != "span":
            return
        for kw in call.keywords:
            if kw.arg is None:
                yield mod.finding(
                    call, self.name,
                    f"span {name!r} sets attributes via **-unpacking; "
                    "attribute keys must be statically known to stay "
                    "joinable across exports",
                    f"span-attrs:{name}",
                )
            elif not ATTR_RE.match(kw.arg):
                yield mod.finding(
                    call, self.name,
                    f"span {name!r} attribute {kw.arg!r} violates the "
                    "grammar ^[a-z][a-z0-9_]*$",
                    f"span-attr:{name}.{kw.arg}",
                )

    def _check_metric(
        self,
        mod: ParsedModule,
        call: ast.Call,
        families: dict[str, tuple[str, tuple[str, ...] | None, str, int]],
    ) -> Iterable[Finding]:
        kind = _metric_call_kind(call)
        if kind is None or not call.args:
            return
        name = literal_str(call.args[0])
        if name is None:
            yield mod.finding(
                call, self.name,
                f"{kind}() family name is not a string literal; the "
                "registry contract needs statically known families",
                f"dynamic-{kind}",
            )
            return
        if not METRIC_RE.match(name):
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} violates the grammar "
                "^repro_[a-z][a-z0-9_]*$",
                f"metric:{name}",
            )
            return
        if kind == "counter" and not name.endswith("_total"):
            yield mod.finding(
                call, self.name,
                f"counter {name!r} must end in _total (Prometheus counter "
                "convention)",
                f"metric:{name}",
            )
        if kind != "counter" and name.endswith("_total"):
            yield mod.finding(
                call, self.name,
                f"{kind} {name!r} must not end in _total — that suffix "
                "marks counters",
                f"metric:{name}",
            )
        if name.endswith(_RESERVED_SUFFIXES):
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} ends in a Prometheus-reserved "
                "suffix (_bucket/_sum/_count are synthesized per family)",
                f"metric:{name}",
            )
        labels = _labelnames(call)
        prior = families.get(name)
        if prior is None:
            families[name] = (kind, labels, mod.rel, call.lineno)
            return
        prior_kind, prior_labels, prior_rel, prior_line = prior
        if prior_kind != kind:
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} declared as {kind} here but as "
                f"{prior_kind} at {prior_rel}:{prior_line} — one family, "
                "one kind",
                f"conflict:{name}",
            )
        elif labels is not None and prior_labels is not None and (
            labels != prior_labels
        ):
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} declared with labels {labels!r} "
                f"here but {prior_labels!r} at {prior_rel}:{prior_line} — "
                "label sets must match across declarations",
                f"conflict:{name}",
            )
