"""obs-conventions: span and metric names follow one grammar, project-wide.

The observability layer's exports are only greppable/joinable if names
are uniform. Enforced:

* ``trace.span(...)`` / ``trace.track(...)`` take a *literal* first
  argument (a dynamic span name defeats both this checker and any
  dashboard query), and span names match
  ``segment(.segment)*`` with ``[a-z][a-z0-9_]*`` segments.
* span *attributes* are named keyword arguments matching
  ``[a-z][a-z0-9_]*`` — no ``**dynamic`` unpacking (unjoinable keys)
  and no camel/upper-case attribute names.
* metric families declared through ``REGISTRY.counter/gauge/histogram``
  (or the module-level helpers) are literal, match
  ``repro_[a-z][a-z0-9_]*``, counters end in ``_total`` and
  non-counters do not, and nothing ends in the Prometheus-reserved
  ``_bucket``/``_sum``/``_count`` suffixes.
* one family name is declared with one kind and one label set: the
  same name declared elsewhere with a different kind or different
  ``labelnames`` would corrupt the shared registry at runtime.

``trace.track(...)`` names are worker-tag prefixes (``rank{r}``) and
are exempt from the dotted grammar but must still be literal or a
single f-string.

Two further contracts:

* **subsystem metric prefixes** — the obs subsystems own a metric
  namespace each (:data:`MODULE_PREFIXES`): families declared in
  ``repro.obs.health`` must start ``repro_health_``, the watchdog's
  ``repro_watchdog_``, the profiler's ``repro_profile_`` — so a
  family's name alone says which subsystem emits it.
* **knob registry** — ``repro.obs.OBS_KNOBS`` is the authoritative
  list of ``REPRO_OBS*`` environment knobs. Every knob listed there
  must be read by an accessor in ``repro.util.config``, and every
  ``REPRO_OBS*`` env-var literal in ``repro.util.config`` must appear
  in ``OBS_KNOBS`` — an unregistered knob is invisible to docs and
  deployment checklists.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import (
    Checker,
    Finding,
    ParsedModule,
    Project,
    dotted_name,
    iter_calls,
    literal_str,
    register_checker,
)

SPAN_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
ATTR_RE = re.compile(r"^[a-z][a-z0-9_]*$")
METRIC_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_RESERVED_SUFFIXES = ("_bucket", "_sum", "_count")
_METRIC_KINDS = {"counter", "gauge", "histogram"}

#: obs subsystems that own a metric namespace (module -> family prefix)
MODULE_PREFIXES = {
    "repro.obs.health": "repro_health_",
    "repro.obs.watchdog": "repro_watchdog_",
    "repro.obs.profiler": "repro_profile_",
}

#: the module carrying the authoritative ``OBS_KNOBS`` tuple
_KNOB_REGISTRY_MODULE = "repro.obs"
#: the only module allowed to read environment variables
_CONFIG_MODULE = "repro.util.config"
#: an observability knob name: REPRO_OBS itself or any REPRO_OBS_* knob
_OBS_KNOB_RE = re.compile(r"^REPRO_OBS(_[A-Z0-9_]+)?$")


def _metric_call_kind(call: ast.Call) -> str | None:
    """'counter'/'gauge'/'histogram' for a metric-declaration call."""
    name = dotted_name(call.func)
    if name is None:
        return None
    tail = name.split(".")[-1]
    return tail if tail in _METRIC_KINDS else None


def _labelnames(call: ast.Call) -> tuple[str, ...] | None:
    """The literal ``labelnames=(...)`` tuple, or () when absent."""
    for kw in call.keywords:
        if kw.arg == "labelnames":
            if isinstance(kw.value, (ast.Tuple, ast.List)):
                labels = [literal_str(el) for el in kw.value.elts]
                if all(lbl is not None for lbl in labels):
                    return tuple(labels)  # type: ignore[arg-type]
            return None  # dynamic label set: can't verify
    return ()


@register_checker
class ObsConventionsChecker(Checker):
    name = "obs-conventions"
    description = (
        "span/metric names are literal and follow the naming grammar; "
        "no family is re-declared with a conflicting kind or labels"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        #: family name -> (kind, labels, module, line) of first declaration
        families: dict[str, tuple[str, tuple[str, ...] | None, str, int]] = {}
        for mod in project.modules:
            if mod.module is not None and mod.module.startswith("repro.analysis"):
                continue  # the analyzer's own fixtures/grammar constants
            for call in iter_calls(mod.tree):
                findings.extend(self._check_span(mod, call))
                findings.extend(self._check_metric(mod, call, families))
        findings.extend(self._check_knob_registry(project))
        return findings

    def _check_knob_registry(self, project: Project) -> Iterable[Finding]:
        """``repro.obs.OBS_KNOBS`` and util.config agree on REPRO_OBS* knobs."""
        registry_mod = config_mod = None
        for mod in project.modules:
            if mod.module == _KNOB_REGISTRY_MODULE:
                registry_mod = mod
            elif mod.module == _CONFIG_MODULE:
                config_mod = mod
        if registry_mod is None or config_mod is None:
            return  # partial-tree run (e.g. a single-file invocation)

        declared: dict[str, int] = {}
        tuple_line = None
        for node in ast.walk(registry_mod.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "OBS_KNOBS" not in targets:
                continue
            tuple_line = node.lineno
            if isinstance(node.value, (ast.Tuple, ast.List)):
                for el in node.value.elts:
                    knob = literal_str(el)
                    if knob is not None:
                        declared[knob] = el.lineno
        if tuple_line is None:
            yield registry_mod.finding(
                1, self.name,
                "repro.obs must declare the OBS_KNOBS tuple — the "
                "authoritative registry of REPRO_OBS* environment knobs",
                "obs-knobs-missing",
            )
            return

        read: dict[str, int] = {}
        for node in ast.walk(config_mod.tree):
            value = literal_str(node)
            if value is not None and _OBS_KNOB_RE.match(value):
                read.setdefault(value, node.lineno)

        for knob, line in sorted(declared.items()):
            if not _OBS_KNOB_RE.match(knob):
                yield registry_mod.finding(
                    line, self.name,
                    f"OBS_KNOBS entry {knob!r} is not a REPRO_OBS* name",
                    f"knob:{knob}",
                )
            elif knob not in read:
                yield registry_mod.finding(
                    line, self.name,
                    f"OBS_KNOBS lists {knob!r} but no repro.util.config "
                    "accessor reads it — stale registry entry",
                    f"knob:{knob}",
                )
        for knob, line in sorted(read.items()):
            if knob not in declared:
                yield config_mod.finding(
                    line, self.name,
                    f"repro.util.config reads {knob!r} but repro.obs."
                    "OBS_KNOBS does not list it — register the knob so "
                    "docs and deployment checks can see it",
                    f"knob:{knob}",
                )

    def _check_span(self, mod: ParsedModule, call: ast.Call) -> Iterable[Finding]:
        func = dotted_name(call.func)
        if func is None or not isinstance(call.func, ast.Attribute):
            return
        method = call.func.attr
        receiver = func.rsplit(".", 1)[0]
        if method not in ("span", "track") or "trace" not in receiver:
            return
        if not call.args:
            return
        name = literal_str(call.args[0])
        if name is None:
            if method == "track" and isinstance(call.args[0], ast.JoinedStr):
                return  # rank{r} worker tags are legitimately dynamic
            yield mod.finding(
                call, self.name,
                f"trace.{method}() name is not a string literal; dynamic "
                "span names defeat dashboards and this checker",
                f"dynamic-{method}",
            )
            return
        if method == "span" and not SPAN_RE.match(name):
            yield mod.finding(
                call, self.name,
                f"span name {name!r} violates the grammar "
                "lowercase.dotted_segments (^[a-z][a-z0-9_]*"
                "(\\.[a-z][a-z0-9_]*)*$)",
                f"span:{name}",
            )
        if method != "span":
            return
        for kw in call.keywords:
            if kw.arg is None:
                yield mod.finding(
                    call, self.name,
                    f"span {name!r} sets attributes via **-unpacking; "
                    "attribute keys must be statically known to stay "
                    "joinable across exports",
                    f"span-attrs:{name}",
                )
            elif not ATTR_RE.match(kw.arg):
                yield mod.finding(
                    call, self.name,
                    f"span {name!r} attribute {kw.arg!r} violates the "
                    "grammar ^[a-z][a-z0-9_]*$",
                    f"span-attr:{name}.{kw.arg}",
                )

    def _check_metric(
        self,
        mod: ParsedModule,
        call: ast.Call,
        families: dict[str, tuple[str, tuple[str, ...] | None, str, int]],
    ) -> Iterable[Finding]:
        kind = _metric_call_kind(call)
        if kind is None or not call.args:
            return
        name = literal_str(call.args[0])
        if name is None:
            yield mod.finding(
                call, self.name,
                f"{kind}() family name is not a string literal; the "
                "registry contract needs statically known families",
                f"dynamic-{kind}",
            )
            return
        if not METRIC_RE.match(name):
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} violates the grammar "
                "^repro_[a-z][a-z0-9_]*$",
                f"metric:{name}",
            )
            return
        if kind == "counter" and not name.endswith("_total"):
            yield mod.finding(
                call, self.name,
                f"counter {name!r} must end in _total (Prometheus counter "
                "convention)",
                f"metric:{name}",
            )
        if kind != "counter" and name.endswith("_total"):
            yield mod.finding(
                call, self.name,
                f"{kind} {name!r} must not end in _total — that suffix "
                "marks counters",
                f"metric:{name}",
            )
        if name.endswith(_RESERVED_SUFFIXES):
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} ends in a Prometheus-reserved "
                "suffix (_bucket/_sum/_count are synthesized per family)",
                f"metric:{name}",
            )
        prefix = MODULE_PREFIXES.get(mod.module or "")
        if prefix is not None and not name.startswith(prefix):
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} declared in {mod.module} must "
                f"start with that subsystem's prefix {prefix!r}",
                f"prefix:{name}",
            )
        labels = _labelnames(call)
        prior = families.get(name)
        if prior is None:
            families[name] = (kind, labels, mod.rel, call.lineno)
            return
        prior_kind, prior_labels, prior_rel, prior_line = prior
        if prior_kind != kind:
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} declared as {kind} here but as "
                f"{prior_kind} at {prior_rel}:{prior_line} — one family, "
                "one kind",
                f"conflict:{name}",
            )
        elif labels is not None and prior_labels is not None and (
            labels != prior_labels
        ):
            yield mod.finding(
                call, self.name,
                f"metric family {name!r} declared with labels {labels!r} "
                f"here but {prior_labels!r} at {prior_rel}:{prior_line} — "
                "label sets must match across declarations",
                f"conflict:{name}",
            )
