"""Project-invariant static analysis for the repro codebase.

The three-layer stack (engine / facade / service) is held together by
contracts that no general-purpose linter knows about: the shm
create->registry->unlink lifetime protocol, the centralized ``REPRO_*``
env-knob registry, lock-guarded mutation in the serving and transport
layers, bitwise-parity rules in the numerics packages, and the
observability naming grammar. ``repro.analysis`` machine-checks them:

    python -m repro.analysis src/

An AST-based checker registry (:mod:`repro.analysis.checkers`) produces
:class:`~repro.analysis.core.Finding` s; inline suppressions
(``# repro: allow(<checker>) -- reason``) and an optional committed
baseline file filter them; text/JSON reporters render what is left.
The CI gate fails on any unsuppressed finding — the committed tree is a
zero-finding state by construction (see ``tests/test_analysis.py``'s
meta-test and ``INVARIANTS.md`` for the contracts enforced).
"""

from repro.analysis.core import (
    AnalysisResult,
    Checker,
    Finding,
    ParsedModule,
    Project,
    all_checkers,
    analyze_paths,
    register_checker,
)
from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "AnalysisResult",
    "Checker",
    "Finding",
    "ParsedModule",
    "Project",
    "all_checkers",
    "analyze_paths",
    "load_baseline",
    "register_checker",
    "render_json",
    "render_text",
    "save_baseline",
]
