"""Finding/suppression machinery and the checker registry.

A :class:`Project` is the parsed form of every ``.py`` file under the
analyzed paths (one :class:`ParsedModule` each, with its AST, source
lines, dotted module name when the file lives under ``src/``, and the
inline suppressions scanned from its comments). Checkers are
project-scoped: each receives the whole :class:`Project`, so
whole-program checks (the lock-order graph, cross-module dead-code
references) need no side channel.

Suppression syntax, one per physical line, anchored to the finding's
reported line::

    risky_call()  # repro: allow(lock-discipline) -- epoch guard makes this safe

The reason string after ``--`` is mandatory: an unexplained suppression
is itself reported (checker ``suppression``), as is an ``allow`` naming
a checker that does not exist.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: matches one inline suppression comment
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<checkers>[a-z0-9_,\s-]+?)\s*\)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``symbol`` is a stable identifier (qualified name, knob name, lock
    node...) used for baseline matching, so baselined findings survive
    unrelated line drift.
    """

    path: str  #: project-relative posix path
    line: int
    col: int
    checker: str
    message: str
    symbol: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker": self.checker,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow(...)`` comment."""

    line: int
    checkers: tuple[str, ...]
    reason: str | None


class ParsedModule:
    """One source file: text, AST, suppressions, and naming context."""

    def __init__(self, path: Path, rel: str, text: str, tree: ast.Module,
                 module: str | None):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        #: dotted module name (``repro.vmpi.pool``) for files under a
        #: ``src/`` root; ``None`` for scripts (benchmarks, examples)
        self.module = module
        self.suppressions: list[Suppression] = _scan_suppressions(self.lines)
        self._by_line: dict[int, Suppression] = {s.line: s for s in self.suppressions}

    @property
    def package(self) -> str | None:
        """Parent package of :attr:`module` (``repro.vmpi``), or ``None``."""
        if self.module is None or "." not in self.module:
            return self.module
        return self.module.rsplit(".", 1)[0]

    def suppressed(self, line: int, checker: str) -> bool:
        sup = self._by_line.get(line)
        return sup is not None and checker in sup.checkers

    def finding(self, node: ast.AST | int, checker: str, message: str,
                symbol: str = "") -> Finding:
        """Build a finding anchored at an AST node (or raw line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(self.rel, line, col, checker, message, symbol)


def _scan_suppressions(lines: list[str]) -> list[Suppression]:
    out: list[Suppression] = []
    for lineno, line in enumerate(lines, 1):
        if "repro:" not in line:
            continue
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        names = tuple(
            name.strip() for name in m.group("checkers").split(",") if name.strip()
        )
        out.append(Suppression(lineno, names, m.group("reason")))
    return out


class Project:
    """Every parsed module of one analysis run."""

    def __init__(self, modules: list[ParsedModule], root: Path):
        self.modules = modules
        #: repository root (where ``README.md`` lives) — used by the
        #: env-discipline knob-table check
        self.root = root
        self._by_module = {m.module: m for m in modules if m.module}

    def module(self, name: str) -> ParsedModule | None:
        return self._by_module.get(name)

    def in_packages(self, packages: Iterable[str]) -> Iterator[ParsedModule]:
        """Modules whose dotted name sits under any of ``packages``."""
        prefixes = tuple(packages)
        for mod in self.modules:
            if mod.module is None:
                continue
            if any(mod.module == p or mod.module.startswith(p + ".")
                   for p in prefixes):
                yield mod


# ----------------------------------------------------------------------
# checker registry
# ----------------------------------------------------------------------
class Checker:
    """Base class: subclass, set ``name``/``description``, implement ``run``."""

    name = ""
    description = ""

    def run(self, project: Project) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


_CHECKERS: dict[str, Checker] = {}

#: checker names the framework itself emits (always valid in allow())
FRAMEWORK_CHECKERS = ("parse", "suppression")


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} must set a name")
    if cls.name in _CHECKERS:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _CHECKERS[cls.name] = cls()
    return cls


def all_checkers() -> dict[str, Checker]:
    """Name -> instance for every registered checker (imports them all)."""
    import repro.analysis.checkers  # repro: allow(dead-code) -- imported for its checker-registration side effect

    return dict(_CHECKERS)


# ----------------------------------------------------------------------
# driving an analysis
# ----------------------------------------------------------------------
@dataclass
class AnalysisResult:
    """Everything one run produced, pre- and post-filtering."""

    findings: list[Finding]          #: unsuppressed, not baselined — the gate
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    checkers: tuple[str, ...] = ()
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _iter_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    seen: set[Path] = set()
    unique = []
    for f in files:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def _find_root(files: list[Path]) -> Path:
    """Repo root: nearest ancestor holding README.md or .git."""
    start = files[0].resolve().parent if files else Path.cwd()
    for candidate in [start, *start.parents]:
        if (candidate / "README.md").exists() or (candidate / ".git").exists():
            return candidate
    return start


def _module_name(path: Path, root: Path) -> str | None:
    """Dotted module for files under ``<root>/src/``; ``None`` otherwise."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    parts = list(rel.parts)
    if "src" not in parts:
        return None
    parts = parts[parts.index("src") + 1:]
    if not parts:
        return None
    parts[-1] = parts[-1][:-3]  # strip .py
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else None


def load_project(paths: Iterable[str | Path]) -> tuple[Project, list[Finding]]:
    """Parse every file under ``paths``; syntax errors become findings."""
    files = _iter_files(paths)
    root = _find_root(files)
    modules: list[ParsedModule] = []
    errors: list[Finding] = []
    for path in files:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            errors.append(Finding(
                rel, exc.lineno or 1, (exc.offset or 1) - 1, "parse",
                f"syntax error: {exc.msg}",
            ))
            continue
        modules.append(ParsedModule(path, rel, text, tree, _module_name(path, root)))
    return Project(modules, root), errors


def _suppression_findings(project: Project, known: set[str]) -> list[Finding]:
    """Malformed suppressions: unknown checker names, missing reasons."""
    out: list[Finding] = []
    for mod in project.modules:
        for sup in mod.suppressions:
            for name in sup.checkers:
                if name not in known:
                    out.append(mod.finding(
                        sup.line, "suppression",
                        f"allow({name}) names an unknown checker "
                        f"(known: {', '.join(sorted(known))})", name,
                    ))
            if not sup.reason:
                out.append(mod.finding(
                    sup.line, "suppression",
                    "suppression must carry a reason: "
                    "# repro: allow(<checker>) -- <why this is safe>",
                ))
    return out


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    baseline: list[dict] | None = None,
) -> AnalysisResult:
    """Run the (selected) checkers over ``paths`` and filter the findings."""
    checkers = all_checkers()
    if select is not None:
        unknown = sorted(set(select) - set(checkers))
        if unknown:
            raise ValueError(f"unknown checker(s): {', '.join(unknown)}")
        checkers = {name: checkers[name] for name in select}
    project, errors = load_project(paths)
    raw: list[Finding] = list(errors)
    for checker in checkers.values():
        raw.extend(checker.run(project))
    known = set(all_checkers()) | set(FRAMEWORK_CHECKERS)
    raw.extend(_suppression_findings(project, known))

    by_rel = {mod.rel: mod for mod in project.modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(raw):
        mod = by_rel.get(finding.path)
        if mod is not None and mod.suppressed(finding.line, finding.checker):
            suppressed.append(finding)
        else:
            kept.append(finding)

    baselined: list[Finding] = []
    if baseline:
        from repro.analysis.baseline import filter_baseline

        kept, baselined = filter_baseline(kept, baseline)
    return AnalysisResult(
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        checkers=tuple(sorted(checkers)),
        files=len(project.modules) + len(errors),
    )


# ----------------------------------------------------------------------
# shared AST helpers used by several checkers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def enclosing_functions(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Map every node to its nearest enclosing function def (or module)."""
    owner: dict[ast.AST, ast.AST] = {}

    def visit(node: ast.AST, current: ast.AST) -> None:
        owner[node] = current
        nxt = node if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) else current
        for child in ast.iter_child_nodes(node):
            visit(child, nxt)

    visit(tree, tree)
    return owner


def literal_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


__all__ = [
    "AnalysisResult",
    "Checker",
    "Finding",
    "ParsedModule",
    "Project",
    "Suppression",
    "all_checkers",
    "analyze_paths",
    "dotted_name",
    "enclosing_functions",
    "iter_calls",
    "literal_str",
    "load_project",
    "register_checker",
]
