"""Command-line front: ``python -m repro.analysis [paths] [options]``.

Exit status: 0 on a clean tree, 1 when unsuppressed findings remain,
2 on usage errors — the contract the CI gate relies on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.core import all_checkers, analyze_paths
from repro.analysis.reporters import render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static analysis for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format on stdout")
    parser.add_argument("--output", metavar="FILE",
                        help="also write a JSON report to FILE")
    parser.add_argument("--select", metavar="CHECKERS",
                        help="comma-separated checker names to run (default: all)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="tolerate findings recorded in this baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings as a new baseline and exit 0")
    parser.add_argument("--verbose", action="store_true",
                        help="also list suppressed/baselined findings")
    parser.add_argument("--list-checkers", action="store_true",
                        help="print registered checkers and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_checkers:
        for name, checker in sorted(all_checkers().items()):
            print(f"{name}: {checker.description}")
        return 0
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        result = analyze_paths(args.paths, select=select, baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        save_baseline(result.findings, args.write_baseline)
        print(f"wrote {len(result.findings)} finding(s) to {args.write_baseline}")
        return 0
    report = render_json(result) if args.format == "json" else render_text(
        result, verbose=args.verbose
    )
    sys.stdout.write(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(render_json(result))
    return 0 if result.clean else 1
