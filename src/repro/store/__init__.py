"""Resident factorization store: state that lives where the work is.

The paper's economics — one expensive factorization, arbitrarily many
cheap solves — breaks down the moment the factorization has to *move*:
re-shipped to rank workers per solve, rebuilt per front-end process,
refactored per restart. This package keeps it resident at three tiers:

1. **worker-resident** (:mod:`repro.store.resident`) — pooled rank
   workers retain their ``PartialLU``/``BoxRecord`` shards; repeated
   solves dispatch O(rhs) bytes instead of O(factorization).
2. **cross-process shared** (:mod:`repro.store.shared`) — cache entries
   published through the vmpi shm codec as named blocks + a sidecar
   index; other serving processes attach zero-copy, with refcounted
   unlink and a lockfile single-flight protocol.
3. **disk spill / warm start** (:mod:`repro.store.disk`) — evicted and
   shutdown-time entries persist as checksummed files under
   ``REPRO_STORE_DIR``; cache misses consult them before factoring.

Tiers 2 and 3 activate only when ``REPRO_STORE_DIR`` is set; tier 1 is
on by default for the persistent process backend (``REPRO_STORE_*``
knobs, documented in the README "Resident store" section).
"""

from repro.store.resident import (
    ResidentHandle,
    new_entry_id,
    resident_supported,
)
from repro.store.store import FactorizationStore

__all__ = [
    "FactorizationStore",
    "ResidentHandle",
    "new_entry_id",
    "resident_supported",
]
