"""Tier 3 of the resident store: disk spill files and warm starts.

An entry spills as one self-verifying file under the store root:
a pickled envelope carrying the store format version, the numpy
version, the cache key's canonical repr, and a BLAKE2b checksum over
the pickled factorization payload. Loads verify all four before
unpickling the payload; any mismatch — truncated file, flipped bits, a
different numpy, a key-digest collision — removes the file and reports
a miss, so a corrupt spill can never poison a warm start. Writes are
atomic (`tmp` + ``os.replace``) so a crash mid-spill leaves either the
old file or none.
"""

from __future__ import annotations

import hashlib
import os
import pickle

import numpy as np

#: bumped whenever the spill envelope or the pickled payload layout
#: changes incompatibly; part of both the filename digest and the
#: envelope check
STORE_FORMAT = 1

_PICKLE = pickle.HIGHEST_PROTOCOL


def checksum(data: bytes) -> str:
    """Hex BLAKE2b digest used for spill/sidecar payload integrity."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def key_digest(key) -> str:
    """Stable filename digest of a cache key.

    Keys are ``(problem fingerprint, strategy setup key)`` tuples of
    strings/numbers/tuples, whose ``repr`` is deterministic across
    processes — the property the cross-process tiers rest on.
    """
    text = f"v{STORE_FORMAT}:{key!r}"
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def envelope(key, payload: bytes) -> dict:
    """The self-verifying on-disk wrapper for ``payload``."""
    return {
        "format": STORE_FORMAT,
        "numpy": np.__version__,
        "key": repr(key),
        "checksum": checksum(payload),
        "payload": payload,
        "pid": os.getpid(),
    }


def check_envelope(env, key) -> str | None:
    """Why ``env`` cannot be trusted for ``key``; ``None`` when it can."""
    if not isinstance(env, dict):
        return "malformed"
    if env.get("format") != STORE_FORMAT:
        return "format"
    if env.get("numpy") != np.__version__:
        return "version"
    if env.get("key") != repr(key):
        return "key"
    payload = env.get("payload")
    if not isinstance(payload, bytes) or env.get("checksum") != checksum(payload):
        return "checksum"
    return None


def write_atomic(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` through a same-directory rename."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def remove_quiet(path: str) -> None:
    """Remove a store file, tolerating concurrent removal."""
    try:
        os.remove(path)
    except FileNotFoundError:
        pass


def read_envelope(path: str):
    """Load an envelope file; ``None`` when absent or unreadable."""
    try:
        with open(path, "rb") as fh:
            return pickle.loads(fh.read())
    except FileNotFoundError:
        return None
    except Exception:  # noqa: BLE001 - truncated/corrupt pickle is a miss
        return "malformed"


def spill_entry(path: str, key, fact) -> None:
    """Serialize ``fact`` into an atomic, checksummed spill file."""
    payload = pickle.dumps(fact, protocol=_PICKLE)
    write_atomic(path, pickle.dumps(envelope(key, payload), protocol=_PICKLE))


def load_spill(path: str, key):
    """``(fact, None)`` from a verified spill file, or ``(None, reason)``.

    A failing file is removed so the caller factors fresh and the next
    spill overwrites it.
    """
    env = read_envelope(path)
    if env is None:
        return None, None
    reason = "malformed" if env == "malformed" else check_envelope(env, key)
    if reason is not None:
        remove_quiet(path)
        return None, reason
    try:
        return pickle.loads(env["payload"]), None
    except Exception:  # noqa: BLE001 - payload unpickle failed: treat as corrupt
        remove_quiet(path)
        return None, "payload"
