"""Tier 1 of the resident store: factorization shards living in rank workers.

After a pooled ``factor``, each rank worker already *holds* its
``WorkerResult`` — the ``PartialLU``/``BoxRecord`` tree it just built.
Re-shipping that tree parent -> worker on every ``solve`` dispatch is
the dominant cost of repeated pooled solves (the ``BENCH_backend_scaling``
regression this subsystem exists to fix). This module keeps the shards
where the work is:

* **worker side** — a per-process registry maps entry ids to retained
  :class:`~repro.parallel.worker.WorkerResult` shards, LRU-capped by
  ``REPRO_STORE_RESIDENT_MAX``. :func:`factor_retain_worker` populates
  it as a free side effect of the factor job; :func:`seed_worker`
  (re)populates it explicitly (one full-tree ship) after a respawn or a
  cap eviction; :func:`resident_solve_worker` solves from it, shipping
  only ``(entry_id, leaf ownership, rhs)``; :func:`drop_worker`
  invalidates on cache eviction.
* **parent side** — a :class:`ResidentHandle` tracks *which* pool
  cohort holds the shards via the pool's ``generation`` epoch, reseeds
  transparently when the cohort changed (worker death -> respawn, LRU
  teardown), and retries exactly once when workers report the entry
  missing.

The resident solve runs :func:`~repro.parallel.solve.solve_shards` —
the identical scatter / color-round / reduction / gather communication
pattern as a full-tree dispatch — so per-rank message and byte
counters, and the solution bits, are indistinguishable from the
non-resident path. Only the *dispatch payload* shrinks, from
O(factorization) to O(rhs).
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict

import numpy as np

from typing import TYPE_CHECKING

from repro.obs import REGISTRY, trace
from repro.obs.lockwatch import make_lock
from repro.util.config import store_resident, store_resident_max

# the parallel engine imports this module (driver dispatches the
# retaining factor worker), so its symbols are imported at call time —
# inside the functions below — to keep the package graph acyclic
if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.parallel.worker import WorkerResult
    from repro.vmpi.comm import Comm

_SEEDS = REGISTRY.counter(
    "repro_store_resident_seeds_total",
    "Full-tree seeding dispatches that (re)materialized worker-resident shards",
)
_RES_SOLVES = REGISTRY.counter(
    "repro_store_resident_solves_total",
    "Solve dispatches served from worker-resident factorization shards",
)
_RES_MISSES = REGISTRY.counter(
    "repro_store_resident_misses_total",
    "Resident solves that found the entry gone worker-side and reseeded",
)

#: substring the parent greps out of a failed rank's error description to
#: distinguish "shards are gone, reseed and retry" from a real solve error
MISS_MARKER = "ResidentEntryMissing"


class ResidentEntryMissing(RuntimeError):
    """Raised rank-side when a solve names an entry no longer resident."""


# ----------------------------------------------------------------------
# worker-side registry (module state: one per rank process)
# ----------------------------------------------------------------------
_RESIDENT: "OrderedDict[str, WorkerResult]" = OrderedDict()


def _retain(entry_id: str, my: WorkerResult) -> None:
    """Keep this rank's shard, LRU-evicting beyond the resident cap.

    Retention order is identical on every rank (all ranks see the same
    job sequence), so cap evictions are symmetric: a later solve either
    finds the entry on *all* ranks or misses on all — never a mixed
    outcome that would strand some ranks in receives.
    """
    _RESIDENT[entry_id] = my
    _RESIDENT.move_to_end(entry_id)
    cap = store_resident_max()
    while len(_RESIDENT) > cap:
        _RESIDENT.popitem(last=False)


def resident_entries() -> list[str]:
    """Entry ids currently resident in *this* process (introspection)."""
    return list(_RESIDENT)


def factor_retain_worker(comm: Comm, kernel, nlevels, domain, opts, entry_id: str):
    """:func:`~repro.parallel.worker.factor_worker`, retaining the shard.

    The retained object is the very ``WorkerResult`` the job returns
    (the result channel's shm codec clones along carved paths and never
    mutates the original), so retention adds zero communication and the
    factor job's counters are unchanged.
    """
    from repro.parallel.worker import factor_worker

    my = factor_worker(comm, kernel, nlevels, domain, opts)
    _retain(entry_id, my)
    return my


def seed_worker(comm: Comm, workers: list[WorkerResult], entry_id: str):
    """(Re)materialize the shards: each rank retains its slice.

    ``workers`` arrives through the pool's shared-dispatch shm blocks;
    the decoded arrays keep their mappings alive after the dispatcher's
    post-job sweep unlinks the names, so the retained shard stays valid
    for the lifetime of the worker process.
    """
    _retain(entry_id, workers[comm.rank])
    return comm.rank


def resident_solve_worker(comm: Comm, entry_id: str, leaf_ids_list, n: int, b):
    """Solve from the resident shard; dispatch payload is O(rhs)."""
    from repro.parallel.solve import solve_shards

    my = _RESIDENT.get(entry_id)
    if my is None:
        raise ResidentEntryMissing(
            f"{MISS_MARKER}: entry {entry_id!r} not resident in rank {comm.rank}"
        )
    _RESIDENT.move_to_end(entry_id)
    return solve_shards(comm, my, leaf_ids_list, n, b)


def drop_worker(comm: Comm, entry_id: str):
    """Invalidate one entry (cache eviction); True when it was resident."""
    return _RESIDENT.pop(entry_id, None) is not None


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
_ENTRY_COUNTER = itertools.count()


def new_entry_id() -> str:
    """Process-unique id naming one factorization's resident shards."""
    return f"res-{os.getpid()}-{next(_ENTRY_COUNTER)}"


def resident_supported(backend) -> bool:
    """Whether ``backend`` can host worker-resident shards.

    Requires the persistent-pool process backend (per-call workers die
    with their job; thread ranks already share the parent's memory) and
    the ``REPRO_STORE_RESIDENT`` knob (default on).
    """
    if not store_resident():
        return False
    from repro.vmpi.process_backend import ProcessBackend

    return isinstance(backend, ProcessBackend) and backend.pool_mode == "persistent"


class ResidentHandle:
    """Parent-side view of one factorization's worker-resident shards.

    Tracks the exact pool object and worker-cohort ``generation`` that
    hold the shards; ``solve`` reseeds before dispatching whenever the
    cohort changed underneath it (pool LRU teardown, worker death ->
    respawn) and retries once on a worker-reported miss (resident-cap
    eviction). The handle is process-local — it is dropped from pickled
    factorizations and lazily rebuilt in the attaching process.
    """

    def __init__(self, entry_id: str, p: int, backend, workers: list[WorkerResult]):
        self.entry_id = entry_id
        self.p = int(p)
        self.backend = backend
        self.workers = workers
        self._lock = make_lock("store.resident")
        self._pool = None
        self._generation = -1

    def adopt_pool(self, pool) -> None:
        """Record that ``pool``'s current cohort already holds the shards
        (factor-time retention); ``None`` marks the handle unseeded."""
        with self._lock:
            self._pool = pool
            self._generation = -1 if pool is None else pool.generation

    def _get_pool(self):
        from repro.vmpi.pool import get_pool

        be = self.backend
        pool = get_pool(self.p, be.start_method, be.min_shm_bytes)
        # keep the backend's pinned-pool view current for cache pinning
        be._pool = pool
        return pool

    def _seed_locked(self, pool) -> None:
        with trace.span("store.resident_seed", entry=self.entry_id):
            pool.run(seed_worker, (self.workers, self.entry_id))
        _SEEDS.inc()
        self._pool = pool
        self._generation = pool.generation

    def solve(self, n: int, b: np.ndarray, *, cost_model=None, timeout: float = 3600.0):
        """Dispatch one resident solve; returns the :class:`SPMDRun`.

        Lock order: ``store.resident`` is acquired *before* any
        ``vmpi.pool`` lock and nothing in vmpi ever takes a store lock,
        so the edge is one-directional (see INVARIANTS.md).
        """
        leaf_ids_list = [w.leaf_ids for w in self.workers]
        args = (self.entry_id, leaf_ids_list, n, b)
        with self._lock:
            pool = self._get_pool()
            if pool is not self._pool or pool.generation != self._generation:
                self._seed_locked(pool)
            try:
                with trace.span("store.resident_solve", entry=self.entry_id):
                    run = pool.run(
                        resident_solve_worker, args,
                        cost_model=cost_model, timeout=timeout,
                    )
            except RuntimeError as exc:
                if MISS_MARKER not in str(exc):
                    raise
                # worker-side cap eviction (symmetric across ranks):
                # reseed the current cohort and retry exactly once
                _RES_MISSES.inc()
                pool = self._get_pool()
                self._seed_locked(pool)
                with trace.span("store.resident_solve", entry=self.entry_id):
                    run = pool.run(
                        resident_solve_worker, args,
                        cost_model=cost_model, timeout=timeout,
                    )
        _RES_SOLVES.inc()
        # adopt rank-shipped spans like run_spmd does for normal dispatches
        for report in run.reports:
            spans = getattr(report, "spans", None)
            if spans:
                trace.adopt(spans)
                report.spans = []
        return run

    def drop(self) -> None:
        """Invalidate the worker-side entries (cache eviction hook).

        Best-effort: if the cohort that held the shards is already gone
        (pool died or respawned) there is nothing to invalidate — the
        respawn already swept the registry with the old process.
        """
        with self._lock:
            pool, gen = self._pool, self._generation
            self._pool = None
            self._generation = -1
        if pool is None or not pool.alive or pool.generation != gen:
            return
        try:
            pool.run(drop_worker, (self.entry_id,))
        except Exception:  # noqa: BLE001 - invalidation must not mask eviction
            pass
