"""The resident factorization store: one facade over the three tiers.

:class:`FactorizationStore` sits behind the serving layer's
:class:`~repro.service.cache.FactorizationCache` (tier 0, in-process
objects) and extends it across process and restart boundaries:

* **shared** (tier 2, :mod:`repro.store.shared`) — entries published as
  named shm blocks + sidecar; other processes attach zero-copy.
* **disk** (tier 3, :mod:`repro.store.disk`) — checksummed spill files
  under ``REPRO_STORE_DIR``; cache misses consult them before
  factoring, giving warm restarts.

(Tier 1 — worker-resident shards — attaches to the factorization
itself; see :mod:`repro.store.resident`.)

Single-flight is extended across processes with an ``O_CREAT|O_EXCL``
lockfile per entry: the winner builds and publishes, losers poll the
store until the entry appears, the owner dies, or
``REPRO_STORE_LOCK_TIMEOUT_S`` passes — then build locally rather than
hang on a peer. All store work happens *outside* the cache lock, and
the store's own lock is a leaf: nothing in vmpi or service is called
while holding it except pure file/shm codec operations.
"""

from __future__ import annotations

import os
import time

from repro.obs import REGISTRY, trace
from repro.obs.lockwatch import make_lock
from repro.store.disk import key_digest, load_spill, remove_quiet, spill_entry
from repro.store.shared import (
    _pid_alive,
    attach_entry,
    publish_entry,
    release_entry,
    shared_nbytes,
    sidecar_path,
)
from repro.util.config import (
    store_dir,
    store_lock_timeout_s,
    store_shared,
    store_spill,
    vmpi_shm_min_bytes,
)

_HITS = REGISTRY.counter(
    "repro_store_hits_total",
    "Cache misses satisfied by the factorization store, by tier",
    labelnames=("tier",),
)
_MISSES = REGISTRY.counter(
    "repro_store_misses_total",
    "Cache misses the store could not satisfy (fresh factorizations)",
)
_PUBLISHES = REGISTRY.counter(
    "repro_store_publishes_total",
    "Factorizations published as shared-memory entries",
)
_SPILLS = REGISTRY.counter(
    "repro_store_spills_total",
    "Factorizations spilled to disk (eviction/shutdown warm-start files)",
)
_INVALID = REGISTRY.counter(
    "repro_store_invalid_files_total",
    "Store files rejected at load time, by reason",
    labelnames=("reason",),
)
_SHARED_BYTES = REGISTRY.gauge(
    "repro_store_shared_bytes",
    "Bytes this process holds in published/attached store shm blocks",
)

_POLL_S = 0.05


def _publishable(fact):
    """A copy of ``fact`` safe to serialize across processes.

    Drops process-local state (the resident handle's pool references,
    the last solve run) and the factor run's per-rank results — which
    alias ``workers`` and would double every array in the payload; the
    per-rank reports (timings, counters, the data behind ``t_fact``)
    are kept.
    """
    import copy

    out = copy.copy(fact)
    for attr in ("resident", "last_solve_run"):
        if getattr(out, attr, None) is not None:
            setattr(out, attr, None)
    run = getattr(out, "factor_run", None)
    if run is not None and getattr(run, "results", None) is getattr(out, "workers", 0):
        from repro.vmpi.backend import SPMDRun

        out.factor_run = SPMDRun([], run.reports)
    return out


class FactorizationStore:
    """Cross-process + on-disk home for factorization cache entries."""

    def __init__(
        self,
        root: str,
        *,
        shared: bool | None = None,
        spill: bool | None = None,
        lock_timeout: float | None = None,
        min_shm_bytes: int | None = None,
    ):
        self.root = str(root)
        self.shared = store_shared() if shared is None else bool(shared)
        self.spill_enabled = store_spill() if spill is None else bool(spill)
        self.lock_timeout = (
            store_lock_timeout_s() if lock_timeout is None else float(lock_timeout)
        )
        self.min_shm_bytes = (
            vmpi_shm_min_bytes() if min_shm_bytes is None else int(min_shm_bytes)
        )
        os.makedirs(self.root, exist_ok=True)
        self._lock = make_lock("store.index")
        #: digest -> [refs, holds] for entries this process published or
        #: attached; ``holds`` counts in-process holders so two caches in
        #: one process release the shm refcount exactly once
        self._held: dict[str, list] = {}

    @classmethod
    def from_env(cls) -> "FactorizationStore | None":
        """The store configured by ``REPRO_STORE_*``, or ``None``."""
        root = store_dir()
        return None if root is None else cls(root)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _spill_path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.spill")

    def _lock_path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.lock")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def shared_bytes(self) -> int:
        """Bytes this process holds in store shm blocks."""
        with self._lock:
            return sum(shared_nbytes(refs) for refs, _ in self._held.values())

    def _account_locked(self) -> None:
        _SHARED_BYTES.set(sum(shared_nbytes(refs) for refs, _ in self._held.values()))

    def residency(self) -> dict[str, int]:
        """``{tier: bytes}`` across the store's tiers (watchdog feed).

        ``shared`` is this process's held shm bytes; ``disk`` totals the
        warm-start spill files currently under :attr:`root` (a readdir
        per sample — the watchdog's cadence, not a hot path).
        """
        disk = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            names = []
        for name in names:
            if name.endswith(".spill"):
                try:
                    disk += os.stat(os.path.join(self.root, name)).st_size
                except OSError:  # racing a concurrent eviction/cleanup
                    pass
        return {"shared": self.shared_bytes(), "disk": disk}

    # ------------------------------------------------------------------
    # lookup / build
    # ------------------------------------------------------------------
    def load(self, key):
        """``(fact, tier)`` from the shared or disk tier, else ``None``."""
        digest = key_digest(key)
        if self.shared:
            with trace.span("store.attach"):
                fact, refs, reason = attach_entry(self.root, digest, key)
            if fact is not None:
                with self._lock:
                    held = self._held.setdefault(digest, [refs, 0])
                    held[1] += 1
                    self._account_locked()
                _HITS.inc(tier="shared")
                return fact, "shared"
            if reason is not None:
                _INVALID.inc(reason=reason)
        if self.spill_enabled:
            with trace.span("store.load"):
                fact, reason = load_spill(self._spill_path(digest), key)
            if fact is not None:
                _HITS.inc(tier="disk")
                return fact, "disk"
            if reason is not None:
                _INVALID.inc(reason=reason)
        return None

    def fetch_or_build(self, key, builder):
        """``(fact, tier)`` — tier ``None`` when ``builder`` actually ran.

        Exactly one *process* builds a given entry at a time: the
        lockfile winner factors and publishes; everyone else polls the
        store and only falls back to a local build once the owner dies
        or the timeout passes.
        """
        deadline = time.monotonic() + self.lock_timeout
        while True:
            got = self.load(key)
            if got is not None:
                return got
            digest = key_digest(key)
            if self._try_lock(digest):
                _MISSES.inc()
                try:
                    fact = builder()
                    self._publish_or_spill(digest, key, fact)
                finally:
                    remove_quiet(self._lock_path(digest))
                return fact, None
            if time.monotonic() > deadline:
                # a live peer is still building but we will not wait
                # longer: build privately (not published — the owner's
                # publication stands)
                _MISSES.inc()
                return builder(), None
            time.sleep(_POLL_S)

    def _publish_or_spill(self, digest: str, key, fact) -> None:
        """Make a fresh build visible to waiting peers (best-effort)."""
        try:
            if self.shared:
                with trace.span("store.publish"):
                    refs = publish_entry(
                        self.root, digest, key, _publishable(fact), self.min_shm_bytes
                    )
                with self._lock:
                    held = self._held.setdefault(digest, [refs, 0])
                    held[1] += 1
                    self._account_locked()
                _PUBLISHES.inc()
            elif self.spill_enabled:
                with trace.span("store.spill"):
                    spill_entry(self._spill_path(digest), key, _publishable(fact))
                _SPILLS.inc()
        except Exception:  # noqa: BLE001 - publishing is an optimization;
            # the build itself succeeded and must be served
            pass

    def _try_lock(self, digest: str) -> bool:
        path = self._lock_path(digest)
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                try:
                    with open(path, "rb") as fh:
                        pid = int(fh.read().strip() or b"0")
                except (OSError, ValueError):
                    return False  # racing creator mid-write; poll
                if pid and not _pid_alive(pid):
                    remove_quiet(path)  # dead owner: reap and retake
                    continue
                return False
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return True
        return False

    # ------------------------------------------------------------------
    # spill / release (cache eviction + shutdown hooks)
    # ------------------------------------------------------------------
    def spill(self, key, fact) -> bool:
        """Write the warm-start file for an evicted/shutdown entry."""
        if not self.spill_enabled:
            return False
        digest = key_digest(key)
        try:
            with trace.span("store.spill"):
                spill_entry(self._spill_path(digest), key, _publishable(fact))
        except Exception:  # noqa: BLE001 - spill failure must not break eviction
            return False
        _SPILLS.inc()
        return True

    def release(self, key) -> None:
        """Drop this process's hold on ``key``'s shared entry (if any)."""
        digest = key_digest(key)
        with self._lock:
            held = self._held.get(digest)
            if held is None:
                return
            held[1] -= 1
            last = held[1] <= 0
            if last:
                del self._held[digest]
            refs = held[0]
            self._account_locked()
        if last:
            release_entry(self.root, digest, refs)

    def holds_shared(self, key) -> bool:
        """Whether this process currently holds ``key``'s shm entry."""
        with self._lock:
            return key_digest(key) in self._held

    def shared_published(self, key) -> bool:
        """Whether a shared sidecar for ``key`` exists on disk."""
        return os.path.exists(sidecar_path(self.root, key_digest(key)))

    def close(self) -> None:
        """Release every held shared entry (service shutdown)."""
        with self._lock:
            held, self._held = self._held, {}
            self._account_locked()
        for digest, (refs, _holds) in held.items():
            release_entry(self.root, digest, refs)
