"""Tier 2 of the resident store: cross-process shared-memory entries.

A published cache entry is the existing zero-copy shm codec applied at
rest: ``encode_payload(fact, shared=True)`` carves every large array
into a named ``/dev/shm`` block, and the leftover pickle (the encoded
tree, full of :class:`~repro.vmpi.process_backend.ShmRef` placeholders)
lands in a sidecar file under the store root, wrapped in the same
self-verifying envelope as a disk spill. Another front-end process
attaches by unpickling the sidecar and running ``decode_payload`` —
every block maps zero-copy, so N servers share one resident
factorization instead of holding N copies.

Block lifetime is refcounted through per-process marker files
(``<digest>.ref.<pid>``) next to the sidecar: publish and attach each
write their marker *before* touching blocks, release removes its own
marker and — when no marker belongs to a live process — unlinks the
blocks through the codec's ``_release_refs`` and removes the sidecar.
``/dev/shm`` is left exactly as found once the last holder releases;
a crashed holder's marker is reaped by the next releaser's liveness
scan.
"""

from __future__ import annotations

import os
import pickle

from repro.store.disk import (
    check_envelope,
    envelope,
    read_envelope,
    remove_quiet,
    write_atomic,
)
from repro.vmpi.process_backend import (
    _release_refs,
    collect_refs,
    decode_payload,
    encode_payload,
    ref_nbytes,
)

_PICKLE = pickle.HIGHEST_PROTOCOL


def sidecar_path(root: str, digest: str) -> str:
    return os.path.join(root, f"{digest}.shared")


def _ref_path(root: str, digest: str) -> str:
    return os.path.join(root, f"{digest}.ref.{os.getpid()}")


def _ref_pids(root: str, digest: str) -> list[tuple[str, int]]:
    """(path, pid) of every refcount marker for ``digest``."""
    prefix = f"{digest}.ref."
    out = []
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return out
    for name in names:
        if name.startswith(prefix):
            try:
                out.append((os.path.join(root, name), int(name[len(prefix):])))
            except ValueError:
                continue
    return out


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def shared_nbytes(refs: list) -> int:
    """Bytes held in shm blocks by one published/attached entry."""
    return sum(ref_nbytes(r) for r in refs)


def publish_entry(root: str, digest: str, key, fact, min_bytes: int) -> list:
    """Carve ``fact`` into shared blocks + sidecar; returns the ref list.

    The refcount marker is written before the sidecar becomes visible,
    so no attacher can ever observe a sidecar with zero markers.
    """
    created: list = []
    try:
        encoded = encode_payload(fact, min_bytes, created, shared=True)
        payload = pickle.dumps(encoded, protocol=_PICKLE)
    except Exception:
        _release_refs(created)
        raise
    try:
        with open(_ref_path(root, digest), "wb") as fh:
            fh.write(b"1")
        write_atomic(
            sidecar_path(root, digest),
            pickle.dumps(envelope(key, payload), protocol=_PICKLE),
        )
    except Exception:
        _release_refs(created)
        remove_quiet(_ref_path(root, digest))
        raise
    return list(created)


def attach_entry(root: str, digest: str, key):
    """``(fact, refs, None)`` mapped zero-copy, or ``(None, None, reason)``.

    A sidecar whose blocks are gone (every holder crashed after the
    last clean release) is stale: it is cleaned up and reported as
    ``"stale"`` so the caller falls through to the disk tier.
    """
    path = sidecar_path(root, digest)
    env = read_envelope(path)
    if env is None:
        return None, None, None
    reason = "malformed" if env == "malformed" else check_envelope(env, key)
    if reason is not None:
        remove_quiet(path)
        return None, None, reason
    encoded = pickle.loads(env["payload"])
    refs = collect_refs(encoded)
    # visible to concurrent releasers before we start mapping blocks
    with open(_ref_path(root, digest), "wb") as fh:
        fh.write(b"1")
    try:
        fact = decode_payload(encoded)
    except FileNotFoundError:
        release_entry(root, digest, refs)
        return None, None, "stale"
    return fact, refs, None


def release_entry(root: str, digest: str, refs: list) -> None:
    """Drop this process's hold; the last live holder unlinks the blocks."""
    remove_quiet(_ref_path(root, digest))
    live = False
    for path, pid in _ref_pids(root, digest):
        if _pid_alive(pid):
            live = True
        else:
            remove_quiet(path)  # reap a crashed holder's marker
    if not live:
        _release_refs(refs)
        remove_quiet(sidecar_path(root, digest))
