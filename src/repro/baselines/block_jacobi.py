"""Block-Jacobi preconditioner baseline.

The cheapest structure-exploiting preconditioner for a kernel matrix:
invert the diagonal blocks of the leaf-level partition and ignore all
coupling. It costs O(N r^2) to build — far less than the RS-S
factorization — but, unlike RS-S, its preconditioned iteration counts
*grow* with N because the neglected off-diagonal coupling carries the
long-range physics. The ablation bench contrasts the two, quantifying
what the paper buys by compressing the far field instead of dropping
it.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelMatrix
from repro.linalg.lu import PartialLU
from repro.tree.quadtree import QuadTree


class BlockJacobiPreconditioner:
    """``M^{-1} = blockdiag(A[B_i, B_i])^{-1}`` over leaf boxes."""

    def __init__(self, kernel: KernelMatrix, *, leaf_size: int = 64, tree: QuadTree | None = None):
        self.kernel = kernel
        self.tree = tree or QuadTree.for_leaf_size(kernel.points, leaf_size)
        if self.tree.N != kernel.n:
            raise ValueError("tree and kernel must share the point set")
        self._blocks: list[tuple[np.ndarray, PartialLU]] = []
        for box in self.tree.nonempty_leaves():
            idx = self.tree.leaf_points(*box)
            self._blocks.append((idx, PartialLU(kernel.block(idx, idx))))

    @property
    def n(self) -> int:
        return self.kernel.n

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1} b`` (vector or multi-column)."""
        b = np.asarray(b)
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        x = np.zeros_like(b, dtype=np.result_type(self.kernel.dtype, b.dtype))
        for idx, lu in self._blocks:
            x[idx] = lu.solve_left(b[idx])
        return x

    __call__ = solve

    def memory_bytes(self) -> int:
        return sum(lu._lu.nbytes for _idx, lu in self._blocks)
