"""Baseline solvers/preconditioners the direct solver is compared against."""

from repro.baselines.block_jacobi import BlockJacobiPreconditioner

__all__ = ["BlockJacobiPreconditioner"]
