"""Hierarchical domain decomposition (quadtrees) for planar point sets."""

from repro.tree.quadtree import QuadTree
from repro.tree.adaptive import AdaptiveQuadTree, AdaptiveNode

__all__ = ["QuadTree", "AdaptiveQuadTree", "AdaptiveNode"]
