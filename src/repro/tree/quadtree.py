"""Perfect quadtree over a square domain (Sec. II-A of the paper).

The tree is *implicit*: level ``ell`` is a ``2^ell x 2^ell`` grid of
equal boxes, the root is level 0 and leaves live at level ``L``
(the paper numbers levels from 1; our level ``ell`` is their
``ell + 1``). Boxes are addressed by integer grid coordinates
``(ix, iy)`` within a level; all structural queries (children, parent,
neighbors ``N(B)``, distance-2 neighbors ``M(B)``) are O(1) index
arithmetic, so nothing tree-shaped is ever stored except the
point-to-leaf assignment.

Conventions
-----------
* ``N(B)`` — boxes at the same level with Chebyshev grid distance 1.
* ``M(B)`` — Chebyshev grid distance exactly 2 (Definition 2).
* far field ``F(B)`` — distance >= 2 (so ``M(B)`` is the inner ring of
  the far field).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.geometry.domain import Square
from repro.geometry.morton import morton_encode


Coord = tuple[int, int]


class QuadTree:
    """Perfect quadtree with point-to-leaf assignment.

    Parameters
    ----------
    points:
        ``(N, 2)`` array of point coordinates inside ``domain``.
    nlevels:
        Leaf level ``L`` (so there are ``4**L`` leaves). Must be >= 2
        for the factorization to have a nonempty far field anywhere.
    domain:
        The root square. When omitted, the unit square is used if it
        contains all points (the paper's volume discretizations);
        otherwise the smallest bounding square is taken, so curve
        geometries (e.g. :mod:`repro.bie`) that do not fill the unit
        square get a tree over their own extent.
    """

    def __init__(self, points: np.ndarray, nlevels: int, *, domain: Square | None = None):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must be (N, 2), got {points.shape}")
        if nlevels < 0:
            raise ValueError(f"nlevels must be >= 0, got {nlevels}")
        if domain is None:
            unit = Square()
            domain = (
                unit
                if points.size == 0 or bool(np.all(unit.contains(points, tol=1e-12)))
                else Square.bounding(points)
            )
        self.domain = domain
        if not bool(np.all(self.domain.contains(points, tol=1e-12 * self.domain.size))):
            raise ValueError("points must lie inside the tree domain")
        self.points = points
        self.nlevels = int(nlevels)
        self.N = points.shape[0]

        nside = self.nside(self.nlevels)
        h = self.domain.size / nside
        ix = np.clip(((points[:, 0] - self.domain.x0) / h).astype(np.int64), 0, nside - 1)
        iy = np.clip(((points[:, 1] - self.domain.y0) / h).astype(np.int64), 0, nside - 1)
        self._leaf_coord = np.column_stack([ix, iy])
        codes = morton_encode(ix, iy)
        order = np.argsort(codes, kind="stable")
        self._point_order = order
        # bucket point indices per leaf, keyed by (ix, iy)
        self._leaf_points: dict[Coord, np.ndarray] = {}
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        for chunk in np.split(order, boundaries):
            if chunk.size:
                c = (int(ix[chunk[0]]), int(iy[chunk[0]]))
                self._leaf_points[c] = chunk

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @classmethod
    def for_leaf_size(
        cls, points: np.ndarray, leaf_size: int, *, domain: Square | None = None, min_levels: int = 2
    ) -> "QuadTree":
        """Choose the leaf level so leaves hold about ``leaf_size`` points."""
        if leaf_size <= 0:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        n = np.atleast_2d(points).shape[0]
        nlevels = max(min_levels, int(np.ceil(np.log(max(n, 1) / leaf_size) / np.log(4.0))))
        return cls(points, nlevels, domain=domain)

    @staticmethod
    def nside(level: int) -> int:
        """Number of boxes per side at ``level``."""
        return 1 << level

    def nboxes(self, level: int) -> int:
        return self.nside(level) ** 2

    def box_side(self, level: int) -> float:
        """Geometric side length of boxes at ``level``."""
        return self.domain.size / self.nside(level)

    def box_center(self, level: int, ix: int, iy: int) -> np.ndarray:
        side = self.box_side(level)
        return np.array(
            [self.domain.x0 + (ix + 0.5) * side, self.domain.y0 + (iy + 0.5) * side]
        )

    def boxes(self, level: int) -> list[Coord]:
        """All boxes at ``level`` in Morton order."""
        return _boxes_in_morton_order(level)

    def parent(self, level: int, ix: int, iy: int) -> Coord:
        if level == 0:
            raise ValueError("root has no parent")
        return (ix >> 1, iy >> 1)

    def children(self, level: int, ix: int, iy: int) -> list[Coord]:
        """Children at ``level + 1`` in Morton order (SW, NW, SE, NE)."""
        if level >= self.nlevels:
            raise ValueError(f"boxes at level {level} are leaves")
        bx, by = ix << 1, iy << 1
        # Morton order with x in even bit positions: (0,0), (0,1), (1,0), (1,1)
        return [(bx, by), (bx, by + 1), (bx + 1, by), (bx + 1, by + 1)]

    def neighbors(self, level: int, ix: int, iy: int) -> list[Coord]:
        """``N(B)``: Chebyshev-distance-1 boxes at the same level."""
        return _ring(level, ix, iy, 1, 1)

    def dist2_neighbors(self, level: int, ix: int, iy: int) -> list[Coord]:
        """``M(B)``: Chebyshev-distance-exactly-2 boxes (Definition 2)."""
        return _ring(level, ix, iy, 2, 2)

    def near_and_self(self, level: int, ix: int, iy: int) -> list[Coord]:
        """``{B} ∪ N(B)`` (Chebyshev distance <= 1)."""
        return _disk(level, ix, iy, 1)

    @staticmethod
    def chebyshev_distance(a: Coord, b: Coord) -> int:
        return max(abs(a[0] - b[0]), abs(a[1] - b[1]))

    # ------------------------------------------------------------------
    # points
    # ------------------------------------------------------------------
    def leaf_of_point(self, i: int) -> Coord:
        return (int(self._leaf_coord[i, 0]), int(self._leaf_coord[i, 1]))

    def leaf_points(self, ix: int, iy: int) -> np.ndarray:
        """Indices of points inside leaf ``(ix, iy)`` (Morton-sorted)."""
        return self._leaf_points.get((ix, iy), np.empty(0, dtype=np.int64))

    def nonempty_leaves(self) -> list[Coord]:
        """Leaves that own at least one point, Morton order."""
        return sorted(self._leaf_points, key=lambda c: morton_encode(c[0], c[1]))

    def morton_point_order(self) -> np.ndarray:
        """Permutation of point indices along the leaf Z-curve."""
        return self._point_order

    def max_leaf_occupancy(self) -> int:
        if not self._leaf_points:
            return 0
        return max(v.size for v in self._leaf_points.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"QuadTree(N={self.N}, nlevels={self.nlevels}, "
            f"leaves={self.nboxes(self.nlevels)}, domain={self.domain})"
        )


@lru_cache(maxsize=64)
def _boxes_in_morton_order(level: int) -> list[Coord]:
    n = 1 << level
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    ix = ii.ravel()
    iy = jj.ravel()
    order = np.argsort(morton_encode(ix, iy), kind="stable")
    return [(int(ix[k]), int(iy[k])) for k in order]


def _ring(level: int, ix: int, iy: int, dmin: int, dmax: int) -> list[Coord]:
    """Boxes with Chebyshev distance in ``[dmin, dmax]``, row-major order."""
    n = 1 << level
    out: list[Coord] = []
    for dx in range(-dmax, dmax + 1):
        jx = ix + dx
        if jx < 0 or jx >= n:
            continue
        for dy in range(-dmax, dmax + 1):
            jy = iy + dy
            if jy < 0 or jy >= n:
                continue
            d = max(abs(dx), abs(dy))
            if dmin <= d <= dmax:
                out.append((jx, jy))
    return out


def _disk(level: int, ix: int, iy: int, dmax: int) -> list[Coord]:
    return _ring(level, ix, iy, 0, dmax)
