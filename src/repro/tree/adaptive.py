"""Adaptive (pointer-based) quadtree for non-uniform point clouds.

The paper's algorithm is presented for uniformly distributed points and
a perfect quadtree; extensions to non-uniform distributions are noted
as "straightforward but quite tedious" (Sec. II-A, citing [1], [44]).
This module provides that substrate: an adaptive quadtree that refines
only where points are, with same-level neighbor queries computed by the
standard parent-neighbor traversal. The factorization in
:mod:`repro.core` consumes the perfect tree; the adaptive tree is
exercised by tests and by the non-uniform example as the documented
extension point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.domain import Square


@dataclass
class AdaptiveNode:
    """A node of the adaptive quadtree."""

    square: Square
    level: int
    index: np.ndarray  # point indices owned by this subtree
    parent: "AdaptiveNode | None" = None
    children: list["AdaptiveNode"] = field(default_factory=list)
    id: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def center(self) -> np.ndarray:
        return self.square.center

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AdaptiveNode(level={self.level}, n={self.index.size}, leaf={self.is_leaf})"


class AdaptiveQuadTree:
    """Adaptive quadtree refined until leaves hold <= ``leaf_size`` points.

    Empty children are pruned. Neighbor queries return same-level nodes
    that are geometrically adjacent (share a boundary point), matching
    the perfect-tree definition of ``N(B)`` when the cloud is uniform.
    """

    def __init__(
        self,
        points: np.ndarray,
        *,
        leaf_size: int = 64,
        max_levels: int = 20,
        domain: Square | None = None,
    ):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != 2:
            raise ValueError(f"points must be (N, 2), got {points.shape}")
        if leaf_size <= 0:
            raise ValueError("leaf_size must be positive")
        self.points = points
        self.leaf_size = leaf_size
        self.domain = domain or Square.bounding(points)
        root_index = np.arange(points.shape[0], dtype=np.int64)
        self.root = AdaptiveNode(self.domain, 0, root_index)
        self.levels: list[list[AdaptiveNode]] = [[self.root]]
        self._build(max_levels)
        self._assign_ids()

    def _build(self, max_levels: int) -> None:
        frontier = [self.root]
        level = 0
        while frontier and level < max_levels:
            next_frontier: list[AdaptiveNode] = []
            for node in frontier:
                if node.index.size <= self.leaf_size:
                    continue
                pts = self.points[node.index]
                cx, cy = node.square.center
                quadrant = (pts[:, 0] >= cx).astype(int) * 2 + (pts[:, 1] >= cy).astype(int)
                squares = node.square.subdivide()  # SW, SE, NW, NE
                # subdivide() order: SW, SE, NW, NE -> quadrant ids 0, 2, 1, 3
                quad_of_square = [0, 2, 1, 3]
                for sq, q in zip(squares, quad_of_square):
                    sel = node.index[quadrant == q]
                    if sel.size == 0:
                        continue
                    child = AdaptiveNode(sq, node.level + 1, sel, parent=node)
                    node.children.append(child)
                    next_frontier.append(child)
            if next_frontier:
                self.levels.append(next_frontier)
            frontier = next_frontier
            level += 1
        if frontier and level >= max_levels:  # pragma: no cover - pathological input
            raise RuntimeError("adaptive tree exceeded max_levels; duplicate points?")

    def _assign_ids(self) -> None:
        nid = 0
        for nodes in self.levels:
            for node in nodes:
                node.id = nid
                nid += 1
        self.nnodes = nid

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    def leaves(self) -> list[AdaptiveNode]:
        return [n for nodes in self.levels for n in nodes if n.is_leaf]

    def neighbors(self, node: AdaptiveNode) -> list[AdaptiveNode]:
        """Same-level nodes adjacent to ``node`` (excluding itself).

        Found by walking the parent's neighbors' children — the classic
        FMM adjacency construction for adaptive trees.
        """
        if node.parent is None:
            return []
        candidates: list[AdaptiveNode] = []
        for up in self.neighbors(node.parent) + [node.parent]:
            candidates.extend(up.children)
        side = node.square.size
        out = []
        for cand in candidates:
            if cand is node:
                continue
            delta = np.abs(cand.center - node.center)
            if max(delta) <= side * (1 + 1e-12):
                out.append(cand)
        return out

    def dist2_neighbors(self, node: AdaptiveNode) -> list[AdaptiveNode]:
        """Same-level nodes at Chebyshev distance exactly 2 box-sides."""
        if node.parent is None:
            return []
        candidates: list[AdaptiveNode] = []
        seen = {node.id}
        for up in self.neighbors(node.parent) + [node.parent]:
            for cand in up.children:
                if cand.id not in seen:
                    seen.add(cand.id)
                    candidates.append(cand)
        # also children of parent's dist-2 neighbors may be dist-2 from node
        for up in self.dist2_neighbors(node.parent):
            for cand in up.children:
                if cand.id not in seen:
                    seen.add(cand.id)
                    candidates.append(cand)
        side = node.square.size
        out = []
        for cand in candidates:
            delta = np.abs(cand.center - node.center)
            d = max(delta) / side
            if 1.5 < d <= 2.5 + 1e-12:
                out.append(cand)
        return out

    def check_partition(self) -> bool:
        """Every point belongs to exactly one leaf."""
        count = np.zeros(self.points.shape[0], dtype=int)
        for leaf in self.leaves():
            count[leaf.index] += 1
        return bool(np.all(count == 1))
