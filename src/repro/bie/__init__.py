"""Boundary integral equations on smooth closed curves.

Curve geometries, periodic-trapezoid Nystrom quadrature with
Kapur--Rokhlin corrections, layer-potential kernel matrices that plug
into the RS-S factorization / treecode / GMRES machinery, and
high-level second-kind solvers (interior Laplace Dirichlet, exterior
sound-soft Helmholtz via the combined-field equation).
"""

from repro.bie.curves import (
    BoundaryDiscretization,
    Circle,
    Curve,
    Ellipse,
    Kite,
    StarCurve,
    trapezoid_nodes,
)
from repro.bie.layers import (
    BoundaryKernelMatrix,
    HelmholtzCFIE,
    HelmholtzDLP,
    HelmholtzSLP,
    LaplaceDLP,
    LaplaceSLP,
)
from repro.bie.quadrature import kapur_rokhlin_gamma, kr_weight_factors
from repro.bie.solves import (
    InteriorDirichletProblem,
    SoundSoftScattering,
    harmonic_exponential,
    harmonic_polynomial,
    point_source_field,
)

__all__ = [
    "BoundaryDiscretization",
    "Curve",
    "Circle",
    "Ellipse",
    "StarCurve",
    "Kite",
    "trapezoid_nodes",
    "BoundaryKernelMatrix",
    "LaplaceSLP",
    "LaplaceDLP",
    "HelmholtzSLP",
    "HelmholtzDLP",
    "HelmholtzCFIE",
    "kapur_rokhlin_gamma",
    "kr_weight_factors",
    "InteriorDirichletProblem",
    "SoundSoftScattering",
    "harmonic_exponential",
    "harmonic_polynomial",
    "point_source_field",
]
