"""Periodic trapezoid Nystrom quadrature and Kapur--Rokhlin corrections.

For a smooth periodic integrand the equispaced trapezoid rule converges
spectrally, so Nystrom matrices of *smooth* layer kernels (e.g. the
Laplace double layer on an analytic curve) need no correction beyond
the analytic diagonal limit.

Log-singular kernels (single layers; the Helmholtz layers) are handled
by the Kapur--Rokhlin locally corrected trapezoid rule (Kapur &
Rokhlin, SIAM J. Numer. Anal. 34, 1997): for an integrand of the form
``phi(s) ln|s - s_i| + psi(s)`` the punctured trapezoid sum (skipping
``s_i``) plus corrections at the ``k`` nearest nodes on each side,

    h * sum_{j != i} f(s_j)  +  h * sum_{l=1..k} gamma_l (f(s_{i-l}) + f(s_{i+l})),

is accurate to order ``h^k`` (k = 2, 6, 10). In matrix terms the
quadrature weight of node ``j`` in row ``i`` is scaled by
``1 + gamma_{d(i,j)}`` when the periodic index distance ``d(i, j)`` is
``<= k``, and the ``j = i`` entry is dropped.
"""

from __future__ import annotations

import numpy as np

#: Kapur--Rokhlin correction weights ``gamma_1..gamma_k`` for the
#: symmetric log-singularity rules of order 2, 6 and 10 (Kapur--Rokhlin
#: 1997; as tabulated in Hao, Barnett, Martinsson & Young 2014).
KAPUR_ROKHLIN_GAMMA: dict[int, np.ndarray] = {
    2: np.array([1.825748064736159, -1.325748064736159]),
    6: np.array(
        [
            4.967362978287758,
            -16.20501504859126,
            25.85153761832639,
            -22.22599466791883,
            9.930104998037539,
            -1.817995878141594,
        ]
    ),
    10: np.array(
        [
            7.832432020568779,
            -4.565161670374749e1,
            1.452168846354677e2,
            -2.901348302886379e2,
            3.870862162579900e2,
            -3.523821383570681e2,
            2.172421547519342e2,
            -8.707796087382991e1,
            2.053584266072635e1,
            -2.166984103403823,
        ]
    ),
}


def kapur_rokhlin_gamma(order: int) -> np.ndarray:
    """Correction weights for the given rule order (2, 6 or 10)."""
    try:
        return KAPUR_ROKHLIN_GAMMA[order]
    except KeyError:
        raise ValueError(
            f"Kapur-Rokhlin order must be one of {sorted(KAPUR_ROKHLIN_GAMMA)}, got {order}"
        ) from None


def circular_index_distance(rows: np.ndarray, cols: np.ndarray, n: int) -> np.ndarray:
    """Periodic index distance matrix ``d(i, j)`` on ``Z_n``."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    d = np.abs(rows[:, None] - cols[None, :]) % n
    return np.minimum(d, n - d)


def kr_weight_factors(rows: np.ndarray, cols: np.ndarray, n: int, order: int) -> np.ndarray:
    """Multiplicative quadrature-weight factors of the Kapur--Rokhlin rule.

    Returns the matrix ``F`` with ``F[a, b] = 1 + gamma_d`` when the
    periodic distance ``d`` between global node indices ``rows[a]`` and
    ``cols[b]`` is ``1 <= d <= order``, ``0`` on coincident indices
    (the rule punctures the singular node), and ``1`` elsewhere.
    """
    gamma = kapur_rokhlin_gamma(order)
    if n <= 2 * order:
        raise ValueError(
            f"Kapur-Rokhlin order {order} needs more than {2 * order} nodes, got {n}"
        )
    d = circular_index_distance(rows, cols, n)
    factors = np.ones(d.shape)
    near = (d >= 1) & (d <= order)
    factors[near] += gamma[d[near] - 1]
    factors[d == 0] = 0.0
    return factors


def kr_quadrature_row(n: int, i: int, order: int) -> np.ndarray:
    """Full row of corrected trapezoid weights (in units of ``h = 2 pi / n``).

    Convenience for direct quadrature tests: ``w[j] = h * F[i, j]``.
    """
    factors = kr_weight_factors(np.array([i]), np.arange(n), n, order)[0]
    return factors * (2.0 * np.pi / n)
