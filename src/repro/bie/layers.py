"""Layer-potential Nystrom matrices over closed-curve discretizations.

Single/double-layer operators for Laplace and Helmholtz (plus the
combined-field operator ``D - i eta S``) as
:class:`~repro.kernels.base.KernelMatrix` subclasses, so they plug
unchanged into ``srs_factor``, the treecode matvec, and GMRES.

The ``KernelMatrix`` contract is bent in two places, both documented in
the base-class docstring below:

* ``greens(x, y)`` returns the *monopole* Green's function of the
  underlying PDE rather than the (direction-dependent) layer kernel.
  The factorization and the treecode only call ``greens`` on artificial
  point pairs (proxy/check circles), where a monopole basis is exactly
  what is wanted: fields radiated by curve sources satisfy the PDE away
  from the curve, so monopoles on a separating circle span them.
* ``block`` / ``proxy_row_block`` are overridden to evaluate the true
  layer kernel (with the stored source normals) and, for log-singular
  kernels, the Kapur--Rokhlin weight corrections near the diagonal.

Locality caveat: the Kapur--Rokhlin corrections perturb entries within
``kr_order`` nodes of the diagonal *along the curve*. The proxy
representation assumes entries between well-separated boxes are pure
kernel evaluations, so a quadtree used with these matrices must have
leaf boxes wider than the corrected band; :meth:`check_tree_resolution`
verifies this (it holds for any reasonable discretization).
"""

from __future__ import annotations

import copy

import numpy as np
from scipy.special import hankel1

from repro.bie.curves import BoundaryDiscretization
from repro.bie.quadrature import kr_weight_factors
from repro.kernels.base import KernelMatrix
from repro.kernels.helmholtz import helmholtz_greens
from repro.kernels.laplace import laplace_greens
from repro.tree.quadtree import QuadTree


# ----------------------------------------------------------------------
# raw layer kernels (targets x, sources y with unit normals ny)
# ----------------------------------------------------------------------
def laplace_slp_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Laplace single layer ``-(1/2 pi) ln|x - y|``."""
    return laplace_greens(x, y)


def laplace_dlp_kernel(x: np.ndarray, y: np.ndarray, ny: np.ndarray) -> np.ndarray:
    """Laplace double layer ``(1/2 pi) (x - y) . n(y) / |x - y|^2``.

    Smooth on a smooth curve with diagonal limit ``-kappa(y) / (4 pi)``.
    """
    dx = x[:, 0][:, None] - y[None, :, 0]
    dy = x[:, 1][:, None] - y[None, :, 1]
    r2 = dx * dx + dy * dy
    with np.errstate(divide="ignore", invalid="ignore"):
        return (dx * ny[None, :, 0] + dy * ny[None, :, 1]) / (2.0 * np.pi * r2)


def helmholtz_slp_kernel(x: np.ndarray, y: np.ndarray, kappa: float) -> np.ndarray:
    """Helmholtz single layer ``(i/4) H0^(1)(kappa |x - y|)``."""
    return helmholtz_greens(x, y, kappa)


def helmholtz_dlp_kernel(
    x: np.ndarray, y: np.ndarray, ny: np.ndarray, kappa: float
) -> np.ndarray:
    """Helmholtz double layer ``(i kappa / 4) H1^(1)(kappa r) (x - y) . n(y) / r``."""
    dx = x[:, 0][:, None] - y[None, :, 0]
    dy = x[:, 1][:, None] - y[None, :, 1]
    r = np.sqrt(dx * dx + dy * dy)
    with np.errstate(divide="ignore", invalid="ignore"):
        return (
            0.25j
            * kappa
            * hankel1(1, kappa * r)
            * (dx * ny[None, :, 0] + dy * ny[None, :, 1])
            / r
        )


# ----------------------------------------------------------------------
# Nystrom kernel matrices
# ----------------------------------------------------------------------
class BoundaryKernelMatrix(KernelMatrix):
    """Nystrom matrix ``identity * I + K`` of a layer operator on a curve.

    Parameters
    ----------
    bd:
        The curve discretization (nodes, normals, arc-length weights).
    identity:
        Coefficient of the identity added on the diagonal — the
        second-kind jump term (e.g. ``-1/2`` for the interior Dirichlet
        double layer, ``+1/2`` for the exterior combined field).
    kr_order:
        Kapur--Rokhlin correction order (2, 6 or 10) for log-singular
        kernels, or ``None`` for smooth kernels whose diagonal is the
        analytic limit supplied by :meth:`kernel_diagonal_limit`.
    """

    def __init__(self, bd: BoundaryDiscretization, *, identity=0.0, kr_order: int | None = None):
        self.bd = bd
        self.points = bd.points
        self.identity = identity
        self.kr_order = kr_order
        # distributed support: a spawned (rank-local) instance covers a
        # subset of the curve nodes; ``gids`` maps local rows to global
        # parameter indices so the Kapur--Rokhlin band (defined by
        # periodic distance of *global* indices) stays correct, and
        # ``n_global`` is the full discretization size.
        self.gids = np.arange(bd.n, dtype=np.int64)
        self.n_global = bd.n
        # full-curve node spacing, captured before any spawn: a subset's
        # bd can underestimate it (its speed.max() misses excluded arcs)
        self.max_node_spacing = bd.max_spacing()
        if kr_order is not None:
            # validates the order and the node count up front
            kr_weight_factors(np.arange(1), np.arange(1), bd.n, kr_order)

    # -- subclass hooks -------------------------------------------------
    def layer_greens(self, x: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """True layer kernel from source nodes ``cols`` to targets ``x``."""
        raise NotImplementedError

    def kernel_diagonal_limit(self) -> np.ndarray:
        """Diagonal limit ``K(x_i, x_i)`` for smooth kernels (``kr_order=None``)."""
        raise NotImplementedError(
            f"{type(self).__name__} has a singular kernel; use a Kapur-Rokhlin order"
        )

    # -- KernelMatrix protocol ------------------------------------------
    @property
    def is_translation_invariant(self) -> bool:
        return False

    def col_weights(self, index: np.ndarray) -> np.ndarray:
        return self.bd.weights[np.asarray(index, dtype=np.int64)].astype(self.dtype)

    def diagonal(self) -> np.ndarray:
        d = np.full(self.n, self.identity, dtype=self.dtype)
        if self.kr_order is None:
            d += self.bd.weights * self.kernel_diagonal_limit()
        return d

    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size == 0 or cols.size == 0:
            return np.zeros((rows.size, cols.size), dtype=self.dtype)
        with np.errstate(divide="ignore", invalid="ignore"):
            g = self.layer_greens(self.points[rows], cols)
        blk = (g * self.bd.weights[cols][None, :]).astype(self.dtype, copy=False)
        if self.kr_order is not None:
            # the singular (coincident) entries are inf/nan here; the factor
            # matrix zeroes them and the diagonal assignment below fixes them
            with np.errstate(invalid="ignore"):
                blk *= kr_weight_factors(
                    self.gids[rows], self.gids[cols], self.n_global, self.kr_order
                )
        same = rows[:, None] == cols[None, :]
        if same.any():
            d = self.diagonal()
            ii, jj = np.nonzero(same)
            blk[ii, jj] = d[rows[ii]]
        return blk

    def proxy_row_block(self, proxy_points: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """True layer kernel from curve sources to off-curve proxy targets."""
        cols = np.asarray(cols, dtype=np.int64)
        if proxy_points.shape[0] == 0 or cols.size == 0:
            return np.zeros((proxy_points.shape[0], cols.size), dtype=self.dtype)
        g = self.layer_greens(proxy_points, cols)
        return (g * self.bd.weights[cols][None, :]).astype(self.dtype, copy=False)

    def proxy_col_block(self, rows: np.ndarray, proxy_points: np.ndarray) -> np.ndarray:
        """Monopole surrogate for incoming far fields (see module docstring)."""
        rows = np.asarray(rows, dtype=np.int64)
        if proxy_points.shape[0] == 0 or rows.size == 0:
            return np.zeros((rows.size, proxy_points.shape[0]), dtype=self.dtype)
        return self.greens(self.points[rows], proxy_points).astype(self.dtype, copy=False)

    # -- potentials ------------------------------------------------------
    def potential(self, targets: np.ndarray, density: np.ndarray) -> np.ndarray:
        """Evaluate the layer potential at off-curve targets (plain trapezoid).

        Spectrally accurate for targets away from the curve; do not use
        for near-boundary evaluation.
        """
        if self.n != self.n_global:
            raise RuntimeError(
                "potential() needs the full-curve kernel; this instance is a "
                f"rank-local spawn covering {self.n} of {self.n_global} nodes"
            )
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        g = self.layer_greens(targets, np.arange(self.n, dtype=np.int64))
        return g @ (self.bd.weights * np.asarray(density))

    # -- distributed support ---------------------------------------------
    def per_point_data(self, index: np.ndarray) -> dict[str, np.ndarray]:
        """Boundary data a remote rank needs to evaluate entries for ``index``."""
        idx = np.asarray(index, dtype=np.int64)
        return {
            "bd_t": self.bd.t[idx],
            "bd_normals": self.bd.normals[idx],
            "bd_speed": self.bd.speed[idx],
            "bd_weights": self.bd.weights[idx],
            "bd_curvature": self.bd.curvature[idx],
            "bd_gid": self.gids[idx],
        }

    def spawn(self, points: np.ndarray, data: dict[str, np.ndarray]) -> "BoundaryKernelMatrix":
        """Rank-local instance over a subset of the curve nodes.

        Scalar parameters (identity, KR order, ``kappa``/``eta``, the
        analytic curve) are shared; the per-node arrays come from
        :meth:`per_point_data` shipped by the owning rank.
        """
        bd = BoundaryDiscretization(
            curve=self.bd.curve,
            t=np.asarray(data["bd_t"], dtype=float),
            points=np.atleast_2d(np.asarray(points, dtype=float)),
            normals=np.asarray(data["bd_normals"], dtype=float),
            speed=np.asarray(data["bd_speed"], dtype=float),
            weights=np.asarray(data["bd_weights"], dtype=float),
            curvature=np.asarray(data["bd_curvature"], dtype=float),
        )
        dup = copy.copy(self)  # n_global and scalar params carry over
        dup.bd = bd
        dup.points = bd.points
        dup.gids = np.asarray(data["bd_gid"], dtype=np.int64)
        return dup

    # -- safety ----------------------------------------------------------
    def check_tree_resolution(self, tree: QuadTree) -> None:
        """Raise when leaf boxes are narrower than the corrected band.

        Quadrature corrections must stay inside the near field at the
        leaf level: nodes within ``kr_order`` steps along the curve are
        within ``kr_order * max_spacing`` Euclidean distance, which
        keeps them in adjacent leaf boxes as long as that distance is
        below the leaf box side.
        """
        if self.kr_order is None:
            return
        # the full-curve spacing captured at construction — a rank-local
        # spawn's subset bd would misestimate it
        band = self.kr_order * self.max_node_spacing
        side = tree.box_side(tree.nlevels)
        if band >= side:
            raise ValueError(
                f"Kapur-Rokhlin band ({band:.3g}) reaches beyond a leaf box "
                f"({side:.3g}); refine the curve or use a shallower tree"
            )


class LaplaceSLP(BoundaryKernelMatrix):
    """Laplace single-layer operator (log-singular; Kapur--Rokhlin)."""

    def __init__(self, bd: BoundaryDiscretization, *, identity=0.0, kr_order: int = 6):
        super().__init__(bd, identity=identity, kr_order=kr_order)
        self.dtype = np.dtype(np.float64)

    def greens(self, x, y):
        return laplace_greens(x, y)

    def layer_greens(self, x, cols):
        return laplace_slp_kernel(x, self.points[cols])


class LaplaceDLP(BoundaryKernelMatrix):
    """Laplace double-layer operator (smooth kernel, analytic diagonal)."""

    def __init__(self, bd: BoundaryDiscretization, *, identity=0.0):
        super().__init__(bd, identity=identity, kr_order=None)
        self.dtype = np.dtype(np.float64)

    def greens(self, x, y):
        return laplace_greens(x, y)

    def layer_greens(self, x, cols):
        return laplace_dlp_kernel(x, self.points[cols], self.bd.normals[cols])

    def kernel_diagonal_limit(self):
        return -self.bd.curvature / (4.0 * np.pi)


class HelmholtzSLP(BoundaryKernelMatrix):
    """Helmholtz single-layer operator (log-singular; Kapur--Rokhlin)."""

    def __init__(self, bd: BoundaryDiscretization, kappa: float, *, identity=0.0, kr_order: int = 6):
        if kappa <= 0:
            raise ValueError(f"wave number must be positive, got {kappa}")
        super().__init__(bd, identity=identity, kr_order=kr_order)
        self.kappa = float(kappa)
        self.dtype = np.dtype(np.complex128)

    def greens(self, x, y):
        return helmholtz_greens(x, y, self.kappa)

    def layer_greens(self, x, cols):
        return helmholtz_slp_kernel(x, self.points[cols], self.kappa)


class HelmholtzDLP(BoundaryKernelMatrix):
    """Helmholtz double-layer operator (log-singular; Kapur--Rokhlin)."""

    def __init__(self, bd: BoundaryDiscretization, kappa: float, *, identity=0.0, kr_order: int = 6):
        if kappa <= 0:
            raise ValueError(f"wave number must be positive, got {kappa}")
        super().__init__(bd, identity=identity, kr_order=kr_order)
        self.kappa = float(kappa)
        self.dtype = np.dtype(np.complex128)

    def greens(self, x, y):
        return helmholtz_greens(x, y, self.kappa)

    def layer_greens(self, x, cols):
        return helmholtz_dlp_kernel(x, self.points[cols], self.bd.normals[cols], self.kappa)


class HelmholtzCFIE(BoundaryKernelMatrix):
    """Combined-field operator ``identity * I + D - i eta S`` (sound-soft CFIE).

    With ``identity = 1/2`` this is the exterior Dirichlet combined-field
    equation of Brakhage--Werner/Burton--Miller type; ``eta`` defaults to
    the wave number, the standard robust coupling choice.
    """

    def __init__(
        self,
        bd: BoundaryDiscretization,
        kappa: float,
        *,
        eta: float | None = None,
        identity=0.5,
        kr_order: int = 6,
    ):
        if kappa <= 0:
            raise ValueError(f"wave number must be positive, got {kappa}")
        super().__init__(bd, identity=identity, kr_order=kr_order)
        self.kappa = float(kappa)
        self.eta = self.kappa if eta is None else float(eta)
        self.dtype = np.dtype(np.complex128)

    def greens(self, x, y):
        return helmholtz_greens(x, y, self.kappa)

    def layer_greens(self, x, cols):
        y = self.points[cols]
        return helmholtz_dlp_kernel(
            x, y, self.bd.normals[cols], self.kappa
        ) - 1j * self.eta * helmholtz_slp_kernel(x, y, self.kappa)

