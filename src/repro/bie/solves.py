"""High-level boundary-integral solvers with analytic validation.

Two drivers, mirroring the volume apps in :mod:`repro.apps`:

* :class:`InteriorDirichletProblem` — interior Laplace Dirichlet via the
  second-kind double-layer ansatz ``u = D tau``,
  ``(-1/2 I + D) tau = f``; validated against harmonic test solutions.
* :class:`SoundSoftScattering` — exterior Helmholtz Dirichlet (sound-soft
  obstacle) via the combined-field ansatz ``u_s = (D - i eta S) sigma``,
  ``(1/2 I + D - i eta S) sigma = g``; validated against the field of a
  point source placed inside the obstacle.

Both build a quadtree from the curve's bounding box and solve either
directly with the RS-S factorization or iteratively with (RS-S
preconditioned) GMRES.
"""

from __future__ import annotations

import numpy as np

from repro.api.problem import ProblemBase
from repro.bie.curves import Curve
from repro.bie.layers import HelmholtzCFIE, LaplaceDLP
from repro.core.factorization import SRSFactorization, srs_factor
from repro.core.options import SRSOptions
from repro.geometry.domain import Square
from repro.iterative.gmres import GMRESResult, gmres
from repro.kernels.base import dense_matrix
from repro.kernels.helmholtz import helmholtz_greens, plane_wave
from repro.matvec.dense import DenseMatVec
from repro.matvec.treecode import TreecodeMatVec
from repro.tree.quadtree import QuadTree


# ----------------------------------------------------------------------
# analytic reference solutions
# ----------------------------------------------------------------------
def harmonic_polynomial(points: np.ndarray, degree: int = 3) -> np.ndarray:
    """``Re((x + i y)^degree)`` — a harmonic polynomial."""
    pts = np.atleast_2d(points)
    z = pts[:, 0] + 1j * pts[:, 1]
    return (z**degree).real


def harmonic_exponential(points: np.ndarray) -> np.ndarray:
    """``Re(exp(x + i y)) = e^x cos y`` — an entire harmonic function."""
    pts = np.atleast_2d(points)
    return np.exp(pts[:, 0]) * np.cos(pts[:, 1])


def point_source_field(targets: np.ndarray, source, kappa: float) -> np.ndarray:
    """Radiating Helmholtz point source ``(i/4) H0^(1)(kappa |x - s|)``."""
    src = np.asarray(source, dtype=float).reshape(1, 2)
    return helmholtz_greens(np.atleast_2d(targets), src, kappa)[:, 0]


# ----------------------------------------------------------------------
class _BoundaryProblem(ProblemBase):
    """Shared plumbing: discretization, tree, factorization, matvecs.

    Implements the :class:`repro.api.Problem` protocol: the
    factorization tree is the curve's bounding-box quadtree and the
    distributed engines root their trees on the same bounding square.
    """

    def __init__(self, curve: Curve, n: int, *, leaf_size: int = 64):
        self.curve = curve
        self.n = int(n)
        self.bd = curve.discretize(self.n)
        self.leaf_size = int(leaf_size)
        self.kernel = self._build_kernel()
        self.tree = QuadTree.for_leaf_size(self.bd.points, self.leaf_size)
        self.kernel.check_tree_resolution(self.tree)  # fail at construction
        self.matvec = DenseMatVec(self.kernel)

    def _build_kernel(self):
        raise NotImplementedError

    def factor(self, opts: SRSOptions | None = None) -> SRSFactorization:
        """RS-S factorization of the boundary operator over the curve tree."""
        opts = opts or SRSOptions(tol=1e-10)
        return srs_factor(self.kernel, tree=self.tree, opts=opts)

    @property
    def parallel_domain(self) -> Square:
        return Square.bounding(self.bd.points)

    def dense(self) -> np.ndarray:
        """Full Nystrom matrix (small problems / reference only)."""
        return dense_matrix(self.kernel)

    def solve_dense(self, rhs: np.ndarray) -> np.ndarray:
        """Dense-LU reference solve (shim over ``method="dense_lu"``)."""
        from repro.api import SolveConfig, solve

        return solve(self, rhs, SolveConfig(method="dense_lu")).x

    def treecode(self, **kwargs) -> TreecodeMatVec:
        """O(N log N) matvec sharing the factorization's tree."""
        return TreecodeMatVec(self.kernel, tree=self.tree, **kwargs)

    # relres (dense-matvec residual norm) comes from ProblemBase

    def _shifted_targets(self, factor: float, k: int) -> np.ndarray:
        """Curve scaled about its centroid — inside (<1) or outside (>1)."""
        t = 2.0 * np.pi * (np.arange(k) + 0.37) / k
        c = self.curve.interior_point()
        return c + factor * (self.curve.point(t) - c)


class InteriorDirichletProblem(_BoundaryProblem):
    """Interior Laplace Dirichlet problem ``(-1/2 I + D) tau = f``.

    Parameters
    ----------
    curve:
        The (counterclockwise, smooth) boundary.
    n:
        Number of Nystrom nodes.
    """

    def _build_kernel(self) -> LaplaceDLP:
        return LaplaceDLP(self.bd, identity=-0.5)

    def boundary_data(self, u_exact) -> np.ndarray:
        """Dirichlet data ``f = u_exact`` sampled on the nodes."""
        return np.asarray(u_exact(self.bd.points), dtype=float)

    def default_rhs(self) -> np.ndarray:
        """Canonical validation rhs: the entire harmonic ``e^x cos y``."""
        return self.boundary_data(harmonic_exponential)

    def evaluate(self, tau: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """The solution ``u = D tau`` at interior targets."""
        return self.kernel.potential(targets, tau)

    def interior_targets(self, k: int = 24, shrink: float = 0.5) -> np.ndarray:
        """``k`` evaluation points well inside the curve."""
        if not (0 < shrink < 1):
            raise ValueError(f"shrink must be in (0, 1), got {shrink}")
        return self._shifted_targets(shrink, k)

    def solve_error(
        self,
        u_exact,
        fact: SRSFactorization | None = None,
        *,
        targets: np.ndarray | None = None,
    ) -> float:
        """Relative max-norm error of the RS-S direct solve vs ``u_exact``."""
        fact = fact or self.factor()
        tau = fact.solve(self.boundary_data(u_exact))
        tgt = self.interior_targets() if targets is None else targets
        u = self.evaluate(tau, tgt)
        ref = np.asarray(u_exact(tgt), dtype=float)
        return float(np.max(np.abs(u - ref)) / np.max(np.abs(ref)))


class SoundSoftScattering(_BoundaryProblem):
    """Exterior sound-soft Helmholtz scattering via the CFIE.

    Parameters
    ----------
    curve:
        The obstacle boundary.
    n:
        Number of Nystrom nodes (keep several points per wavelength:
        ``n >= ~10 kappa * radius``).
    kappa:
        Wave number.
    eta:
        CFIE coupling (defaults to ``kappa``).
    kr_order:
        Kapur--Rokhlin correction order for the log-singular kernels.
    """

    def __init__(
        self,
        curve: Curve,
        n: int,
        kappa: float,
        *,
        eta: float | None = None,
        kr_order: int = 6,
        leaf_size: int = 64,
    ):
        self.kappa = float(kappa)
        self.eta = eta
        self.kr_order = int(kr_order)
        super().__init__(curve, n, leaf_size=leaf_size)

    def _build_kernel(self) -> HelmholtzCFIE:
        return HelmholtzCFIE(
            self.bd, self.kappa, eta=self.eta, identity=0.5, kr_order=self.kr_order
        )

    # -- right-hand sides ----------------------------------------------
    def rhs_plane_wave(self, direction=(1.0, 0.0)) -> np.ndarray:
        """Sound-soft data ``g = -u_inc`` on the boundary."""
        return -plane_wave(self.bd.points, self.kappa, direction)

    def rhs_point_source(self, source=None) -> np.ndarray:
        """Boundary trace of an interior point source (validation setup).

        The solve must then reproduce the point-source field at every
        exterior target (the scattered field *is* the source field).
        """
        src = self.curve.interior_point() if source is None else source
        return point_source_field(self.bd.points, src, self.kappa)

    def default_rhs(self) -> np.ndarray:
        """Canonical rhs: sound-soft data of the unit-direction plane wave."""
        return self.rhs_plane_wave()

    # -- solves ---------------------------------------------------------
    def pgmres(
        self,
        fact: SRSFactorization,
        b: np.ndarray,
        *,
        tol: float = 1e-10,
        maxiter: int = 300,
        matvec=None,
    ) -> GMRESResult:
        """GMRES with the RS-S factorization as right preconditioner.

        Thin shim over ``repro.solve(self, b, method="pgmres")`` reusing
        ``fact``; ``matvec`` overrides the forward operator (e.g. a
        treecode).
        """
        from repro.api import SolveConfig, solve

        cfg = SolveConfig(method="pgmres", tol=tol, restart=50, maxiter=maxiter)
        return solve(self, b, cfg, factorization=fact, operator=matvec).krylov

    def unpreconditioned_gmres(
        self, b: np.ndarray, *, tol: float = 1e-10, maxiter: int = 2000, matvec=None
    ) -> GMRESResult:
        return gmres(matvec or self.matvec, b, tol=tol, restart=50, maxiter=maxiter)

    # -- fields ----------------------------------------------------------
    def scattered_field(self, sigma: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """``u_s = (D - i eta S) sigma`` at exterior targets."""
        return self.kernel.potential(targets, sigma)

    def total_field(
        self, sigma: np.ndarray, targets: np.ndarray, direction=(1.0, 0.0)
    ) -> np.ndarray:
        return plane_wave(targets, self.kappa, direction) + self.scattered_field(
            sigma, targets
        )

    def exterior_targets(self, k: int = 24, expand: float = 1.8) -> np.ndarray:
        """``k`` evaluation points outside the obstacle."""
        if expand <= 1:
            raise ValueError(f"expand must be > 1, got {expand}")
        return self._shifted_targets(expand, k)

    def point_source_error(
        self, fact: SRSFactorization | None = None, *, source=None
    ) -> float:
        """Relative error of the direct CFIE solve vs an interior source."""
        fact = fact or self.factor()
        src = self.curve.interior_point() if source is None else source
        sigma = fact.solve(self.rhs_point_source(src))
        tgt = self.exterior_targets()
        u = self.scattered_field(sigma, tgt)
        ref = point_source_field(tgt, src, self.kappa)
        return float(np.max(np.abs(u - ref)) / np.max(np.abs(ref)))
