"""Parametrized smooth closed curves for boundary integral equations.

Every curve is a smooth injective map ``x : [0, 2 pi) -> R^2`` traversed
*counterclockwise*, given by analytic position/velocity/acceleration.
Derived quantities follow from the parametrization:

* speed ``|x'(t)|`` (the arc-length Jacobian of the trapezoid rule),
* outward unit normal ``n = (y', -x') / |x'|`` (right of the direction
  of travel, which points outward for a counterclockwise curve),
* signed curvature ``kappa = (x' y'' - y' x'') / |x'|^3`` (positive for
  a counterclockwise circle).

``Curve.discretize(n)`` produces the periodic-trapezoid Nystrom node
set used by :mod:`repro.bie.layers`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class Curve(ABC):
    """A smooth closed planar curve, parametrized over ``[0, 2 pi)``."""

    @abstractmethod
    def point(self, t: np.ndarray) -> np.ndarray:
        """Positions ``x(t)``, shape ``(len(t), 2)``."""

    @abstractmethod
    def velocity(self, t: np.ndarray) -> np.ndarray:
        """First derivative ``x'(t)``, shape ``(len(t), 2)``."""

    @abstractmethod
    def acceleration(self, t: np.ndarray) -> np.ndarray:
        """Second derivative ``x''(t)``, shape ``(len(t), 2)``."""

    # ------------------------------------------------------------------
    def speed(self, t: np.ndarray) -> np.ndarray:
        v = self.velocity(t)
        return np.hypot(v[:, 0], v[:, 1])

    def normal(self, t: np.ndarray) -> np.ndarray:
        """Outward unit normal (counterclockwise parametrization)."""
        v = self.velocity(t)
        s = np.hypot(v[:, 0], v[:, 1])
        return np.column_stack([v[:, 1] / s, -v[:, 0] / s])

    def curvature(self, t: np.ndarray) -> np.ndarray:
        v = self.velocity(t)
        a = self.acceleration(t)
        s = np.hypot(v[:, 0], v[:, 1])
        return (v[:, 0] * a[:, 1] - v[:, 1] * a[:, 0]) / s**3

    def arc_length(self, n: int = 2048) -> float:
        """Perimeter by the (spectrally accurate) trapezoid rule."""
        t = trapezoid_nodes(n)
        return float(np.sum(self.speed(t)) * (2.0 * np.pi / n))

    def discretize(self, n: int) -> "BoundaryDiscretization":
        """Equispaced-parameter Nystrom discretization with ``n`` nodes."""
        if n < 8:
            raise ValueError(f"need at least 8 boundary nodes, got {n}")
        t = trapezoid_nodes(n)
        speed = self.speed(t)
        return BoundaryDiscretization(
            curve=self,
            t=t,
            points=self.point(t),
            normals=self.normal(t),
            speed=speed,
            weights=(2.0 * np.pi / n) * speed,
            curvature=self.curvature(t),
        )

    def interior_point(self) -> np.ndarray:
        """A point safely inside the curve (the centroid of the nodes)."""
        t = trapezoid_nodes(256)
        return self.point(t).mean(axis=0)


def trapezoid_nodes(n: int) -> np.ndarray:
    """The periodic trapezoid nodes ``t_j = 2 pi j / n``."""
    return 2.0 * np.pi * np.arange(n) / n


@dataclass
class BoundaryDiscretization:
    """Nystrom node data on a closed curve.

    ``weights`` are the arc-length trapezoid weights
    ``(2 pi / n) |x'(t_j)|``, so ``sum(weights)`` approximates the
    perimeter to spectral accuracy.
    """

    curve: Curve
    t: np.ndarray
    points: np.ndarray
    normals: np.ndarray
    speed: np.ndarray
    weights: np.ndarray
    curvature: np.ndarray

    @property
    def n(self) -> int:
        return self.t.size

    def max_spacing(self, n_global: int | None = None) -> float:
        """Largest arc-length distance between consecutive nodes.

        ``n_global`` overrides the node count — a rank-local subset of a
        distributed run holds fewer nodes than the uniform parameter
        grid it was cut from, and spacing is set by the full grid.
        """
        return float(self.speed.max()) * 2.0 * np.pi / (n_global or self.n)


# ----------------------------------------------------------------------
# concrete curves
# ----------------------------------------------------------------------
class Circle(Curve):
    """Circle of given radius and center."""

    def __init__(self, radius: float = 1.0, center=(0.0, 0.0)):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.radius = float(radius)
        self.center = np.asarray(center, dtype=float)

    def point(self, t):
        t = np.asarray(t, dtype=float)
        return self.center + self.radius * np.column_stack([np.cos(t), np.sin(t)])

    def velocity(self, t):
        t = np.asarray(t, dtype=float)
        return self.radius * np.column_stack([-np.sin(t), np.cos(t)])

    def acceleration(self, t):
        t = np.asarray(t, dtype=float)
        return self.radius * np.column_stack([-np.cos(t), -np.sin(t)])


class Ellipse(Curve):
    """Axis-aligned ellipse with semi-axes ``a`` (x) and ``b`` (y)."""

    def __init__(self, a: float = 1.0, b: float = 0.5, center=(0.0, 0.0)):
        if a <= 0 or b <= 0:
            raise ValueError(f"semi-axes must be positive, got a={a}, b={b}")
        self.a = float(a)
        self.b = float(b)
        self.center = np.asarray(center, dtype=float)

    def point(self, t):
        t = np.asarray(t, dtype=float)
        return self.center + np.column_stack([self.a * np.cos(t), self.b * np.sin(t)])

    def velocity(self, t):
        t = np.asarray(t, dtype=float)
        return np.column_stack([-self.a * np.sin(t), self.b * np.cos(t)])

    def acceleration(self, t):
        t = np.asarray(t, dtype=float)
        return np.column_stack([-self.a * np.cos(t), -self.b * np.sin(t)])


class StarCurve(Curve):
    """Smooth star ``r(t) = R (1 + amplitude cos(arms t))``.

    ``amplitude < 1`` keeps the radius positive; the curve stays smooth
    (trigonometric polynomial) for spectral trapezoid convergence.
    """

    def __init__(self, radius: float = 1.0, amplitude: float = 0.3, arms: int = 5, center=(0.0, 0.0)):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if not (0 <= amplitude < 1):
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if arms < 1:
            raise ValueError(f"arms must be >= 1, got {arms}")
        self.radius = float(radius)
        self.amplitude = float(amplitude)
        self.arms = int(arms)
        self.center = np.asarray(center, dtype=float)

    def _r(self, t):
        return self.radius * (1.0 + self.amplitude * np.cos(self.arms * t))

    def _dr(self, t):
        return -self.radius * self.amplitude * self.arms * np.sin(self.arms * t)

    def _ddr(self, t):
        return -self.radius * self.amplitude * self.arms**2 * np.cos(self.arms * t)

    def point(self, t):
        t = np.asarray(t, dtype=float)
        r = self._r(t)
        return self.center + np.column_stack([r * np.cos(t), r * np.sin(t)])

    def velocity(self, t):
        t = np.asarray(t, dtype=float)
        r, dr = self._r(t), self._dr(t)
        c, s = np.cos(t), np.sin(t)
        return np.column_stack([dr * c - r * s, dr * s + r * c])

    def acceleration(self, t):
        t = np.asarray(t, dtype=float)
        r, dr, ddr = self._r(t), self._dr(t), self._ddr(t)
        c, s = np.cos(t), np.sin(t)
        return np.column_stack(
            [ddr * c - 2.0 * dr * s - r * c, ddr * s + 2.0 * dr * c - r * s]
        )


class Kite(Curve):
    """The Colton--Kress kite ``(cos t + 0.65 cos 2t - 0.65, 1.5 sin t)``.

    A standard non-convex scattering obstacle; ``scale`` and ``center``
    place it in the plane.
    """

    def __init__(self, scale: float = 1.0, center=(0.0, 0.0)):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.center = np.asarray(center, dtype=float)

    def point(self, t):
        t = np.asarray(t, dtype=float)
        x = np.cos(t) + 0.65 * np.cos(2.0 * t) - 0.65
        y = 1.5 * np.sin(t)
        return self.center + self.scale * np.column_stack([x, y])

    def velocity(self, t):
        t = np.asarray(t, dtype=float)
        return self.scale * np.column_stack(
            [-np.sin(t) - 1.3 * np.sin(2.0 * t), 1.5 * np.cos(t)]
        )

    def acceleration(self, t):
        t = np.asarray(t, dtype=float)
        return self.scale * np.column_stack(
            [-np.cos(t) - 2.6 * np.cos(2.0 * t), -1.5 * np.sin(t)]
        )
