"""Column interpolative decomposition (ID), Definition 1 of the paper.

Given ``A`` with columns ``J``, find skeleton columns ``S``, redundant
columns ``R = J \\ S`` and an interpolation matrix ``T`` with

    || A[:, R] - A[:, S] @ T ||  <=  eps * || A ||.

Following the paper (Sec. II-B) we use greedy column-pivoted QR
(Cheng–Gimbutas–Martinsson–Rokhlin 2005) as implemented by LAPACK
``geqp3``, plus an optional randomized row-sketch variant
(Dong–Martinsson 2021) that compresses tall matrices before pivoting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg


@dataclass
class InterpolativeDecomposition:
    """Result of a column ID.

    Attributes
    ----------
    skeleton:
        Positions (into the original column order) of skeleton columns ``S``.
    redundant:
        Positions of redundant columns ``R``.
    T:
        Interpolation matrix with ``A[:, R] ~= A[:, S] @ T``;
        shape ``(len(skeleton), len(redundant))``.
    """

    skeleton: np.ndarray
    redundant: np.ndarray
    T: np.ndarray

    @property
    def rank(self) -> int:
        return self.skeleton.size

    def reconstruct(self, a: np.ndarray) -> np.ndarray:
        """Rebuild ``A`` from its skeleton columns (testing helper)."""
        out = np.empty_like(a)
        out[:, self.skeleton] = a[:, self.skeleton]
        out[:, self.redundant] = a[:, self.skeleton] @ self.T
        return out


def interp_decomp(
    a: np.ndarray,
    tol: float,
    *,
    max_rank: int | None = None,
    method: str = "cpqr",
    oversample: int = 10,
    rng: np.random.Generator | None = None,
) -> InterpolativeDecomposition:
    """Compute a column ID of ``a`` to relative tolerance ``tol``.

    Parameters
    ----------
    a:
        Matrix ``(m, n)``; ``m = 0`` is allowed (every column is then
        redundant with an empty ``T`` — this is how the factorization
        handles boxes with an empty far field).
    tol:
        Relative spectral-ish tolerance; rank is the smallest ``k`` with
        ``|R[k, k]| <= tol * |R[0, 0]|`` in the pivoted QR.
    max_rank:
        Optional hard cap on the skeleton size.
    method:
        ``"cpqr"`` (deterministic) or ``"randomized"`` (Gaussian row
        sketch of height ``min(m, 4 + 2*expected)`` before CPQR).
    """
    a = np.ascontiguousarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    m, n = a.shape
    if tol < 0:
        raise ValueError(f"tol must be nonnegative, got {tol}")
    if n == 0:
        return InterpolativeDecomposition(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.zeros((0, 0), dtype=a.dtype)
        )
    if m == 0 or not np.any(a):
        # no rows (empty far field) or identically zero: everything redundant
        return InterpolativeDecomposition(
            np.empty(0, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.zeros((0, n), dtype=a.dtype),
        )

    if method == "randomized":
        work = _row_sketch(a, max_rank=max_rank, oversample=oversample, rng=rng)
    elif method == "cpqr":
        work = a
    else:
        raise ValueError(f"unknown ID method {method!r}")

    r_fact, piv = scipy.linalg.qr(work, mode="r", pivoting=True)
    return _from_pivoted_qr(
        r_fact, piv, tol, max_rank=max_rank, n=n,
        work_rows=work.shape[0], dtype=a.dtype,
    )


def _from_pivoted_qr(
    r_fact: np.ndarray,
    piv: np.ndarray,
    tol: float,
    *,
    max_rank: int | None,
    n: int,
    work_rows: int,
    dtype: np.dtype,
) -> InterpolativeDecomposition:
    """Rank cut + interpolation matrix from a pivoted-QR ``R`` factor."""
    r_fact = r_fact[: min(r_fact.shape[0], n), :]
    diag = np.abs(np.diag(r_fact))
    if diag.size == 0 or diag[0] == 0.0:
        k = 0
    else:
        keep = diag > tol * diag[0]
        # pivoted QR diagonals decrease (approximately); take the prefix
        k = int(np.count_nonzero(keep))
        if not np.all(keep[:k]):  # non-monotone edge case: first False wins
            k = int(np.argmin(keep))
    if max_rank is not None:
        k = min(k, max_rank)
    k = min(k, n, work_rows)

    skeleton = np.asarray(piv[:k], dtype=np.int64)
    redundant = np.asarray(piv[k:], dtype=np.int64)
    if k == 0:
        t_mat = np.zeros((0, n), dtype=dtype)
        return InterpolativeDecomposition(skeleton, np.asarray(piv, dtype=np.int64), t_mat)
    if redundant.size == 0:
        return InterpolativeDecomposition(skeleton, redundant, np.zeros((k, 0), dtype=dtype))
    r11 = r_fact[:k, :k]
    r12 = r_fact[:k, k:]
    t_mat = scipy.linalg.solve_triangular(r11, r12, lower=False)
    return InterpolativeDecomposition(skeleton, redundant, t_mat.astype(dtype, copy=False))


def interp_decomp_stack(
    stack: np.ndarray,
    tol: float,
    *,
    max_rank: int | None = None,
    method: str = "cpqr",
    oversample: int = 10,
    rng: np.random.Generator | None = None,
) -> list[InterpolativeDecomposition]:
    """Grouped column IDs of a stack of equal-shape matrices.

    The level-batched factor sweep assembles the compression matrices
    of a whole group of same-shape boxes as one ``(nbox, m, k)`` array
    and runs their IDs here. The per-matrix result is identical to
    :func:`interp_decomp` up to the LAPACK driver (``geqp3`` is called
    directly); the group amortizes two per-call costs:

    * one workspace-size query serves every matrix in the stack
      (``scipy.linalg.qr`` re-queries per call), and
    * the randomized method draws a single Gaussian sketch ``Omega``
      reused across the group (every member has the same row space
      dimensions), replacing ``nbox`` sketch generations with one
      batched ``Omega @ stack`` GEMM.
    """
    stack = np.asarray(stack)
    if stack.ndim != 3:
        raise ValueError(f"expected a (nbox, m, n) stack, got shape {stack.shape}")
    if tol < 0:
        raise ValueError(f"tol must be nonnegative, got {tol}")
    nb, m, n = stack.shape
    if method not in ("cpqr", "randomized"):
        raise ValueError(f"unknown ID method {method!r}")
    if nb == 0:
        return []
    if m == 0 or n == 0:
        # degenerate shapes: the scalar path's early returns cover these
        return [
            interp_decomp(stack[b], tol, max_rank=max_rank, method=method)
            for b in range(nb)
        ]

    work_stack = stack
    work_rows = m
    if method == "randomized":
        target = max_rank if max_rank is not None else min(m, n)
        height = min(m, target + oversample)
        if height < m:
            gen = rng or np.random.default_rng(0x5EED)
            omega = gen.standard_normal((height, m))
            if np.iscomplexobj(stack):
                omega = omega + 1j * gen.standard_normal((height, m))
            work_stack = np.matmul(omega, stack)
            work_rows = height

    geqp3 = scipy.linalg.lapack.get_lapack_funcs("geqp3", (work_stack[0],))
    lwork = _geqp3_lwork(geqp3, work_rows, n, work_stack.dtype)
    out: list[InterpolativeDecomposition] = []
    for b in range(nb):
        if not np.any(stack[b]):
            out.append(
                InterpolativeDecomposition(
                    np.empty(0, dtype=np.int64),
                    np.arange(n, dtype=np.int64),
                    np.zeros((0, n), dtype=stack.dtype),
                )
            )
            continue
        qr, jpvt, _tau, _work, info = geqp3(
            np.asfortranarray(work_stack[b]), lwork=lwork, overwrite_a=True
        )
        if info != 0:  # pragma: no cover - LAPACK input-validation guard
            raise RuntimeError(f"geqp3 failed with info={info}")
        # the strictly-lower Householder vectors in ``qr`` are ignored:
        # the rank cut reads the diagonal and solve_triangular reads
        # only the upper triangle
        out.append(
            _from_pivoted_qr(
                qr, jpvt - 1, tol, max_rank=max_rank, n=n,
                work_rows=work_rows, dtype=stack.dtype,
            )
        )
    return out


def _geqp3_lwork(geqp3, m: int, n: int, dtype) -> int:
    """One blocked-workspace query for a whole group of ``(m, n)`` IDs."""
    probe = np.zeros((m, n), dtype=dtype, order="F")
    result = geqp3(probe, lwork=-1)
    work = result[-2]
    return int(np.real(work[0]).item())


def _row_sketch(
    a: np.ndarray,
    *,
    max_rank: int | None,
    oversample: int,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Gaussian row sketch ``Omega @ a`` preserving the column geometry."""
    m, n = a.shape
    target = max_rank if max_rank is not None else min(m, n)
    height = min(m, target + oversample)
    if height >= m:
        return a
    gen = rng or np.random.default_rng(0x5EED)
    omega = gen.standard_normal((height, m))
    if np.iscomplexobj(a):
        omega = omega + 1j * gen.standard_normal((height, m))
    return np.ascontiguousarray(omega @ a)


def id_error(a: np.ndarray, decomposition: InterpolativeDecomposition) -> float:
    """Relative spectral-norm ID error (testing helper)."""
    if decomposition.redundant.size == 0:
        return 0.0
    approx = a[:, decomposition.skeleton] @ decomposition.T
    denom = np.linalg.norm(a, 2)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(a[:, decomposition.redundant] - approx, 2) / denom)
