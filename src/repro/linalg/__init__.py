"""Dense linear-algebra substrate: interpolative decomposition and LU helpers."""

from repro.linalg.interpolative import InterpolativeDecomposition, interp_decomp
from repro.linalg.lu import PartialLU

__all__ = ["InterpolativeDecomposition", "interp_decomp", "PartialLU"]
