"""Partial LU elimination of the redundant diagonal block.

Wraps LAPACK ``getrf``/``getrs`` and provides both left solves
``X_RR^{-1} B`` and right solves ``B X_RR^{-1}`` (needed because the
Schur update is ``A[C1, C2] -= X[C1, R] X_RR^{-1} X[R, C2]``), plus the
triangular half-solves ``L_R^{-1} v`` and ``U_R^{-1} v`` used when
applying the factorization (Sec. II-D, the ``L``/``U`` operators).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg


class PartialLU:
    """LU factorization ``P X = L U`` of a (small, dense) diagonal block."""

    #: opt in to the process backend's shared-memory codec: the stored
    #: factors (``_lu``/``_piv``) travel zero-copy instead of pickling
    __shm_walk__ = True

    def __init__(self, x_rr: np.ndarray):
        x_rr = np.asarray(x_rr)
        if x_rr.ndim != 2 or x_rr.shape[0] != x_rr.shape[1]:
            raise ValueError(f"expected a square block, got {x_rr.shape}")
        self.n = x_rr.shape[0]
        self.dtype = x_rr.dtype
        if self.n:
            self._lu, self._piv = scipy.linalg.lu_factor(x_rr, check_finite=False)
        else:
            self._lu = np.zeros((0, 0), dtype=x_rr.dtype)
            self._piv = np.zeros(0, dtype=np.int32)

    def memory_bytes(self) -> int:
        """Bytes held by the stored factors (``_lu`` and ``_piv``)."""
        return int(self._lu.nbytes + self._piv.nbytes)

    # -- full solves ----------------------------------------------------
    def solve_left(self, b: np.ndarray) -> np.ndarray:
        """``X_RR^{-1} @ b``."""
        if self.n == 0 or b.size == 0:
            return np.zeros_like(b)
        return scipy.linalg.lu_solve((self._lu, self._piv), b, check_finite=False)

    def solve_right(self, b: np.ndarray) -> np.ndarray:
        """``b @ X_RR^{-1}``."""
        if self.n == 0 or b.size == 0:
            return np.zeros_like(b)
        # b X^{-1} = (X^{-T} b^T)^T ; trans=1 solves X^T y = rhs
        return scipy.linalg.lu_solve((self._lu, self._piv), b.T, trans=1, check_finite=False).T

    # -- triangular half-solves (for applying the factorization) -------
    def apply_lower_inverse(self, v: np.ndarray) -> np.ndarray:
        """``L_R^{-1} P v`` — the forward-substitution half of the solve."""
        if self.n == 0 or v.size == 0:
            return v.copy()
        vp = v[_perm_from_piv(self._piv)]
        return scipy.linalg.solve_triangular(
            self._lu, vp, lower=True, unit_diagonal=True, check_finite=False
        )

    def apply_upper_inverse(self, v: np.ndarray) -> np.ndarray:
        """``U_R^{-1} v`` — the backward-substitution half of the solve."""
        if self.n == 0 or v.size == 0:
            return v.copy()
        return scipy.linalg.solve_triangular(self._lu, v, lower=False, check_finite=False)

    # -- triangular forward applications (for the forward matvec) -------
    def apply_lower(self, v: np.ndarray) -> np.ndarray:
        """``P^T L v`` — inverse of :meth:`apply_lower_inverse`."""
        if self.n == 0 or v.size == 0:
            return v.copy()
        lv = v + np.tril(self._lu, -1) @ v
        out = np.empty(lv.shape, dtype=np.result_type(self._lu.dtype, v.dtype))
        out[_perm_from_piv(self._piv)] = lv
        return out

    def apply_upper(self, v: np.ndarray) -> np.ndarray:
        """``U v`` — inverse of :meth:`apply_upper_inverse`."""
        if self.n == 0 or v.size == 0:
            return v.copy()
        return np.triu(self._lu) @ v


def _perm_from_piv(piv: np.ndarray) -> np.ndarray:
    """Convert LAPACK sequential row swaps into a permutation vector."""
    perm = np.arange(piv.size)
    for i, p in enumerate(piv):
        if i != p:
            perm[i], perm[p] = perm[p], perm[i]
    return perm
