"""repro — an O(N) distributed-memory parallel direct solver for planar
integral equations.

A from-scratch Python reproduction of Liang, Chen, Martinsson & Biros
(IPDPS 2024, arXiv:2310.15458): the strong recursive skeletonization
factorization (RS-S) of dense kernel matrices from 2D integral
equations, parallelized over a simulated distributed-memory runtime.

Quickstart::

    import numpy as np
    from repro import LaplaceVolumeProblem, SRSOptions, srs_factor

    prob = LaplaceVolumeProblem(m=64)          # N = 64^2 collocation points
    fact = prob.factor(SRSOptions(tol=1e-6))    # O(N) factorization
    b = prob.random_rhs()
    x = fact.solve(b)                           # O(N) direct solve
    print(prob.relres(x, b))                    # ~1e-3 (first-kind IE)
    print(prob.pcg(fact, b).iterations)         # ~5 PCG its to 1e-12

Distributed (simulated ranks)::

    from repro import parallel_srs_factor
    pfact = parallel_srs_factor(prob.kernel, p=16)
    x = pfact.solve(b)
    print(pfact.t_fact, pfact.t_fact_comp, pfact.t_fact_other)
"""

from repro.core import SRSFactorization, SRSOptions, srs_factor
from repro.parallel import (
    ParallelFactorization,
    parallel_srs_factor,
    shared_memory_factor,
)
from repro.apps import LaplaceVolumeProblem, ScatteringProblem, plane_wave
from repro.bie import (
    Circle,
    Ellipse,
    InteriorDirichletProblem,
    Kite,
    SoundSoftScattering,
    StarCurve,
)
from repro.kernels import (
    GaussianKernelMatrix,
    HelmholtzKernelMatrix,
    KernelMatrix,
    LaplaceKernelMatrix,
    YukawaKernelMatrix,
)
from repro.geometry import uniform_grid
from repro.matvec import DenseMatVec, FFTMatVec
from repro.iterative import cg, gmres
from repro.tree import AdaptiveQuadTree, QuadTree

__version__ = "1.0.0"

__all__ = [
    "SRSFactorization",
    "SRSOptions",
    "srs_factor",
    "ParallelFactorization",
    "parallel_srs_factor",
    "shared_memory_factor",
    "LaplaceVolumeProblem",
    "ScatteringProblem",
    "plane_wave",
    "Circle",
    "Ellipse",
    "StarCurve",
    "Kite",
    "InteriorDirichletProblem",
    "SoundSoftScattering",
    "KernelMatrix",
    "LaplaceKernelMatrix",
    "HelmholtzKernelMatrix",
    "GaussianKernelMatrix",
    "YukawaKernelMatrix",
    "uniform_grid",
    "DenseMatVec",
    "FFTMatVec",
    "cg",
    "gmres",
    "QuadTree",
    "AdaptiveQuadTree",
    "__version__",
]
