"""repro — an O(N) distributed-memory parallel direct solver for planar
integral equations.

A from-scratch Python reproduction of Liang, Chen, Martinsson & Biros
(IPDPS 2024, arXiv:2310.15458): the strong recursive skeletonization
factorization (RS-S) of dense kernel matrices from 2D integral
equations, parallelized over a simulated distributed-memory runtime.

Quickstart (the unified facade)::

    import repro

    prob = repro.LaplaceVolumeProblem(m=64)     # N = 64^2 collocation points
    report = repro.solve(prob, prob.random_rhs())   # O(N) direct solve
    print(report.summary())                     # relres ~1e-3 (first-kind IE)

    # same pipeline, different strategy: PCG refinement to 1e-12
    report = repro.solve(prob, prob.random_rhs(), method="pcg", tol=1e-12)
    print(report.iterations)                    # ~5 iterations

    # distributed over 16 simulated ranks (thread/process/auto backends)
    report = repro.solve(prob, prob.random_rhs(), execution="auto", ranks=16)
    print(report.sim_t_fact, report.messages)

    # amortize one factorization over many right-hand sides
    solver = repro.Solver(prob, method="pcg")
    for seed in range(8):
        print(solver.solve(prob.random_rhs(seed)).iterations)

The underlying engines remain importable (``srs_factor``,
``parallel_srs_factor``, the iterative solvers) for code that wants
them directly.
"""

from repro.api import Problem, SolveConfig, SolveReport, Solver, solve
from repro.obs import REGISTRY, render_prometheus, trace
from repro.service import ServiceConfig, SolveService
from repro.core import SRSFactorization, SRSOptions, srs_factor
from repro.parallel import (
    ParallelFactorization,
    parallel_srs_factor,
    shared_memory_factor,
)
from repro.apps import LaplaceVolumeProblem, ScatteringProblem, plane_wave
from repro.bie import (
    Circle,
    Ellipse,
    InteriorDirichletProblem,
    Kite,
    SoundSoftScattering,
    StarCurve,
)
from repro.kernels import (
    GaussianKernelMatrix,
    HelmholtzKernelMatrix,
    KernelMatrix,
    LaplaceKernelMatrix,
    YukawaKernelMatrix,
)
from repro.geometry import uniform_grid
from repro.matvec import DenseMatVec, FFTMatVec
from repro.iterative import cg, gmres
from repro.tree import AdaptiveQuadTree, QuadTree

__version__ = "1.0.0"

__all__ = [
    "solve",
    "Solver",
    "SolveConfig",
    "SolveReport",
    "SolveService",
    "ServiceConfig",
    "Problem",
    "trace",
    "REGISTRY",
    "render_prometheus",
    "SRSFactorization",
    "SRSOptions",
    "srs_factor",
    "ParallelFactorization",
    "parallel_srs_factor",
    "shared_memory_factor",
    "LaplaceVolumeProblem",
    "ScatteringProblem",
    "plane_wave",
    "Circle",
    "Ellipse",
    "StarCurve",
    "Kite",
    "InteriorDirichletProblem",
    "SoundSoftScattering",
    "KernelMatrix",
    "LaplaceKernelMatrix",
    "HelmholtzKernelMatrix",
    "GaussianKernelMatrix",
    "YukawaKernelMatrix",
    "uniform_grid",
    "DenseMatVec",
    "FFTMatVec",
    "cg",
    "gmres",
    "QuadTree",
    "AdaptiveQuadTree",
    "__version__",
]
