"""Distributed application of the factored inverse (Sec. II-F, III).

The solve replays the factorization schedule. Upward sweep: interior
records apply locally; boundary records run in the same color rounds,
forwarding the additive updates that land on remote-owned skeleton
entries to the owning neighbor; reductions ship the surviving entries
of retiring ranks to their leader. The downward sweep reverses
everything, with a value *refresh* before each reverse color round
(``apply_w`` reads neighbor entries instead of writing them).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.ownership import LevelLayout
from repro.parallel.worker import WorkerResult
from repro.vmpi.comm import Comm


def _tag(phase: int, level: int, color: int = 0) -> int:
    return 10_000_000 + phase * 100_000 + level * 16 + color


TAG_UP_COLOR = 1
TAG_UP_REDUCE = 2
TAG_DOWN_REDUCE = 3
TAG_DOWN_REFRESH = 4


def solve_worker(comm: Comm, workers: list[WorkerResult], n: int, b: np.ndarray | None):
    """SPMD entry point: apply the compressed inverse to ``b``.

    ``b`` is only inspected on rank 0; it is scattered by leaf
    ownership, swept, and gathered back. Returns the solution on rank 0
    and ``None`` elsewhere.
    """
    my = workers[comm.rank]
    leaf_ids_list = [w.leaf_ids for w in workers] if comm.rank == 0 else None
    return solve_shards(comm, my, leaf_ids_list, n, b)


def solve_shards(
    comm: Comm,
    my: WorkerResult,
    leaf_ids_list: list[np.ndarray] | None,
    n: int,
    b: np.ndarray | None,
):
    """Apply the compressed inverse given only this rank's shard.

    The core of :func:`solve_worker`, factored so callers that already
    hold their own :class:`WorkerResult` (worker-resident dispatch,
    ``repro.store``) need not re-ship the whole factorization: rank 0
    needs every rank's ``leaf_ids`` (to scatter ``b`` by ownership) but
    nobody needs the other ranks' records. The communication pattern —
    scatter, color rounds, reductions, gather — is identical to a
    full-tree dispatch, so message/byte counters and results are
    bitwise-stable across the two entry points.
    """
    p = comm.size

    # -- scatter the right-hand side by leaf ownership -------------------
    payloads = None
    if comm.rank == 0:
        assert b is not None
        assert leaf_ids_list is not None
        dtype = np.result_type(my.dtype, b.dtype)
        payloads = [(ids, np.asarray(b)[ids].astype(dtype), b.shape[1:]) for ids in leaf_ids_list]
    ids, vals, tail_shape = comm.scatter(payloads, 0)
    x = np.zeros((n, *tail_shape), dtype=vals.dtype)
    x[ids] = vals

    comm.barrier()
    comm.clock.local_time = 0.0
    comm.clock.compute_time = 0.0
    comm.clock.comm_time = 0.0

    received_up: dict[tuple[int, int], np.ndarray] = {}

    # ---------------------------- upward sweep --------------------------
    for plan in my.plans:
        layout = LevelLayout(plan.level, p)
        with comm.clock.compute():
            for rec in my.records[plan.rec_interior[0] : plan.rec_interior[1]]:
                rec.apply_v(x)
        for color in plan.colors:
            if color == plan.my_color:
                per: dict[int, tuple[list, list]] = {w: ([], []) for w in plan.neighbor_ranks}
                with comm.clock.compute():
                    for rec in my.records[plan.rec_boundary[0] : plan.rec_boundary[1]]:
                        cluster, upd = rec.apply_v(x, collect=True)
                        if upd is None:
                            continue
                        for seg_box, s, e in rec.cluster_segments:
                            owner = layout.owner(seg_box)
                            if owner != comm.rank:
                                per[owner][0].append(rec.cluster[s:e])
                                per[owner][1].append(upd[s:e])
                for w in plan.neighbor_ranks:
                    idx_list, delta_list = per[w]
                    if idx_list:
                        msg = (np.concatenate(idx_list), np.concatenate(delta_list))
                    else:
                        msg = (np.empty(0, dtype=np.int64), None)
                    comm.send(msg, w, tag=_tag(TAG_UP_COLOR, plan.level, color))
            else:
                for w in plan.neighbor_ranks:
                    if plan.neighbor_colors[w] == color:
                        mids, mdelta = comm.recv(w, tag=_tag(TAG_UP_COLOR, plan.level, color))
                        if mids.size:
                            # the same entry may appear in several boxes'
                            # update segments; unbuffered accumulation is
                            # required (plain fancy-index -= drops dups)
                            np.subtract.at(x, mids, mdelta)
        if plan.reduction_after:
            if plan.retired_after:
                up_ids = _survivors(my, plan)
                assert plan.reduction_leader is not None
                comm.send(
                    (up_ids, x[up_ids]),
                    plan.reduction_leader,
                    tag=_tag(TAG_UP_REDUCE, plan.level),
                )
            else:
                for src in plan.reduction_sources:
                    rid, rv = comm.recv(src, tag=_tag(TAG_UP_REDUCE, plan.level))
                    x[rid] = rv
                    received_up[(plan.level, src)] = rid

    # --------------------------- downward sweep -------------------------
    for plan in reversed(my.plans):
        layout = LevelLayout(plan.level, p)
        if plan.reduction_after:
            if plan.retired_after:
                rid, rv = comm.recv(
                    plan.reduction_leader, tag=_tag(TAG_DOWN_REDUCE, plan.level)
                )
                x[rid] = rv
            else:
                for src in plan.reduction_sources:
                    rid = received_up[(plan.level, src)]
                    comm.send((rid, x[rid]), src, tag=_tag(TAG_DOWN_REDUCE, plan.level))
        for color in reversed(plan.colors):
            if plan.my_color == color:
                for w in plan.neighbor_ranks:
                    rid, rv = comm.recv(w, tag=_tag(TAG_DOWN_REFRESH, plan.level, color))
                    if rid.size:
                        x[rid] = rv
                with comm.clock.compute():
                    for rec in reversed(
                        my.records[plan.rec_boundary[0] : plan.rec_boundary[1]]
                    ):
                        rec.apply_w(x)
            else:
                for w in plan.neighbor_ranks:
                    if plan.neighbor_colors[w] == color:
                        ids3 = [
                            pts
                            for box, pts in plan.level_points.items()
                            if layout.region_distance(box, w) <= 1 and pts.size
                        ]
                        if ids3:
                            rid = np.concatenate(ids3)
                            msg = (rid, x[rid])
                        else:
                            msg = (np.empty(0, dtype=np.int64), None)
                        comm.send(msg, w, tag=_tag(TAG_DOWN_REFRESH, plan.level, color))
        with comm.clock.compute():
            for rec in reversed(my.records[plan.rec_interior[0] : plan.rec_interior[1]]):
                rec.apply_w(x)

    # ------------------------------ gather ------------------------------
    gathered = comm.gather((my.leaf_ids, x[my.leaf_ids]), 0)
    if comm.rank != 0:
        return None
    assert gathered is not None
    out = np.zeros_like(x)
    for rid, rv in gathered:
        out[rid] = rv
    return out


def _survivors(my: WorkerResult, plan) -> np.ndarray:
    """Global ids still active on this rank after ``plan``'s level."""
    parts = [
        rec.skeleton
        for rec in my.records[plan.rec_interior[0] : plan.rec_boundary[1]]
        if rec.skeleton.size
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
