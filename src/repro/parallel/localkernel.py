"""Rank-local view of the kernel matrix.

A rank only ever knows the coordinates (and per-point data such as the
scattering potential) of points it owns or has received from neighbors.
``LocalKernel`` wraps that knowledge behind the same interface the
sequential core uses — ``block`` / ``proxy_row_block`` /
``proxy_col_block`` with *global* indices — by translating global point
indices into rows of a locally reconstructed kernel. Asking for a point
the rank was never told about raises, which is how the test suite
verifies the communication protocol delivers exactly the right halo.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelMatrix


class LocalKernel:
    """Kernel-matrix view over the subset of points known to one rank."""

    def __init__(
        self,
        template: KernelMatrix,
        global_ids: np.ndarray,
        points: np.ndarray,
        per_point: dict[str, np.ndarray] | None = None,
    ):
        self._template = template
        self._ids = np.asarray(global_ids, dtype=np.int64)
        self._points = np.atleast_2d(np.asarray(points, dtype=float))
        self._per_point = {k: np.asarray(v) for k, v in (per_point or {}).items()}
        if self._ids.size != self._points.shape[0]:
            raise ValueError("global_ids and points length mismatch")
        self._rebuild()

    def _rebuild(self) -> None:
        order = np.argsort(self._ids, kind="stable")
        self._ids = self._ids[order]
        if np.any(np.diff(self._ids) == 0):
            raise ValueError("duplicate global ids in local kernel")
        self._points = self._points[order]
        self._per_point = {k: v[order] for k, v in self._per_point.items()}
        self.inner = self._template.spawn(self._points, self._per_point)
        self.dtype = self.inner.dtype

    # ------------------------------------------------------------------
    def extend(
        self,
        global_ids: np.ndarray,
        points: np.ndarray,
        per_point: dict[str, np.ndarray] | None = None,
    ) -> int:
        """Add newly learned points; returns how many were actually new."""
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if global_ids.size == 0:
            return 0
        points = np.atleast_2d(np.asarray(points, dtype=float))
        per_point = {k: np.asarray(v) for k, v in (per_point or {}).items()}
        pos = np.searchsorted(self._ids, global_ids)
        pos = np.clip(pos, 0, self._ids.size - 1) if self._ids.size else pos
        known = (
            (self._ids[pos] == global_ids) if self._ids.size else np.zeros(global_ids.size, bool)
        )
        new = ~known
        if not np.any(new):
            return 0
        self._ids = np.concatenate([self._ids, global_ids[new]])
        self._points = np.vstack([self._points, points[new]])
        for k in list(self._per_point):
            if k not in per_point:
                raise ValueError(f"extend() missing per-point field {k!r}")
            self._per_point[k] = np.concatenate([self._per_point[k], per_point[k][new]])
        self._rebuild()
        return int(np.count_nonzero(new))

    @property
    def known_ids(self) -> np.ndarray:
        return self._ids

    @property
    def kappa(self):
        """Wave number of the underlying kernel, if any (proxy sizing)."""
        return getattr(self.inner, "kappa", None)

    @property
    def hermitian(self) -> bool:
        """Whether the underlying kernel matrix is exactly Hermitian."""
        return self.inner.hermitian

    @property
    def n_known(self) -> int:
        return self._ids.size

    def _local(self, index: np.ndarray) -> np.ndarray:
        index = np.asarray(index, dtype=np.int64)
        if index.size == 0:
            return index
        pos = np.searchsorted(self._ids, index)
        bad = (pos >= self._ids.size) | (
            self._ids[np.minimum(pos, self._ids.size - 1)] != index
        )
        if np.any(bad):
            missing = index[bad][:5]
            raise KeyError(
                f"local kernel asked about unknown global point ids {missing.tolist()} "
                "(halo exchange protocol violated)"
            )
        return pos

    def coords_of(self, index: np.ndarray) -> np.ndarray:
        return self._points[self._local(index)]

    def per_point_of(self, index: np.ndarray) -> dict[str, np.ndarray]:
        loc = self._local(index)
        return {k: v[loc] for k, v in self._per_point.items()}

    # -- KernelMatrix-compatible surface (global indices) ---------------
    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.inner.block(self._local(rows), self._local(cols))

    def proxy_row_block(self, proxy_points: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.inner.proxy_row_block(proxy_points, self._local(cols))

    def proxy_col_block(self, rows: np.ndarray, proxy_points: np.ndarray) -> np.ndarray:
        return self.inner.proxy_col_block(self._local(rows), proxy_points)

    # -- stacked (multi-box) blocks: ``_local`` is shape-preserving, so
    # -- ``(nb, k)`` global index stacks translate elementwise ----------
    def block_stack(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self.inner.block_stack(self._local(rows), self._local(cols))

    def proxy_row_block_stack(
        self, proxy_points: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        return self.inner.proxy_row_block_stack(proxy_points, self._local(cols))

    def proxy_col_block_stack(
        self, rows: np.ndarray, proxy_points: np.ndarray
    ) -> np.ndarray:
        return self.inner.proxy_col_block_stack(self._local(rows), proxy_points)
