"""Shared-memory (box-coloring) comparator solver — Table VI / Fig. 10.

The paper compares its distributed solver against a C++/OpenMP
shared-memory RS-S that follows Takahashi et al.: *all boxes* at a
level are colored so adjacent boxes differ, and each color class is
executed as a parallel task batch. We reproduce that *strategy* over
the same sequential core: the factorization runs once, each box task's
CPU time is measured, and the task batches are list-scheduled (LPT)
onto ``nthreads`` simulated threads under the same cost model used by
the distributed solver — so the two strategies are compared apples to
apples, as in the paper.

Box coloring: parity color ``(ix % 2) + 2 * (iy % 2)``; same-color
boxes are >= 2 apart so their skeletonizations touch disjoint data (the
shared-memory runtime synchronizes between color batches with a
barrier, modeled by ``sync_overhead``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.factorization import (
    SRSFactorization,
    factor_level,
    transition_to_parent,
)
from repro.core.interactions import Coord, InteractionStore
from repro.core.options import SRSOptions
from repro.kernels.base import KernelMatrix
from repro.tree.quadtree import QuadTree


def box_color(box: Coord) -> int:
    return (box[0] % 2) + 2 * (box[1] % 2)


def lpt_makespan(durations: list[float], nthreads: int) -> float:
    """Longest-processing-time list-scheduling makespan on ``nthreads``."""
    if not durations:
        return 0.0
    if nthreads <= 1:
        return float(sum(durations))
    loads = np.zeros(nthreads)
    for d in sorted(durations, reverse=True):
        loads[np.argmin(loads)] += d
    return float(loads.max())


@dataclass
class SharedMemoryResult:
    """Outcome of the shared-memory comparator.

    Satisfies the :class:`repro.api.strategies.Factorization` protocol
    (``solve`` / ``memory_bytes`` delegate to the underlying — and
    numerically identical — sequential factorization), so the facade
    can run it as ``SolveConfig(execution="shared", ranks=nthreads)``;
    ``t_fact``/``t_solve`` are the simulated thread-schedule times the
    facade surfaces as ``sim_t_fact``/``sim_t_solve``.
    """

    factorization: SRSFactorization
    nthreads: int
    t_fact: float
    t_solve: float
    sequential_t_fact: float
    sequential_t_solve: float
    per_level: list[tuple[int, float]] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.sequential_t_fact / self.t_fact if self.t_fact else 1.0

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply the compressed inverse (identical to the sequential one)."""
        return self.factorization.solve(b)

    __call__ = solve

    def memory_bytes(self) -> int:
        return self.factorization.memory_bytes()


def shared_memory_factor(
    kernel: KernelMatrix,
    nthreads: int,
    opts: SRSOptions | None = None,
    *,
    tree: QuadTree | None = None,
    sync_overhead: float = 5.0e-6,
    nrhs_probe: int = 1,
) -> SharedMemoryResult:
    """Factor with the box-coloring shared-memory strategy.

    Returns the (numerically identical) factorization plus the
    simulated ``t_fact``/``t_solve`` on ``nthreads`` threads.
    """
    if nthreads < 1:
        raise ValueError(f"nthreads must be >= 1, got {nthreads}")
    opts = opts or SRSOptions()
    if tree is None:
        tree = QuadTree.for_leaf_size(kernel.points, opts.leaf_size)

    fact = SRSFactorization([], kernel.n, kernel.dtype, opts)
    active = {c: tree.leaf_points(*c) for c in tree.nonempty_leaves()}
    seed_blocks = None
    task_times: list[tuple[int, Coord, float]] = []
    seq_fact_time = 0.0

    for level in range(tree.nlevels, 0, -1):
        store = InteractionStore(kernel, active, blocks=seed_blocks, max_modified_distance=None)
        t0 = time.perf_counter()
        factor_level(fact, store, kernel, tree, level, opts, task_times=task_times)
        seq_fact_time += time.perf_counter() - t0
        if level > 1:
            t0 = time.perf_counter()
            active, seed_blocks = transition_to_parent(store, tree, level)
            seq_fact_time += time.perf_counter() - t0

    # --- schedule measured tasks: per level, per color batch, LPT ------
    t_fact = 0.0
    per_level: list[tuple[int, float]] = []
    levels = sorted({lvl for lvl, _b, _d in task_times}, reverse=True)
    for lvl in levels:
        level_time = 0.0
        for color in range(4):
            batch = [d for (lv, b, d) in task_times if lv == lvl and box_color(b) == color]
            if not batch:
                continue
            level_time += lpt_makespan(batch, nthreads) + sync_overhead
        per_level.append((lvl, level_time))
        t_fact += level_time

    # --- solve: measure per-record apply times, schedule the same way --
    rng = np.random.default_rng(0)
    shape = (kernel.n,) if nrhs_probe == 1 else (kernel.n, nrhs_probe)
    probe = rng.standard_normal(shape).astype(np.result_type(kernel.dtype, float))
    x = probe.astype(np.result_type(kernel.dtype, probe.dtype), copy=True)
    apply_times: dict[tuple[int, Coord], float] = {}
    t0_all = time.perf_counter()
    for rec in fact.records:
        t0 = time.perf_counter()
        rec.apply_v(x)
        apply_times[(rec.level, rec.box)] = time.perf_counter() - t0
    for rec in reversed(fact.records):
        t0 = time.perf_counter()
        rec.apply_w(x)
        apply_times[(rec.level, rec.box)] += time.perf_counter() - t0
    seq_solve_time = time.perf_counter() - t0_all

    t_solve = 0.0
    for lvl in levels:
        for color in range(4):
            batch = [
                d for (lv, b), d in apply_times.items() if lv == lvl and box_color(b) == color
            ]
            if batch:
                t_solve += lpt_makespan(batch, nthreads) + sync_overhead

    return SharedMemoryResult(
        factorization=fact,
        nthreads=nthreads,
        t_fact=t_fact,
        t_solve=t_solve,
        sequential_t_fact=seq_fact_time,
        sequential_t_solve=seq_solve_time,
        per_level=per_level,
    )
