"""Driver for the distributed factorization engine.

``parallel_srs_factor(kernel, p)`` launches the SPMD factorization on
``p`` simulated ranks and returns a :class:`ParallelFactorization`;
its ``solve`` runs the distributed sweeps and reports simulated timing
(``t_fact``/``t_solve`` split into ``t_comp``/``t_other``) and
communication counters, mirroring the paper's Tables II/IV/VII.

This is the engine behind ``repro.solve(problem, b,
SolveConfig(execution="thread"|"process"|"auto", ranks=p))`` — the
facade (:mod:`repro.api`) is the preferred entry point for workloads;
call this directly when driving a bare kernel matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.options import SRSOptions
from repro.core.stats import RankStats
from repro.geometry.domain import Square
from repro.kernels.base import KernelMatrix
from repro.parallel.ownership import LevelLayout, max_ranks_for_tree
from repro.parallel.solve import solve_worker
from repro.parallel.worker import WorkerResult, factor_worker
from repro.store.resident import (
    ResidentHandle,
    factor_retain_worker,
    new_entry_id,
    resident_supported,
)
from repro.tree.quadtree import QuadTree
from repro.vmpi.clock import CostModel
from repro.vmpi.launcher import SPMDRun, resolve_backend, run_spmd


@dataclass
class ParallelFactorization:
    """Distributed RS-S factorization spread over ``p`` simulated ranks."""

    p: int
    n: int
    nlevels: int
    opts: SRSOptions
    workers: list[WorkerResult]
    factor_run: SPMDRun
    cost_model: CostModel | None = None
    #: the resolved :class:`~repro.vmpi.backend.ExecutionBackend`
    #: *instance* the factorization ran on. ``solve`` dispatches through
    #: the same instance, so a process backend in persistent-pool mode
    #: reuses its :class:`~repro.vmpi.pool.RankPool` — repeated solves
    #: spawn no processes (the facade's ``Solver`` caches this object
    #: alongside the factorization).
    backend: object = None
    last_solve_run: SPMDRun | None = None
    #: parent-side :class:`~repro.store.resident.ResidentHandle` when the
    #: rank workers retain this factorization's shards (persistent
    #: process pool + ``REPRO_STORE_RESIDENT``); process-local — dropped
    #: on pickling and lazily rebuilt by ``solve`` in the new process
    resident: object = field(default=None, repr=False)
    _merged_stats: RankStats | None = field(default=None, repr=False)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["resident"] = None  # holds a live pool + lock
        return state

    # -- timing (simulated) ---------------------------------------------
    @property
    def t_fact(self) -> float:
        return self.factor_run.elapsed

    @property
    def t_fact_comp(self) -> float:
        return self.factor_run.compute

    @property
    def t_fact_other(self) -> float:
        return self.factor_run.other

    @property
    def t_solve(self) -> float:
        if self.last_solve_run is None:
            raise RuntimeError("call solve() first")
        return self.last_solve_run.elapsed

    # -- results ----------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Distributed application of the compressed inverse to ``b``.

        On a persistent process pool the dispatch goes through the
        resident store (tier 1): workers solve from their retained
        shards and only ``(entry id, leaf ownership, rhs)`` crosses the
        process boundary. The communication pattern inside the solve is
        identical either way, so results and per-rank counters are
        bitwise-stable across dispatch modes.
        """
        b = np.asarray(b)
        if b.shape[0] != self.n:
            raise ValueError(f"rhs has {b.shape[0]} rows, expected {self.n}")
        handle = self._resident_handle()
        if handle is not None:
            run = handle.solve(self.n, b, cost_model=self.cost_model)
        else:
            run = run_spmd(
                self.p,
                solve_worker,
                self.workers,
                self.n,
                b,
                cost_model=self.cost_model,
                backend=self.backend,
            )
        self.last_solve_run = run
        return run.results[0]

    def _resident_handle(self):
        """This factorization's resident handle, built lazily.

        An attached/unpickled factorization (store tiers 2/3) arrives
        without one; its first solve in this process creates the handle
        unseeded, and the handle ships the tree to the pool once.
        """
        if self.resident is None and resident_supported(self.backend):
            self.resident = ResidentHandle(
                new_entry_id(), self.p, self.backend, self.workers
            )
        return self.resident

    __call__ = solve

    def eliminated_count(self) -> int:
        return int(
            sum(rec.redundant.size for w in self.workers for rec in w.records)
        )

    @property
    def stats(self) -> RankStats:
        """Skeleton-rank statistics merged across ranks (Fig. 9 data)."""
        if self._merged_stats is None:
            merged = RankStats()
            for w in self.workers:
                for lvl, ranks in w.stats.ranks.items():
                    for r, s in zip(ranks, w.stats.box_sizes[lvl]):
                        merged.record(lvl, s, r)
            self._merged_stats = merged
        return self._merged_stats

    def memory_bytes(self) -> int:
        return sum(rec.memory_bytes() for w in self.workers for rec in w.records)


def parallel_srs_factor(
    kernel: KernelMatrix,
    p: int,
    opts: SRSOptions | None = None,
    *,
    nlevels: int | None = None,
    domain: Square | None = None,
    cost_model: CostModel | None = None,
    backend: object = None,
) -> ParallelFactorization:
    """Distributed-memory RS-S factorization on ``p`` simulated ranks.

    ``p`` must be a power-of-two squared (1, 4, 16, 64, ...) and satisfy
    ``p <= 4**(nlevels - 1)`` so every rank owns at least a 2x2 block of
    leaf boxes. ``backend`` selects how ranks execute ("thread",
    "process", or an :class:`~repro.vmpi.backend.ExecutionBackend`);
    ``None`` uses the ``REPRO_VMPI_BACKEND`` default. The spec is
    resolved to an instance here and pinned on the returned
    factorization, so later ``solve`` calls run on the same backend —
    and, in persistent-pool mode, on the same rank-process pool.
    Results, message counts, and byte counts are backend-independent.
    """
    backend = resolve_backend(backend)
    opts = opts or SRSOptions()
    domain = domain or Square()
    if nlevels is None:
        nlevels = QuadTree.for_leaf_size(kernel.points, opts.leaf_size, domain=domain).nlevels
        # ensure every rank owns at least 2x2 leaves
        import math

        g = int(round(math.log(max(p, 1), 4)))
        nlevels = max(nlevels, g + 1)
    if p > max_ranks_for_tree(nlevels):
        raise ValueError(
            f"p={p} too large for nlevels={nlevels}: need p <= {max_ranks_for_tree(nlevels)}"
        )
    # validates p is a power-of-two squared
    LevelLayout(nlevels, p).grid_side  # noqa: B018 - validation side effect

    import math

    if math.isqrt(p) ** 2 != p or (math.isqrt(p) & (math.isqrt(p) - 1)) != 0:
        raise ValueError(f"p must be a power-of-two squared (1, 4, 16, ...), got {p}")

    # kernels with locally corrected quadrature (repro.bie) constrain the
    # leaf size; validate against the tree geometry the workers will use,
    # exactly as the sequential srs_factor does
    kernel.check_tree_resolution(QuadTree(np.zeros((0, 2)), nlevels, domain=domain))

    # factor through the retaining entry point when the backend can host
    # worker-resident shards: each rank keeps its WorkerResult as a side
    # effect of the factor job (no extra communication, no extra job),
    # so the first solve needs no seeding dispatch
    use_resident = resident_supported(backend)
    entry_id = new_entry_id() if use_resident else None
    run = run_spmd(
        p,
        factor_retain_worker if use_resident else factor_worker,
        kernel,
        nlevels,
        domain,
        opts,
        *(() if entry_id is None else (entry_id,)),
        cost_model=cost_model,
        backend=backend,
    )
    workers: list[WorkerResult] = run.results
    fact = ParallelFactorization(
        p=p,
        n=kernel.n,
        nlevels=nlevels,
        opts=opts,
        workers=workers,
        factor_run=run,
        cost_model=cost_model,
        backend=backend,
    )
    if use_resident:
        handle = ResidentHandle(entry_id, p, backend, workers)
        # backend.pool is None when the dispatch fell back to per-call
        # fork (unpicklable payload): the handle stays unseeded and the
        # first solve ships the tree once
        handle.adopt_pool(backend.pool)
        fact.resident = handle
    eliminated = fact.eliminated_count()
    if eliminated != kernel.n:  # pragma: no cover - invariant
        raise RuntimeError(f"eliminated {eliminated} of {kernel.n} indices")
    return fact
