"""Distributed-memory parallel RS-S factorization (Sec. III of the paper).

The leaf grid is block-partitioned over a ``sqrt(p) x sqrt(p)`` process
grid aligned with the quadtree. At every level each rank factors its
*interior* boxes with zero communication, then *boundary* boxes run in
the four-color loop with Schur-update exchange restricted to adjacent
ranks; level transitions regroup skeletons under parents and reduce the
active rank set 4-to-1 once ranks are down to a 2x2 block of boxes.

Entry points:

* :func:`parallel_srs_factor` — distributed factorization; returns a
  :class:`ParallelFactorization` whose ``solve`` runs the distributed
  upward/downward sweeps.
* :func:`repro.parallel.shared.shared_memory_factor` — the
  box-coloring shared-memory comparator of Table VI.
"""

from repro.parallel.driver import ParallelFactorization, parallel_srs_factor
from repro.parallel.ownership import LevelLayout, max_ranks_for_tree
from repro.parallel.shared import shared_memory_factor, SharedMemoryResult

__all__ = [
    "parallel_srs_factor",
    "ParallelFactorization",
    "LevelLayout",
    "max_ranks_for_tree",
    "shared_memory_factor",
    "SharedMemoryResult",
]
