"""Box ownership, interior/boundary classification, and the level schedule.

Rank regions are square blocks of boxes aligned with the quadtree. At
tree level ``ell`` the number of *active* ranks is
``A(ell) = min(p, 4^(ell-1))`` — every active rank owns at least a
2x2 block of boxes at every level (the condition under which same-color
boundary boxes on different ranks are more than distance 2 apart,
Sec. III-B), and the rank set shrinks 4-to-1 entering each coarse level
(Sec. III-C: "the number of processes involved in the new level may
also decrease"). Active rank ids follow Morton order, so the reduction
leader of a sibling group is the rank with the low two Morton bits of
its group index cleared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.morton import morton_decode, morton_encode

Coord = tuple[int, int]


def max_ranks_for_tree(nlevels: int) -> int:
    """Largest valid ``p`` for a tree with leaves at ``nlevels``.

    Every rank must own at least a 2x2 block of leaves: ``p <= 4^(L-1)``.
    """
    return 4 ** max(nlevels - 1, 0)


@dataclass(frozen=True)
class LevelLayout:
    """Ownership layout of one tree level for ``p`` total ranks.

    Attributes
    ----------
    level:
        Tree level (root = 0).
    p:
        Total ranks in the communicator.
    active:
        Number of active ranks at this level, ``min(p, 4**(level-1))``.
    stride:
        ``p // active`` — rank ``r`` is active iff ``r % stride == 0``.
    region_side:
        Boxes per side owned by each active rank.
    """

    level: int
    p: int

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ValueError(f"layouts exist for levels >= 1, got {self.level}")
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")

    @property
    def nside(self) -> int:
        return 1 << self.level

    @property
    def active(self) -> int:
        return min(self.p, 4 ** (self.level - 1)) if self.level > 1 else 1

    @property
    def stride(self) -> int:
        return self.p // self.active

    @property
    def grid_side(self) -> int:
        """Side of the active process grid."""
        import math

        return math.isqrt(self.active)

    @property
    def region_side(self) -> int:
        return self.nside // self.grid_side

    # ------------------------------------------------------------------
    def is_active(self, rank: int) -> bool:
        return rank % self.stride == 0

    def active_ranks(self) -> list[int]:
        return [g * self.stride for g in range(self.active)]

    def rank_coords(self, rank: int) -> Coord:
        """Coarse grid coordinates of an active rank."""
        if not self.is_active(rank):
            raise ValueError(f"rank {rank} is not active at level {self.level}")
        return morton_decode(rank // self.stride)

    def owner(self, box: Coord) -> int:
        """Active rank owning ``box`` at this level."""
        w = self.region_side
        ox, oy = box[0] // w, box[1] // w
        return morton_encode(ox, oy) * self.stride

    def owned_boxes(self, rank: int) -> list[Coord]:
        """Boxes owned by ``rank``, Morton order within the region."""
        ox, oy = self.rank_coords(rank)
        w = self.region_side
        coords = [
            (ox * w + dx, oy * w + dy) for dx in range(w) for dy in range(w)
        ]
        coords.sort(key=lambda c: morton_encode(c[0], c[1]))
        return coords

    def region_bounds(self, rank: int) -> tuple[int, int, int, int]:
        """``(x0, y0, x1, y1)`` box-coordinate bounds (inclusive-exclusive)."""
        ox, oy = self.rank_coords(rank)
        w = self.region_side
        return (ox * w, oy * w, (ox + 1) * w, (oy + 1) * w)

    def region_distance(self, box: Coord, rank: int) -> int:
        """Chebyshev distance from ``box`` to ``rank``'s region (0 if inside)."""
        x0, y0, x1, y1 = self.region_bounds(rank)
        dx = max(x0 - box[0], 0, box[0] - (x1 - 1))
        dy = max(y0 - box[1], 0, box[1] - (y1 - 1))
        return max(dx, dy)

    def is_boundary(self, box: Coord, rank: int) -> bool:
        """True when some neighbor of ``box`` is owned by another rank."""
        n = self.nside
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                q = (box[0] + dx, box[1] + dy)
                if 0 <= q[0] < n and 0 <= q[1] < n and self.owner(q) != rank:
                    return True
        return False

    def neighbor_ranks(self, rank: int) -> list[int]:
        """Active ranks whose regions are adjacent to ``rank``'s."""
        ox, oy = self.rank_coords(rank)
        side = self.grid_side
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                qx, qy = ox + dx, oy + dy
                if 0 <= qx < side and 0 <= qy < side:
                    out.append(morton_encode(qx, qy) * self.stride)
        return sorted(out)

    def color(self, rank: int) -> int:
        """Parity 4-coloring of the active process grid (Fig. 5)."""
        ox, oy = self.rank_coords(rank)
        return (ox % 2) + 2 * (oy % 2)

    def colors_in_use(self) -> list[int]:
        return sorted({self.color(r) for r in self.active_ranks()})

    def halo_boxes(self, rank: int, width: int) -> list[Coord]:
        """Boxes within Chebyshev distance ``width`` of the region (outside it)."""
        x0, y0, x1, y1 = self.region_bounds(rank)
        n = self.nside
        out = []
        for bx in range(max(0, x0 - width), min(n, x1 + width)):
            for by in range(max(0, y0 - width), min(n, y1 + width)):
                if x0 <= bx < x1 and y0 <= by < y1:
                    continue
                out.append((bx, by))
        return out

    def strip_boxes(self, rank: int, other: int, width: int) -> list[Coord]:
        """Boxes owned by ``rank`` within distance ``width`` of ``other``'s region."""
        return [
            b for b in self.owned_boxes(rank) if self.region_distance(b, other) <= width
        ]
