"""The distributed factorization worker (Algorithm 2 of the paper).

Every rank executes :func:`factor_worker`. Per tree level:

1. **Interior phase** — factor boxes whose neighbors are all local;
   zero communication (Sec. III-A).
2. **Interior-restriction exchange** — one message per neighbor with
   the skeleton positions of interior boxes inside the neighbor's
   distance-2 halo (neighbors hold read-only replicas of blocks
   touching those boxes and must shrink them consistently).
3. **Color loop** (Sec. III-B) — ranks of the current color factor
   their boundary boxes, then send each neighbor the relevant store
   mutations: ``restrict`` entries for boxes in the neighbor's halo and
   additive Schur ``delta`` entries for block pairs the neighbor owns a
   side of. Receivers replay the log in order.
4. **Transition** (Sec. III-C) — 4-to-1 rank reduction once regions are
   down to one parent box (retirees ship their surviving state to the
   sibling-group leader), a halo refresh of skeleton coordinates among
   the surviving ranks, and local re-assembly of parent-level blocks.

All state a rank touches arrives either from the initial scatter or
from neighbor messages — the :class:`~repro.parallel.localkernel.LocalKernel`
raises if the protocol ever under-delivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import skeletonize_level_batched
from repro.core.interactions import Coord, InteractionStore, PairKey
from repro.core.options import SRSOptions
from repro.core.proxy import proxy_points_for_box
from repro.core.skel import BoxRecord, skeletonize_box
from repro.core.stats import RankStats
from repro.geometry.domain import Square
from repro.geometry.morton import morton_encode
from repro.kernels.base import KernelMatrix
from repro.obs import trace
from repro.parallel.localkernel import LocalKernel
from repro.parallel.ownership import LevelLayout
from repro.tree.quadtree import QuadTree
from repro.vmpi.comm import Comm


# message tags: phase * 100000 + level * 16 + color
def _tag(phase: int, level: int, color: int = 0) -> int:
    return phase * 100_000 + level * 16 + color


TAG_HALO = 1  # level-start halo refresh
TAG_INTERIOR = 2  # interior-restriction exchange
TAG_COLOR = 3  # boundary color rounds
TAG_STRIP = 4  # pre-assembly skeleton/coordinate strip
TAG_REDUCE = 5  # 4-to-1 rank reduction


@dataclass
class LevelPlan:
    """Solve-phase replay information for one level on one rank."""

    level: int
    my_color: int
    colors: list[int]
    neighbor_ranks: list[int]
    neighbor_colors: dict[int, int]
    rec_interior: tuple[int, int]
    rec_boundary: tuple[int, int]
    #: own boxes' active point ids at level start (downward value refresh)
    level_points: dict[Coord, np.ndarray]
    #: set when a 4-to-1 reduction follows this level
    reduction_after: bool = False
    #: leader to ship to (if retiring) / retirees to absorb (if leading)
    reduction_leader: int | None = None
    reduction_sources: list[int] = field(default_factory=list)
    retired_after: bool = False


@dataclass
class WorkerResult:
    """Everything a rank keeps after the factorization."""

    rank: int
    records: list[BoxRecord]
    plans: list[LevelPlan]
    leaf_ids: np.ndarray
    stats: RankStats
    dtype: np.dtype


def factor_worker(
    comm: Comm,
    kernel: KernelMatrix,
    nlevels: int,
    domain: Square,
    opts: SRSOptions,
) -> WorkerResult:
    """SPMD entry point for the distributed factorization."""
    p = comm.size
    geometry = QuadTree(np.zeros((0, 2)), nlevels, domain=domain)
    leaf_layout = LevelLayout(nlevels, p)

    # ------------------------------------------------------------------
    # setup: rank 0 scatters regions + distance-2 leaf halos
    # ------------------------------------------------------------------
    payloads = None
    if comm.rank == 0:
        tree = QuadTree(kernel.points, nlevels, domain=domain)
        payloads = []
        for r in range(p):
            own = leaf_layout.owned_boxes(r)
            halo = leaf_layout.halo_boxes(r, 2)
            active = {b: tree.leaf_points(*b) for b in own + halo}
            all_ids = (
                np.concatenate([v for v in active.values() if v.size])
                if active
                else np.empty(0, dtype=np.int64)
            )
            all_ids = np.unique(all_ids)
            payloads.append(
                dict(
                    own=own,
                    active=active,
                    ids=all_ids,
                    coords=kernel.points[all_ids],
                    per_point=kernel.per_point_data(all_ids),
                )
            )
    payload = comm.scatter(payloads, 0)
    local = LocalKernel(kernel, payload["ids"], payload["coords"], payload["per_point"])
    active: dict[Coord, np.ndarray] = {
        b: np.asarray(v, dtype=np.int64) for b, v in payload["active"].items()
    }
    own_boxes: list[Coord] = list(payload["own"])
    leaf_ids = (
        np.concatenate([active[b] for b in own_boxes if active[b].size])
        if own_boxes
        else np.empty(0, dtype=np.int64)
    )

    comm.barrier()
    # exclude setup (point distribution) from t_fact and from the
    # Sec. IV-B communication counters, as the paper does
    comm.clock.local_time = 0.0
    comm.clock.compute_time = 0.0
    comm.clock.comm_time = 0.0
    comm.counters.messages_sent = 0
    comm.counters.bytes_sent = 0
    comm.counters.messages_received = 0
    comm.counters.bytes_received = 0

    records: list[BoxRecord] = []
    plans: list[LevelPlan] = []
    stats = RankStats()
    seed_blocks: dict[PairKey, np.ndarray] | None = None

    for level in range(nlevels, 0, -1):
        layout = LevelLayout(level, p)
        if not layout.is_active(comm.rank):
            break  # retired at an earlier transition

        nbr_ranks = layout.neighbor_ranks(comm.rank)
        my_color = layout.color(comm.rank)
        colors = layout.colors_in_use()

        # -- level-start halo refresh (width 2, current level units) ----
        if level < nlevels:
            _halo_refresh(comm, local, active, layout, own_boxes, nbr_ranks, level, width=2)

        rank = comm.rank
        store = InteractionStore(
            local,
            active,
            blocks=seed_blocks,
            max_modified_distance=None,
            store_predicate=lambda bi, bj, _l=layout, _r=rank: (
                _l.owner(bi) == _r or _l.owner(bj) == _r
            ),
        )
        active = store.active  # single source of truth from here on

        level_points = {b: store.active_of(b).copy() for b in own_boxes if b in store.active}
        interior = [b for b in own_boxes if not layout.is_boundary(b, comm.rank)]
        boundary = [b for b in own_boxes if layout.is_boundary(b, comm.rank)]

        # -- phase 1: interior boxes ------------------------------------
        i0 = len(records)
        interior_log: list = []
        with trace.span("factor.interior", level=level, boxes=len(interior)):
            with comm.clock.compute():
                _factor_boxes(
                    records, stats, store, local, geometry, level, interior, opts, interior_log
                )
        i1 = len(records)

        # -- phase 1.5: interior-restriction exchange --------------------
        with trace.span("factor.exchange", level=level):
            restricts = [op for op in interior_log if op[0] == "restrict"]
            for w in nbr_ranks:
                ops = [op for op in restricts if layout.region_distance(op[1], w) <= 2]
                comm.send(ops, w, tag=_tag(TAG_INTERIOR, level))
            for w in nbr_ranks:
                ops = comm.recv(w, tag=_tag(TAG_INTERIOR, level))
                with comm.clock.compute():
                    _apply_ops(store, ops, layout, comm.rank)

        # -- phase 2: color loop over boundary boxes ---------------------
        for color in colors:
            with trace.span("factor.color", level=level, color=color,
                            mine=color == my_color):
                if color == my_color:
                    log: list = []
                    with comm.clock.compute():
                        _factor_boxes(
                            records, stats, store, local, geometry, level, boundary, opts, log
                        )
                    for w in nbr_ranks:
                        comm.send(
                            _filter_ops(log, w, layout), w, tag=_tag(TAG_COLOR, level, color)
                        )
                else:
                    for w in nbr_ranks:
                        if layout.color(w) == color:
                            ops = comm.recv(w, tag=_tag(TAG_COLOR, level, color))
                            with comm.clock.compute():
                                _apply_ops(store, ops, layout, comm.rank)
        i2 = len(records)

        plan = LevelPlan(
            level=level,
            my_color=my_color,
            colors=colors,
            neighbor_ranks=nbr_ranks,
            neighbor_colors={w: layout.color(w) for w in nbr_ranks},
            rec_interior=(i0, i1),
            rec_boundary=(i1, i2),
            level_points=level_points,
        )
        plans.append(plan)

        if level == 1:
            break

        # -- transition ---------------------------------------------------
        next_layout = LevelLayout(level - 1, p)
        if next_layout.active < layout.active:
            plan.reduction_after = True
            if not next_layout.is_active(comm.rank):
                leader = comm.rank - (comm.rank % next_layout.stride)
                plan.retired_after = True
                plan.reduction_leader = leader
                known = local.known_ids
                comm.send(
                    dict(
                        own=own_boxes,
                        active={b: store.active_of(b) for b in store.active},
                        blocks=store.blocks,
                        ids=known,
                        coords=local.coords_of(known),
                        per_point=local.per_point_of(known),
                    ),
                    leader,
                    tag=_tag(TAG_REDUCE, level),
                )
                break  # this rank is done factoring
            # leader absorbs its three sibling retirees
            retirees = [
                comm.rank + k * layout.stride
                for k in range(1, 4)
                if layout.is_active(comm.rank + k * layout.stride)
            ]
            plan.reduction_sources = retirees
            for src in retirees:
                ship = comm.recv(src, tag=_tag(TAG_REDUCE, level))
                with comm.clock.compute():
                    own_boxes = own_boxes + list(ship["own"])
                    local.extend(ship["ids"], ship["coords"], ship["per_point"])
                    for b, ids in ship["active"].items():
                        store.active[b] = np.asarray(ids, dtype=np.int64)
                    for key, blk in ship["blocks"].items():
                        if key not in store.blocks:
                            store.set(key[0], key[1], blk)
            own_boxes.sort(key=lambda c: morton_encode(c[0], c[1]))
            active = store.active

        # -- pre-assembly strip refresh (width 3, child units) ------------
        _strip_refresh(
            comm, local, store, next_layout, own_boxes, level, width=3
        )

        # -- parent assembly ----------------------------------------------
        with trace.span("factor.transition", level=level), comm.clock.compute():
            active, seed_blocks, own_boxes = _assemble_parent(
                store, geometry, level, own_boxes
            )

    return WorkerResult(
        rank=comm.rank,
        records=records,
        plans=plans,
        leaf_ids=leaf_ids,
        stats=stats,
        dtype=np.dtype(local.dtype),
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _factor_boxes(
    records: list[BoxRecord],
    stats: RankStats,
    store: InteractionStore,
    local: LocalKernel,
    geometry: QuadTree,
    level: int,
    boxes: list[Coord],
    opts: SRSOptions,
    update_log: list,
) -> None:
    if opts.resolved_factor_mode() == "batched":
        # same elimination order and update-log stream as the loop below;
        # only assembly + ID are level-batched (phase boxes = one batch)
        for size_before, rec in skeletonize_level_batched(
            store, local, geometry, level, boxes, opts, update_log=update_log
        ):
            stats.record(level, size_before, rec.rank)
            records.append(rec)
        return
    has_far_field = geometry.nside(level) >= 4
    side = geometry.box_side(level)
    for box in boxes:
        if box not in store.active:
            continue
        nbrs = geometry.neighbors(level, *box)
        m_boxes = geometry.dist2_neighbors(level, *box) if has_far_field else []
        proxy = (
            proxy_points_for_box(local, geometry.box_center(level, *box), side, opts)
            if has_far_field
            else None
        )
        size_before = store.nactive(box)
        rec = skeletonize_box(
            store, local, box, nbrs, m_boxes, proxy, opts, level=level, update_log=update_log
        )
        if rec is None:
            continue
        stats.record(level, size_before, rec.rank)
        records.append(rec)


def _filter_ops(log: list, w: int, layout: LevelLayout) -> list:
    """Entries of an update log relevant to neighbor rank ``w``."""
    out = []
    for op in log:
        if op[0] == "restrict":
            if layout.region_distance(op[1], w) <= 2:
                out.append(op)
        else:
            _, bi, bj, _d = op
            if layout.owner(bi) == w or layout.owner(bj) == w:
                out.append(op)
    return out


def _apply_ops(store: InteractionStore, ops: list, layout: LevelLayout, rank: int) -> None:
    """Replay a neighbor's update log on the local store."""
    for op in ops:
        if op[0] == "restrict":
            _, box, keep = op
            if box in store.active:
                store.restrict(box, keep)
        else:
            _, bi, bj, delta = op
            if bi not in store.active or bj not in store.active:
                continue
            if layout.owner(bi) != rank and layout.owner(bj) != rank:
                continue
            blk = store.get_writable(bi, bj)
            if blk.shape != delta.shape:  # pragma: no cover - protocol bug guard
                raise RuntimeError(
                    f"rank {rank}: delta shape mismatch for {bi} x {bj}: "
                    f"{blk.shape} vs {delta.shape}"
                )
            blk -= delta


def _halo_refresh(
    comm: Comm,
    local: LocalKernel,
    active: dict[Coord, np.ndarray],
    layout: LevelLayout,
    own_boxes: list[Coord],
    nbr_ranks: list[int],
    level: int,
    *,
    width: int,
) -> None:
    """Exchange (ids, coords, per-point) of own boxes in neighbors' halos.

    Also prunes halo entries of the previous level from ``active`` —
    after this call ``active`` holds exactly own boxes plus the
    refreshed distance-``width`` halo.
    """
    own_set = set(own_boxes)
    for w in nbr_ranks:
        boxes = [b for b in own_boxes if layout.region_distance(b, w) <= width]
        msg = {}
        for b in boxes:
            ids = active.get(b)
            if ids is None or ids.size == 0:
                msg[b] = (np.empty(0, dtype=np.int64), np.empty((0, 2)), {})
            else:
                msg[b] = (ids, local.coords_of(ids), local.per_point_of(ids))
        comm.send(msg, w, tag=_tag(TAG_HALO, level))
    # drop stale halo knowledge, keep own boxes
    for b in list(active):
        if b not in own_set:
            del active[b]
    for w in nbr_ranks:
        msg = comm.recv(w, tag=_tag(TAG_HALO, level))
        for b, (ids, coords, per_point) in msg.items():
            active[b] = np.asarray(ids, dtype=np.int64)
            if len(ids):
                local.extend(ids, coords, per_point)


def _strip_refresh(
    comm: Comm,
    local: LocalKernel,
    store: InteractionStore,
    next_layout: LevelLayout,
    own_boxes: list[Coord],
    level: int,
    *,
    width: int,
) -> None:
    """Pre-assembly exchange: child-level skeleton data within ``width``
    of each (next-level) neighbor's merged region."""
    me = comm.rank
    nbrs = next_layout.neighbor_ranks(me)
    for w in nbrs:
        x0, y0, x1, y1 = next_layout.region_bounds(w)
        # scale parent-level bounds to child-level box units
        cx0, cy0, cx1, cy1 = 2 * x0, 2 * y0, 2 * x1, 2 * y1
        msg = {}
        for b in own_boxes:
            dx = max(cx0 - b[0], 0, b[0] - (cx1 - 1))
            dy = max(cy0 - b[1], 0, b[1] - (cy1 - 1))
            if max(dx, dy) > width:
                continue
            ids = store.active.get(b)
            if ids is None:
                continue
            if ids.size == 0:
                msg[b] = (np.empty(0, dtype=np.int64), np.empty((0, 2)), {})
            else:
                msg[b] = (ids, local.coords_of(ids), local.per_point_of(ids))
        comm.send(msg, w, tag=_tag(TAG_STRIP, level))
    for w in nbrs:
        msg = comm.recv(w, tag=_tag(TAG_STRIP, level))
        for b, (ids, coords, per_point) in msg.items():
            store.active[b] = np.asarray(ids, dtype=np.int64)
            if len(ids):
                local.extend(ids, coords, per_point)


def _assemble_parent(
    store: InteractionStore,
    geometry: QuadTree,
    level: int,
    own_boxes: list[Coord],
) -> tuple[dict[Coord, np.ndarray], dict[PairKey, np.ndarray], list[Coord]]:
    """Regroup surviving skeletons under parents and assemble near blocks.

    Assembles every parent pair ``(P, Q)`` with Chebyshev distance <= 1
    where at least one side is owned; child sub-blocks come from the
    store (modified or replicated) or fall back to kernel evaluation —
    legal because child pairs at distance >= 3 are untouched (Thm. 2).
    """
    parent_level = level - 1
    parent_own = sorted(
        {(b[0] >> 1, b[1] >> 1) for b in own_boxes},
        key=lambda c: morton_encode(c[0], c[1]),
    )
    own_set = set(parent_own)
    nside = 1 << parent_level

    def children_of(parent: Coord) -> list[Coord]:
        kids = geometry.children(parent_level, *parent)
        return [c for c in kids if c in store.active and store.active[c].size > 0]

    # parent actives for own and near-known parents
    parent_active: dict[Coord, np.ndarray] = {}
    candidates: set[Coord] = set(parent_own)
    for pxy in parent_own:
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                q = (pxy[0] + dx, pxy[1] + dy)
                if 0 <= q[0] < nside and 0 <= q[1] < nside:
                    candidates.add(q)
    for parent in candidates:
        kids = children_of(parent)
        if not kids:
            continue
        parent_active[parent] = np.concatenate([store.active[c] for c in kids])

    blocks: dict[PairKey, np.ndarray] = {}
    for p1 in parent_own:
        if p1 not in parent_active:
            continue
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                p2 = (p1[0] + dx, p1[1] + dy)
                if p2 not in parent_active:
                    continue
                for key in ((p1, p2), (p2, p1)):
                    if key in blocks:
                        continue
                    c1s = children_of(key[0])
                    c2s = children_of(key[1])
                    rows = [
                        np.hstack([store.get(c1, c2) for c2 in c2s]) for c1 in c1s
                    ]
                    blocks[key] = np.vstack(rows)

    # next level's active map: own parents only (halo refilled by the
    # level-start halo refresh at the parent level)
    next_active = {pxy: parent_active[pxy] for pxy in parent_own if pxy in parent_active}
    return next_active, blocks, parent_own
