"""Setup shim.

The execution environment ships setuptools 65 without the ``wheel``
package and has no network access, so PEP-517 editable installs
(``bdist_wheel``) are unavailable. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` perform a
legacy editable install; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
