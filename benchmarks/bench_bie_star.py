"""BIE star-curve benchmark: RS-S vs dense LU vs distributed RS-S.

Interior Laplace Dirichlet on the 5-armed smooth star, driven entirely
through the unified ``repro.solve`` pipeline: (a) dense LU on the
assembled Nystrom matrix (``method="dense_lu"``), (b) the sequential
RS-S direct solver (``method="direct"``), and (c) the same direct
solve distributed over simulated ranks (``execution="auto"`` — thread
or process backend by core count), now that the BIE kernels support
rank-local reconstruction. Columns report wall-clock seconds, the
RS-S speedup over LU at the solve stage, the simulated distributed
factorization time, and the interior max-norm error of each solution
against the analytic harmonic data — demonstrating that the compressed
(and distributed) solves match dense accuracy while scaling like O(N).
"""

import numpy as np
import pytest

from common import SCALE, save_table
from repro import SolveConfig, solve
from repro.bie import InteriorDirichletProblem, StarCurve, harmonic_exponential
from repro.core import SRSOptions
from repro.reporting import Table, format_sci, format_seconds

OPTS = SRSOptions(tol=1e-10)
RANKS = 4


def bie_sizes() -> list[int]:
    return {0: [512, 1024], 1: [512, 1024, 2048], 2: [1024, 2048, 4096, 8192]}[SCALE]


def solve_error(prob: InteriorDirichletProblem, tau: np.ndarray) -> float:
    targets = prob.interior_targets()
    u = prob.evaluate(tau, targets)
    ref = harmonic_exponential(targets)
    return float(np.max(np.abs(u - ref)) / np.max(np.abs(ref)))


def run_sweep() -> Table:
    table = Table(
        "BIE star curve via repro.solve: dense LU vs RS-S vs distributed RS-S",
        [
            "N",
            "t_lu",
            "t_lu_solve",
            "t_fact",
            "t_solve",
            "solve_speedup",
            "t_dist_fact",
            "sim_t_fact",
            "err_lu",
            "err_rss",
            "err_dist",
        ],
    )
    for n in bie_sizes():
        prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), n)
        f = prob.default_rhs()

        lu = solve(prob, f, SolveConfig(method="dense_lu"))
        rss = solve(prob, f, SolveConfig(method="direct", srs=OPTS))
        dist = solve(
            prob,
            f,
            SolveConfig(method="direct", execution="auto", ranks=RANKS, srs=OPTS),
        )

        table.add_row(
            n,
            format_seconds(lu.t_setup),
            format_seconds(lu.t_solve),
            format_seconds(rss.t_setup),
            format_seconds(rss.t_solve),
            f"{lu.t_solve / max(rss.t_solve, 1e-9):.1f}x",
            format_seconds(dist.t_setup),
            format_seconds(dist.sim_t_fact),
            format_sci(solve_error(prob, lu.x)),
            format_sci(solve_error(prob, rss.x)),
            format_sci(solve_error(prob, dist.x)),
        )
    return table


@pytest.fixture(scope="module")
def sweep():
    table = run_sweep()
    save_table("bie_star", table.render())
    return table


def test_bie_star_generated(sweep, benchmark):
    n = bie_sizes()[0]
    prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), n)
    benchmark.pedantic(
        lambda: solve(prob, prob.default_rhs(), SolveConfig(method="direct", srs=OPTS)),
        rounds=1,
        iterations=1,
    )
    assert len(sweep.rows) == len(bie_sizes())


def test_bie_star_rss_matches_lu_accuracy(sweep):
    """The RS-S error columns stay within a decade of dense LU."""
    for row in sweep.rows:
        err_lu, err_rss, err_dist = (float(v) for v in row[-3:])
        assert err_rss < max(10.0 * err_lu, 1e-8)
        assert err_dist < max(10.0 * err_lu, 1e-8)


if __name__ == "__main__":
    save_table("bie_star", run_sweep().render())
