"""BIE star-curve benchmark: RS-S factorization + solve vs dense LU.

Interior Laplace Dirichlet on the 5-armed smooth star, solved (a) by
dense LU on the assembled Nystrom matrix and (b) by the RS-S direct
solver over the bounding-box quadtree. Columns report wall-clock
seconds, the RS-S speedup over LU at the solve stage, and the interior
max-norm error of each solution against the analytic harmonic data —
demonstrating that the compressed solve matches dense accuracy while
scaling like O(N).
"""

import time

import numpy as np
import pytest
import scipy.linalg

from common import SCALE, save_table
from repro.bie import InteriorDirichletProblem, StarCurve, harmonic_exponential
from repro.core import SRSOptions
from repro.reporting import Table, format_sci, format_seconds

OPTS = SRSOptions(tol=1e-10)


def bie_sizes() -> list[int]:
    return {0: [512, 1024], 1: [512, 1024, 2048], 2: [1024, 2048, 4096, 8192]}[SCALE]


def solve_error(prob: InteriorDirichletProblem, tau: np.ndarray) -> float:
    targets = prob.interior_targets()
    u = prob.evaluate(tau, targets)
    ref = harmonic_exponential(targets)
    return float(np.max(np.abs(u - ref)) / np.max(np.abs(ref)))


def run_sweep() -> Table:
    table = Table(
        "BIE star curve: interior Laplace Dirichlet, RS-S vs dense LU (seconds)",
        ["N", "t_lu", "t_lu_solve", "t_fact", "t_solve", "solve_speedup", "err_lu", "err_rss"],
    )
    for n in bie_sizes():
        prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), n)
        f = prob.boundary_data(harmonic_exponential)

        t0 = time.perf_counter()
        lu = scipy.linalg.lu_factor(prob.dense())
        t_lu = time.perf_counter() - t0
        t0 = time.perf_counter()
        tau_lu = scipy.linalg.lu_solve(lu, f)
        t_lu_solve = time.perf_counter() - t0

        t0 = time.perf_counter()
        fact = prob.factor(OPTS)
        t_fact = time.perf_counter() - t0
        t0 = time.perf_counter()
        tau = fact.solve(f)
        t_solve = time.perf_counter() - t0

        table.add_row(
            n,
            format_seconds(t_lu),
            format_seconds(t_lu_solve),
            format_seconds(t_fact),
            format_seconds(t_solve),
            f"{t_lu_solve / t_solve:.1f}x",
            format_sci(solve_error(prob, tau_lu)),
            format_sci(solve_error(prob, tau)),
        )
    return table


@pytest.fixture(scope="module")
def sweep():
    table = run_sweep()
    save_table("bie_star", table.render())
    return table


def test_bie_star_generated(sweep, benchmark):
    n = bie_sizes()[0]
    prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), n)
    benchmark.pedantic(lambda: prob.factor(OPTS), rounds=1, iterations=1)
    assert len(sweep.rows) == len(bie_sizes())


def test_bie_star_rss_matches_lu_accuracy(sweep):
    """The RS-S error column stays within a decade of dense LU."""
    for row in sweep.rows:
        err_lu, err_rss = float(row[-2]), float(row[-1])
        assert err_rss < max(10.0 * err_lu, 1e-8)


if __name__ == "__main__":
    save_table("bie_star", run_sweep().render())
