"""Communication-complexity check (Sec. IV-B).

The paper claims every process sends O(log N + log p) messages and
O(sqrt(N/p) + log p) words. The vmpi counters give exact per-rank
counts; this bench sweeps N and p and verifies the shapes:

* messages per rank grow logarithmically in N at fixed p;
* words per rank grow ~ sqrt(N) at fixed p (halving per 4x N decrease
  in per-rank load for weak scaling).
"""

import numpy as np
import pytest

from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.parallel import parallel_srs_factor
from repro.reporting import Table

OPTS = SRSOptions(tol=1e-6, leaf_size=64)
M_SWEEP = {0: [32, 64, 128], 1: [64, 128, 256], 2: [128, 256, 512]}[SCALE]
P = 4


@pytest.fixture(scope="module")
def counts():
    table = Table(
        f"Communication counters (p = {P}): per-rank maxima over the factorization",
        ["N", "msgs/rank", "words/rank (8B)", "sqrt(N/p)", "words per sqrt(N/p)"],
    )
    raw = []
    for m in M_SWEEP:
        prob = LaplaceVolumeProblem(m)
        fact = parallel_srs_factor(prob.kernel, P, opts=OPTS)
        msgs = fact.factor_run.max_messages_per_rank()
        words = fact.factor_run.max_bytes_per_rank() / 8.0
        root = (m * m / P) ** 0.5
        table.add_row(f"{m}^2", msgs, f"{words:.0f}", f"{root:.0f}", f"{words / root:.0f}")
        raw.append((m, msgs, words))
    save_table("comm_counts", table.render())
    return raw


def test_comm_counts_generated(counts, benchmark):
    prob = LaplaceVolumeProblem(M_SWEEP[0])
    benchmark.pedantic(
        lambda: parallel_srs_factor(prob.kernel, P, opts=OPTS), rounds=1, iterations=1
    )
    assert len(counts) == len(M_SWEEP)


def test_messages_grow_logarithmically(counts):
    """Messages per rank ~ a + b log N: the *increment* per 4x N step is
    bounded by a constant, far below any polynomial growth."""
    msgs = [msg for _m, msg, _w in counts]
    increments = [b - a for a, b in zip(msgs, msgs[1:])]
    assert all(inc <= 40 for inc in increments), increments
    # logarithmic, not polynomial: the per-step increment must not grow
    # (polynomial growth in N would multiply it by ~4 per step); an
    # absolute bound on the smallest count would misfire at bench sizes
    # where the affine offset dominates (e.g. 7 -> 19 -> 31 is exactly
    # a + b log N yet fails `last < 2 * first`).
    assert increments[-1] <= increments[0] + 8, increments


def test_words_grow_like_sqrt_n(counts):
    """Words per rank scale ~ sqrt(N): ratio across a 4x N step is ~2."""
    words = [w for _m, _msg, w in counts]
    for a, b in zip(words, words[1:]):
        ratio = b / a
        assert 1.2 < ratio < 3.5, f"word growth ratio {ratio} not ~2 per 4x N"


def test_counters_backend_independent():
    """The counters these claims rest on must not depend on the
    execution backend (thread deep-copy vs process shared-memory)."""
    from repro.vmpi import process_backend_available

    if not process_backend_available():
        import pytest

        pytest.skip("process backend unavailable")
    prob = LaplaceVolumeProblem(M_SWEEP[0])
    runs = {
        be: parallel_srs_factor(prob.kernel, P, opts=OPTS, backend=be).factor_run
        for be in ("thread", "process")
    }
    for rt, rp in zip(runs["thread"].reports, runs["process"].reports):
        assert (rt.messages_sent, rt.bytes_sent) == (rp.messages_sent, rp.bytes_sent)
