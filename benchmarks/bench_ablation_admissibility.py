"""Ablation: strong vs weak admissibility rank growth.

The paper's related-work section argues that weak-admissibility formats
(HSS/HODLR) have O(N) cost only in 1D: in 2D their off-diagonal blocks
(which include *adjacent* geometry) have ranks growing like O(sqrt(N)),
while the strongly admissible blocks RS-S compresses stay O(1). This
bench measures both ranks directly on the Laplace kernel:

* weak: the block between the left and right halves of the domain
  (touching along a full edge), restricted to a fixed tolerance;
* strong: the block between a box and its far field (distance >= 2).
"""

import numpy as np
import pytest

from common import SCALE, save_table
from repro.geometry import uniform_grid
from repro.kernels import LaplaceKernelMatrix
from repro.linalg import interp_decomp
from repro.reporting import Table

M_SWEEP = {0: [8, 16, 32], 1: [16, 32, 64], 2: [32, 64, 96]}[SCALE]
TOL = 1e-6


def weak_rank(m: int) -> int:
    """Rank of the interface block between domain halves (HODLR-style)."""
    pts = uniform_grid(m)
    k = LaplaceKernelMatrix(pts, 1.0 / m)
    left = np.flatnonzero(pts[:, 0] < 0.5)
    right = np.flatnonzero(pts[:, 0] >= 0.5)
    block = k.block(left, right)
    return interp_decomp(block, TOL).rank


def strong_rank(m: int) -> int:
    """Rank of a box vs its distance->=2 far field (RS-S compression)."""
    pts = uniform_grid(m)
    k = LaplaceKernelMatrix(pts, 1.0 / m)
    # box = central quarter-cell of side 1/4
    inside = np.flatnonzero(
        (np.abs(pts[:, 0] - 0.5) < 0.125) & (np.abs(pts[:, 1] - 0.5) < 0.125)
    )
    far = np.flatnonzero(
        np.maximum(np.abs(pts[:, 0] - 0.5), np.abs(pts[:, 1] - 0.5)) > 0.375
    )
    block = k.block(far, inside)
    return interp_decomp(block, TOL).rank


@pytest.fixture(scope="module")
def ranks():
    table = Table(
        f"Ablation: weak vs strong admissibility ranks (Laplace, tol={TOL:g})",
        ["N", "weak rank (halves)", "strong rank (far field)", "weak / sqrt(N)"],
    )
    raw = []
    for m in M_SWEEP:
        w = weak_rank(m)
        s = strong_rank(m)
        table.add_row(f"{m}^2", w, s, f"{w / m:.2f}")
        raw.append((m, w, s))
    save_table("ablation_admissibility", table.render())
    return raw


def test_admissibility_generated(ranks, benchmark):
    benchmark.pedantic(lambda: weak_rank(M_SWEEP[0]), rounds=1, iterations=1)
    assert len(ranks) == len(M_SWEEP)


def test_weak_ranks_grow(ranks):
    """Weak-admissibility rank grows with N (superlinear total cost)."""
    weak = [w for _m, w, _s in ranks]
    assert weak[-1] > 1.5 * weak[0]


def test_strong_ranks_saturate(ranks):
    """Strong-admissibility rank is essentially N-independent (O(1))."""
    strong = [s for _m, _w, s in ranks]
    assert max(strong) <= min(strong) + 10
    assert max(strong) < 2.5 * min(strong)


def test_weak_scales_like_sqrt_n(ranks):
    """weak rank / sqrt(N) stays bounded — the 1D-interface signature."""
    ratios = [w / m for m, w, _s in ranks]
    assert max(ratios) < 4.0
    assert max(ratios) / min(ratios) < 3.0
