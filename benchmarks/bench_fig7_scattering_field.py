"""Figure 7: Gaussian-bump scattering potential and the total field.

Solves the Lippmann-Schwinger equation for a plane wave entering from
the left and writes grayscale PGM images of (a) the scattering
potential and (b) |total field|, plus a coarse ASCII rendering.
"""

import os

import numpy as np
import pytest

from common import RESULTS_DIR, SCALE, save_table
from repro.apps import ScatteringProblem
from repro.core import SRSOptions
from repro.reporting import write_pgm

M = {0: 48, 1: 96, 2: 192}[SCALE]
KAPPA = {0: 25.0, 1: 25.0, 2: 25.0}[SCALE]


@pytest.fixture(scope="module")
def solution():
    prob = ScatteringProblem(M, KAPPA)
    fact = prob.factor(SRSOptions(tol=1e-6, leaf_size=64))
    res = prob.pgmres(fact, prob.rhs())
    return prob, res


def _ascii(img: np.ndarray, width: int = 48) -> str:
    shades = " .:-=+*#%@"
    step = max(1, img.shape[0] // width)
    sub = img[::step, ::step]
    lo, hi = sub.min(), sub.max()
    norm = (sub - lo) / (hi - lo + 1e-300)
    # transpose: x horizontal, y vertical (print top row = max y)
    rows = []
    for j in range(norm.shape[1] - 1, -1, -1):
        rows.append("".join(shades[int(v * 9.999)] for v in norm[:, j]))
    return "\n".join(rows)


def test_fig7_field_images(solution, benchmark):
    prob, res = solution
    mu = res.x
    benchmark.pedantic(lambda: prob.total_field(mu), rounds=1, iterations=1)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    pot = prob.potential_grid()
    mag = prob.field_magnitude_grid(mu)
    write_pgm(os.path.join(RESULTS_DIR, "fig7a_potential.pgm"), pot)
    write_pgm(os.path.join(RESULTS_DIR, "fig7b_total_field.pgm"), mag)
    save_table(
        "fig7_scattering_field",
        f"Figure 7 (kappa={KAPPA}, N={M}^2): PGM images written to benchmarks/results/\n"
        f"\n(a) scattering potential b(x):\n{_ascii(pot)}\n"
        f"\n(b) total field |u|:\n{_ascii(mag)}",
    )
    assert res.converged


def test_fig7_field_physics(solution):
    prob, res = solution
    mag = prob.field_magnitude_grid(res.x)
    # incident |u| = 1; scattering creates interference structure > / < 1
    assert mag.max() > 1.05
    assert mag.min() < 0.95
    # the bump is centered; field magnitude stays ~1 near the inflow corner
    assert abs(mag[2, 2] - 1.0) < 0.5


def test_fig7_equation_residual(solution):
    prob, res = solution
    u = prob.total_field(res.x)
    sigma = prob.sigma_from_mu(res.x)
    resid = np.linalg.norm(sigma + prob.kappa**2 * prob.b * u) / np.linalg.norm(sigma)
    assert resid < 1e-6
