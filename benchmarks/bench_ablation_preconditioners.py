"""Ablation: RS-S preconditioner vs block-Jacobi vs none.

Quantifies what compressing the far field buys (Sec. I-A): the RS-S
preconditioned CG count is constant in N, block-Jacobi (drop the far
field instead of compressing it) grows, and unpreconditioned CG grows
like sqrt(condition) ~ sqrt(N). The two preconditioned runs are the
facade's ``method="pcg"`` and ``method="block_jacobi"`` strategies on
the same :class:`SolveConfig` shape, so the comparison is pure
preconditioner quality.
"""

import pytest

from common import SCALE, save_table
from repro import SolveConfig, solve
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.iterative import cg
from repro.reporting import Table, format_seconds

M_SWEEP = {0: [16, 32, 64], 1: [32, 64, 128], 2: [64, 128, 256]}[SCALE]
TOL = 1e-10


@pytest.fixture(scope="module")
def sweep():
    table = Table(
        "Ablation: preconditioner quality (Laplace, PCG to 1e-10)",
        ["N", "RS-S nit", "RS-S setup", "block-Jacobi nit", "BJ setup", "plain CG nit"],
    )
    raw = []
    for m in M_SWEEP:
        prob = LaplaceVolumeProblem(m)
        b = prob.random_rhs()
        srs = solve(
            prob,
            b,
            SolveConfig(
                method="pcg", tol=TOL, maxiter=20000, srs=SRSOptions(tol=1e-6, leaf_size=64)
            ),
        )
        jac = solve(prob, b, SolveConfig(method="block_jacobi", tol=TOL, maxiter=20000))
        n_plain = cg(prob.matvec, b, tol=TOL, maxiter=50000).iterations
        table.add_row(
            f"{m}^2",
            srs.iterations,
            format_seconds(srs.t_setup),
            jac.iterations,
            format_seconds(jac.t_setup),
            n_plain,
        )
        raw.append((m, srs.iterations, jac.iterations, n_plain))
    save_table("ablation_preconditioners", table.render())
    return raw


def test_preconditioner_ablation_generated(sweep, benchmark):
    prob = LaplaceVolumeProblem(M_SWEEP[0])
    benchmark.pedantic(
        lambda: solve(prob, prob.random_rhs(), SolveConfig(method="block_jacobi", tol=TOL)),
        rounds=1,
        iterations=1,
    )
    assert len(sweep) == len(M_SWEEP)


def test_srs_nit_constant(sweep):
    nits = [s for _m, s, _j, _p in sweep]
    assert max(nits) - min(nits) <= 3


def test_jacobi_nit_grows(sweep):
    nits = [j for _m, _s, j, _p in sweep]
    assert nits[-1] > nits[0]


def test_ordering_srs_jacobi_plain(sweep):
    for _m, s, j, p in sweep:
        assert s < j < p
