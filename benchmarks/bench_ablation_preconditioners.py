"""Ablation: RS-S preconditioner vs block-Jacobi vs none.

Quantifies what compressing the far field buys (Sec. I-A): the RS-S
preconditioned CG count is constant in N, block-Jacobi (drop the far
field instead of compressing it) grows, and unpreconditioned CG grows
like sqrt(condition) ~ sqrt(N).
"""

import time

import pytest

from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem
from repro.baselines import BlockJacobiPreconditioner
from repro.core import SRSOptions
from repro.iterative import cg
from repro.reporting import Table, format_seconds

M_SWEEP = {0: [16, 32, 64], 1: [32, 64, 128], 2: [64, 128, 256]}[SCALE]
TOL = 1e-10


@pytest.fixture(scope="module")
def sweep():
    table = Table(
        "Ablation: preconditioner quality (Laplace, PCG to 1e-10)",
        ["N", "RS-S nit", "RS-S setup", "block-Jacobi nit", "BJ setup", "plain CG nit"],
    )
    raw = []
    for m in M_SWEEP:
        prob = LaplaceVolumeProblem(m)
        b = prob.random_rhs()
        t0 = time.perf_counter()
        fact = prob.factor(SRSOptions(tol=1e-6, leaf_size=64))
        t_srs = time.perf_counter() - t0
        t0 = time.perf_counter()
        jac = BlockJacobiPreconditioner(prob.kernel, leaf_size=64)
        t_jac = time.perf_counter() - t0
        n_srs = cg(prob.matvec, b, preconditioner=fact.solve, tol=TOL, maxiter=20000).iterations
        n_jac = cg(prob.matvec, b, preconditioner=jac.solve, tol=TOL, maxiter=20000).iterations
        n_plain = cg(prob.matvec, b, tol=TOL, maxiter=50000).iterations
        table.add_row(
            f"{m}^2", n_srs, format_seconds(t_srs), n_jac, format_seconds(t_jac), n_plain
        )
        raw.append((m, n_srs, n_jac, n_plain))
    save_table("ablation_preconditioners", table.render())
    return raw


def test_preconditioner_ablation_generated(sweep, benchmark):
    prob = LaplaceVolumeProblem(M_SWEEP[0])
    benchmark.pedantic(
        lambda: BlockJacobiPreconditioner(prob.kernel, leaf_size=64), rounds=1, iterations=1
    )
    assert len(sweep) == len(M_SWEEP)


def test_srs_nit_constant(sweep):
    nits = [s for _m, s, _j, _p in sweep]
    assert max(nits) - min(nits) <= 3


def test_jacobi_nit_grows(sweep):
    nits = [j for _m, _s, j, _p in sweep]
    assert nits[-1] > nits[0]


def test_ordering_srs_jacobi_plain(sweep):
    for _m, s, j, p in sweep:
        assert s < j < p
