"""Benchmark-suite configuration: make `pytest benchmarks/` runnable."""

import sys
from pathlib import Path

# allow `import common` from bench modules regardless of rootdir
sys.path.insert(0, str(Path(__file__).parent))
