"""Figure 6: strong and weak scalability of the Laplace factorization.

(a) strong scaling: t_fact vs p at fixed N; (b) weak scaling: t_fact vs
p at fixed N/p. Rendered as data tables plus an ASCII log-log plot.

Driven through the unified facade: ``repro.Solver(...).factorization``
builds each distributed factorization (no solve needed for t_fact).
"""

import pytest

import repro
from common import SCALE, save_table
from repro.api import SolveConfig
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.parallel.ownership import max_ranks_for_tree
from repro.reporting import ScalingSeries, Table, ascii_loglog, format_seconds
from repro.tree import QuadTree

OPTS = SRSOptions(tol=1e-6, leaf_size=64)

STRONG_M = {0: [64, 128], 1: [128, 256], 2: [128, 256]}[SCALE]
STRONG_P = {0: [1, 4, 16], 1: [1, 4, 16], 2: [1, 4, 16, 64]}[SCALE]
WEAK_BASE_M = {0: 32, 1: 64, 2: 128}[SCALE]  # N/p = WEAK_BASE_M^2

from common import process_counts  # noqa: E402


def _pmax(m: int) -> int:
    nlevels = QuadTree.for_leaf_size(LaplaceVolumeProblem(m).points, 64).nlevels
    return max_ranks_for_tree(nlevels)


def _t_fact(prob, p: int) -> float:
    cfg = SolveConfig(method="direct", execution="thread", ranks=p, srs=OPTS)
    return repro.Solver(prob, cfg).factorization.t_fact


@pytest.fixture(scope="module")
def scaling():
    strong = []
    for m in STRONG_M:
        prob = LaplaceVolumeProblem(m)
        series = ScalingSeries(f"N={m}^2")
        for p in process_counts(m):
            if p > _pmax(m) or p not in STRONG_P:
                continue
            series.add(p, _t_fact(prob, p))
        strong.append(series)

    weak = ScalingSeries(f"N/p={WEAK_BASE_M}^2")
    for p in STRONG_P:
        m = WEAK_BASE_M * int(p**0.5)
        prob = LaplaceVolumeProblem(m)
        if p > _pmax(m):
            continue
        weak.add(p, _t_fact(prob, p))

    t = Table("Figure 6a: Laplace strong scaling (t_fact, simulated s)", ["series", "p", "t_fact", "efficiency"])
    for s in strong:
        eff = s.parallel_efficiency()
        for i, (p, tf) in enumerate(zip(s.p_values, s.times)):
            t.add_row(s.label, p, format_seconds(tf), f"{eff[i]:.2f}")
    t2 = Table("Figure 6b: Laplace weak scaling (t_fact, simulated s)", ["series", "p", "N", "t_fact"])
    for p, tf in zip(weak.p_values, weak.times):
        m = WEAK_BASE_M * int(p**0.5)
        t2.add_row(weak.label, p, f"{m}^2", format_seconds(tf))
    art = ascii_loglog(strong + [weak])
    save_table("fig6_laplace_scaling", t.render() + "\n\n" + t2.render() + "\n\n" + art)
    return strong, weak


def test_fig6_generated(scaling, benchmark):
    prob = LaplaceVolumeProblem(STRONG_M[0])
    benchmark.pedantic(lambda: _t_fact(prob, 4), rounds=1, iterations=1)
    strong, weak = scaling
    assert all(len(s.times) >= 2 for s in strong)


def test_fig6_strong_scaling_monotone(scaling):
    """The largest-N series must gain from more ranks."""
    strong, _ = scaling
    s = strong[-1]
    assert s.times[-1] < s.times[0]


def test_fig6_weak_scaling_bounded(scaling):
    """Weak scaling: t_fact grows far slower than the 4x-per-step work.

    Only meaningful at paper-shaped sizes (SCALE >= 1): at the CI scale
    the base problem (N/p = 32^2) is latency/serialization-bound, so
    the simulated per-rank overhead — not the O(N) work — dominates the
    ratio and the bound fails even on the pre-facade engine.
    """
    _, weak = scaling
    assert all(t > 0 for t in weak.times)
    if SCALE >= 1 and len(weak.times) >= 2:
        assert weak.times[-1] < weak.times[0] * len(weak.times) * 2.5
