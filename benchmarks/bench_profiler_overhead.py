"""Profiler overhead: wall-clock cost of sampling at increasing rates.

The sampling profiler must be cheap enough to leave on during real
solves — its entire cost is one background thread walking
``sys._current_frames()`` at ``REPRO_OBS_PROFILE_HZ``. This bench
times the same factor+solve with the profiler off and across a rate
sweep (including the default rate), prints the overhead table, writes
``BENCH_profiler_overhead.json`` at the repository root, and asserts
the default rate stays under the acceptance bound.
"""

import json
import os
import time

import pytest

import repro
from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem
from repro.obs import SamplingProfiler, trace
from repro.obs.profiler import DEFAULT_HZ
from repro.reporting import Table, format_seconds

JSON_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_profiler_overhead.json"
)

M = {0: 32, 1: 64, 2: 128}[SCALE]
REPEATS = {0: 3, 1: 5, 2: 5}[SCALE]
RATES = (0.0, 25.0, DEFAULT_HZ, 250.0)
#: acceptance bound on min-of-N overhead at the default sampling rate;
#: generous because CI boxes are noisy and often single-core — the
#: bench exists to catch the sampler becoming a CPU hog, which costs
#: far more than this
MAX_DEFAULT_OVERHEAD = 0.25


def _timed_solve(prob, b, hz):
    prof = SamplingProfiler()
    if hz > 0:
        assert prof.start(hz)
    try:
        t0 = time.perf_counter()
        repro.solve(prob, b)
        elapsed = time.perf_counter() - t0
    finally:
        prof.stop()
    return elapsed, sum(prof.snapshot_table().values())


@pytest.fixture(scope="module")
def sweep():
    prob = LaplaceVolumeProblem(M)
    b = prob.random_rhs(0)
    was = trace.enabled
    trace.enable()  # spans live so samples have something to attribute to
    try:
        repro.solve(prob, b)  # warm imports/caches out of the measurement
        rows = []
        for hz in RATES:
            best, samples = min(
                _timed_solve(prob, b, hz) for _ in range(REPEATS)
            )
            rows.append({"hz": hz, "t_best": best, "samples": samples})
    finally:
        trace.set_enabled(was)
        trace.clear()
    base = rows[0]["t_best"]
    for row in rows:
        row["overhead"] = row["t_best"] / base - 1.0

    result = {"n": prob.n, "scale": SCALE, "repeats": REPEATS,
              "default_hz": DEFAULT_HZ, "rows": rows}
    with open(JSON_PATH, "w") as fh:
        json.dump(result, fh, indent=2)

    table = Table(
        f"Profiler overhead: factor+solve, N = {M}^2 (min of {REPEATS})",
        ["rate (Hz)", "t_solve", "overhead", "samples"],
    )
    for row in rows:
        table.add_row(
            "off" if row["hz"] == 0 else f"{row['hz']:g}",
            format_seconds(row["t_best"]),
            f"{100 * row['overhead']:+.1f}%",
            row["samples"],
        )
    save_table("profiler_overhead", table.render())
    return rows


def test_profiler_bench_generated(sweep, benchmark):
    prob = LaplaceVolumeProblem(M)
    b = prob.random_rhs(0)
    benchmark.pedantic(
        lambda: _timed_solve(prob, b, DEFAULT_HZ), rounds=1, iterations=1
    )
    assert os.path.exists(JSON_PATH)


def test_default_rate_overhead_bounded(sweep):
    (row,) = [r for r in sweep if r["hz"] == DEFAULT_HZ]
    assert row["overhead"] <= MAX_DEFAULT_OVERHEAD, row


def test_sampler_actually_sampled(sweep):
    # faster rates collect at least as many samples, and the default
    # rate sees the solve at all (it runs far longer than one period)
    (row,) = [r for r in sweep if r["hz"] == DEFAULT_HZ]
    assert row["samples"] > 0
