"""Table II: runtime for the 2D Laplace kernel vs (N, p).

Regenerates the paper's columns: N, p, t_fact = t_comp + t_other, and
t_solve = t_comp + t_other for one application of the inverse, at
eps = 1e-6. Times for p > 1 are simulated-clock seconds (see DESIGN.md);
the shape to check is the strong-scaling drop down each N block.

Driven entirely through the unified facade: one ``repro.Solver`` per
(N, p) cell builds the distributed factorization and the report's
underlying :class:`~repro.parallel.driver.ParallelFactorization`
supplies the simulated-clock columns.
"""

import pytest

import repro
from common import laplace_grid_sides, process_counts, save_table
from repro.api import SolveConfig
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.reporting import Table, format_seconds

OPTS = SRSOptions(tol=1e-6, leaf_size=64)


def _config(p: int) -> SolveConfig:
    return SolveConfig(method="direct", execution="thread", ranks=p, srs=OPTS)


def run_sweep() -> Table:
    table = Table(
        "Table II: 2D Laplace runtime (eps = 1e-6); simulated seconds for p > 1",
        ["N", "p", "t_fact", "t_comp", "t_other", "t_solve", "s_comp", "s_other"],
    )
    for m in laplace_grid_sides():
        prob = LaplaceVolumeProblem(m)
        b = prob.random_rhs()
        for p in process_counts(m):
            solver = repro.Solver(prob, _config(p))
            report = solver.solve(b)
            fact = report.factorization
            solve_run = fact.last_solve_run
            table.add_row(
                f"{m}^2",
                p,
                format_seconds(report.sim_t_fact),
                format_seconds(report.sim_t_comp),
                format_seconds(report.sim_t_other),
                format_seconds(report.sim_t_solve),
                format_seconds(solve_run.compute),
                format_seconds(solve_run.other),
            )
    return table


@pytest.fixture(scope="module")
def sweep():
    table = run_sweep()
    save_table("table2_laplace_runtime", table.render())
    return table


def test_table2_rows_generated(sweep, benchmark):
    m = laplace_grid_sides()[0]
    prob = LaplaceVolumeProblem(m)
    benchmark.pedantic(
        lambda: repro.Solver(prob, _config(4)).factorization, rounds=1, iterations=1
    )
    assert len(sweep.rows) >= 4


def test_table2_factorization_scales(sweep):
    """t_fact decreases with p at the largest N (strong-scaling shape).

    Small-N rows are latency/serialization bound at our scale — the
    paper's smallest parallel run is N = 2048^2.
    """
    by_n = {}
    for row in sweep.rows:
        by_n.setdefault(row[0], []).append(float(row[2]))
    largest = list(by_n)[-1]
    times = by_n[largest]
    if len(times) >= 2:
        assert times[-1] < times[0], f"no strong-scaling gain at N={largest}"
