"""Ablation: leaf size and ID method.

Design choices called out in DESIGN.md: the leaf occupancy (paper:
O(r) points per leaf) and the deterministic-CPQR vs randomized-sketch
interpolative decomposition (Sec. II-B).
"""

import time

import pytest

from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.reporting import Table, format_sci, format_seconds

M = {0: 32, 1: 64, 2: 128}[SCALE]
LEAF_SIZES = [16, 32, 64, 128]


@pytest.fixture(scope="module")
def sweep():
    prob = LaplaceVolumeProblem(M)
    b = prob.random_rhs()
    t1 = Table(
        f"Ablation: leaf size (N={M}^2, eps=1e-6)",
        ["leaf_size", "levels", "t_fact", "relres", "memory MB"],
    )
    raw_leaf = []
    for leaf in LEAF_SIZES:
        opts = SRSOptions(tol=1e-6, leaf_size=leaf)
        t0 = time.perf_counter()
        fact = prob.factor(opts)
        tf = time.perf_counter() - t0
        rr = prob.relres(fact.solve(b), b)
        t1.add_row(
            leaf,
            len(fact.stats.levels()),
            format_seconds(tf),
            format_sci(rr),
            f"{fact.memory_bytes() / 1e6:.1f}",
        )
        raw_leaf.append((leaf, tf, rr))

    t2 = Table(
        f"Ablation: ID method (N={M}^2, eps=1e-6, leaf 64)",
        ["method", "t_fact", "relres", "nit"],
    )
    raw_id = []
    for method in ("cpqr", "randomized"):
        opts = SRSOptions(tol=1e-6, leaf_size=64, id_method=method)
        t0 = time.perf_counter()
        fact = prob.factor(opts)
        tf = time.perf_counter() - t0
        rr = prob.relres(fact.solve(b), b)
        nit = prob.pcg(fact, b).iterations
        t2.add_row(method, format_seconds(tf), format_sci(rr), nit)
        raw_id.append((method, tf, rr, nit))
    save_table("ablation_algorithm", t1.render() + "\n\n" + t2.render())
    return raw_leaf, raw_id


def test_ablation_generated(sweep, benchmark):
    prob = LaplaceVolumeProblem(M)
    benchmark.pedantic(
        lambda: prob.factor(SRSOptions(tol=1e-6, leaf_size=64)), rounds=1, iterations=1
    )
    raw_leaf, raw_id = sweep
    assert len(raw_leaf) == len(LEAF_SIZES) and len(raw_id) == 2


def test_accuracy_insensitive_to_leaf_size(sweep):
    raw_leaf, _ = sweep
    rrs = [rr for _l, _t, rr in raw_leaf]
    assert max(rrs) < 100 * min(rrs)


def test_randomized_id_usable(sweep):
    """The randomized ID keeps nit small (a couple extra at most)."""
    _, raw_id = sweep
    by = {m: nit for m, _t, _rr, nit in raw_id}
    assert by["randomized"] <= by["cpqr"] + 5
