"""Ablation: proxy-circle geometry (radius factor and point count).

DESIGN.md calls out the proxy surrogate as the key approximation
(Sec. II-C; the paper fixes radius 2.5L). This bench sweeps the radius
factor and the number of proxy points and reports accuracy and rank —
validating that the paper's choice sits on the flat part of the curve.
"""

import time

import pytest

from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.reporting import Table, format_sci, format_seconds

M = {0: 32, 1: 64, 2: 128}[SCALE]
RADII = [1.8, 2.0, 2.5, 3.0]
NPROXY = [16, 32, 64, 128]


@pytest.fixture(scope="module")
def sweep():
    prob = LaplaceVolumeProblem(M)
    b = prob.random_rhs()
    t1 = Table(
        f"Ablation: proxy radius factor (N={M}^2, eps=1e-6, n_proxy=64)",
        ["radius/L", "t_fact", "relres", "avg leaf rank"],
    )
    raw_r = []
    for r in RADII:
        opts = SRSOptions(tol=1e-6, leaf_size=64, proxy_radius_factor=r)
        t0 = time.perf_counter()
        fact = prob.factor(opts)
        tf = time.perf_counter() - t0
        rr = prob.relres(fact.solve(b), b)
        leaf = max(fact.stats.levels())
        t1.add_row(r, format_seconds(tf), format_sci(rr), f"{fact.stats.average_rank(leaf):.1f}")
        raw_r.append((r, rr))

    t2 = Table(
        f"Ablation: proxy point count (N={M}^2, eps=1e-6, radius=2.5L)",
        ["n_proxy", "t_fact", "relres", "avg leaf rank"],
    )
    raw_n = []
    for n in NPROXY:
        opts = SRSOptions(tol=1e-6, leaf_size=64, n_proxy=n)
        t0 = time.perf_counter()
        fact = prob.factor(opts)
        tf = time.perf_counter() - t0
        rr = prob.relres(fact.solve(b), b)
        leaf = max(fact.stats.levels())
        t2.add_row(n, format_seconds(tf), format_sci(rr), f"{fact.stats.average_rank(leaf):.1f}")
        raw_n.append((n, rr))
    save_table("ablation_proxy", t1.render() + "\n\n" + t2.render())
    return raw_r, raw_n


def test_ablation_generated(sweep, benchmark):
    prob = LaplaceVolumeProblem(M)
    benchmark.pedantic(
        lambda: prob.factor(SRSOptions(tol=1e-6, leaf_size=64)), rounds=1, iterations=1
    )
    raw_r, raw_n = sweep
    assert len(raw_r) == len(RADII) and len(raw_n) == len(NPROXY)


def test_papers_radius_choice_is_accurate(sweep):
    """radius 2.5L achieves accuracy within ~an order of the best radius."""
    raw_r, _ = sweep
    best = min(rr for _r, rr in raw_r)
    at_25 = dict(raw_r)[2.5]
    assert at_25 <= 50 * best


def test_enough_proxy_points_saturates(sweep):
    """Accuracy saturates once the circle is well resolved (64 pts)."""
    _, raw_n = sweep
    d = dict(raw_n)
    assert d[128] <= d[16] * 1.5  # more points never hurt much
    assert d[64] < 1e-1
