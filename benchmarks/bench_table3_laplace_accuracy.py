"""Table III: Laplace accuracy vs compression tolerance.

Columns: eps, N, t_fact, t_solve, relres (FFT-verified residual of the
one-shot direct solve), and nit (PCG iterations to 1e-12 with the
factorization as preconditioner). Paper shape: relres ~ 1e3 * eps and
nit constant (4-6 at eps=1e-6, 2-3 at 1e-9, 2 at 1e-12).

Driven through the unified facade: the direct report supplies
t_fact/t_solve/relres, and the PCG refinement reuses its factorization
via ``repro.solve(..., factorization=...)``.
"""

import pytest

import repro
from common import accuracy_grid_sides, save_table, tolerances
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.reporting import Table, format_sci, format_seconds


def run_sweep() -> Table:
    table = Table(
        "Table III: Laplace accuracy (sequential, wall-clock seconds)",
        ["eps", "N", "t_fact", "t_solve", "relres", "nit"],
    )
    for tol in tolerances():
        for m in accuracy_grid_sides():
            prob = LaplaceVolumeProblem(m)
            b = prob.random_rhs()
            opts = SRSOptions(tol=tol, leaf_size=64)
            direct = repro.solve(prob, b, method="direct", srs=opts)
            refined = repro.solve(
                prob,
                b,
                method="pcg",
                tol=1e-12,
                srs=opts,
                factorization=direct.factorization,
            )
            table.add_row(
                format_sci(tol),
                f"{m}^2",
                format_seconds(direct.t_setup),
                format_seconds(direct.t_solve),
                format_sci(direct.relres),
                refined.iterations,
            )
    return table


@pytest.fixture(scope="module")
def sweep():
    table = run_sweep()
    save_table("table3_laplace_accuracy", table.render())
    return table


def test_table3_generated(sweep, benchmark):
    m = accuracy_grid_sides()[0]
    prob = LaplaceVolumeProblem(m)
    benchmark.pedantic(
        lambda: repro.solve(prob, prob.random_rhs(), srs=SRSOptions(tol=1e-6, leaf_size=64)),
        rounds=1,
        iterations=1,
    )
    assert len(sweep.rows) >= 4


def test_table3_relres_tracks_tolerance(sweep):
    """Tighter eps gives (much) smaller relres at every N."""
    by_n = {}
    for row in sweep.rows:
        by_n.setdefault(row[1], []).append((float(row[0]), float(row[4])))
    for n, pairs in by_n.items():
        pairs.sort(reverse=True)
        res = [r for _tol, r in pairs]
        assert res == sorted(res, reverse=True), f"relres not monotone at N={n}"
        assert res[-1] < res[0] / 100


def test_table3_nit_small_and_stable(sweep):
    """Preconditioned CG converges in a handful of iterations."""
    nits = [int(row[5]) for row in sweep.rows]
    assert max(nits) <= 12
