"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` picks the problem sizes (0 = CI-sized default,
1 = medium paper-shaped sweeps, 2 = large). Every bench prints a table
with the same row layout as the corresponding table/figure in the
paper and writes it under ``benchmarks/results/``.
"""

from __future__ import annotations

import os

from repro.util.config import bench_scale

SCALE = bench_scale()

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text + "\n", flush=True)


def laplace_grid_sides() -> list[int]:
    """Grid sides m (N = m^2) for the Laplace runtime sweeps.

    The paper runs N = 2048^2 .. 32768^2; the scaled-down sweep keeps
    the same geometric progression and, like the paper, only adds ranks
    once N is large enough that interior boxes dominate.
    """
    return {0: [64, 128], 1: [64, 128, 256], 2: [128, 256, 512]}[SCALE]


def helmholtz_grid_sides() -> list[int]:
    return {0: [32, 64], 1: [64, 96], 2: [96, 128, 192]}[SCALE]


def accuracy_grid_sides() -> list[int]:
    """Smaller sizes for the accuracy sweeps (sequential, eps sweep)."""
    return {0: [32, 64], 1: [32, 64, 128], 2: [64, 128, 256]}[SCALE]


def process_counts(m: int, *, min_region: int = 4) -> list[int]:
    """Process sweep per grid side.

    A rank must own at least ``min_region x min_region`` leaf boxes for
    interior boxes to exist (Sec. III-A: "the number of interior boxes
    dominates" only when regions are large) — the scaling shape only
    appears above that, so p grows with N exactly as in the paper.
    """
    import math

    nlevels = max(2, math.ceil(math.log(m * m / 64, 4)))
    leaf_side = 2**nlevels
    cap = {0: 16, 1: 64, 2: 64}[SCALE]
    out = [1]
    for p in (4, 16, 64):
        if p <= cap and leaf_side // int(math.isqrt(p)) >= min_region:
            out.append(p)
    return out


def tolerances() -> list[float]:
    return {0: [1e-6, 1e-9], 1: [1e-6, 1e-9, 1e-12], 2: [1e-3, 1e-6, 1e-9, 1e-12]}[SCALE]


def nlevels_for(m: int, p: int, leaf_size: int = 64) -> int:
    """Tree depth for a distributed run: natural depth for the leaf
    size, but at least ``log4(p) + 2`` so every rank owns a 4x4 block of
    leaves and interior boxes exist (the paper's weak-scaling runs keep
    N/p huge for the same reason; at our scaled-down N a slightly deeper
    tree restores the interior/boundary ratio)."""
    import math

    natural = max(2, math.ceil(math.log(m * m / leaf_size, 4)))
    g = round(math.log(max(p, 1), 4))
    return max(natural, g + 2)
