"""Table VII + Figure 11: one process per compute node.

Reruns a subset of the Table IV experiments with the *inter-node* cost
model (higher latency, lower bandwidth) in place of the intra-node one,
i.e. the same algorithm and byte counts but network pricing on every
message. Paper finding to reproduce: the extra wall-clock time is
small, because the solver communicates little (neighbor-only messages,
O(sqrt(N/p)) words).
"""

import pytest

from common import SCALE, save_table
from repro.apps import ScatteringProblem
from repro.core import SRSOptions
from repro.parallel import parallel_srs_factor
from repro.reporting import ScalingSeries, Table, ascii_loglog, format_seconds
from repro.vmpi import INTER_NODE, INTRA_NODE

OPTS = SRSOptions(tol=1e-6, leaf_size=64)
KAPPA = {0: 10.0, 1: 25.0, 2: 25.0}[SCALE]
CASES = {  # (m, p)
    0: [(32, 4), (48, 4), (48, 16)],
    1: [(64, 4), (64, 16), (96, 16)],
    2: [(128, 16), (128, 64), (192, 64)],
}[SCALE]
WEAK_BASE = {0: 24, 1: 48, 2: 96}[SCALE]


@pytest.fixture(scope="module")
def sweep():
    table = Table(
        "Table VII: 1 process per node (inter-node) vs packed (intra-node)",
        ["N", "p", "intra t_fact", "inter t_fact", "intra t_other", "inter t_other", "overhead %"],
    )
    raw = []
    for m, p in CASES:
        prob = ScatteringProblem(m, KAPPA)
        intra = parallel_srs_factor(prob.kernel, p, opts=OPTS, cost_model=INTRA_NODE)
        inter = parallel_srs_factor(prob.kernel, p, opts=OPTS, cost_model=INTER_NODE)
        overhead = (inter.t_fact - intra.t_fact) / intra.t_fact * 100.0
        table.add_row(
            f"{m}^2",
            p,
            format_seconds(intra.t_fact),
            format_seconds(inter.t_fact),
            format_seconds(intra.t_fact_other),
            format_seconds(inter.t_fact_other),
            f"{overhead:.1f}",
        )
        raw.append((m, p, intra.t_fact, inter.t_fact))

    # Figure 11: weak scaling with 1 process per node
    weak = ScalingSeries(f"N/p={WEAK_BASE}^2 (inter-node)")
    for p in (1, 4, 16):
        m = WEAK_BASE * int(p**0.5)
        prob = ScatteringProblem(m, KAPPA)
        weak.add(p, parallel_srs_factor(prob.kernel, p, opts=OPTS, cost_model=INTER_NODE).t_fact)
    t2 = Table("Figure 11: weak scaling, 1 process per node", ["p", "N", "t_fact"])
    for p, tf in zip(weak.p_values, weak.times):
        t2.add_row(p, f"{WEAK_BASE * int(p**0.5)}^2", format_seconds(tf))
    save_table(
        "table7_fig11_one_process_per_node",
        table.render() + "\n\n" + t2.render() + "\n\n" + ascii_loglog([weak]),
    )
    return raw, weak


def test_table7_generated(sweep, benchmark):
    m, p = CASES[0]
    prob = ScatteringProblem(m, KAPPA)
    benchmark.pedantic(
        lambda: parallel_srs_factor(prob.kernel, p, opts=OPTS, cost_model=INTER_NODE),
        rounds=1,
        iterations=1,
    )
    raw, weak = sweep
    assert len(raw) == len(CASES) and weak.times


def test_table7_network_overhead_small(sweep):
    """The paper's headline: inter-node extra time is negligible."""
    raw, _ = sweep
    for m, p, intra, inter in raw:
        assert inter >= intra * 0.99
        assert inter <= intra * 1.5, f"network overhead too large at N={m}^2 p={p}"


def test_fig11_weak_scaling_flatish(sweep):
    """Weak-scaled time grows far slower than total work (16x here).

    The paper's Fig. 11 curves rise gently (~3x from p=1 to p=256); at
    our scale the p=1 point has no boundary work at all, so the first
    step is the steepest — bound the overall growth instead.
    """
    _, weak = sweep
    if len(weak.times) >= 2:
        total_work_growth = weak.p_values[-1] / weak.p_values[0]
        assert weak.times[-1] / weak.times[0] < total_work_growth
