"""Figure 8: strong and weak scalability of the Helmholtz factorization.

Driven through the unified facade, exactly like Figure 6.
"""

import pytest

import repro
from common import SCALE, save_table
from repro.api import SolveConfig
from repro.apps import ScatteringProblem
from repro.core import SRSOptions
from repro.parallel.ownership import max_ranks_for_tree
from repro.reporting import ScalingSeries, Table, ascii_loglog, format_seconds
from repro.tree import QuadTree

OPTS = SRSOptions(tol=1e-6, leaf_size=64)
KAPPA = 25.0
STRONG_M = {0: [48], 1: [64, 96], 2: [128, 192]}[SCALE]
P_SWEEP = {0: [1, 4, 16], 1: [1, 4, 16], 2: [1, 4, 16, 64]}[SCALE]
WEAK_BASE_M = {0: 24, 1: 48, 2: 96}[SCALE]


def _pmax(m: int) -> int:
    prob = ScatteringProblem(m, KAPPA)
    return max_ranks_for_tree(QuadTree.for_leaf_size(prob.points, 64).nlevels)


def _t_fact(prob, p: int) -> float:
    cfg = SolveConfig(method="direct", execution="thread", ranks=p, srs=OPTS)
    return repro.Solver(prob, cfg).factorization.t_fact


@pytest.fixture(scope="module")
def scaling():
    strong = []
    for m in STRONG_M:
        prob = ScatteringProblem(m, KAPPA)
        s = ScalingSeries(f"N={m}^2")
        for p in P_SWEEP:
            if p > _pmax(m):
                continue
            s.add(p, _t_fact(prob, p))
        strong.append(s)
    weak = ScalingSeries(f"N/p={WEAK_BASE_M}^2")
    for p in P_SWEEP:
        m = WEAK_BASE_M * int(p**0.5)
        if p > _pmax(m):
            continue
        prob = ScatteringProblem(m, KAPPA)
        weak.add(p, _t_fact(prob, p))

    t = Table("Figure 8a: Helmholtz strong scaling (t_fact)", ["series", "p", "t_fact", "efficiency"])
    for s in strong:
        eff = s.parallel_efficiency()
        for i, (p, tf) in enumerate(zip(s.p_values, s.times)):
            t.add_row(s.label, p, format_seconds(tf), f"{eff[i]:.2f}")
    t2 = Table("Figure 8b: Helmholtz weak scaling (t_fact)", ["series", "p", "N", "t_fact"])
    for p, tf in zip(weak.p_values, weak.times):
        t2.add_row(weak.label, p, f"{WEAK_BASE_M * int(p**0.5)}^2", format_seconds(tf))
    save_table(
        "fig8_helmholtz_scaling",
        t.render() + "\n\n" + t2.render() + "\n\n" + ascii_loglog(strong + [weak]),
    )
    return strong, weak


def test_fig8_generated(scaling, benchmark):
    prob = ScatteringProblem(STRONG_M[0], KAPPA)
    benchmark.pedantic(lambda: _t_fact(prob, 4), rounds=1, iterations=1)
    strong, weak = scaling
    assert strong and weak.times


def test_fig8_strong_scaling_monotone(scaling):
    strong, _ = scaling
    for s in strong:
        if len(s.times) >= 2:
            assert s.times[-1] < s.times[0]


def test_fig8_speedup_better_than_laplace():
    """Paper: Helmholtz achieves greater parallel speedups than Laplace
    (more compute per byte communicated)."""
    from repro.apps import LaplaceVolumeProblem

    m = STRONG_M[0]
    lp = LaplaceVolumeProblem(m)
    hp = ScatteringProblem(m, KAPPA)
    sp_l = _t_fact(lp, 1) / _t_fact(lp, 4)
    sp_h = _t_fact(hp, 1) / _t_fact(hp, 4)
    assert sp_h > sp_l * 0.8  # at least comparable; typically greater
