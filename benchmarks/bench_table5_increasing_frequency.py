"""Table V: Helmholtz with increasing frequency (32 points/wavelength).

kappa = pi sqrt(N) / 16 grows with N. Columns: N, kappa/2pi, t_fact,
t_solve, nit (preconditioned GMRES to 1e-12) and ~nit (unpreconditioned
GMRES(20)). Paper shape: t_fact grows superlinearly (rank ~ O(kappa)),
nit grows slowly, ~nit explodes.

Driven through the unified facade: one direct report per N supplies
t_fact/t_solve and its factorization preconditions the GMRES
refinement; the ``~nit`` baseline is the registry's unpreconditioned
``method="gmres"`` with the paper's restart of 20.
"""

import numpy as np
import pytest

import repro
from common import SCALE, save_table
from repro.apps import ScatteringProblem
from repro.core import SRSOptions
from repro.reporting import Table, format_seconds

M_SWEEP = {0: [16, 32, 48], 1: [32, 64, 96], 2: [64, 128, 192]}[SCALE]
UNPREC_CAP = {0: 3000, 1: 5000, 2: 8000}[SCALE]
OPTS = SRSOptions(tol=1e-6, leaf_size=64)


@pytest.fixture(scope="module")
def sweep():
    table = Table(
        "Table V: Helmholtz, increasing frequency (32 points per wavelength)",
        ["N", "kappa/2pi", "t_fact", "t_solve", "nit", "~nit (GMRES(20))"],
    )
    rows_raw = []
    for m in M_SWEEP:
        prob = ScatteringProblem.increasing_frequency(m)
        b = prob.rhs()
        direct = repro.solve(prob, b, method="direct", srs=OPTS)
        pre = repro.solve(
            prob,
            b,
            method="pgmres",
            tol=1e-12,
            srs=OPTS,
            factorization=direct.factorization,
        )
        plain = repro.solve(
            prob, b, method="gmres", tol=1e-12, restart=20, maxiter=UNPREC_CAP
        )
        nit_plain = plain.iterations if plain.converged else f"> {UNPREC_CAP}"
        table.add_row(
            f"{m}^2",
            f"{prob.kappa / (2 * np.pi):.2f}",
            format_seconds(direct.t_setup),
            format_seconds(direct.t_solve),
            pre.iterations,
            nit_plain,
        )
        rows_raw.append(
            (m, direct.t_setup, pre.iterations, plain.iterations, plain.converged)
        )
    save_table("table5_increasing_frequency", table.render())
    return table, rows_raw


def test_table5_generated(sweep, benchmark):
    prob = ScatteringProblem.increasing_frequency(M_SWEEP[0])
    benchmark.pedantic(
        lambda: repro.solve(prob, prob.rhs(), srs=OPTS), rounds=1, iterations=1
    )
    table, _ = sweep
    assert len(table.rows) == len(M_SWEEP)


def test_table5_preconditioned_iterations_stay_small(sweep):
    _, raw = sweep
    assert all(nit <= 15 for _m, _t, nit, _pn, _c in raw)


def test_table5_unpreconditioned_grows_fast(sweep):
    """~nit grows much faster than nit with frequency (paper: orders of
    magnitude at the largest sizes)."""
    _, raw = sweep
    plain = [pn for _m, _t, _nit, pn, _c in raw]
    assert plain[-1] > plain[0]
    assert plain[-1] > 5 * raw[-1][2]  # far above the preconditioned count


def test_table5_factor_time_grows_superlinearly(sweep):
    """t_fact per point grows with kappa (rank growth, Fig. 9 right)."""
    _, raw = sweep
    per_point = [t / (m * m) for m, t, _n, _pn, _c in raw]
    assert per_point[-1] > per_point[0]
