"""Serving throughput: cached+batched solves vs naive per-request calls.

The serving claim under test — the whole point of ``repro.service`` —
is that a stream of requests against one operator costs *one*
factorization plus cheap solves, while the naive client pays the
factorization on every request. This bench fires the same request
stream three ways:

* **naive** — one ``repro.solve`` per request (factor + solve each
  time): what a stateless script runner pays.
* **service (strict)** — ``SolveService`` with the cache and the rhs
  batcher in ``strict`` parity mode: bitwise-identical solutions to
  the naive path.
* **service (block)** — same, with coalesced ``(N, nrhs)`` block
  applies (rounding-level differences only).

Writes ``BENCH_service_throughput.json`` at the repository root (the
CI artifact) and asserts the acceptance bar: **>= 5x** strict-mode
throughput with bitwise-identical solutions.
"""

import json
import os
import time

import numpy as np
import pytest

import repro
from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.reporting import Table, format_seconds
from repro.service import SolveService

JSON_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_service_throughput.json"
)

M = {0: 32, 1: 64, 2: 96}[SCALE]
REQUESTS = {0: 24, 1: 48, 2: 64}[SCALE]
OPTS = SRSOptions(tol=1e-6, leaf_size=64)
#: acceptance bar: cached+batched must beat naive per-request by this
MIN_SPEEDUP = 5.0


def _service_run(prob, rhs, mode: str):
    with SolveService(
        workers=8, batch_window=0.005, batch_max=32, batch_mode=mode
    ) as svc:
        t0 = time.perf_counter()
        futures = [svc.submit(prob, b, srs=OPTS) for b in rhs]
        xs = [f.result().x for f in futures]
        elapsed = time.perf_counter() - t0
        stats = svc.stats()
    return xs, elapsed, stats


@pytest.fixture(scope="module")
def sweep():
    prob = LaplaceVolumeProblem(M)
    rhs = [prob.random_rhs(i) for i in range(REQUESTS)]

    t0 = time.perf_counter()
    naive_xs = [repro.solve(prob, b, srs=OPTS).x for b in rhs]
    t_naive = time.perf_counter() - t0

    strict_xs, t_strict, strict_stats = _service_run(prob, rhs, "strict")
    block_xs, t_block, block_stats = _service_run(prob, rhs, "block")

    bitwise = all(np.array_equal(a, b) for a, b in zip(naive_xs, strict_xs))
    block_rel = max(
        float(np.linalg.norm(a - b) / np.linalg.norm(a))
        for a, b in zip(naive_xs, block_xs)
    )

    result = {
        "n": prob.n,
        "requests": REQUESTS,
        "scale": SCALE,
        "t_naive": t_naive,
        "t_service_strict": t_strict,
        "t_service_block": t_block,
        "speedup_strict": t_naive / t_strict,
        "speedup_block": t_naive / t_block,
        "bitwise_identical_strict": bitwise,
        "block_max_rel_diff": block_rel,
        "strict_stats": strict_stats.to_dict(),
        "block_stats": block_stats.to_dict(),
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(result, fh, indent=2)

    table = Table(
        f"Service throughput: {REQUESTS} requests, N = {M}^2 (wall-clock)",
        ["path", "total", "req/s", "speedup", "factorizations", "parity"],
    )
    table.add_row(
        "naive repro.solve", format_seconds(t_naive),
        f"{REQUESTS / t_naive:.1f}", "1.0", REQUESTS, "exact",
    )
    table.add_row(
        "service (strict)", format_seconds(t_strict),
        f"{REQUESTS / t_strict:.1f}", f"{t_naive / t_strict:.1f}",
        strict_stats.factorizations, "bitwise" if bitwise else "BROKEN",
    )
    table.add_row(
        "service (block)", format_seconds(t_block),
        f"{REQUESTS / t_block:.1f}", f"{t_naive / t_block:.1f}",
        block_stats.factorizations, f"rel {block_rel:.1e}",
    )
    save_table("service_throughput", table.render())
    return result


def test_service_bench_generated(sweep, benchmark):
    prob = LaplaceVolumeProblem(M)
    rhs = [prob.random_rhs(i) for i in range(4)]
    benchmark.pedantic(
        lambda: _service_run(prob, rhs, "strict"), rounds=1, iterations=1
    )
    assert os.path.exists(JSON_PATH)


def test_cached_batched_speedup_at_least_5x(sweep):
    """The acceptance bar: one factorization amortized over the stream."""
    assert sweep["speedup_strict"] >= MIN_SPEEDUP, (
        f"service strict mode only {sweep['speedup_strict']:.1f}x over naive"
    )


def test_strict_solutions_bitwise_identical(sweep):
    assert sweep["bitwise_identical_strict"]


def test_block_solutions_rounding_close(sweep):
    assert sweep["block_max_rel_diff"] < 1e-12


def test_one_factorization_per_stream(sweep):
    assert sweep["strict_stats"]["factorizations"] == 1
    assert sweep["block_stats"]["factorizations"] == 1
    assert sweep["strict_stats"]["hit_rate"] == pytest.approx(
        (REQUESTS - 1) / REQUESTS
    )


def test_batching_actually_coalesced(sweep):
    assert sweep["block_stats"]["max_batch_occupancy"] > 1
