"""Table VI + Figure 10: shared-memory (box coloring) vs distributed
(process coloring) on one node.

The paper compares a C++/OpenMP solver that colors boxes against the
Julia distributed solver that colors processes, on one node, over
eps in {1e-3 .. 1e-12} and 1..64 cores. Here both strategies run over
the same core and the same simulated node: the comparator schedules
measured per-box task times (Table VI "C++ reference" column role) and
the distributed solver runs its full protocol. Shape to verify: both
scale, with comparable times at the largest core count, and identical
accuracy behaviour (relres ~ eps, nit small).

A second artifact compares the *execution backends* of the distributed
run itself (thread vs process ranks) on one Table VI configuration:
wall-clock differs, everything observable — accuracy, message and byte
counts — must not.
"""

import time

import numpy as np
import pytest

from common import SCALE, save_table
from repro.apps import ScatteringProblem
from repro.core import SRSOptions
from repro.parallel import parallel_srs_factor, shared_memory_factor
from repro.reporting import ScalingSeries, Table, ascii_loglog, format_sci, format_seconds
from repro.vmpi import process_backend_available

M = {0: 64, 1: 96, 2: 128}[SCALE]
KAPPA = {0: 10.0, 1: 25.0, 2: 25.0}[SCALE]
EPS_SWEEP = {0: [1e-3, 1e-6], 1: [1e-3, 1e-6, 1e-9], 2: [1e-3, 1e-6, 1e-9, 1e-12]}[SCALE]
P_SWEEP = {0: [1, 4], 1: [1, 4, 16], 2: [1, 4, 16, 64]}[SCALE]


@pytest.fixture(scope="module")
def sweep():
    prob = ScatteringProblem(M, KAPPA)
    b = prob.rhs()
    table = Table(
        f"Table VI: box-coloring (shared) vs process-coloring (distributed), N={M}^2",
        ["eps", "p", "shared t_fact", "shared t_solve", "dist t_fact", "dist t_solve", "relres", "nit"],
    )
    series = {"shared": {}, "dist": {}}
    raw = []
    for eps in EPS_SWEEP:
        opts = SRSOptions(tol=eps, leaf_size=64)
        for p in P_SWEEP:
            sm = shared_memory_factor(prob.kernel, p, opts)
            dist = parallel_srs_factor(prob.kernel, p, opts=opts)
            x = dist.solve(b)
            relres = prob.relres(x, b)
            nit = prob.pgmres(dist, b).iterations
            table.add_row(
                format_sci(eps),
                p,
                format_seconds(sm.t_fact),
                format_seconds(sm.t_solve),
                format_seconds(dist.t_fact),
                format_seconds(dist.t_solve),
                format_sci(relres),
                nit,
            )
            series["shared"].setdefault(eps, ScalingSeries(f"shared eps={eps:g}")).add(p, sm.t_fact)
            series["dist"].setdefault(eps, ScalingSeries(f"dist eps={eps:g}")).add(p, dist.t_fact)
            raw.append((eps, p, sm.t_fact, dist.t_fact, relres, nit))
    art = ascii_loglog(list(series["shared"].values()) + list(series["dist"].values()))
    save_table("table6_fig10_shared_vs_distributed", table.render() + "\n\nFigure 10:\n" + art)
    return raw


def test_table6_generated(sweep, benchmark):
    prob = ScatteringProblem(M, KAPPA)
    benchmark.pedantic(
        lambda: shared_memory_factor(prob.kernel, 4, SRSOptions(tol=1e-6, leaf_size=64)),
        rounds=1,
        iterations=1,
    )
    assert len(sweep) == len(EPS_SWEEP) * len(P_SWEEP)


def test_table6_both_strategies_scale(sweep):
    for eps in EPS_SWEEP:
        sh = [t for e, p, t, _d, _r, _n in sweep if e == eps]
        di = [d for e, p, _t, d, _r, _n in sweep if e == eps]
        assert sh[-1] < sh[0]
        # distributed gains less at this scale (boundary-heavy regions);
        # require it not to degrade materially
        assert di[-1] < di[0] * 1.05


def test_table6_accuracy_tracks_eps(sweep):
    """relres improves with eps regardless of strategy/p (both compute
    the same factorization)."""
    best = {eps: min(r for e, _p, _t, _d, r, _n in sweep if e == eps) for eps in EPS_SWEEP}
    eps_sorted = sorted(EPS_SWEEP, reverse=True)
    for a, b in zip(eps_sorted, eps_sorted[1:]):
        assert best[b] < best[a]


def test_table6_nit_small(sweep):
    assert all(n <= 12 for *_rest, n in sweep)


@pytest.fixture(scope="module")
def backend_rows():
    if not process_backend_available():
        pytest.skip("process backend unavailable")
    prob = ScatteringProblem(M, KAPPA)
    b = prob.rhs()
    opts = SRSOptions(tol=1e-6, leaf_size=64)
    p = P_SWEEP[-1]
    rows = []
    for backend in ("thread", "process"):
        t0 = time.perf_counter()
        fact = parallel_srs_factor(prob.kernel, p, opts=opts, backend=backend)
        wall_fact = time.perf_counter() - t0
        t0 = time.perf_counter()
        x = fact.solve(b)
        wall_solve = time.perf_counter() - t0
        rows.append(
            (backend, wall_fact, wall_solve, prob.relres(x, b), x,
             fact.factor_run.total_messages, fact.factor_run.total_bytes)
        )
    table = Table(
        f"Table VI addendum: distributed run under both execution backends "
        f"(eps=1e-6, p={p}, N={M}^2; wall-clock seconds)",
        ["backend", "t_fact", "t_solve", "relres", "msgs", "bytes"],
    )
    for backend, wf, ws, rr, _x, msgs, nbytes in rows:
        table.add_row(backend, format_seconds(wf), format_seconds(ws), format_sci(rr), msgs, nbytes)
    save_table("table6_backend_comparison", table.render())
    return rows


def test_table6_backends_agree(backend_rows):
    """Wall-clock aside, the execution backend must be unobservable."""
    (_, _, _, r_t, x_t, m_t, b_t), (_, _, _, r_p, x_p, m_p, b_p) = backend_rows
    assert np.array_equal(x_t, x_p)
    assert r_t == r_p
    assert (m_t, b_t) == (m_p, b_p)
