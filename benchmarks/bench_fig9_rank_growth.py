"""Figure 9: numerical ranks per tree level.

Average skeleton rank per level for (a) Laplace, (b) Helmholtz at fixed
kappa = 25, (c) Helmholtz at kappa = O(sqrt(N)). Paper shape: columns
(a) and (b) saturate to N-independent constants; column (c) grows
linearly with kappa at the coarse levels.
"""

import pytest

from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem, ScatteringProblem
from repro.core import SRSOptions
from repro.reporting import Table

M_SWEEP = {0: [32, 64], 1: [64, 128], 2: [128, 256]}[SCALE]
OPTS = SRSOptions(tol=1e-6, leaf_size=64)


def rank_profile(fact):
    return {lvl: fact.stats.average_rank(lvl) for lvl in fact.stats.levels()}


@pytest.fixture(scope="module")
def profiles():
    out = {"laplace": {}, "helmholtz_fixed": {}, "helmholtz_growing": {}}
    for m in M_SWEEP:
        out["laplace"][m] = rank_profile(LaplaceVolumeProblem(m).factor(OPTS))
        out["helmholtz_fixed"][m] = rank_profile(ScatteringProblem(m, 25.0).factor(OPTS))
        out["helmholtz_growing"][m] = rank_profile(
            ScatteringProblem.increasing_frequency(m).factor(OPTS)
        )
    tables = []
    for name, prof in out.items():
        levels = sorted({lvl for p in prof.values() for lvl in p}, reverse=True)
        t = Table(f"Figure 9 ({name}): average skeleton rank per level", ["level"] + [f"N={m}^2" for m in M_SWEEP])
        for lvl in levels:
            t.add_row(lvl, *(f"{prof[m].get(lvl, float('nan')):.0f}" for m in M_SWEEP))
        tables.append(t.render())
    save_table("fig9_rank_growth", "\n\n".join(tables))
    return out


def test_fig9_generated(profiles, benchmark):
    benchmark.pedantic(
        lambda: LaplaceVolumeProblem(M_SWEEP[0]).factor(OPTS), rounds=1, iterations=1
    )
    assert profiles["laplace"]


def test_fig9_laplace_rank_saturates(profiles):
    """Rank at a given level is ~independent of N (the O(1) rank claim)."""
    prof = profiles["laplace"]
    m_small, m_big = M_SWEEP[0], M_SWEEP[-1]
    shared = set(prof[m_small]) & set(prof[m_big])
    # compare matching *box-size* levels: level l at m and level l+1 at 2m
    import math

    shift = int(math.log2(m_big // m_small))
    for lvl in prof[m_small]:
        lvl_big = lvl + shift
        if lvl_big in prof[m_big] and prof[m_small][lvl] > 0:
            ratio = prof[m_big][lvl_big] / prof[m_small][lvl]
            assert 0.5 < ratio < 2.0, f"rank not saturating at level {lvl}"


def test_fig9_helmholtz_growing_exceeds_fixed(profiles):
    """kappa ~ sqrt(N): coarse-level ranks grow well beyond the fixed-kappa
    profile (paper's third panel)."""
    m = M_SWEEP[-1]
    fixed = profiles["helmholtz_fixed"][m]
    growing = profiles["helmholtz_growing"][m]
    coarse = min(lvl for lvl in fixed if fixed[lvl] > 0)
    # only meaningful when the growing kappa exceeds the fixed one
    from repro.apps import ScatteringProblem as SP

    if SP.increasing_frequency(m).kappa > 25.0:
        assert growing[coarse] > fixed[coarse]


def test_fig9_rank_increases_towards_coarse_levels(profiles):
    """Within one factorization, coarser boxes have larger skeletons."""
    prof = profiles["laplace"][M_SWEEP[-1]]
    levels = sorted(lvl for lvl in prof if prof[lvl] > 0)
    if len(levels) >= 3:
        assert prof[levels[0]] >= prof[levels[-1]]
