"""Thread vs process execution backends: wall-clock scaling + parity.

The thread backend simulates distributed time faithfully but its rank
*compute* is GIL-serialized; the process backend runs ranks as OS
processes with shared-memory ndarray transport, so factorization
wall-clock scales with cores. The process backend is measured in both
lifecycles: ``process`` (per-call: fork + teardown every dispatch) and
``process_pool`` (persistent :class:`~repro.vmpi.pool.RankPool`: the
ranks are spawned once, then ``factor`` and every ``solve`` reuse
them — the repeated-solve column is where the pool's no-respawn
dividend shows). This bench runs the Table II Laplace volume workload
and the PR-1 BIE star workload at ``p = 4`` under every backend,
checks they are observationally identical (bitwise solutions, equal
message/byte counters), and writes machine-readable results to
``BENCH_backend_scaling.json`` at the repository root so the perf
trajectory accumulates across commits/CI artifacts.
"""

import json
import os
import platform
import time

import numpy as np
import pytest

from common import SCALE, save_table
from repro.apps import LaplaceVolumeProblem
from repro.bie import InteriorDirichletProblem, StarCurve, harmonic_exponential
from repro.core import SRSOptions
from repro.geometry.domain import Square
from repro.obs import REGISTRY
from repro.parallel import parallel_srs_factor
from repro.reporting import Table, format_sci, format_seconds
from repro.vmpi import ProcessBackend, process_backend_available

P = 4
#: N = LAPLACE_M^2 — at least 4096 unknowns at every scale
LAPLACE_M = {0: 64, 1: 128, 2: 256}[SCALE]
BIE_N = {0: 2048, 1: 4096, 2: 8192}[SCALE]
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_backend_scaling.json")


def _backends() -> list[str]:
    if process_backend_available():
        return ["thread", "process", "process_pool"]
    return ["thread"]


def _backend_spec(name: str):
    if name == "process":
        return ProcessBackend(pool=False)
    if name == "process_pool":
        return ProcessBackend(pool=True)
    return name


#: the process-backend codec's cumulative shm-traffic counter — sampling
#: it around the repeated solve measures the *dispatch payload*: what
#: actually crosses the process boundary per solve (the resident store's
#: tier 1 shrinks this from O(factorization) to O(rhs))
_SHM_BYTES = REGISTRY.counter("repro_vmpi_shm_bytes_total")


def _time_backend(kernel, b, opts, domain, backend, relres):
    t0 = time.perf_counter()
    fact = parallel_srs_factor(
        kernel, P, opts=opts, domain=domain, backend=_backend_spec(backend)
    )
    wall_fact = time.perf_counter() - t0
    t0 = time.perf_counter()
    x = fact.solve(b)
    wall_solve = time.perf_counter() - t0
    # repeated solve on the cached factorization: per-call backends pay
    # fork/teardown (and a full-tree re-ship) again, the persistent pool
    # dispatches O(rhs) bytes to its worker-resident shards
    shm_before = _SHM_BYTES.value()
    t0 = time.perf_counter()
    fact.solve(b)
    wall_solve_repeat = time.perf_counter() - t0
    stats = dict(
        wall_fact=wall_fact,
        wall_solve=wall_solve,
        wall_solve_repeat=wall_solve_repeat,
        wall_total=wall_fact + wall_solve,
        sim_fact=fact.t_fact,
        sim_solve=fact.t_solve,
        relres=relres(x, b),
        messages=fact.factor_run.total_messages,
        bytes=fact.factor_run.total_bytes,
        # shm bytes the repeated solve shipped parent -> workers (0 for
        # the thread backend, whose ranks share the parent's memory, and
        # for per-call fork, which duplicates the tree by COW inheritance
        # instead of the codec — its cost shows in wall_solve_repeat)
        dispatch_bytes_per_solve=int(_SHM_BYTES.value() - shm_before),
        resident=fact.resident is not None,
    )
    if stats["resident"]:
        # the counterfactual this subsystem removes: the same pool
        # dispatching the full factorization tree per solve (what every
        # pooled solve shipped before worker-resident shards existed)
        from repro.parallel.solve import solve_worker

        shm_before = _SHM_BYTES.value()
        fact.backend.pool.run(solve_worker, (fact.workers, kernel.n, b))
        stats["dispatch_bytes_full_tree"] = int(_SHM_BYTES.value() - shm_before)
    return stats, x


def _run_workload(name, kernel, b, opts, relres, domain=None) -> dict:
    entry = {"workload": name, "n": int(kernel.n), "p": P, "backends": {}}
    solutions = {}
    for backend in _backends():
        stats, x = _time_backend(kernel, b, opts, domain, backend, relres)
        entry["backends"][backend] = stats
        solutions[backend] = x
    if len(solutions) > 1:
        t = entry["backends"]["thread"]
        entry["parity"] = {}
        entry["speedup_over_thread"] = {}
        for backend in _backends()[1:]:
            s = entry["backends"][backend]
            entry["parity"][backend] = {
                "solution_bitwise_equal": bool(
                    np.array_equal(solutions["thread"], solutions[backend])
                ),
                "messages_equal": t["messages"] == s["messages"],
                "bytes_equal": t["bytes"] == s["bytes"],
                "relres_equal": t["relres"] == s["relres"],
            }
            entry["speedup_over_thread"][backend] = t["wall_total"] / s["wall_total"]
        pc, pp = entry["backends"]["process"], entry["backends"]["process_pool"]
        entry["pool_solve_speedup_over_per_call"] = (
            pc["wall_solve_repeat"] / pp["wall_solve_repeat"]
        )
        entry["pool_dispatch_bytes_drop"] = pp["dispatch_bytes_full_tree"] / max(
            pp["dispatch_bytes_per_solve"], 1
        )
    return entry


def _factor_mode_sweep(problem) -> dict:
    """Sequential strict-vs-batched factor wall time (best of 3).

    The level-batched sweep (``repro.core.batch``) must be the
    measured-faster mode at the Table II workload size — this entry is
    the recorded evidence, and the smoke test below pins batched <=
    strict so a regression fails CI.
    """
    from repro.core import srs_factor

    b = problem.random_rhs()
    entry: dict = {"n": int(problem.kernel.n), "repeats": 3}
    for mode in ("strict", "batched"):
        opts = SRSOptions(tol=1e-6, leaf_size=64, factor_mode=mode)
        times = []
        for _ in range(entry["repeats"]):
            t0 = time.perf_counter()
            fact = srs_factor(problem.kernel, opts=opts)
            times.append(time.perf_counter() - t0)
        entry[f"{mode}_seconds"] = min(times)
        entry[f"{mode}_relres"] = float(problem.relres(fact.solve(b), b))
    entry["speedup"] = entry["strict_seconds"] / entry["batched_seconds"]
    return entry


def run_sweep() -> dict:
    laplace = LaplaceVolumeProblem(LAPLACE_M)
    bie = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), BIE_N)
    f = bie.boundary_data(harmonic_exponential)
    workloads = [
        _run_workload(
            "laplace_volume",
            laplace.kernel,
            laplace.random_rhs(),
            SRSOptions(tol=1e-6, leaf_size=64),
            laplace.relres,
        ),
        _run_workload(
            "bie_star",
            bie.kernel,
            f,
            SRSOptions(tol=1e-10),
            bie.relres,
            domain=Square.bounding(bie.bd.points),
        ),
    ]
    from repro.vmpi.backend import effective_cpu_count

    return {
        "bench": "backend_scaling",
        "scale": SCALE,
        "p": P,
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "backends": _backends(),
        "workloads": workloads,
        "factor_mode": _factor_mode_sweep(laplace),
    }


def render(result: dict) -> str:
    table = Table(
        f"Execution-backend scaling at p = {P} "
        f"({result['effective_cpu_count']} usable cores; wall-clock seconds)",
        [
            "workload",
            "N",
            "backend",
            "t_fact",
            "t_solve",
            "t_solve2",
            "disp2 MB",
            "resident",
            "relres",
            "msgs",
            "MB sent",
        ],
    )
    for wl in result["workloads"]:
        for backend, s in wl["backends"].items():
            table.add_row(
                wl["workload"],
                wl["n"],
                backend,
                format_seconds(s["wall_fact"]),
                format_seconds(s["wall_solve"]),
                format_seconds(s["wall_solve_repeat"]),
                f"{s['dispatch_bytes_per_solve'] / 1e6:.3f}",
                "yes" if s["resident"] else "no",
                format_sci(s["relres"]),
                s["messages"],
                f"{s['bytes'] / 1e6:.1f}",
            )
    lines = [table.render()]
    for wl in result["workloads"]:
        if "speedup_over_thread" in wl:
            speed = ", ".join(
                f"{b}: {s:.2f}x" for b, s in wl["speedup_over_thread"].items()
            )
            lines.append(
                f"{wl['workload']}: wall-clock speedup over thread ({speed}); "
                f"pool repeated-solve speedup over per-call "
                f"{wl['pool_solve_speedup_over_per_call']:.2f}x "
                f"(dispatch payload {wl['pool_dispatch_bytes_drop']:.0f}x "
                f"smaller via worker-resident shards); parity "
                f"{wl['parity']}"
            )
    fm = result["factor_mode"]
    lines.append(
        f"sequential factor sweep at N={fm['n']}: strict "
        f"{format_seconds(fm['strict_seconds'])}, batched "
        f"{format_seconds(fm['batched_seconds'])} "
        f"({fm['speedup']:.2f}x, best of {fm['repeats']}); relres "
        f"strict {format_sci(fm['strict_relres'])} / batched "
        f"{format_sci(fm['batched_relres'])}"
    )
    return "\n".join(lines)


def write_json(result: dict) -> None:
    with open(JSON_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sweep():
    result = run_sweep()
    write_json(result)
    save_table("backend_scaling", render(result))
    return result


def test_backend_scaling_generated(sweep, benchmark):
    prob = LaplaceVolumeProblem(32)
    benchmark.pedantic(
        lambda: parallel_srs_factor(prob.kernel, P, opts=SRSOptions(tol=1e-6, leaf_size=32)),
        rounds=1,
        iterations=1,
    )
    assert os.path.exists(JSON_PATH)
    with open(JSON_PATH) as fh:
        on_disk = json.load(fh)
    assert on_disk["bench"] == "backend_scaling"
    assert {wl["workload"] for wl in on_disk["workloads"]} == {
        "laplace_volume",
        "bie_star",
    }


def test_backend_scaling_laplace_is_table_sized(sweep):
    laplace = next(w for w in sweep["workloads"] if w["workload"] == "laplace_volume")
    assert laplace["n"] >= 4096 and laplace["p"] == 4


def test_backends_observationally_identical(sweep):
    """Identical solution error and comm counts across every backend."""
    if len(sweep["backends"]) < 2:
        pytest.skip("process backend unavailable")
    for wl in sweep["workloads"]:
        for backend, parity in wl["parity"].items():
            assert parity["solution_bitwise_equal"], (wl["workload"], backend)
            assert parity["messages_equal"], (wl["workload"], backend)
            assert parity["bytes_equal"], (wl["workload"], backend)
            assert parity["relres_equal"], (wl["workload"], backend)


def test_pool_repeated_solve_dispatches_o_rhs_bytes(sweep):
    """The resident store's tier-1 contract, asserted hard: a pooled
    repeated solve ships at least 10x fewer dispatch-payload bytes than
    the same pool dispatching the full factorization tree. Byte counts
    are deterministic — unlike the wall-clock crossover below, this
    cannot be flaked away by machine load."""
    if len(sweep["backends"]) < 2:
        pytest.skip("process backend unavailable")
    laplace = next(w for w in sweep["workloads"] if w["workload"] == "laplace_volume")
    assert laplace["n"] >= 4096
    pp = laplace["backends"]["process_pool"]
    assert pp["resident"] and not laplace["backends"]["process"]["resident"]
    assert pp["dispatch_bytes_full_tree"] >= 10 * pp["dispatch_bytes_per_solve"], (
        pp["dispatch_bytes_full_tree"],
        pp["dispatch_bytes_per_solve"],
    )


@pytest.mark.xfail(
    strict=False,
    reason="wall-clock crossover depends on cores, BLAS threading, and "
    "machine load; the recorded speedup in BENCH_backend_scaling.json is "
    "the authoritative signal",
)
def test_process_backend_scales_with_cores(sweep):
    """On a real multi-core machine the GIL-free backends should win on
    the Laplace workload; on starved boxes (< 4 cores) only parity is
    required and the recorded speedup is informational. Non-strict:
    this documents the expectation without letting scheduler noise or
    BLAS-thread oversubscription red the build."""
    from repro.vmpi.backend import effective_cpu_count

    if len(sweep["backends"]) < 2:
        pytest.skip("process backend unavailable")
    laplace = next(w for w in sweep["workloads"] if w["workload"] == "laplace_volume")
    if effective_cpu_count() < 4:
        best = max(laplace["speedup_over_thread"].values())
        pytest.skip(
            f"only {effective_cpu_count()} usable core(s): recorded speedup "
            f"{best:.2f}x is informational"
        )
    assert laplace["speedup_over_thread"]["process_pool"] > 1.0


def test_batched_factor_not_slower(sweep):
    """The level-batched sweep must not lose to strict at bench scale.

    Batched amortizes kernel evaluation and CPQR dispatch across a
    whole color phase; if it ever times slower than the per-box loop
    the batching machinery has regressed into pure overhead.
    """
    fm = sweep["factor_mode"]
    assert fm["batched_seconds"] <= fm["strict_seconds"], fm
    # and it must not buy that speed with accuracy
    assert fm["batched_relres"] <= 10 * fm["strict_relres"] + 1e-12


if __name__ == "__main__":
    result = run_sweep()
    write_json(result)
    save_table("backend_scaling", render(result))
    print(f"wrote {os.path.abspath(JSON_PATH)}")
