"""Table IV: runtime for the 2D Helmholtz kernel (fixed kappa = 25).

Same layout as Table II for the complex Lippmann-Schwinger system.
Paper shape to verify: larger t_fact than Laplace at equal N (complex
kernel evaluation), good strong-scaling drop, and a cheap solve.

Driven through the unified facade, exactly like Table II.
"""

import pytest

import repro
from common import helmholtz_grid_sides, process_counts, save_table
from repro.api import SolveConfig
from repro.apps import ScatteringProblem
from repro.core import SRSOptions
from repro.reporting import Table, format_seconds

OPTS = SRSOptions(tol=1e-6, leaf_size=64)
KAPPA = 25.0


def _config(p: int) -> SolveConfig:
    return SolveConfig(method="direct", execution="thread", ranks=p, srs=OPTS)


def run_sweep() -> Table:
    table = Table(
        "Table IV: 2D Helmholtz runtime (kappa=25, eps=1e-6); simulated s for p > 1",
        ["N", "p", "t_fact", "t_comp", "t_other", "t_solve", "s_comp", "s_other"],
    )
    for m in helmholtz_grid_sides():
        prob = ScatteringProblem(m, KAPPA)
        b = prob.rhs()
        for p in process_counts(m):
            report = repro.Solver(prob, _config(p)).solve(b)
            run = report.factorization.last_solve_run
            table.add_row(
                f"{m}^2",
                p,
                format_seconds(report.sim_t_fact),
                format_seconds(report.sim_t_comp),
                format_seconds(report.sim_t_other),
                format_seconds(report.sim_t_solve),
                format_seconds(run.compute),
                format_seconds(run.other),
            )
    return table


@pytest.fixture(scope="module")
def sweep():
    table = run_sweep()
    save_table("table4_helmholtz_runtime", table.render())
    return table


def test_table4_generated(sweep, benchmark):
    m = helmholtz_grid_sides()[0]
    prob = ScatteringProblem(m, KAPPA)
    benchmark.pedantic(
        lambda: repro.Solver(prob, _config(1)).factorization, rounds=1, iterations=1
    )
    assert len(sweep.rows) >= 3


def test_table4_strong_scaling(sweep):
    """Strong scaling at the largest N (small-N rows are latency-bound)."""
    by_n = {}
    for row in sweep.rows:
        by_n.setdefault(row[0], []).append(float(row[2]))
    largest = list(by_n)[-1]
    times = by_n[largest]
    if len(times) >= 2:
        assert times[-1] < times[0]


def test_table4_helmholtz_slower_than_laplace():
    """Complex Hankel evaluation makes t_fact larger than Laplace at equal N."""
    from repro.apps import LaplaceVolumeProblem

    m = helmholtz_grid_sides()[0]
    lap = LaplaceVolumeProblem(m)
    helm = ScatteringProblem(m, KAPPA)
    t_lap = repro.solve(lap, lap.random_rhs(), srs=OPTS).t_setup
    t_helm = repro.solve(helm, helm.rhs(), srs=OPTS).t_setup
    assert t_helm > t_lap
