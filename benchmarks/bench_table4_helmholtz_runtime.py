"""Table IV: runtime for the 2D Helmholtz kernel (fixed kappa = 25).

Same layout as Table II for the complex Lippmann-Schwinger system.
Paper shape to verify: larger t_fact than Laplace at equal N (complex
kernel evaluation), good strong-scaling drop, and a cheap solve.
"""

import pytest

from common import helmholtz_grid_sides, process_counts, save_table
from repro.apps import ScatteringProblem
from repro.core import SRSOptions
from repro.parallel import parallel_srs_factor
from repro.reporting import Table, format_seconds

OPTS = SRSOptions(tol=1e-6, leaf_size=64)
KAPPA = 25.0


def run_sweep() -> Table:
    table = Table(
        "Table IV: 2D Helmholtz runtime (kappa=25, eps=1e-6); simulated s for p > 1",
        ["N", "p", "t_fact", "t_comp", "t_other", "t_solve", "s_comp", "s_other"],
    )
    for m in helmholtz_grid_sides():
        prob = ScatteringProblem(m, KAPPA)
        b = prob.rhs()
        for p in process_counts(m):
            fact = parallel_srs_factor(prob.kernel, p, opts=OPTS)
            fact.solve(b)
            run = fact.last_solve_run
            table.add_row(
                f"{m}^2",
                p,
                format_seconds(fact.t_fact),
                format_seconds(fact.t_fact_comp),
                format_seconds(fact.t_fact_other),
                format_seconds(fact.t_solve),
                format_seconds(run.compute),
                format_seconds(run.other),
            )
    return table


@pytest.fixture(scope="module")
def sweep():
    table = run_sweep()
    save_table("table4_helmholtz_runtime", table.render())
    return table


def test_table4_generated(sweep, benchmark):
    m = helmholtz_grid_sides()[0]
    prob = ScatteringProblem(m, KAPPA)
    benchmark.pedantic(
        lambda: parallel_srs_factor(prob.kernel, 1, opts=OPTS), rounds=1, iterations=1
    )
    assert len(sweep.rows) >= 3


def test_table4_strong_scaling(sweep):
    """Strong scaling at the largest N (small-N rows are latency-bound)."""
    by_n = {}
    for row in sweep.rows:
        by_n.setdefault(row[0], []).append(float(row[2]))
    largest = list(by_n)[-1]
    times = by_n[largest]
    if len(times) >= 2:
        assert times[-1] < times[0]


def test_table4_helmholtz_slower_than_laplace():
    """Complex Hankel evaluation makes t_fact larger than Laplace at equal N."""
    import time

    from repro.apps import LaplaceVolumeProblem

    m = helmholtz_grid_sides()[0]
    t0 = time.perf_counter()
    LaplaceVolumeProblem(m).factor(OPTS)
    t_lap = time.perf_counter() - t0
    t0 = time.perf_counter()
    ScatteringProblem(m, KAPPA).factor(OPTS)
    t_helm = time.perf_counter() - t0
    assert t_helm > t_lap
