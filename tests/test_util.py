"""Tests for timers and environment configuration."""

import time

import pytest

from repro.util import Timer, TimingBreakdown, bench_scale, env_flag, env_int


def test_timer_accumulates():
    t = Timer()
    with t:
        time.sleep(0.01)
    with t:
        time.sleep(0.01)
    assert t.elapsed >= 0.02
    t.reset()
    assert t.elapsed == 0.0


def test_timer_reentrant_counts_outermost_only():
    t = Timer()
    with t:
        with t:  # nested use must not corrupt the start stamp
            time.sleep(0.005)
        time.sleep(0.005)
    assert 0.01 <= t.elapsed < 10.0
    # one more plain use still works after the nested exit
    with t:
        time.sleep(0.002)
    assert t.elapsed >= 0.012


def test_timer_unbalanced_exit_raises():
    t = Timer()
    with pytest.raises(RuntimeError):
        t.__exit__(None, None, None)


def test_breakdown_buckets():
    tb = TimingBreakdown()
    tb.add("a", 1.0)
    tb.add("a", 0.5)
    tb.add("b", 2.0)
    assert tb["a"] == pytest.approx(1.5)
    assert tb["missing"] == 0.0
    assert tb.total() == pytest.approx(3.5)


def test_breakdown_measure():
    tb = TimingBreakdown()
    with tb.measure("work"):
        time.sleep(0.005)
    assert tb["work"] >= 0.005


def test_env_int(monkeypatch):
    monkeypatch.delenv("X_TEST_INT", raising=False)
    assert env_int("X_TEST_INT", 7) == 7
    monkeypatch.setenv("X_TEST_INT", "42")
    assert env_int("X_TEST_INT", 7) == 42
    monkeypatch.setenv("X_TEST_INT", "nope")
    with pytest.raises(ValueError):
        env_int("X_TEST_INT", 7)


def test_env_flag(monkeypatch):
    monkeypatch.delenv("X_TEST_FLAG", raising=False)
    assert env_flag("X_TEST_FLAG") is False
    for truthy in ("1", "true", "YES", "on"):
        monkeypatch.setenv("X_TEST_FLAG", truthy)
        assert env_flag("X_TEST_FLAG") is True
    monkeypatch.setenv("X_TEST_FLAG", "0")
    assert env_flag("X_TEST_FLAG") is False


def test_bench_scale_validation(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1")
    assert bench_scale() == 1
    monkeypatch.setenv("REPRO_BENCH_SCALE", "9")
    with pytest.raises(ValueError):
        bench_scale()


def test_vmpi_backend_config(monkeypatch):
    from repro.util.config import vmpi_backend

    monkeypatch.delenv("REPRO_VMPI_BACKEND", raising=False)
    assert vmpi_backend() == "thread"
    monkeypatch.setenv("REPRO_VMPI_BACKEND", "Process")
    assert vmpi_backend() == "process"
    monkeypatch.setenv("REPRO_VMPI_BACKEND", "")
    assert vmpi_backend() == "thread"
    monkeypatch.setenv("REPRO_VMPI_BACKEND", "julia")
    with pytest.raises(ValueError):
        vmpi_backend()


def test_vmpi_shm_min_bytes_config(monkeypatch):
    from repro.util.config import vmpi_shm_min_bytes

    monkeypatch.delenv("REPRO_VMPI_SHM_MIN_BYTES", raising=False)
    assert vmpi_shm_min_bytes() == 2048
    monkeypatch.setenv("REPRO_VMPI_SHM_MIN_BYTES", "0")
    assert vmpi_shm_min_bytes() == 0
    monkeypatch.setenv("REPRO_VMPI_SHM_MIN_BYTES", "-1")
    with pytest.raises(ValueError):
        vmpi_shm_min_bytes()


def test_vmpi_pool_config(monkeypatch):
    from repro.util.config import vmpi_pool

    monkeypatch.delenv("REPRO_VMPI_POOL", raising=False)
    assert vmpi_pool() == "persistent"
    monkeypatch.setenv("REPRO_VMPI_POOL", "Per-Call")
    assert vmpi_pool() == "per_call"
    monkeypatch.setenv("REPRO_VMPI_POOL", "per_call")
    assert vmpi_pool() == "per_call"
    monkeypatch.setenv("REPRO_VMPI_POOL", "")
    assert vmpi_pool() == "persistent"
    monkeypatch.setenv("REPRO_VMPI_POOL", "leaky")
    with pytest.raises(ValueError):
        vmpi_pool()


def test_vmpi_pool_max_config(monkeypatch):
    from repro.util.config import vmpi_pool_max

    monkeypatch.delenv("REPRO_VMPI_POOL_MAX", raising=False)
    assert vmpi_pool_max() == 4
    monkeypatch.setenv("REPRO_VMPI_POOL_MAX", "1")
    assert vmpi_pool_max() == 1
    monkeypatch.setenv("REPRO_VMPI_POOL_MAX", "0")
    with pytest.raises(ValueError):
        vmpi_pool_max()


def test_breakdown_mirrors_metrics_registry():
    from repro.obs import REGISTRY

    counter = REGISTRY.counter(
        "repro_timing_seconds_total",
        "Seconds accumulated per timing bucket",
        labelnames=("bucket",),
    )
    before = counter.value(bucket="mirror_test")
    tb = TimingBreakdown()
    tb.add("mirror_test", 1.25)
    assert counter.value(bucket="mirror_test") == pytest.approx(before + 1.25)


def test_obs_config(monkeypatch):
    from repro.util.config import obs_enabled, obs_trace_path

    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert obs_enabled() is False
    monkeypatch.setenv("REPRO_OBS", "on")
    assert obs_enabled() is True
    monkeypatch.setenv("REPRO_OBS", "off")
    assert obs_enabled() is False

    monkeypatch.delenv("REPRO_OBS_TRACE_PATH", raising=False)
    assert obs_trace_path() is None
    monkeypatch.setenv("REPRO_OBS_TRACE_PATH", "  ")
    assert obs_trace_path() is None
    monkeypatch.setenv("REPRO_OBS_TRACE_PATH", "/tmp/trace.json")
    assert obs_trace_path() == "/tmp/trace.json"


def test_vmpi_start_method_config(monkeypatch):
    from repro.util.config import vmpi_start_method

    monkeypatch.delenv("REPRO_VMPI_START_METHOD", raising=False)
    assert vmpi_start_method() is None
    monkeypatch.setenv("REPRO_VMPI_START_METHOD", "Spawn")
    assert vmpi_start_method() == "spawn"
    monkeypatch.setenv("REPRO_VMPI_START_METHOD", "")
    assert vmpi_start_method() is None
    monkeypatch.setenv("REPRO_VMPI_START_METHOD", "teleport")
    with pytest.raises(ValueError):
        vmpi_start_method()
