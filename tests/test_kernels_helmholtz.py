"""Tests for the Helmholtz / Lippmann-Schwinger kernel (Eqns. 19-21)."""

import numpy as np
import pytest
from scipy.special import hankel1

from repro.geometry import uniform_grid
from repro.kernels import HelmholtzKernelMatrix
from repro.kernels.helmholtz import (
    gaussian_bump,
    hankel_cell_self_integral,
    helmholtz_greens,
)


def test_offdiagonal_entries_match_formula():
    m, kappa = 8, 5.0
    pts = uniform_grid(m)
    h = 1.0 / m
    b = gaussian_bump(pts)
    k = HelmholtzKernelMatrix(pts, h, kappa, b=b)
    blk = k.block(np.array([0]), np.array([9]))
    r = np.linalg.norm(pts[0] - pts[9])
    expected = h**2 * kappa**2 * np.sqrt(b[0] * b[9]) * 0.25j * hankel1(0, kappa * r)
    assert blk[0, 0] == pytest.approx(expected)


def test_diagonal_contains_identity(helmholtz24):
    d = helmholtz24.diagonal()
    # second-kind: diagonal dominated by the identity for moderate kappa*h
    assert np.all(np.abs(d.real - 1.0) < 1.0)


def test_cell_self_integral_matches_numeric_quadrature():
    from scipy import integrate

    kappa, h = 7.0, 0.125
    val = hankel_cell_self_integral(kappa, h)

    def re(y, x):
        r = np.hypot(x, y)
        return (0.25j * hankel1(0, kappa * r)).real

    def im(y, x):
        r = np.hypot(x, y)
        return (0.25j * hankel1(0, kappa * r)).imag

    # one quadrant (corner singularity) x 4 by symmetry
    vr, _ = integrate.dblquad(re, 0.0, h / 2, lambda x: 0.0, lambda x: h / 2)
    vi, _ = integrate.dblquad(im, 0.0, h / 2, lambda x: 0.0, lambda x: h / 2)
    assert val.real == pytest.approx(4 * vr, rel=1e-7)
    assert val.imag == pytest.approx(4 * vi, rel=1e-7)


def test_matrix_complex_symmetric(helmholtz24_dense):
    # complex symmetric (NOT Hermitian): A == A^T
    assert np.abs(helmholtz24_dense - helmholtz24_dense.T).max() < 1e-14


def test_gaussian_bump_properties():
    pts = uniform_grid(16)
    b = gaussian_bump(pts)
    assert np.all(b > 0) and np.all(b <= 1)
    center_idx = np.argmin(np.linalg.norm(pts - 0.5, axis=1))
    assert b[center_idx] == b.max()


def test_invalid_parameters():
    pts = uniform_grid(4)
    with pytest.raises(ValueError):
        HelmholtzKernelMatrix(pts, 0.25, -1.0)
    with pytest.raises(ValueError):
        HelmholtzKernelMatrix(pts, 0.25, 5.0, b=np.zeros(16))
    with pytest.raises(ValueError):
        HelmholtzKernelMatrix(pts, 0.25, 5.0, b=np.ones(7))


def test_points_per_wavelength():
    k = HelmholtzKernelMatrix(uniform_grid(32), 1.0 / 32, 2.0 * np.pi)
    assert k.points_per_wavelength() == pytest.approx(32.0)


def test_spawn_carries_scattering_potential(helmholtz24):
    sub = np.array([10, 50, 100])
    data = helmholtz24.per_point_data(sub)
    spawned = helmholtz24.spawn(helmholtz24.points[sub], data)
    assert np.allclose(
        spawned.block(np.arange(3), np.arange(3)),
        helmholtz24.block(sub, sub),
    )


def test_callable_potential():
    pts = uniform_grid(8)
    k = HelmholtzKernelMatrix(pts, 1.0 / 8, 3.0, b=gaussian_bump)
    assert np.allclose(k.b, gaussian_bump(pts))


def test_greens_singularity_masked_in_block():
    pts = uniform_grid(8)
    k = HelmholtzKernelMatrix(pts, 1.0 / 8, 3.0)
    idx = np.arange(4)
    blk = k.block(idx, idx)
    assert np.all(np.isfinite(blk))
    g = helmholtz_greens(pts[:1], pts[:1], 3.0)
    assert not np.isfinite(g).all()  # raw greens is singular on the diagonal
