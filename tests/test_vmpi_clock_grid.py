"""Tests for the simulated clock, cost model, and process grid."""

import numpy as np
import pytest

from repro.vmpi import INTER_NODE, INTRA_NODE, CostModel, ProcessGrid2D, SimClock, run_spmd


def test_cost_model_transfer_time():
    cm = CostModel(alpha=1e-6, beta=1e-9)
    assert cm.transfer_time(0) == pytest.approx(1e-6)
    assert cm.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)


def test_presets_ordered():
    assert INTER_NODE.alpha > INTRA_NODE.alpha


def test_clock_compute_accumulates():
    clk = SimClock()
    with clk.compute():
        sum(range(100_000))
    assert clk.compute_time > 0
    assert clk.local_time == pytest.approx(clk.compute_time)
    assert clk.other_time == pytest.approx(0.0)


def test_clock_receive_advances_to_availability():
    clk = SimClock(CostModel(alpha=1e-3, beta=0.0, sender_overhead=0.0))
    clk.on_receive(sent_time=5.0, nbytes=0)
    assert clk.local_time == pytest.approx(5.0 + 1e-3)
    assert clk.comm_time == pytest.approx(5.0 + 1e-3)
    # a message already available does not move the clock
    clk.on_receive(sent_time=0.0, nbytes=0)
    assert clk.local_time == pytest.approx(5.0 + 1e-3)


def test_compute_scale():
    clk = SimClock(CostModel(compute_scale=10.0))
    clk.add_compute(1.0)
    assert clk.local_time == pytest.approx(10.0)


def test_simulated_latency_visible_in_run():
    cm = CostModel(alpha=0.5, beta=0.0, sender_overhead=0.0)

    def prog(comm):
        if comm.rank == 0:
            comm.send(1, 1)
        else:
            comm.recv(0)

    run = run_spmd(2, prog, cost_model=cm)
    assert run.reports[1].sim_time >= 0.5


def test_bandwidth_term():
    cm = CostModel(alpha=0.0, beta=1.0e-6, sender_overhead=0.0)  # 1 us per byte

    def prog(comm):
        if comm.rank == 0:
            comm.send(np.zeros(125_000), 1)  # 1 MB -> 1 s
        else:
            comm.recv(0)

    run = run_spmd(2, prog, cost_model=cm)
    assert run.reports[1].sim_time == pytest.approx(1.0, rel=0.01)


# -- process grid ------------------------------------------------------
@pytest.mark.parametrize("p", [1, 4, 16, 64])
def test_grid_construction(p):
    g = ProcessGrid2D(p)
    assert g.side**2 == p


@pytest.mark.parametrize("p", [2, 3, 8, 12])
def test_invalid_grid_sizes(p):
    with pytest.raises(ValueError):
        ProcessGrid2D(p)


def test_coords_roundtrip():
    g = ProcessGrid2D(16)
    for r in range(16):
        assert g.rank_of(*g.coords_of(r)) == r


def test_four_coloring_valid():
    g = ProcessGrid2D(64)
    for r in range(64):
        for nb in g.neighbor_ranks(r):
            assert g.color(nb) != g.color(r)


def test_colors_in_use():
    assert ProcessGrid2D(1).colors_in_use() == [0]
    assert ProcessGrid2D(4).colors_in_use() == [0, 1, 2, 3]


def test_neighbor_counts():
    g = ProcessGrid2D(16)
    counts = sorted(len(g.neighbor_ranks(r)) for r in range(16))
    assert counts[0] == 3 and counts[-1] == 8  # corners have 3, interior 8


def test_group_leader():
    assert ProcessGrid2D.group_leader(0) == 0
    assert ProcessGrid2D.group_leader(3) == 0
    assert ProcessGrid2D.group_leader(7) == 4
    assert ProcessGrid2D.group_leader(9) == 8


def test_reduction_activity():
    assert ProcessGrid2D.is_active_at_reduction(0, 2)
    assert not ProcessGrid2D.is_active_at_reduction(4, 2)
    assert ProcessGrid2D.is_active_at_reduction(16, 2)
