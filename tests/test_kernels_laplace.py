"""Tests for the 2D Laplace kernel matrix (Eqns. 16-17)."""

import numpy as np
import pytest
from scipy import integrate

from repro.geometry import uniform_grid
from repro.kernels import LaplaceKernelMatrix, dense_matrix
from repro.kernels.laplace import laplace_greens


def test_offdiagonal_entries_match_formula(grid16):
    h = 1.0 / 16
    k = LaplaceKernelMatrix(grid16, h)
    a = k.block(np.array([0, 5]), np.array([3, 7]))
    for bi, i in enumerate([0, 5]):
        for bj, j in enumerate([3, 7]):
            r = np.linalg.norm(grid16[i] - grid16[j])
            assert a[bi, bj] == pytest.approx(-(h * h) * np.log(r) / (2 * np.pi))


def test_diagonal_matches_adaptive_quadrature():
    # quadrant integration keeps the singularity at a corner node-free spot
    h = 1.0 / 8
    k = LaplaceKernelMatrix(uniform_grid(8), h)
    ref, _ = integrate.dblquad(
        lambda y, x: -np.log(np.hypot(x, y)) / (2 * np.pi),
        0.0,
        h / 2,
        lambda x: 0.0,
        lambda x: h / 2,
    )
    assert k.diagonal()[0] == pytest.approx(4 * ref, rel=1e-9)


def test_matrix_is_symmetric(laplace32_dense):
    assert np.abs(laplace32_dense - laplace32_dense.T).max() == 0.0


def test_block_handles_diagonal_in_overlapping_sets(laplace32):
    idx = np.array([0, 1, 2])
    blk = laplace32.block(idx, idx)
    assert np.allclose(np.diag(blk), laplace32.diagonal()[:3])


def test_greens_is_translation_invariant():
    x = np.array([[0.1, 0.2], [0.4, 0.9]])
    y = np.array([[0.3, 0.3]])
    shift = np.array([0.05, -0.07])
    a = laplace_greens(x, y)
    b = laplace_greens(x + shift, y + shift)
    assert np.allclose(a, b)


def test_proxy_blocks_have_column_weights(laplace32):
    proxy = np.array([[2.0, 2.0], [3.0, 3.0]])
    cols = np.array([0, 1])
    blk = laplace32.proxy_row_block(proxy, cols)
    g = laplace_greens(proxy, laplace32.points[cols])
    assert np.allclose(blk, g * (1.0 / 32) ** 2)


def test_empty_blocks(laplace32):
    assert laplace32.block(np.array([], dtype=int), np.array([0])).shape == (0, 1)
    assert laplace32.proxy_row_block(np.zeros((0, 2)), np.array([0])).shape == (0, 1)


def test_invalid_spacing():
    with pytest.raises(ValueError):
        LaplaceKernelMatrix(uniform_grid(4), -0.1)


def test_spawn_reproduces_entries(laplace32):
    sub = np.array([3, 17, 200])
    spawned = laplace32.spawn(laplace32.points[sub], {})
    full = laplace32.block(sub, sub)
    local = spawned.block(np.arange(3), np.arange(3))
    assert np.allclose(full, local)


def test_first_kind_system_is_ill_conditioned():
    """Condition number grows ~ O(N) (paper Sec. I-A)."""
    c = []
    for m in (8, 16):
        k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
        c.append(np.linalg.cond(dense_matrix(k)))
    assert c[1] > 2.0 * c[0]
