"""Deep-observability tests: profiler, solver health, watchdog, stalls."""

import json
import logging
import os
import time
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro.iterative.stall import refinement_stalled
from repro.obs import (
    HealthMonitor,
    ResourceWatchdog,
    SamplingProfiler,
    Tracer,
    profile,
    solve_health,
    trace,
)
from repro.obs.profiler import NO_SPAN
from repro.vmpi import ProcessBackend, process_backend_available, run_spmd

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)

needs_shm_dir = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


@pytest.fixture
def global_trace():
    """Enable the process-wide tracer for one test, then restore it."""
    was = trace.enabled
    trace.clear()
    trace.enable()
    yield trace
    trace.set_enabled(was)
    trace.clear()


def _busy(seconds):
    """Hold the GIL with real Python work for about ``seconds``."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1
    return x


def _sample_inside_span(prof, span_name, min_samples=8, timeout=10.0):
    """Busy-loop inside a span until ``prof`` has collected samples."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        with trace.span(span_name):
            _busy(0.05)
        if sum(prof.snapshot_table().values()) >= min_samples:
            return


# ----------------------------------------------------------------------
# sampling profiler
# ----------------------------------------------------------------------
def test_profiler_attributes_samples_to_spans(global_trace):
    prof = SamplingProfiler()
    assert prof.start(250)
    try:
        _sample_inside_span(prof, "profiled.hot")
    finally:
        prof.stop()
    stats = prof.stats()
    assert stats["samples"] >= 8
    assert stats["attributed"] / stats["samples"] > 0.8
    assert "profiled.hot" in stats["spans"]
    assert "main" in stats["tracks"]
    assert not prof.running and prof.active_hz == 0.0


def test_profiler_folded_and_speedscope_exports(tmp_path, global_trace):
    prof = SamplingProfiler()
    assert prof.start(250)
    try:
        _sample_inside_span(prof, "profiled.hot")
    finally:
        prof.stop()

    folded = prof.folded()
    assert folded.endswith("\n")
    assert any(
        line.startswith("main;profiled.hot;") for line in folded.splitlines()
    )
    fold_path = tmp_path / "prof.folded"
    prof.export_folded(str(fold_path))
    assert fold_path.read_text() == folded

    path = tmp_path / "prof.speedscope.json"
    doc = prof.export_speedscope(str(path), name="t")
    assert json.loads(path.read_text()) == doc
    names = [p["name"] for p in doc["profiles"]]
    assert "main" in names
    main_prof = doc["profiles"][names.index("main")]
    assert main_prof["type"] == "sampled" and main_prof["unit"] == "seconds"
    assert len(main_prof["samples"]) == len(main_prof["weights"])
    assert main_prof["endValue"] == pytest.approx(sum(main_prof["weights"]))
    # span attribution survives as the synthetic root frame
    frames = doc["shared"]["frames"]
    roots = {frames[s[0]]["name"] for s in main_prof["samples"]}
    assert "profiled.hot" in roots


def test_profiler_drain_and_adopt_merge_counts():
    key = ("rank0", "work.step", (("f", "file.py", 1),))
    a = SamplingProfiler()
    a.adopt({key: 3})
    b = SamplingProfiler()
    b.adopt({key: 2})
    b.adopt(a.drain_table())
    assert a.snapshot_table() == {}
    assert b.snapshot_table() == {key: 5}
    assert b.stats()["tracks"] == {"rank0": 5}
    b.clear()
    assert b.stats()["samples"] == 0


def test_profiler_unattributed_samples_fold_under_no_span():
    prof = SamplingProfiler()
    prof.adopt({("main", NO_SPAN, (("f", "file.py", 1),)): 4})
    stats = prof.stats()
    assert stats["samples"] == 4 and stats["attributed"] == 0
    assert prof.folded().startswith(f"main;{NO_SPAN};f ")


def test_profiling_does_not_change_solve_bitwise():
    prob = repro.LaplaceVolumeProblem(m=8)
    b = prob.random_rhs(2)
    x_off = repro.solve(prob, b).x
    prof = SamplingProfiler()
    assert prof.start(250)
    try:
        x_on = repro.solve(prob, b).x
    finally:
        prof.stop()
    np.testing.assert_array_equal(x_off, x_on)


def test_profiler_overhead_guard():
    # Interleaved min-of-N wall-clock of the same busy loop with the
    # sampler on (default rate) and off. The bound is generous — CI
    # boxes are noisy and often single-core — but a runaway sampler
    # (bad rate, quadratic stack walk) costs far more than this.
    prof = SamplingProfiler()
    base, on = [], []
    for _ in range(5):
        t0 = time.perf_counter()
        _busy(0.05)
        base.append(time.perf_counter() - t0)
        assert prof.start()  # DEFAULT_HZ
        try:
            t0 = time.perf_counter()
            _busy(0.05)
            on.append(time.perf_counter() - t0)
        finally:
            prof.stop()
    assert min(on) <= min(base) * 1.25 + 0.01, (base, on)


def _profiled_rank_prog(comm):
    with trace.span("work.burn", rank=comm.rank):
        _busy(0.25)
    return comm.rank


@needs_process
def test_process_ranks_ship_profile_tables(global_trace):
    profile.clear()
    assert profile.start(250)
    try:
        run = run_spmd(2, _profiled_rank_prog, backend=ProcessBackend(pool=False))
    finally:
        profile.stop()
    assert run.results == [0, 1]
    table = profile.drain_table()
    tracks = {track for (track, _span, _frames) in table}
    assert {"rank0", "rank1"}.issubset(tracks)
    spans = {span for (_track, span, _frames) in table}
    assert "work.burn" in spans
    # adopted into the parent profiler, not left behind on the reports
    assert all(not r.profile for r in run.reports)


# ----------------------------------------------------------------------
# solver health
# ----------------------------------------------------------------------
def test_health_monitor_level_rollup():
    hm = HealthMonitor()
    hm.record_box(2, 100, 20)
    hm.record_box(2, 50, 30)
    hm.record_box(1, 10, 10)
    snap = hm.snapshot()
    assert [r["level"] for r in snap["levels"]] == [1, 2]
    rows = {r["level"]: r for r in snap["levels"]}
    assert rows[1]["boxes"] == 1
    assert rows[1]["avg_compression"] == pytest.approx(1.0)
    assert rows[2]["boxes"] == 2
    assert rows[2]["avg_rank"] == pytest.approx(25.0)
    assert rows[2]["max_rank"] == 30
    assert rows[2]["avg_compression"] == pytest.approx((0.2 + 0.6) / 2)


def test_health_monitor_krylov_rollup():
    hm = HealthMonitor()
    hm.observe_krylov("pcg", SimpleNamespace(
        iterations=5, converged=True, stalled=False, final_residual=1e-13,
    ))
    hm.observe_krylov("pcg", SimpleNamespace(
        iterations=40, converged=False, stalled=True, final_residual=1e-3,
    ))
    (row,) = hm.snapshot()["krylov"]
    assert row["method"] == "pcg"
    assert row["solves"] == 2 and row["iterations"] == 45
    assert row["converged"] == 1 and row["stalls"] == 1
    assert row["last_relres"] == pytest.approx(1e-3)


def test_health_monitor_ignores_non_finite_residual():
    hm = HealthMonitor()
    hm.observe_krylov("pgmres", SimpleNamespace(
        iterations=1, converged=False, stalled=False,
        final_residual=float("inf"),
    ))
    (row,) = hm.snapshot()["krylov"]
    assert row["last_relres"] is None


def test_solve_health_without_feeds_is_none():
    assert solve_health(SimpleNamespace(), None) is None


def test_direct_solve_report_carries_health():
    prob = repro.LaplaceVolumeProblem(m=8)
    rep = repro.solve(prob, prob.random_rhs(0))
    h = rep.health
    assert h is not None and h.levels
    assert h.iterations == 0 and h.converged and not h.stalled
    doc = rep.to_dict()["health"]
    assert doc["levels"] and doc["levels"][0]["boxes"] > 0


def test_iterative_solve_report_carries_krylov_health():
    prob = repro.LaplaceVolumeProblem(m=8)
    rep = repro.solve(prob, prob.random_rhs(1), method="pcg")
    h = rep.health
    assert h is not None and h.iterations > 0
    assert h.converged and not h.stalled
    assert h.final_relres is not None and h.final_relres < 1e-10


def test_refinement_stall_detection():
    # converged never stalls; short histories have no "before" window
    assert not refinement_stalled([1.0] * 30, True)
    assert not refinement_stalled([1.0] * 5, False)
    # steadily improving residuals are slow, not stalled
    improving = [10.0 * 0.5 ** k for k in range(30)]
    assert not refinement_stalled(improving, False)
    # a plateau above tolerance is the stall signature
    plateau = [10.0 * 0.5 ** k for k in range(10)] + [1e-3] * 15
    assert refinement_stalled(plateau, False)


# ----------------------------------------------------------------------
# resource watchdog
# ----------------------------------------------------------------------
@needs_shm_dir
def test_watchdog_flags_persistent_shm_drift(caplog):
    # a deliberately "leaked" block: a tracked name that stays on disk
    name = f"repro-wd-leak-{os.getpid()}"
    path = os.path.join("/dev/shm", name)
    with open(path, "wb") as fh:
        fh.write(b"\0" * 512)
    wd = ResourceWatchdog(shm_tracked=lambda: {name}, leak_samples=3)
    try:
        with caplog.at_level(logging.INFO, logger="repro.requests"):
            info = wd.sample()
            assert info["leaked"] == []  # not persistent long enough yet
            wd.sample()
            info = wd.sample()
        assert info["shm_tracked_blocks"] == 1
        assert info["shm_tracked_bytes"] == 512
        assert info["leaked"] == [name]
        docs = [json.loads(r.getMessage()) for r in caplog.records]
        leaks = [d for d in docs if d.get("event") == "watchdog_leak"]
        assert len(leaks) == 1
        assert leaks[0]["name"] == name and leaks[0]["bytes"] == 512
        # warned once per name, not once per sample
        caplog.clear()
        with caplog.at_level(logging.INFO, logger="repro.requests"):
            wd.sample()
        docs = [json.loads(r.getMessage()) for r in caplog.records]
        assert not [d for d in docs if d.get("event") == "watchdog_leak"]
    finally:
        os.remove(path)
    # the name is gone from disk; the leak stays on record
    info = wd.sample()
    assert info["shm_tracked_blocks"] == 0 and info["leaked"] == [name]
    wd.reset()
    assert wd.last() == {}


@needs_shm_dir
def test_watchdog_ignores_transient_blocks(caplog):
    name = f"repro-wd-transient-{os.getpid()}"
    path = os.path.join("/dev/shm", name)
    wd = ResourceWatchdog(shm_tracked=lambda: {name}, leak_samples=3)
    with caplog.at_level(logging.INFO, logger="repro.requests"):
        with open(path, "wb") as fh:
            fh.write(b"\0" * 64)
        wd.sample()
        wd.sample()
        os.remove(path)  # swept in time: never reaches leak_samples
        for _ in range(3):
            info = wd.sample()
    assert info["leaked"] == []
    docs = [json.loads(r.getMessage()) for r in caplog.records]
    assert not [d for d in docs if d.get("event") == "watchdog_leak"]


def test_watchdog_residency_sources_aggregate():
    wd = ResourceWatchdog(shm_tracked=set)
    wd.add_residency_source("svc", lambda: {"cache": 100, "shared": 10})
    wd.add_residency_source("other", lambda: {"cache": 11})
    info = wd.sample()
    assert info["store_bytes"] == {"cache": 111, "shared": 10}
    assert info["rss_bytes"] > 0
    wd.remove_residency_source("other")
    assert wd.sample()["store_bytes"] == {"cache": 100, "shared": 10}
    assert wd.last()["samples"] == 2


def test_watchdog_survives_broken_providers():
    def boom():
        raise RuntimeError("provider races teardown")

    wd = ResourceWatchdog(shm_tracked=boom)
    wd.add_residency_source("bad", boom)
    info = wd.sample()
    assert info["shm_tracked_blocks"] == 0
    assert info["store_bytes"] == {}


def test_watchdog_thread_lifecycle():
    wd = ResourceWatchdog(shm_tracked=set)
    assert not wd.start(0)  # a zero period keeps the watchdog off
    assert wd.start(0.01)
    assert wd.start(0.01)  # idempotent
    try:
        deadline = time.perf_counter() + 5.0
        while not wd.last() and time.perf_counter() < deadline:
            time.sleep(0.01)
        assert wd.last().get("samples", 0) >= 1
    finally:
        wd.stop()
    assert not wd.running


# ----------------------------------------------------------------------
# tracer ring buffer
# ----------------------------------------------------------------------
def test_tracer_ring_caps_and_counts_drops(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_MAX_SPANS", "4")
    tr = Tracer(enabled=True)
    assert tr.max_spans() == 4
    before = tr.dropped_spans()
    for step in range(6):
        with tr.span("ring.step", step=step):
            pass
    spans = tr.snapshot()
    assert len(spans) == 4
    assert [s.attrs["step"] for s in spans] == [2, 3, 4, 5]  # oldest evicted
    assert tr.dropped_spans() - before == 2


def test_tracer_unbounded_when_max_spans_zero(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_MAX_SPANS", "0")
    tr = Tracer(enabled=True)
    assert tr.max_spans() == 0
    before = tr.dropped_spans()
    for step in range(100):
        with tr.span("ring.step", step=step):
            pass
    assert len(tr.snapshot()) == 100
    assert tr.dropped_spans() == before
