"""Persistent rank-pool tests: spawn-once reuse, cleanliness, recovery.

The acceptance contract of the pool: after the first dispatch through a
``Solver``/``ParallelFactorization``, no further process spawns happen
(probed via ``RankPool.spawn_count``), results stay bitwise identical
to the per-call path, and repeated dispatches leave zero orphaned
``/dev/shm`` blocks.
"""

import glob
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro import SolveConfig, Solver
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.parallel import parallel_srs_factor
from repro.vmpi import ProcessBackend, process_backend_available, run_spmd
from repro.vmpi.pool import RankPool, active_pools

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)

pytestmark = needs_process


def _shm_blocks() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _echo_prog(comm, scale):
    data = np.arange(3000, dtype=np.float64) * (comm.rank + 1) * scale
    total = comm.allreduce(float(data.sum()), lambda a, b: a + b)
    peer = comm.rank ^ 1
    comm.send(data, peer, tag=5)
    mirror = comm.recv(peer, tag=5)
    return total, float(mirror.sum())


def _pid_prog(comm):
    return os.getpid()


def _fire_and_forget_prog(comm, value):
    """Unbalanced on purpose: rank 0's message is never received."""
    if comm.rank == 0:
        comm.send(np.full(4000, value), 1, tag=99)
    return comm.rank


def _recv_prog(comm, value):
    if comm.rank == 0:
        comm.send(np.full(4000, float(value)), 1, tag=99)
        return None
    return float(comm.recv(0, tag=99)[0])


def _partial_boom_prog(comm):
    if comm.rank == 0:
        raise ValueError("boom")
    return comm.rank


# ----------------------------------------------------------------------
# dispatch reuse
# ----------------------------------------------------------------------
def test_default_pool_mode_is_persistent(monkeypatch):
    monkeypatch.delenv("REPRO_VMPI_POOL", raising=False)
    assert ProcessBackend().pool_mode == "persistent"


def test_run_spmd_reuses_one_pool():
    before = _shm_blocks()
    be = ProcessBackend(pool=True)
    r1 = run_spmd(2, _echo_prog, 1.0, backend=be)
    pool = be._pool
    assert pool is not None and pool.alive
    spawns = pool.spawn_count
    assert spawns == 2
    pids1 = run_spmd(2, _pid_prog, backend=be).results
    pids2 = run_spmd(2, _pid_prog, backend=be).results
    assert pids1 == pids2  # the same worker processes served both jobs
    assert pool.spawn_count == spawns  # and nothing was respawned
    r2 = run_spmd(2, _echo_prog, 1.0, backend=be)
    assert r1.results == r2.results
    assert _shm_blocks() - before == set()


def test_string_spec_shares_the_registry_pool():
    """Every ``backend="process"`` resolution lands on the same cached
    pool — reuse does not require holding a backend instance."""
    run_spmd(2, _echo_prog, 1.0, backend="process")
    pools = [p for p in active_pools() if p.nranks == 2]
    assert pools
    spawns = {id(p): p.spawn_count for p in pools}
    run_spmd(2, _echo_prog, 2.0, backend="process")
    for p in pools:
        assert p.spawn_count == spawns[id(p)]


def test_concurrent_dispatches_serialize_safely():
    """run_spmd from several threads at once: jobs must serialize on
    the shared pool without cross-talk (the per-call path was reentrant
    by construction; the pool must not regress that)."""
    import threading

    be = ProcessBackend(pool=True)
    results: dict[int, object] = {}

    def dispatch(i: int) -> None:
        results[i] = run_spmd(2, _echo_prog, float(i + 1), backend=be).results

    threads = [threading.Thread(target=dispatch, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert sorted(results) == [0, 1, 2]
    for i, res in results.items():
        expected = run_spmd(2, _echo_prog, float(i + 1), backend="thread").results
        assert res == expected


def test_closure_program_falls_back_to_per_call_on_fork():
    """A closure/lambda rank program cannot ride the pool's pickled
    dispatch, but under fork the per-call path still runs it by
    inheritance — exactly the pre-pool behavior."""
    be = ProcessBackend(pool=True)
    if be.start_method != "fork":
        pytest.skip("fallback only exists where fork inheritance works")
    local = np.arange(100.0)

    def prog(comm):  # closure over `local`: unpicklable by reference
        return float(local.sum()) + comm.rank

    run = run_spmd(2, prog, backend=be)
    assert run.results == [4950.0, 4951.0]


def test_per_call_env_opt_out(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_POOL", "per_call")
    be = ProcessBackend()
    assert be.pool_mode == "per_call"
    run = run_spmd(2, _echo_prog, 1.0, backend=be)
    assert be._pool is None  # no pool was created or touched
    assert run.results[0][0] == run.results[1][0]


# ----------------------------------------------------------------------
# factor + repeated solve through one Solver (the acceptance scenario)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def solver_runs():
    prob = LaplaceVolumeProblem(32)
    rng = np.random.default_rng(11)
    bs = [rng.standard_normal(prob.n) for _ in range(3)]
    before = _shm_blocks()
    solver = Solver(
        prob,
        SolveConfig(
            method="direct",
            execution="process",
            ranks=4,
            srs=SRSOptions(tol=1e-9, leaf_size=32),
        ),
    )
    reports = [solver.solve(b) for b in bs]
    fact = solver.factorization
    return dict(
        prob=prob, bs=bs, solver=solver, fact=fact, reports=reports, before=before
    )


def test_solver_pool_spawns_once(solver_runs):
    """Second and subsequent dispatches (factor job 1, solve jobs 2..4)
    perform no process spawns."""
    fact = solver_runs["fact"]
    pool = fact.backend._pool
    assert pool is not None and pool.alive
    assert pool.spawn_count == 4  # exactly one spawn per rank, ever
    assert pool.jobs_run >= 4  # 1 factor + 3 solves through those ranks


def test_solver_pool_no_shm_orphans(solver_runs):
    assert _shm_blocks() - solver_runs["before"] == set()


def test_solver_pool_bitwise_matches_per_call(solver_runs):
    prob, bs = solver_runs["prob"], solver_runs["bs"]
    fact_pc = parallel_srs_factor(
        prob.kernel,
        4,
        opts=SRSOptions(tol=1e-9, leaf_size=32),
        backend=ProcessBackend(pool=False),
    )
    for b, report in zip(bs, solver_runs["reports"]):
        assert np.array_equal(report.x, fact_pc.solve(b))


def test_solver_pool_counters_match_thread(solver_runs):
    prob, bs = solver_runs["prob"], solver_runs["bs"]
    fact_th = parallel_srs_factor(
        prob.kernel, 4, opts=SRSOptions(tol=1e-9, leaf_size=32), backend="thread"
    )
    fact = solver_runs["fact"]
    for a, c in zip(fact_th.factor_run.reports, fact.factor_run.reports):
        assert (a.messages_sent, a.bytes_sent) == (c.messages_sent, c.bytes_sent)
    fact_th.solve(bs[-1])
    assert fact_th.last_solve_run.total_messages == fact.last_solve_run.total_messages
    assert fact_th.last_solve_run.total_bytes == fact.last_solve_run.total_bytes


# ----------------------------------------------------------------------
# cross-job isolation and failure recovery
# ----------------------------------------------------------------------
def test_stale_messages_cannot_cross_jobs():
    """A message stranded by job k (sent, never received) must not be
    matched by job k+1 reusing the same (source, tag) — the epoch stamp
    discards it and unlinks its block."""
    before = _shm_blocks()
    be = ProcessBackend(pool=True)
    run_spmd(2, _fire_and_forget_prog, -1.0, backend=be)
    got = run_spmd(2, _recv_prog, 42.0, backend=be).results[1]
    assert got == 42.0  # job 2's payload, not job 1's strays
    assert _shm_blocks() - before == set()


def test_pool_survives_clean_rank_failure():
    before = _shm_blocks()
    be = ProcessBackend(pool=True)
    with pytest.raises(RuntimeError, match="rank 0 failed"):
        run_spmd(2, _partial_boom_prog, backend=be)
    pool = be._pool
    assert pool.alive  # every rank reported, workers idled: pool kept
    spawns = pool.spawn_count
    assert run_spmd(2, _pid_prog, backend=be).results  # still dispatches
    assert pool.spawn_count == spawns
    assert _shm_blocks() - before == set()


def test_pool_restarts_after_worker_death():
    before = _shm_blocks()
    pool = RankPool(2, ProcessBackend().start_method, 2048)
    try:
        run = pool.run(_pid_prog, ())
        assert len(run.results) == 2 and pool.spawn_count == 2
        pool._procs[0].terminate()
        pool._procs[0].join(timeout=10.0)
        assert not pool.alive
        run = pool.run(_pid_prog, ())  # transparently respawns
        assert len(run.results) == 2 and pool.spawn_count == 4
    finally:
        pool.shutdown()
    assert _shm_blocks() - before == set()


def test_revived_registry_pool_reclaims_or_retires():
    """A registry pool revived after a concurrent idle-eviction must
    reclaim its slot when free — and self-retire after its job when a
    live replacement owns the slot, never idling unowned workers."""
    from repro.vmpi.pool import get_pool

    start = ProcessBackend(pool=False).start_method
    pool = get_pool(2, start, 3333)
    assert pool._in_registry and pool._origin_registry
    pool.shutdown()  # simulates the eviction: deregistered, workers down
    assert not pool._in_registry and not pool.alive
    run = pool.run(_pid_prog, ())  # revival; slot free -> reclaimed
    assert len(run.results) == 2
    assert pool._in_registry and pool.alive
    pool.shutdown()
    replacement = get_pool(2, start, 3333)  # live replacement takes the slot
    try:
        run = pool.run(_pid_prog, ())  # old pool revives, runs, retires
        assert len(run.results) == 2
        assert not pool._in_registry and not pool.alive
        assert replacement.alive and replacement._in_registry
    finally:
        replacement.shutdown()


def test_pool_registry_lru_eviction(monkeypatch):
    from repro.vmpi.pool import get_pool

    monkeypatch.setenv("REPRO_VMPI_POOL_MAX", "1")
    start = ProcessBackend().start_method
    a = get_pool(2, start, 1111)
    assert a.alive
    b = get_pool(2, start, 2222)
    assert b.alive
    assert not a.alive  # evicted and shut down
    assert a not in active_pools() and b in active_pools()
    b.shutdown()


def test_pool_shutdown_reclaims_everything():
    before = _shm_blocks()
    pool = RankPool(2, ProcessBackend().start_method, 2048)
    try:
        pool.run(_echo_prog, (1.0,))
        assert pool.alive
    finally:
        pool.shutdown()
    assert not pool.alive
    assert _shm_blocks() - before == set()


# ----------------------------------------------------------------------
# interpreter exit
# ----------------------------------------------------------------------
_EXIT_SCRIPT = """
import numpy as np
from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro import SolveConfig, Solver

def main():
    prob = LaplaceVolumeProblem(32)
    solver = Solver(prob, SolveConfig(
        method="direct", execution="process", ranks=4,
        srs=SRSOptions(tol=1e-6, leaf_size=32)))
    r1 = solver.solve(prob.random_rhs(seed=1))
    r2 = solver.solve(prob.random_rhs(seed=2))
    pool = solver.factorization.backend._pool
    assert pool.spawn_count == 4, pool.spawn_count
    print("OK", r1.x.shape[0], r2.x.shape[0])

if __name__ == "__main__":
    main()
"""


def test_pool_interpreter_exit_is_clean(tmp_path):
    """Exiting with a live pool must terminate the workers and leave no
    shm blocks and no resource-tracker complaints."""
    script = tmp_path / "pool_exit.py"
    script.write_text(_EXIT_SCRIPT)
    before = _shm_blocks()
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(repro.__file__), os.pardir)
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    out = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.startswith("OK")
    assert "leaked" not in out.stderr, out.stderr  # resource_tracker noise
    assert _shm_blocks() - before == set()


# ----------------------------------------------------------------------
# spawn start method through the pool
# ----------------------------------------------------------------------
def test_pool_amortizes_spawn_start_method():
    import multiprocessing

    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    before = _shm_blocks()
    pool = RankPool(2, "spawn", 2048)
    try:
        r1 = pool.run(_echo_prog, (1.0,))
        r2 = pool.run(_echo_prog, (1.0,))
        assert r1.results == r2.results
        assert pool.spawn_count == 2  # one interpreter boot per rank, total
        assert pool.jobs_run == 2
    finally:
        pool.shutdown()
    assert _shm_blocks() - before == set()
