"""Layer-potential kernel matrices: identities, quadrature, proxy contract."""

import numpy as np
import pytest

from repro.bie import (
    Circle,
    HelmholtzCFIE,
    HelmholtzDLP,
    HelmholtzSLP,
    LaplaceDLP,
    LaplaceSLP,
    StarCurve,
)
from repro.bie.solves import plane_wave
from repro.kernels.base import dense_matrix
from repro.tree.quadtree import QuadTree


@pytest.fixture(scope="module")
def star_bd():
    return StarCurve(1.0, 0.3, 5).discretize(512)


@pytest.fixture(scope="module")
def circle_bd():
    return Circle(0.75, center=(0.1, 0.2)).discretize(256)


def test_gauss_identity_double_layer(star_bd):
    """The Laplace DLP of the constant density is -1 inside, 0 outside."""
    dlp = LaplaceDLP(star_bd)
    ones = np.ones(star_bd.n)
    curve = star_bd.curve
    inside = curve.interior_point() + np.array([[0.05, -0.1], [0.2, 0.1]])
    outside = np.array([[3.0, 0.5], [0.1, -2.5]])
    assert np.allclose(dlp.potential(inside, ones), -1.0, atol=1e-10)
    assert np.allclose(dlp.potential(outside, ones), 0.0, atol=1e-10)


def test_single_layer_constant_density_on_circle(circle_bd):
    """On a circle of radius R the SLP of the unit density is -R ln R
    everywhere on the boundary; the Kapur--Rokhlin matrix must hit it."""
    slp = LaplaceSLP(circle_bd, kr_order=10)
    val = dense_matrix(slp) @ np.ones(circle_bd.n)
    r = circle_bd.curve.radius
    assert np.allclose(val, -r * np.log(r), atol=1e-8)


def test_helmholtz_interior_green_representation(star_bd):
    """For u solving the Helmholtz equation inside the curve,
    ``u(x) = S[du/dn](x) - D[u](x)`` at interior points — exercising both
    layer potentials, the normals, and the arc-length weights at once."""
    kappa = 4.0
    d = np.array([0.6, 0.8])
    u = plane_wave(star_bd.points, kappa, d)
    dudn = 1j * kappa * (star_bd.normals @ d) * u
    slp = HelmholtzSLP(star_bd, kappa)
    dlp = HelmholtzDLP(star_bd, kappa)
    x = star_bd.curve.interior_point() + np.array([[0.1, 0.05], [-0.15, 0.2]])
    rep = slp.potential(x, dudn) - dlp.potential(x, u)
    exact = plane_wave(x, kappa, d)
    assert np.max(np.abs(rep - exact)) < 1e-10


def test_cfie_combines_layers(star_bd):
    kappa, eta = 3.0, 2.0
    cfie = HelmholtzCFIE(star_bd, kappa, eta=eta, identity=0.5)
    slp = HelmholtzSLP(star_bd, kappa)
    dlp = HelmholtzDLP(star_bd, kappa)
    rows = np.arange(0, 60, 7)
    cols = np.arange(200, 260, 5)
    combined = dlp.block(rows, cols) - 1j * eta * slp.block(rows, cols)
    assert np.allclose(cfie.block(rows, cols), combined)
    # identity shows up on the diagonal only
    assert np.allclose(cfie.diagonal(), 0.5)


def test_block_diagonal_and_symmetry(circle_bd):
    slp = LaplaceSLP(circle_bd)
    idx = np.arange(circle_bd.n)
    a = slp.block(idx, idx)
    assert np.all(np.isfinite(a))
    assert np.allclose(np.diag(a), 0.0)  # Kapur-Rokhlin punctures the diagonal
    # symmetric kernel: A[i,j]/w_j == A[j,i]/w_i  away from the corrected band
    w = circle_bd.weights
    g = a / w[None, :]
    band = np.abs(np.subtract.outer(idx, idx)) % circle_bd.n
    band = np.minimum(band, circle_bd.n - band)
    far = band > 6
    assert np.allclose(g[far], g.T[far])


def test_dlp_diagonal_limit_matches_offdiagonal(circle_bd):
    """The analytic diagonal limit -kappa/(4 pi) continues the smooth
    kernel: on a circle every off-diagonal kernel value equals it."""
    dlp = LaplaceDLP(circle_bd)
    idx = np.arange(circle_bd.n)
    a = dlp.block(idx, idx)
    g = a / circle_bd.weights[None, :]
    limit = -circle_bd.curvature[0] / (4 * np.pi)
    off = g[0, 1:]
    assert np.allclose(off, limit, atol=1e-12)
    assert np.isclose(g[0, 0] * circle_bd.weights[0], a[0, 0])


def test_proxy_blocks_follow_layer_kernel(star_bd):
    """proxy_row_block must use the true (dipole) layer kernel so the ID
    compresses the operator actually being factorized."""
    dlp = LaplaceDLP(star_bd)
    cols = np.arange(40, 80)
    proxy = np.array([[3.0, 0.0], [0.0, 3.2], [-2.8, 0.4]])
    row_blk = dlp.proxy_row_block(proxy, cols)
    assert row_blk.shape == (3, cols.size)
    # evaluating the potential of a density supported on cols agrees
    density = np.zeros(star_bd.n)
    density[cols] = np.linspace(1, 2, cols.size)
    assert np.allclose(row_blk @ density[cols], dlp.potential(proxy, density))
    # the column surrogate is the monopole Green's function
    rows = np.arange(10, 30)
    col_blk = dlp.proxy_col_block(rows, proxy)
    assert np.allclose(col_blk, dlp.greens(star_bd.points[rows], proxy))


def test_check_tree_resolution(star_bd):
    slp = LaplaceSLP(star_bd)
    ok_tree = QuadTree(star_bd.points, 3)
    slp.check_tree_resolution(ok_tree)  # fine: band << leaf side
    deep = QuadTree(star_bd.points, 7)
    with pytest.raises(ValueError):
        slp.check_tree_resolution(deep)
    # smooth kernels have no corrected band to resolve
    LaplaceDLP(star_bd).check_tree_resolution(deep)


def test_resolution_guard_fires_from_factorization_and_treecode():
    """srs_factor and TreecodeMatVec invoke the guard themselves, so a
    direct (non-driver) user cannot silently break proxy locality."""
    from repro.core import srs_factor
    from repro.matvec import TreecodeMatVec

    bd = Circle().discretize(64)
    slp = LaplaceSLP(bd, kr_order=10)
    deep = QuadTree(bd.points, 4)
    with pytest.raises(ValueError, match="Kapur-Rokhlin band"):
        srs_factor(slp, tree=deep)
    with pytest.raises(ValueError, match="Kapur-Rokhlin band"):
        TreecodeMatVec(slp, tree=deep)


def test_validation():
    bd = Circle().discretize(64)
    with pytest.raises(ValueError):
        HelmholtzSLP(bd, -1.0)
    with pytest.raises(ValueError):
        HelmholtzCFIE(bd, 0.0)
    with pytest.raises(ValueError):
        LaplaceSLP(bd, kr_order=5)
    with pytest.raises(ValueError):
        LaplaceSLP(Circle().discretize(10), kr_order=6)


def test_dtypes(circle_bd):
    assert LaplaceSLP(circle_bd).dtype == np.float64
    assert LaplaceDLP(circle_bd).dtype == np.float64
    assert HelmholtzSLP(circle_bd, 2.0).dtype == np.complex128
    assert HelmholtzCFIE(circle_bd, 2.0).dtype == np.complex128
    assert not LaplaceSLP(circle_bd).is_translation_invariant


# ----------------------------------------------------------------------
# distributed support: rank-local spawn
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "make",
    [
        lambda bd: LaplaceSLP(bd, kr_order=6),
        lambda bd: LaplaceDLP(bd, identity=-0.5),
        lambda bd: HelmholtzCFIE(bd, 6.0),
    ],
)
def test_spawn_matches_full_kernel_blocks(star_bd, make):
    """A spawned subset kernel must reproduce the exact entries of the
    full kernel — including the Kapur--Rokhlin band, which is defined by
    *global* periodic index distance."""
    full = make(star_bd)
    # a contiguous arc plus a far chunk: exercises band interior + edges
    subset = np.concatenate([np.arange(40, 80), np.arange(300, 330)])
    local = full.spawn(full.points[subset], full.per_point_data(subset))
    loc = np.arange(subset.size)
    np.testing.assert_array_equal(
        local.block(loc, loc), full.block(subset, subset)
    )
    proxy = np.array([[2.5, 0.0], [0.0, 2.5], [-2.5, 0.5]])
    np.testing.assert_array_equal(
        local.proxy_row_block(proxy, loc), full.proxy_row_block(proxy, subset)
    )
    np.testing.assert_array_equal(
        local.proxy_col_block(loc, proxy), full.proxy_col_block(subset, proxy)
    )


def test_spawn_tree_resolution_uses_global_spacing(star_bd):
    """check_tree_resolution must not overestimate the node spacing on a
    subset (local count != global count)."""
    full = LaplaceSLP(star_bd, kr_order=6)
    tree = QuadTree.for_leaf_size(star_bd.points, 64)
    full.check_tree_resolution(tree)  # sanity: fine on the full curve
    subset = np.arange(0, star_bd.n, 4)  # 4x fewer nodes
    local = full.spawn(full.points[subset], full.per_point_data(subset))
    local.check_tree_resolution(tree)  # must not raise either
    # nor *underestimate* it: a subset excluding the fastest arc must
    # still enforce the full-curve band (deep tree the full kernel rejects)
    deep = QuadTree(star_bd.points, 8)
    with pytest.raises(ValueError, match="Kapur-Rokhlin band"):
        full.check_tree_resolution(deep)
    slow = np.sort(np.argsort(star_bd.speed)[: star_bd.n // 2])  # slowest half
    local2 = full.spawn(full.points[slow], full.per_point_data(slow))
    with pytest.raises(ValueError, match="Kapur-Rokhlin band"):
        local2.check_tree_resolution(deep)


def test_spawn_potential_rejected(star_bd):
    full = LaplaceDLP(star_bd)
    subset = np.arange(100)
    local = full.spawn(full.points[subset], full.per_point_data(subset))
    with pytest.raises(RuntimeError, match="full-curve"):
        local.potential(np.array([[0.0, 0.0]]), np.ones(subset.size))


def test_parallel_factor_enforces_tree_resolution(star_bd):
    """The distributed driver must validate the KR band against the tree
    it will factor on, like the sequential path does."""
    from repro.geometry.domain import Square
    from repro.parallel import parallel_srs_factor
    from repro.core.options import SRSOptions

    slp = LaplaceSLP(star_bd, kr_order=10)
    dom = Square.bounding(star_bd.points)
    with pytest.raises(ValueError, match="Kapur-Rokhlin band"):
        parallel_srs_factor(
            slp, 4, opts=SRSOptions(tol=1e-8, leaf_size=4), nlevels=7, domain=dom
        )
