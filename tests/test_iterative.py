"""Tests for CG and GMRES."""

import numpy as np
import pytest

from repro.iterative import cg, gmres


@pytest.fixture
def spd():
    rng = np.random.default_rng(5)
    q, _ = np.linalg.qr(rng.standard_normal((80, 80)))
    return q @ np.diag(np.linspace(1, 50, 80)) @ q.T


def test_cg_converges_spd(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, tol=1e-12)
    assert res.converged
    assert np.linalg.norm(spd @ res.x - b) / np.linalg.norm(b) < 1e-11


def test_cg_iteration_count_scales_with_sqrt_condition(rng):
    q, _ = np.linalg.qr(rng.standard_normal((100, 100)))
    counts = []
    for cond in (10.0, 1000.0):
        a = q @ np.diag(np.geomspace(1, cond, 100)) @ q.T
        b = rng.standard_normal(100)
        counts.append(cg(lambda v, a=a: a @ v, b, tol=1e-10).iterations)
    assert counts[1] > 2 * counts[0]


def test_pcg_exact_preconditioner_one_iteration(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, preconditioner=lambda v: np.linalg.solve(spd, v), tol=1e-12)
    assert res.converged and res.iterations <= 2


def test_cg_zero_rhs(spd):
    res = cg(lambda v: spd @ v, np.zeros(80))
    assert res.converged and res.iterations == 0


def test_cg_with_initial_guess(spd, rng):
    b = rng.standard_normal(80)
    x_true = np.linalg.solve(spd, b)
    res = cg(lambda v: spd @ v, b, x0=x_true, tol=1e-10)
    assert res.iterations == 0 and res.converged


def test_cg_residual_history_decreasing_tail(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, tol=1e-12)
    assert res.residual_history[-1] < res.residual_history[0]
    assert res.final_residual <= 1e-12


def test_cg_maxiter_not_converged(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, tol=1e-14, maxiter=2)
    assert not res.converged and res.iterations == 2


def test_cg_integer_rhs_promotes():
    """An integer rhs must not silently run integer arithmetic."""
    b = np.array([2, 4, 6])
    res = cg(lambda v: 2.0 * v, b, tol=1e-14)
    assert res.x.dtype == np.float64
    assert res.converged
    np.testing.assert_allclose(res.x, [1.0, 2.0, 3.0])
    zero = cg(lambda v: 2.0 * v, np.zeros(3, dtype=np.int64))
    assert zero.x.dtype == np.float64


def test_cg_semidefinite_breakdown_is_finite():
    """A numerically-zero curvature ``p* A p`` must stop the iteration,
    not divide through and blow up (exact ``denom == 0`` misses it)."""
    tiny = 1e-20
    # antisymmetric part contributes exactly 0 to p* A p; the tiny
    # symmetric part leaves a denominator far below eps * |p| |Ap|
    a = np.array([[tiny, 1.0], [-1.0, tiny]])
    b = np.array([1.0, 1.0])
    res = cg(lambda v: a @ v, b, tol=1e-14, maxiter=10)
    assert not res.converged
    assert res.iterations == 0
    assert np.all(np.isfinite(res.x))
    assert all(np.isfinite(h) for h in res.residual_history)


def test_cg_exact_zero_denominator_breakdown():
    a = np.array([[1.0, 0.0], [0.0, 0.0]])  # semi-definite
    res = cg(lambda v: a @ v, np.array([0.0, 1.0]), tol=1e-14, maxiter=10)
    assert not res.converged and np.all(np.isfinite(res.x))


# -- GMRES -------------------------------------------------------------
@pytest.fixture
def complex_system(rng):
    n = 60
    a = 4 * np.eye(n) + 0.5 * (
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    ) / np.sqrt(n)
    b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return a, b


def test_gmres_converges_complex(complex_system):
    a, b = complex_system
    res = gmres(lambda v: a @ v, b, tol=1e-12, restart=30)
    assert res.converged
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-11


def test_gmres_restart_still_converges(complex_system):
    a, b = complex_system
    res = gmres(lambda v: a @ v, b, tol=1e-10, restart=5)
    assert res.converged
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-9


def test_right_preconditioning_reports_true_residual(complex_system):
    a, b = complex_system
    res = gmres(
        lambda v: a @ v, b, preconditioner=lambda v: np.linalg.solve(a, v), tol=1e-12
    )
    assert res.converged and res.iterations <= 2
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-11


def test_gmres_real_system(rng):
    n = 50
    a = 3 * np.eye(n) + rng.standard_normal((n, n)) / np.sqrt(n)
    b = rng.standard_normal(n)
    res = gmres(lambda v: a @ v, b, tol=1e-11, restart=25)
    assert res.converged
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-10


def test_gmres_zero_rhs():
    res = gmres(lambda v: v, np.zeros(10))
    assert res.converged and res.iterations == 0


def test_gmres_maxiter_cap(complex_system):
    a, b = complex_system
    res = gmres(lambda v: a @ v, b, tol=1e-15, maxiter=3, restart=20)
    assert res.iterations <= 3


def test_gmres_invalid_restart(complex_system):
    a, b = complex_system
    with pytest.raises(ValueError):
        gmres(lambda v: a @ v, b, restart=0)


def test_gmres_happy_breakdown_identity():
    """A = I: the Krylov space is 1-dimensional; the Arnoldi loop must
    stop at the breakdown instead of iterating on an uninitialized
    basis column."""
    b = np.arange(1.0, 9.0)
    res = gmres(lambda v: v.copy(), b, tol=1e-12, restart=5)
    assert res.converged
    assert res.iterations == 1
    assert np.all(np.isfinite(res.x))
    np.testing.assert_allclose(res.x, b, rtol=1e-14)


def test_gmres_happy_breakdown_invariant_subspace():
    """rhs spanning two eigenvectors: exact solution (and breakdown)
    after two inner iterations, well inside the restart window."""
    d = np.array([2.0, 5.0, 7.0, 11.0, 3.0])
    b = np.zeros(5)
    b[0], b[2] = 3.0, -4.0  # invariant 2-dimensional subspace
    res = gmres(lambda v: d * v, b, tol=1e-13, restart=5, maxiter=50)
    assert res.converged
    assert res.iterations == 2
    np.testing.assert_allclose(res.x, b / d, rtol=1e-12)
    assert all(np.isfinite(h) for h in res.residual_history)


def test_gmres_breakdown_with_zero_tol_terminates():
    """Breakdown must exit the inner loop even when ``tol`` is
    unreachable — iterating past it would read the uninitialized
    ``basis[:, j+1]`` column."""
    b = np.ones(4)  # |b| = 2 exactly, so Arnoldi breaks down exactly
    res = gmres(lambda v: v.copy(), b, tol=0.0, restart=4, maxiter=16)
    assert np.all(np.isfinite(res.x))
    np.testing.assert_allclose(res.x, b, rtol=1e-14)


def test_gmres_singular_operator_no_crash():
    """Breakdown with a singular Hessenberg (rank-deficient A, rhs
    touching the nullspace) must return not-converged, not raise
    LinAlgError from the triangular solve, and not spin to maxiter."""
    res = gmres(lambda v: np.zeros_like(v), np.ones(4), tol=1e-12, maxiter=100)
    assert not res.converged
    assert res.iterations <= 2
    assert np.all(np.isfinite(res.x))

    a = np.diag([1.0, 0.0])
    res = gmres(lambda v: a @ v, np.array([0.0, 1.0]), tol=1e-12, maxiter=100)
    assert not res.converged
    assert np.all(np.isfinite(res.x))


def test_gmres_singular_operator_consistent_rhs():
    """Rank-deficient but consistent system: the minimum-norm Krylov
    solution still solves it."""
    a = np.diag([2.0, 3.0, 0.0])
    b = np.array([4.0, 9.0, 0.0])
    res = gmres(lambda v: a @ v, b, tol=1e-12, maxiter=100)
    assert res.converged
    np.testing.assert_allclose(res.x[:2], [2.0, 3.0], rtol=1e-12)


def test_gmres_matches_scipy(complex_system):
    import scipy.sparse.linalg as spla

    a, b = complex_system
    ours = gmres(lambda v: a @ v, b, tol=1e-10, restart=20)
    op = spla.LinearOperator(a.shape, matvec=lambda v: a @ v, dtype=complex)
    theirs, info = spla.gmres(op, b, rtol=1e-10, restart=20)
    assert info == 0
    assert np.linalg.norm(ours.x - theirs) / np.linalg.norm(theirs) < 1e-6
