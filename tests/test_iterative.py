"""Tests for CG and GMRES."""

import numpy as np
import pytest

from repro.iterative import cg, gmres


@pytest.fixture
def spd():
    rng = np.random.default_rng(5)
    q, _ = np.linalg.qr(rng.standard_normal((80, 80)))
    return q @ np.diag(np.linspace(1, 50, 80)) @ q.T


def test_cg_converges_spd(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, tol=1e-12)
    assert res.converged
    assert np.linalg.norm(spd @ res.x - b) / np.linalg.norm(b) < 1e-11


def test_cg_iteration_count_scales_with_sqrt_condition(rng):
    q, _ = np.linalg.qr(rng.standard_normal((100, 100)))
    counts = []
    for cond in (10.0, 1000.0):
        a = q @ np.diag(np.geomspace(1, cond, 100)) @ q.T
        b = rng.standard_normal(100)
        counts.append(cg(lambda v, a=a: a @ v, b, tol=1e-10).iterations)
    assert counts[1] > 2 * counts[0]


def test_pcg_exact_preconditioner_one_iteration(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, preconditioner=lambda v: np.linalg.solve(spd, v), tol=1e-12)
    assert res.converged and res.iterations <= 2


def test_cg_zero_rhs(spd):
    res = cg(lambda v: spd @ v, np.zeros(80))
    assert res.converged and res.iterations == 0


def test_cg_with_initial_guess(spd, rng):
    b = rng.standard_normal(80)
    x_true = np.linalg.solve(spd, b)
    res = cg(lambda v: spd @ v, b, x0=x_true, tol=1e-10)
    assert res.iterations == 0 and res.converged


def test_cg_residual_history_decreasing_tail(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, tol=1e-12)
    assert res.residual_history[-1] < res.residual_history[0]
    assert res.final_residual <= 1e-12


def test_cg_maxiter_not_converged(spd, rng):
    b = rng.standard_normal(80)
    res = cg(lambda v: spd @ v, b, tol=1e-14, maxiter=2)
    assert not res.converged and res.iterations == 2


# -- GMRES -------------------------------------------------------------
@pytest.fixture
def complex_system(rng):
    n = 60
    a = 4 * np.eye(n) + 0.5 * (
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    ) / np.sqrt(n)
    b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return a, b


def test_gmres_converges_complex(complex_system):
    a, b = complex_system
    res = gmres(lambda v: a @ v, b, tol=1e-12, restart=30)
    assert res.converged
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-11


def test_gmres_restart_still_converges(complex_system):
    a, b = complex_system
    res = gmres(lambda v: a @ v, b, tol=1e-10, restart=5)
    assert res.converged
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-9


def test_right_preconditioning_reports_true_residual(complex_system):
    a, b = complex_system
    res = gmres(
        lambda v: a @ v, b, preconditioner=lambda v: np.linalg.solve(a, v), tol=1e-12
    )
    assert res.converged and res.iterations <= 2
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-11


def test_gmres_real_system(rng):
    n = 50
    a = 3 * np.eye(n) + rng.standard_normal((n, n)) / np.sqrt(n)
    b = rng.standard_normal(n)
    res = gmres(lambda v: a @ v, b, tol=1e-11, restart=25)
    assert res.converged
    assert np.linalg.norm(a @ res.x - b) / np.linalg.norm(b) < 1e-10


def test_gmres_zero_rhs():
    res = gmres(lambda v: v, np.zeros(10))
    assert res.converged and res.iterations == 0


def test_gmres_maxiter_cap(complex_system):
    a, b = complex_system
    res = gmres(lambda v: a @ v, b, tol=1e-15, maxiter=3, restart=20)
    assert res.iterations <= 3


def test_gmres_invalid_restart(complex_system):
    a, b = complex_system
    with pytest.raises(ValueError):
        gmres(lambda v: a @ v, b, restart=0)


def test_gmres_matches_scipy(complex_system):
    import scipy.sparse.linalg as spla

    a, b = complex_system
    ours = gmres(lambda v: a @ v, b, tol=1e-10, restart=20)
    op = spla.LinearOperator(a.shape, matvec=lambda v: a @ v, dtype=complex)
    theirs, info = spla.gmres(op, b, rtol=1e-10, restart=20)
    assert info == 0
    assert np.linalg.norm(ours.x - theirs) / np.linalg.norm(theirs) < 1e-6
