"""Tests for Morton codes, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.morton import morton_argsort, morton_decode, morton_encode

COORD = st.integers(min_value=0, max_value=2**24 - 1)


@given(COORD, COORD)
def test_roundtrip_scalar(ix, iy):
    assert morton_decode(morton_encode(ix, iy)) == (ix, iy)


@given(st.lists(st.tuples(COORD, COORD), min_size=1, max_size=50))
def test_roundtrip_vectorized(coords):
    ix = np.array([c[0] for c in coords])
    iy = np.array([c[1] for c in coords])
    dx, dy = morton_decode(morton_encode(ix, iy))
    assert np.array_equal(dx, ix)
    assert np.array_equal(dy, iy)


@given(COORD, COORD, COORD, COORD)
def test_injective(ax, ay, bx, by):
    if (ax, ay) != (bx, by):
        assert morton_encode(ax, ay) != morton_encode(bx, by)


def test_known_small_codes():
    # x bits land in even positions: (1,0) -> 1, (0,1) -> 2, (1,1) -> 3
    assert morton_encode(0, 0) == 0
    assert morton_encode(1, 0) == 1
    assert morton_encode(0, 1) == 2
    assert morton_encode(1, 1) == 3
    assert morton_encode(2, 0) == 4


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        morton_encode(2**24, 0)


def test_argsort_produces_z_order():
    ii, jj = np.meshgrid(np.arange(4), np.arange(4), indexing="ij")
    ix, iy = ii.ravel(), jj.ravel()
    order = morton_argsort(ix, iy)
    first_four = [(int(ix[k]), int(iy[k])) for k in order[:4]]
    assert first_four == [(0, 0), (1, 0), (0, 1), (1, 1)]


def test_locality_of_z_order():
    """Consecutive Morton codes in a quad share the same 2x2 block."""
    for base_x in (0, 2, 4):
        codes = [morton_encode(base_x + dx, dy) for dx in (0, 1) for dy in (0, 1)]
        assert max(codes) - min(codes) == 3
