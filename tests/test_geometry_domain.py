"""Tests for repro.geometry.domain."""

import numpy as np
import pytest

from repro.geometry.domain import Square


def test_default_unit_square():
    s = Square()
    assert s.x0 == 0.0 and s.y0 == 0.0 and s.size == 1.0
    assert np.allclose(s.center, [0.5, 0.5])


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        Square(0, 0, 0.0)
    with pytest.raises(ValueError):
        Square(0, 0, -1.0)


def test_contains_boundary_points():
    s = Square(0, 0, 2.0)
    pts = np.array([[0, 0], [2, 2], [1, 1], [2.0001, 1], [-0.0001, 1]])
    mask = s.contains(pts)
    assert mask.tolist() == [True, True, True, False, False]


def test_contains_with_tolerance():
    s = Square()
    pts = np.array([[1.0 + 1e-9, 0.5]])
    assert not s.contains(pts)[0]
    assert s.contains(pts, tol=1e-6)[0]


def test_subdivide_covers_parent():
    s = Square(1.0, 2.0, 4.0)
    quads = s.subdivide()
    assert len(quads) == 4
    assert all(q.size == 2.0 for q in quads)
    # corners of children tile the parent
    corners = sorted((q.x0, q.y0) for q in quads)
    assert corners == [(1.0, 2.0), (1.0, 4.0), (3.0, 2.0), (3.0, 4.0)]


def test_bounding_square_contains_all_points():
    rng = np.random.default_rng(3)
    pts = rng.normal(size=(100, 2)) * 3.0
    s = Square.bounding(pts)
    assert s.contains(pts).all()


def test_bounding_square_of_degenerate_cloud():
    pts = np.array([[0.3, 0.7], [0.3, 0.7]])
    s = Square.bounding(pts)
    assert s.size > 0
    assert s.contains(pts).all()
