"""Tests for the partial-LU wrapper used to eliminate X_RR."""

import numpy as np
import pytest

from repro.linalg import PartialLU


@pytest.fixture
def matrix():
    rng = np.random.default_rng(11)
    return rng.standard_normal((12, 12)) + 12 * np.eye(12)


def test_solve_left(matrix):
    lu = PartialLU(matrix)
    rng = np.random.default_rng(1)
    b = rng.standard_normal((12, 3))
    assert np.allclose(matrix @ lu.solve_left(b), b)


def test_solve_right(matrix):
    lu = PartialLU(matrix)
    rng = np.random.default_rng(2)
    b = rng.standard_normal((5, 12))
    assert np.allclose(lu.solve_right(b) @ matrix, b)


def test_half_solves_compose_to_full(matrix):
    """U^{-1} L^{-1} P v == X^{-1} v."""
    lu = PartialLU(matrix)
    rng = np.random.default_rng(3)
    v = rng.standard_normal(12)
    composed = lu.apply_upper_inverse(lu.apply_lower_inverse(v))
    assert np.allclose(composed, np.linalg.solve(matrix, v))


def test_lower_inverse_is_unit_triangular_action(matrix):
    """L^{-1} P applied to the matrix's own columns gives U."""
    lu = PartialLU(matrix)
    u = np.column_stack([lu.apply_lower_inverse(matrix[:, j]) for j in range(12)])
    assert np.allclose(np.tril(u, -1), 0.0, atol=1e-10)


def test_complex_support():
    rng = np.random.default_rng(4)
    a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6)) + 6 * np.eye(6)
    lu = PartialLU(a)
    b = rng.standard_normal(6) + 1j * rng.standard_normal(6)
    assert np.allclose(a @ lu.solve_left(b), b)


def test_empty_block():
    lu = PartialLU(np.zeros((0, 0)))
    v = np.zeros((0, 2))
    assert lu.solve_left(v).shape == (0, 2)
    assert lu.apply_lower_inverse(np.zeros(0)).shape == (0,)


def test_requires_square():
    with pytest.raises(ValueError):
        PartialLU(np.zeros((3, 4)))


def test_pivoting_matters():
    """A matrix needing pivoting is still solved accurately."""
    a = np.array([[1e-14, 1.0], [1.0, 1.0]])
    lu = PartialLU(a)
    b = np.array([1.0, 2.0])
    assert np.allclose(a @ lu.solve_left(b), b, atol=1e-12)
