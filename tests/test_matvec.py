"""Tests: FFT block-Toeplitz matvec == dense reference, exactly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import uniform_grid
from repro.kernels import (
    GaussianKernelMatrix,
    HelmholtzKernelMatrix,
    LaplaceKernelMatrix,
    YukawaKernelMatrix,
    dense_matrix,
)
from repro.kernels.helmholtz import gaussian_bump
from repro.matvec import DenseMatVec, FFTMatVec


@pytest.mark.parametrize("m", [4, 8, 16])
def test_laplace_fft_equals_dense(m, rng):
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    a = dense_matrix(k)
    x = rng.standard_normal(m * m)
    fv = FFTMatVec(k, m)
    assert np.allclose(fv(x), a @ x, rtol=1e-12, atol=1e-12)


def test_helmholtz_fft_equals_dense(rng):
    m = 12
    pts = uniform_grid(m)
    k = HelmholtzKernelMatrix(pts, 1.0 / m, 9.0, b=gaussian_bump(pts))
    a = dense_matrix(k)
    x = rng.standard_normal(m * m) + 1j * rng.standard_normal(m * m)
    fv = FFTMatVec(k, m)
    assert np.allclose(fv(x), a @ x, rtol=1e-11, atol=1e-12)


def test_yukawa_fft_equals_dense(rng):
    m = 10
    k = YukawaKernelMatrix(uniform_grid(m), 1.0 / m, 4.0)
    a = dense_matrix(k)
    x = rng.standard_normal(m * m)
    assert np.allclose(FFTMatVec(k, m)(x), a @ x)


def test_multiple_rhs(rng):
    m = 8
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    a = dense_matrix(k)
    xs = rng.standard_normal((m * m, 5))
    out = FFTMatVec(k, m)(xs)
    assert out.shape == (m * m, 5)
    assert np.allclose(out, a @ xs)


def test_dense_matvec_chunking_irrelevant(rng):
    m = 8
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m)
    x = rng.standard_normal(m * m)
    a = dense_matrix(k)
    for chunk in (1, 7, 64, 1000):
        assert np.allclose(DenseMatVec(k, chunk=chunk)(x), a @ x)


def test_residual_norm(rng):
    m = 8
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    fv = FFTMatVec(k, m)
    a = dense_matrix(k)
    x = rng.standard_normal(m * m)
    b = a @ x
    assert fv.residual_norm(x, b) < 1e-12
    assert fv.residual_norm(np.zeros_like(x), b) == pytest.approx(1.0)


def test_dimension_mismatch_rejected(rng):
    m = 8
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    fv = FFTMatVec(k, m)
    with pytest.raises(ValueError):
        fv(np.zeros(10))
    with pytest.raises(ValueError):
        FFTMatVec(k, m + 1)


def test_real_kernel_returns_real(rng):
    m = 6
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    out = FFTMatVec(k, m)(rng.standard_normal(m * m))
    assert out.dtype == np.float64


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=1000))
def test_fft_dense_agreement_property(m, seed):
    rng = np.random.default_rng(seed)
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.2)
    x = rng.standard_normal(m * m)
    assert np.allclose(FFTMatVec(k, m)(x), DenseMatVec(k)(x), rtol=1e-11, atol=1e-12)
