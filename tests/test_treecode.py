"""Tests for the kernel-independent treecode matvec."""

import numpy as np
import pytest

from repro.geometry import clustered_points, random_points, uniform_grid
from repro.kernels import GaussianKernelMatrix, LaplaceKernelMatrix, YukawaKernelMatrix
from repro.matvec import DenseMatVec
from repro.matvec.treecode import TreecodeMatVec, _interaction_list
from repro.tree import QuadTree


def relerr(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


def test_interaction_lists_partition_far_field():
    """Union of interaction lists over levels = full far field, disjoint."""
    tree = QuadTree(uniform_grid(16), 4)
    leaf = (5, 9)
    covered = set()
    anc = leaf
    for level in range(4, 1, -1):
        lst = _interaction_list(tree, level, anc)
        for c in lst:
            # expand to leaf boxes below c
            depth = 4 - level
            for ddx in range(1 << depth):
                for ddy in range(1 << depth):
                    cell = ((c[0] << depth) + ddx, (c[1] << depth) + ddy)
                    assert cell not in covered, f"double counted {cell}"
                    covered.add(cell)
        anc = (anc[0] >> 1, anc[1] >> 1)
    near = {
        (leaf[0] + dx, leaf[1] + dy)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        if 0 <= leaf[0] + dx < 16 and 0 <= leaf[1] + dy < 16
    }
    assert covered == {(i, j) for i in range(16) for j in range(16)} - near


@pytest.mark.parametrize("seed", [0, 3])
def test_laplace_random_cloud(seed):
    n = 900
    pts = random_points(n, seed=seed)
    k = LaplaceKernelMatrix(pts, 1.0 / np.sqrt(n))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    fast = TreecodeMatVec(k, leaf_size=32)
    exact = DenseMatVec(k)(x)
    assert relerr(fast(x), exact) < 1e-7


def test_clustered_cloud():
    n = 800
    pts = clustered_points(n, n_clusters=3, spread=0.05, seed=1)
    k = YukawaKernelMatrix(pts, 1.0 / np.sqrt(n), 2.0)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(n)
    fast = TreecodeMatVec(k, leaf_size=32)
    assert relerr(fast(x), DenseMatVec(k)(x)) < 1e-6


def test_non_pde_kernel_is_inaccurate():
    """Equivalent-surface representations require the kernel to solve a
    PDE away from sources (Laplace/Helmholtz/Yukawa). A Gaussian kernel
    violates that, and the treecode error floor shows it — documented
    limitation shared with real kernel-independent FMMs."""
    n = 400
    pts = clustered_points(n, n_clusters=3, spread=0.05, seed=1)
    k = GaussianKernelMatrix(pts, 1.0 / np.sqrt(n), sigma=0.2, shift=1.0)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(n)
    err = relerr(TreecodeMatVec(k, leaf_size=32)(x), DenseMatVec(k)(x))
    assert 1e-9 < err < 0.05


def test_uniform_grid_matches_dense():
    m = 24
    k = YukawaKernelMatrix(uniform_grid(m), 1.0 / m, 3.0)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(m * m)
    fast = TreecodeMatVec(k, leaf_size=36)
    assert relerr(fast(x), DenseMatVec(k)(x)) < 1e-7


def test_accuracy_improves_with_equiv_points():
    n = 600
    pts = random_points(n, seed=5)
    k = LaplaceKernelMatrix(pts, 1.0 / np.sqrt(n))
    rng = np.random.default_rng(5)
    x = rng.standard_normal(n)
    exact = DenseMatVec(k)(x)
    coarse = relerr(TreecodeMatVec(k, leaf_size=32, n_equiv=10)(x), exact)
    fine = relerr(TreecodeMatVec(k, leaf_size=32, n_equiv=48)(x), exact)
    assert fine < coarse


def test_parameter_validation():
    k = LaplaceKernelMatrix(uniform_grid(8), 1.0 / 8)
    with pytest.raises(ValueError):
        TreecodeMatVec(k, equiv_factor=0.5)
    with pytest.raises(ValueError):
        TreecodeMatVec(k, equiv_factor=1.4, check_factor=1.3)
    with pytest.raises(ValueError):
        TreecodeMatVec(k, check_factor=2.0)


def test_input_validation():
    k = LaplaceKernelMatrix(uniform_grid(8), 1.0 / 8)
    tv = TreecodeMatVec(k, leaf_size=16)
    with pytest.raises(ValueError):
        tv(np.zeros(3))
    with pytest.raises(ValueError):
        tv(np.zeros((64, 2, 2)))


def test_blocked_matvec_matches_dense():
    """(N, nrhs) blocks follow SRSFactorization.solve's multi-RHS contract."""
    n = 700
    pts = random_points(n, seed=7)
    k = LaplaceKernelMatrix(pts, 1.0 / np.sqrt(n))
    rng = np.random.default_rng(7)
    xb = rng.standard_normal((n, 5))
    fast = TreecodeMatVec(k, leaf_size=32)
    exact = DenseMatVec(k)(xb)
    assert exact.shape == (n, 5)
    out = fast(xb)
    assert out.shape == (n, 5)
    assert relerr(out, exact) < 1e-7
    # columns of the block agree with one-at-a-time application
    assert relerr(out[:, 2], fast(xb[:, 2])) < 1e-14


def test_blocked_matvec_complex_rhs_on_real_kernel():
    n = 500
    pts = random_points(n, seed=9)
    k = LaplaceKernelMatrix(pts, 1.0 / np.sqrt(n))
    rng = np.random.default_rng(9)
    xb = rng.standard_normal((n, 3)) + 1j * rng.standard_normal((n, 3))
    fast = TreecodeMatVec(k, leaf_size=32)
    out = fast(xb)
    assert np.iscomplexobj(out)
    assert relerr(out, DenseMatVec(k)(xb)) < 1e-7


def test_tree_kernel_mismatch():
    k = LaplaceKernelMatrix(uniform_grid(8), 1.0 / 8)
    wrong_tree = QuadTree(uniform_grid(4), 2)
    with pytest.raises(ValueError):
        TreecodeMatVec(k, tree=wrong_tree)
