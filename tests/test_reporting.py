"""Tests for table/figure reporting helpers."""

import os

import numpy as np
import pytest

from repro.reporting import ScalingSeries, Table, ascii_loglog, format_sci, format_seconds, write_pgm


def test_format_seconds():
    assert format_seconds(0) == "0"
    assert format_seconds(123.4) == "123"
    assert format_seconds(12.34) == "12.34"
    assert format_seconds(0.1234) == "0.123"


def test_format_sci():
    assert format_sci(1.11e-4) == "1.11e-04"


def test_table_rendering():
    t = Table("Demo", ["N", "p", "t"])
    t.add_row(1024, 4, "1.23")
    t.add_row(4096, 16, "0.55")
    out = t.render()
    assert "Demo" in out
    assert "1024" in out and "0.55" in out
    assert len(out.splitlines()) == 6


def test_table_wrong_arity():
    t = Table("x", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_scaling_series_efficiency():
    s = ScalingSeries("fact")
    s.add(1, 8.0)
    s.add(4, 2.0)
    s.add(16, 1.0)
    eff = s.parallel_efficiency()
    assert eff[0] == pytest.approx(1.0)
    assert eff[1] == pytest.approx(1.0)  # perfect 1->4
    assert eff[2] == pytest.approx(0.5)  # half efficiency at 16


def test_ascii_loglog_renders():
    s1 = ScalingSeries("a"); s1.add(1, 10.0); s1.add(4, 3.0)
    s2 = ScalingSeries("b"); s2.add(1, 20.0); s2.add(4, 6.0)
    art = ascii_loglog([s1, s2])
    assert "o=a" in art and "x=b" in art


def test_ascii_loglog_empty():
    assert ascii_loglog([ScalingSeries("e")]) == "(no data)"


def test_write_pgm(tmp_path):
    img = np.linspace(0, 1, 64).reshape(8, 8)
    path = os.path.join(tmp_path, "x.pgm")
    write_pgm(path, img)
    with open(path, "rb") as fh:
        head = fh.read(2)
    assert head == b"P5"
    assert os.path.getsize(path) > 64


def test_write_pgm_constant_image(tmp_path):
    path = os.path.join(tmp_path, "c.pgm")
    write_pgm(path, np.ones((4, 4)))
    assert os.path.exists(path)


def test_write_pgm_rejects_3d(tmp_path):
    with pytest.raises(ValueError):
        write_pgm(os.path.join(tmp_path, "z.pgm"), np.zeros((2, 2, 2)))
