"""Batched-vs-strict factor sweep parity (repro.core.batch).

The contract under test (INVARIANTS.md, "factor-batching"): batching
reorders assembly and compression, never elimination. ``strict`` stays
bitwise-reproducible; ``batched`` agrees to the ID tolerance on every
kernel family and execution backend, including the Hermitian fast path
(Laplace/Gaussian) and the two-sided complex path (Helmholtz).
"""

import numpy as np
import pytest

from repro.bie import InteriorDirichletProblem, StarCurve, harmonic_exponential
from repro.core import SRSOptions, srs_factor
from repro.core.proxy import proxy_circle, proxy_circle_stack
from repro.core.skel import BoxRecord
from repro.geometry import uniform_grid
from repro.kernels import (
    GaussianKernelMatrix,
    HelmholtzKernelMatrix,
    LaplaceKernelMatrix,
    dense_matrix,
)
from repro.kernels.helmholtz import gaussian_bump
from repro.parallel import parallel_srs_factor
from repro.tree import QuadTree


def relres(a, x, b):
    return np.linalg.norm(a @ x - b) / np.linalg.norm(b)


def factor_pair(kernel, **kw):
    strict = srs_factor(kernel, opts=SRSOptions(factor_mode="strict", **kw))
    batched = srs_factor(kernel, opts=SRSOptions(factor_mode="batched", **kw))
    return strict, batched


# ----------------------------------------------------------------------
# parity: batched solves match strict to the ID tolerance
# ----------------------------------------------------------------------
def test_laplace_parity(laplace32, laplace32_dense, rng):
    strict, batched = factor_pair(laplace32, tol=1e-9, leaf_size=32)
    b = rng.standard_normal(laplace32.n)
    r_s = relres(laplace32_dense, strict.solve(b), b)
    r_b = relres(laplace32_dense, batched.solve(b), b)
    assert r_b < 10 * r_s + 1e-12
    assert batched.eliminated_count() == laplace32.n


def test_gaussian_parity_machine_precision(gaussian16, gaussian16_dense, rng):
    strict, batched = factor_pair(gaussian16, tol=1e-12, leaf_size=16)
    b = rng.standard_normal(gaussian16.n)
    assert relres(gaussian16_dense, batched.solve(b), b) < 1e-12


def test_helmholtz_parity_complex_two_sided(helmholtz24, helmholtz24_dense, rng):
    # complex symmetric but NOT Hermitian: exercises the two-sided
    # assembly (A[M,B] and A[B,M]^* both evaluated)
    assert not helmholtz24.hermitian
    strict, batched = factor_pair(helmholtz24, tol=1e-8, leaf_size=24)
    b = rng.standard_normal(helmholtz24.n) + 1j * rng.standard_normal(helmholtz24.n)
    r_s = relres(helmholtz24_dense, strict.solve(b), b)
    r_b = relres(helmholtz24_dense, batched.solve(b), b)
    assert r_b < 10 * r_s + 1e-12


def test_bie_parity_scalar_fallback():
    # BIE kernels are not greens_vectorized: the batched sweep must
    # fall back to per-box evaluation inside the stacked API
    prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), 512)
    fact = prob.factor(SRSOptions(tol=1e-10, factor_mode="batched"))
    assert fact.eliminated_count() == 512
    assert prob.solve_error(harmonic_exponential, fact) <= 1e-8


def test_ranks_close_to_strict(laplace32):
    strict, batched = factor_pair(laplace32, tol=1e-9, leaf_size=32)
    total_s = sum(rec.rank for rec in strict.records)
    total_b = sum(rec.rank for rec in batched.records)
    # same operators compressed at the same tolerance: skeleton totals
    # may differ within the tolerance, not structurally
    assert abs(total_s - total_b) <= 0.05 * total_s + 8


# ----------------------------------------------------------------------
# strict reproducibility and mode resolution
# ----------------------------------------------------------------------
def _record_state(fact):
    return [
        (
            rec.box,
            rec.level,
            rec.redundant.tobytes(),
            rec.skeleton.tobytes(),
            rec.T.tobytes(),
            rec.x_cr.tobytes(),
            rec.x_rc.tobytes(),
        )
        for rec in fact.records
    ]


def test_strict_bitwise_reproducible(gaussian16):
    opts = SRSOptions(tol=1e-8, leaf_size=16, factor_mode="strict")
    a = srs_factor(gaussian16, opts=opts)
    b = srs_factor(gaussian16, opts=opts)
    assert _record_state(a) == _record_state(b)


def test_auto_defaults_to_strict_bitwise(gaussian16, monkeypatch):
    monkeypatch.delenv("REPRO_FACTOR_MODE", raising=False)
    auto = srs_factor(gaussian16, opts=SRSOptions(tol=1e-8, leaf_size=16))
    strict = srs_factor(
        gaussian16, opts=SRSOptions(tol=1e-8, leaf_size=16, factor_mode="strict")
    )
    assert _record_state(auto) == _record_state(strict)


def test_batched_deterministic(gaussian16):
    opts = SRSOptions(tol=1e-8, leaf_size=16, factor_mode="batched")
    a = srs_factor(gaussian16, opts=opts)
    b = srs_factor(gaussian16, opts=opts)
    assert _record_state(a) == _record_state(b)


def test_env_knob_resolves_auto(monkeypatch):
    opts = SRSOptions()
    monkeypatch.delenv("REPRO_FACTOR_MODE", raising=False)
    assert opts.resolved_factor_mode() == "strict"
    monkeypatch.setenv("REPRO_FACTOR_MODE", "batched")
    assert opts.resolved_factor_mode() == "batched"
    # explicit settings win over the environment
    assert SRSOptions(factor_mode="strict").resolved_factor_mode() == "strict"
    monkeypatch.setenv("REPRO_FACTOR_MODE", "sideways")
    with pytest.raises(ValueError, match="REPRO_FACTOR_MODE"):
        opts.resolved_factor_mode()


def test_unknown_factor_mode_rejected():
    with pytest.raises(ValueError, match="factor_mode"):
        SRSOptions(factor_mode="sideways")


def test_solveconfig_factor_mode_shorthand():
    from repro.api.config import SolveConfig

    cfg = SolveConfig(factor_mode="batched")
    assert cfg.srs.factor_mode == "batched"
    assert SolveConfig().srs.factor_mode == "auto"
    with pytest.raises(ValueError, match="factor_mode"):
        SolveConfig(factor_mode="sideways")


def test_setup_key_incorporates_resolved_mode(monkeypatch):
    from repro.api.config import SolveConfig
    from repro.api.strategies import _srs_setup_key

    cfg = SolveConfig()  # srs.factor_mode == "auto"
    monkeypatch.delenv("REPRO_FACTOR_MODE", raising=False)
    key_strict = _srs_setup_key(cfg)
    monkeypatch.setenv("REPRO_FACTOR_MODE", "batched")
    key_batched = _srs_setup_key(cfg)
    assert key_strict != key_batched


# ----------------------------------------------------------------------
# execution-backend matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("mode", ["strict", "batched"])
def test_parallel_backend_mode_matrix(backend, mode, gaussian16, rng):
    opts = SRSOptions(tol=1e-10, leaf_size=16, factor_mode=mode)
    fact = parallel_srs_factor(gaussian16, 4, opts=opts, backend=backend)
    a = dense_matrix(gaussian16)
    b = rng.standard_normal(gaussian16.n)
    assert relres(a, fact.solve(b), b) < 1e-10


def test_parallel_batched_matches_sequential_quality(laplace32, laplace32_dense, rng):
    opts = SRSOptions(tol=1e-9, leaf_size=32, factor_mode="batched")
    seq = srs_factor(laplace32, opts=opts)
    par = parallel_srs_factor(laplace32, 4, opts=opts, backend="thread")
    b = rng.standard_normal(laplace32.n)
    r_seq = relres(laplace32_dense, seq.solve(b), b)
    r_par = relres(laplace32_dense, par.solve(b), b)
    assert r_par < 10 * r_seq + 1e-12


# ----------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------
def test_no_far_field_level(rng):
    # nlevels=1: 2x2 leaves, nside < 4 everywhere — no proxy, no M(B)
    m = 8
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.05, shift=1.0)
    tree = QuadTree(k.points, 1)
    fact = srs_factor(k, tree=tree, opts=SRSOptions(tol=1e-10, factor_mode="batched"))
    b = rng.standard_normal(k.n)
    assert relres(dense_matrix(k), fact.solve(b), b) < 1e-10


def test_nothing_redundant_at_tight_tolerance(rng):
    # at tol ~ eps the ID keeps (nearly) every column: zero-redundant
    # boxes must flow through the batched stages without special-casing
    m = 8
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    fact = srs_factor(k, opts=SRSOptions(tol=1e-16, leaf_size=16, factor_mode="batched"))
    b = rng.standard_normal(k.n)
    assert relres(dense_matrix(k), fact.solve(b), b) < 1e-11


# ----------------------------------------------------------------------
# stacked kernel API units
# ----------------------------------------------------------------------
def test_proxy_circle_stack_bitwise():
    centers = np.array([[0.1, 0.2], [0.5, 0.5], [0.9, 0.1]])
    stack = proxy_circle_stack(centers, 0.25, 17)
    assert stack.shape == (3, 17, 2)
    for i, c in enumerate(centers):
        assert np.array_equal(stack[i], proxy_circle(c, 0.25, 17))


def test_block_stack_matches_per_box(laplace32):
    rng = np.random.default_rng(7)
    rows = rng.integers(0, laplace32.n, size=(5, 12))
    cols = rng.integers(0, laplace32.n, size=(5, 9))
    stack = laplace32.block_stack(rows, cols)
    for i in range(5):
        ref = laplace32.block(rows[i], cols[i])
        # allclose, not bitwise: greens_stack may use the squared-
        # distance closed form (log(r^2)/2 vs log(r))
        assert np.allclose(stack[i], ref, rtol=1e-13, atol=0)


def test_block_stack_fallback_is_bitwise(helmholtz24):
    class Scalar(type(helmholtz24)):
        greens_vectorized = False

    scalar = Scalar(
        helmholtz24.points, helmholtz24.h, helmholtz24.kappa, b=helmholtz24.b
    )
    rng = np.random.default_rng(11)
    rows = rng.integers(0, scalar.n, size=(3, 8))
    cols = rng.integers(0, scalar.n, size=(3, 8))
    stack = scalar.block_stack(rows, cols)
    for i in range(3):
        assert np.array_equal(stack[i], scalar.block(rows[i], cols[i]))


def test_proxy_block_stacks_match_per_box(laplace32):
    rng = np.random.default_rng(3)
    cols = rng.integers(0, laplace32.n, size=(4, 10))
    proxy = np.stack(
        [proxy_circle(np.array([0.3 + 0.1 * i, 0.4]), 0.2, 13) for i in range(4)]
    )
    row_stack = laplace32.proxy_row_block_stack(proxy, cols)
    col_stack = laplace32.proxy_col_block_stack(cols, proxy)
    for i in range(4):
        assert np.allclose(
            row_stack[i], laplace32.proxy_row_block(proxy[i], cols[i]),
            rtol=1e-13, atol=0,
        )
        assert np.allclose(
            col_stack[i], laplace32.proxy_col_block(cols[i], proxy[i]),
            rtol=1e-13, atol=0,
        )


def test_hermitian_flags():
    pts = uniform_grid(4)
    assert LaplaceKernelMatrix(pts, 0.25).hermitian
    assert GaussianKernelMatrix(pts, 0.25).hermitian
    assert not HelmholtzKernelMatrix(pts, 0.25, 2.0, b=gaussian_bump(pts)).hermitian


# ----------------------------------------------------------------------
# satellites: record accounting and defaults
# ----------------------------------------------------------------------
def test_box_record_memory_bytes_counts_everything(gaussian16):
    fact = srs_factor(gaussian16, opts=SRSOptions(tol=1e-8, leaf_size=16))
    rec = next(r for r in fact.records if r.redundant.size)
    expected = (
        rec.T.nbytes
        + rec.x_cr.nbytes
        + rec.x_rc.nbytes
        + rec.lu.memory_bytes()
        + rec.redundant.nbytes
        + rec.skeleton.nbytes
        + rec.cluster.nbytes
    )
    assert rec.memory_bytes() == expected
    assert rec.lu.memory_bytes() > 0


def test_box_record_cluster_segments_default():
    idx = np.arange(3)
    blk = np.zeros((3, 3))

    class _Lu:
        pass

    a = BoxRecord((0, 0), 1, idx, idx, idx, blk, _Lu(), blk, blk)
    b = BoxRecord((0, 1), 1, idx, idx, idx, blk, _Lu(), blk, blk)
    assert a.cluster_segments == []
    a.cluster_segments.append(((0, 0), 0, 3))
    assert b.cluster_segments == []  # default_factory: no shared state
