"""Resident-store tests: the three tiers and their cleanup contracts.

The acceptance contract of the store subsystem:

* **tier 1** — pooled repeated solves ship O(rhs) dispatch payloads,
  reseed transparently across pool respawns, and eviction invalidates
  the worker-side registry;
* **tier 2** — a second *process* attaches a published entry zero-copy
  and solves bitwise-identically without refactoring;
* **tier 3** — a fresh interpreter warm-starts from a spill file, and
  corrupted or version-mismatched files are rejected and removed;
* **cleanliness** — after release, ``/dev/shm`` and the store directory
  hold nothing but the intended warm-start spill files.
"""

import glob
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.apps import LaplaceVolumeProblem
from repro.service import ServiceConfig, ServiceOverloadedError, SolveService
from repro.store import FactorizationStore
from repro.store.disk import (
    STORE_FORMAT,
    envelope,
    key_digest,
    load_spill,
    spill_entry,
    write_atomic,
)
from repro.vmpi import process_backend_available

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


def _shm_blocks() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _residue(root) -> list:
    """Store files other than the intended warm-start spills."""
    return [
        name
        for name in os.listdir(root)
        if not name.endswith(".spill")
    ]


# ----------------------------------------------------------------------
# tier 3: spill files
# ----------------------------------------------------------------------
def test_spill_roundtrip_bitwise(tmp_path):
    path = str(tmp_path / "entry.spill")
    key = ("fingerprint", ("direct", 1e-10))
    fact = {"lu": np.arange(1000, dtype=np.float64), "piv": np.arange(10)}
    spill_entry(path, key, fact)
    loaded, reason = load_spill(path, key)
    assert reason is None
    assert np.array_equal(loaded["lu"], fact["lu"])
    assert np.array_equal(loaded["piv"], fact["piv"])


def test_spill_rejects_corruption(tmp_path):
    path = str(tmp_path / "entry.spill")
    key = ("fp", "setup")
    spill_entry(path, key, np.ones(500))
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF  # flip a payload bit
    open(path, "wb").write(bytes(raw))
    loaded, reason = load_spill(path, key)
    assert loaded is None
    assert reason is not None
    assert not os.path.exists(path)  # poisoned file removed


def test_spill_rejects_truncation(tmp_path):
    path = str(tmp_path / "entry.spill")
    spill_entry(path, "k", np.ones(500))
    open(path, "wb").write(open(path, "rb").read()[:64])
    loaded, reason = load_spill(path, "k")
    assert loaded is None and reason == "malformed"
    assert not os.path.exists(path)


def test_spill_rejects_format_and_version_mismatch(tmp_path):
    key = "some-key"
    for field, value, expect in (
        ("format", STORE_FORMAT + 1, "format"),
        ("numpy", "0.0.0", "version"),
        ("key", repr("other-key"), "key"),
    ):
        path = str(tmp_path / f"{field}.spill")
        env = envelope(key, pickle.dumps(np.ones(8)))
        env[field] = value
        write_atomic(path, pickle.dumps(env))
        loaded, reason = load_spill(path, key)
        assert loaded is None and reason == expect
        assert not os.path.exists(path)


def test_spill_wrong_key_digest_collision(tmp_path):
    # same file asked for a different key: the key check rejects it
    path = str(tmp_path / "entry.spill")
    spill_entry(path, ("fp", 1), np.ones(8))
    loaded, reason = load_spill(path, ("fp", 2))
    assert loaded is None and reason == "key"


# ----------------------------------------------------------------------
# the store facade: fetch_or_build, single-flight lockfile, spill tier
# ----------------------------------------------------------------------
def test_fetch_or_build_spills_and_warm_loads(tmp_path):
    root = str(tmp_path)
    builds = []

    def builder():
        builds.append(1)
        return {"x": np.arange(64, dtype=float)}

    a = FactorizationStore(root, shared=False, spill=True)
    fact, tier = a.fetch_or_build(("fp", "s"), builder)
    assert tier is None and len(builds) == 1
    assert os.path.exists(a._spill_path(key_digest(("fp", "s"))))

    # a second store (fresh process stand-in) loads the spill instead
    b = FactorizationStore(root, shared=False, spill=True)
    fact2, tier2 = b.fetch_or_build(("fp", "s"), builder)
    assert tier2 == "disk" and len(builds) == 1
    assert np.array_equal(fact2["x"], fact["x"])
    assert _residue(root) == []  # no locks/markers left behind


def test_lockfile_dead_owner_is_reaped(tmp_path):
    root = str(tmp_path)
    store = FactorizationStore(root, shared=False, spill=False)
    digest = key_digest("k")
    # a lockfile owned by a dead pid must not block the build forever
    with open(store._lock_path(digest), "w") as fh:
        fh.write("999999999")
    fact, tier = store.fetch_or_build("k", lambda: "built")
    assert fact == "built" and tier is None
    assert not os.path.exists(store._lock_path(digest))


def test_lock_timeout_builds_privately(tmp_path):
    root = str(tmp_path)
    store = FactorizationStore(root, shared=False, spill=False, lock_timeout=0.0)
    digest = key_digest("k")
    with open(store._lock_path(digest), "w") as fh:
        fh.write(str(os.getpid()))  # a live "peer" that never finishes
    fact, tier = store.fetch_or_build("k", lambda: "local")
    assert fact == "local" and tier is None
    os.remove(store._lock_path(digest))


# ----------------------------------------------------------------------
# tier 2: shared entries (same machine, refcounted /dev/shm blocks)
# ----------------------------------------------------------------------
@needs_process
def test_shared_publish_release_leaves_shm_as_found(tmp_path):
    root = str(tmp_path)
    before = _shm_blocks()
    store = FactorizationStore(root, shared=True, spill=False, min_shm_bytes=128)
    fact, tier = store.fetch_or_build(
        "k", lambda: {"a": np.arange(4096, dtype=np.float64)}
    )
    assert tier is None
    assert store.shared_published("k") and store.holds_shared("k")
    assert store.shared_bytes() == 4096 * 8
    assert _shm_blocks() > before  # blocks are live while held
    store.release("k")
    assert not store.holds_shared("k") and not store.shared_published("k")
    assert _shm_blocks() == before
    assert _residue(root) == []


@needs_process
def test_shared_attach_in_second_process_is_bitwise(tmp_path):
    """A fresh interpreter attaches the published entry, no refactor."""
    root = str(tmp_path / "store")
    prob = LaplaceVolumeProblem(m=16)
    b = prob.random_rhs(0)
    np.save(tmp_path / "rhs.npy", b)
    before = _shm_blocks()

    with SolveService(ServiceConfig(store_dir=root)) as service:
        report = service.solve(prob, b)
        assert service.stats().factorizations == 1
        assert service.store.shared_published(
            next(iter(service.cache._entries))
        )

        code = textwrap.dedent(
            f"""
            import numpy as np
            from repro.apps import LaplaceVolumeProblem
            from repro.service import ServiceConfig, SolveService

            prob = LaplaceVolumeProblem(m=16)
            b = np.load({str(tmp_path / "rhs.npy")!r})
            with SolveService(ServiceConfig(store_dir={root!r})) as service:
                report = service.solve(prob, b)
                stats = service.stats()
                assert stats.factorizations == 0, stats
                assert stats.store_hits_shared == 1, stats
                assert stats.bytes_shared > 0, stats
                np.save({str(tmp_path / "x_child.npy")!r}, report.x)
            """
        )
        cwd = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": os.path.join(cwd, "src")},
            cwd=cwd,
        )
        assert proc.returncode == 0, proc.stderr
        x_child = np.load(tmp_path / "x_child.npy")
        assert np.array_equal(x_child, report.x)  # bitwise, not approx

    # parent was the last holder: blocks unlinked, only spills remain
    assert _shm_blocks() == before
    assert _residue(root) == []


def test_warm_restart_from_disk_in_fresh_process(tmp_path):
    """serve -> shutdown -> serve again: the restart factors nothing."""
    root = str(tmp_path / "store")
    rhs = str(tmp_path / "rhs.npy")
    np.save(rhs, LaplaceVolumeProblem(m=16).random_rhs(3))
    run = textwrap.dedent(
        """
        import sys
        import numpy as np
        from repro.apps import LaplaceVolumeProblem
        from repro.service import ServiceConfig, SolveService

        root, rhs, out, expect_tier = sys.argv[1:5]
        prob = LaplaceVolumeProblem(m=16)
        b = np.load(rhs)
        with SolveService(ServiceConfig(store_dir=root)) as service:
            report = service.solve(prob, b)
            stats = service.stats()
            if expect_tier == "cold":
                assert stats.factorizations == 1, stats
            else:
                assert stats.factorizations == 0, stats
                assert stats.store_hits_shared + stats.store_hits_disk == 1, stats
            np.save(out, report.x)
        """
    )
    env = {**os.environ, "PYTHONPATH": "src"}
    cwd = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    x1, x2 = str(tmp_path / "x1.npy"), str(tmp_path / "x2.npy")
    for out, phase in ((x1, "cold"), (x2, "warm")):
        proc = subprocess.run(
            [sys.executable, "-c", run, root, rhs, out, phase],
            capture_output=True, text=True, env=env, cwd=cwd,
        )
        assert proc.returncode == 0, proc.stderr
    assert np.array_equal(np.load(x1), np.load(x2))
    assert _residue(root) == []  # spill files only: locks/markers cleaned


# ----------------------------------------------------------------------
# tier 1: worker-resident shards (persistent process pool)
# ----------------------------------------------------------------------
def _resident_ids_prog(comm):
    from repro.store.resident import resident_entries

    return resident_entries()


@needs_process
def test_eviction_invalidates_worker_registry():
    from repro.service.cache import FactorizationCache

    before = _shm_blocks()
    prob = LaplaceVolumeProblem(m=24)
    cache = FactorizationCache(1 << 40)
    lookup = cache.get_or_build(
        "k",
        lambda: repro.solve(
            prob, prob.random_rhs(0), method="direct", execution="process", ranks=4
        ).factorization,
    )
    fact = lookup.fact
    handle = fact.resident
    assert handle is not None
    x1 = fact.solve(prob.random_rhs(1))
    pool = fact.backend.pool
    resident = pool.run(_resident_ids_prog, ()).results[0]
    assert handle.entry_id in resident

    assert cache.evict("k")
    resident = pool.run(_resident_ids_prog, ()).results[0]
    assert handle.entry_id not in resident  # invalidated on eviction

    # the factorization object itself still solves (reseeds on demand)
    x2 = fact.solve(prob.random_rhs(1))
    assert np.array_equal(x1, x2)
    fact.resident.drop()
    pool.shutdown()
    assert _shm_blocks() == before


@needs_process
def test_worker_respawn_rematerializes_shards():
    from repro.store.resident import _SEEDS

    prob = LaplaceVolumeProblem(m=24)
    fact = repro.solve(
        prob, prob.random_rhs(0), method="direct", execution="process", ranks=4
    ).factorization
    b = prob.random_rhs(7)
    x1 = fact.solve(b)
    pool = fact.backend.pool
    gen = pool.generation

    pool.shutdown(forget=False)  # simulate worker death / pool teardown
    seeds_before = _SEEDS.value()
    x2 = fact.solve(b)  # new cohort -> reseed -> solve, same bits
    assert np.array_equal(x1, x2)
    # the handle saw a different cohort: a replacement pool object, or
    # the same object respawned with a bumped generation
    new_pool = fact.backend.pool
    assert new_pool is not pool or new_pool.generation > gen
    assert new_pool.alive
    assert _SEEDS.value() == seeds_before + 1
    fact.resident.drop()
    fact.backend.pool.shutdown()


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def test_submit_raises_when_pending_full():
    prob = LaplaceVolumeProblem(m=16)
    with SolveService(max_pending=1, store_dir=None) as service:
        # occupy the single slot so the next submit is refused
        assert service._stats.admit(1)
        with pytest.raises(ServiceOverloadedError):
            service.submit(prob, prob.random_rhs(0))
        assert service.stats().rejected == 1
        service._stats.release()
        # slot free again: the request goes through
        assert service.solve(prob, prob.random_rhs(0)).converged
        assert service._stats.pending == 0  # finished requests release


def test_admission_zero_disables_bound():
    prob = LaplaceVolumeProblem(m=16)
    with SolveService(max_pending=0, store_dir=None) as service:
        for i in range(4):
            assert service.solve(prob, prob.random_rhs(i)).converged
        assert service.stats().rejected == 0


def test_http_429_overloaded(tmp_path):
    import json
    import threading
    import urllib.request

    from repro.service.http import make_server

    with SolveService(max_pending=1, store_dir=None) as service:
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address
            assert service._stats.admit(1)  # saturate the queue
            req = urllib.request.Request(
                f"http://{host}:{port}/solve",
                data=json.dumps(
                    {"problem": {"type": "laplace_volume", "m": 16}}
                ).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(req)
            err = exc_info.value
            assert err.code == 429
            payload = json.loads(err.read())
            assert payload["code"] == "overloaded"
            assert "request_id" in payload
            service._stats.release()
        finally:
            server.shutdown()
            thread.join()


def test_rejected_total_counter_increments():
    from repro.obs import REGISTRY

    counter = REGISTRY.counter(
        "repro_service_rejected_total",
        "Requests refused by admission control (pending queue at max_pending)",
    )
    prob = LaplaceVolumeProblem(m=16)
    with SolveService(max_pending=1, store_dir=None) as service:
        before = counter.value()
        assert service._stats.admit(1)
        with pytest.raises(ServiceOverloadedError):
            service.submit(prob, prob.random_rhs(0))
        assert counter.value() == before + 1
        service._stats.release()
