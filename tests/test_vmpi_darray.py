"""Tests for the distributed array (DistributedArrays.jl contract)."""

import numpy as np
import pytest

from repro.vmpi import run_spmd
from repro.vmpi.darray import DArray, block_bounds


def test_block_bounds_partition():
    for n in (0, 1, 7, 16, 100):
        for size in (1, 2, 3, 7):
            cover = []
            for r in range(size):
                lo, hi = block_bounds(n, size, r)
                assert lo <= hi
                cover.extend(range(lo, hi))
            assert cover == list(range(n))


def test_local_read_write():
    def prog(comm):
        arr = DArray(comm, 10)
        for i in range(arr.lo, arr.hi):
            arr[i] = float(i)
        return [arr[i] for i in range(arr.lo, arr.hi)]

    run = run_spmd(4, prog)
    flat = [v for sub in run.results for v in sub]
    assert flat == [float(i) for i in range(10)]


def test_remote_read_denied():
    def prog(comm):
        arr = DArray(comm, 8)
        if comm.rank == 1:
            with pytest.raises(PermissionError, match="remote"):
                arr[0]  # rank 0's row
        comm.barrier()

    run_spmd(2, prog)


def test_remote_write_denied():
    def prog(comm):
        arr = DArray(comm, 8)
        if comm.rank == 0:
            with pytest.raises(PermissionError, match="read-only"):
                arr[7] = 1.0
        comm.barrier()

    run_spmd(2, prog)


def test_fetch_serve_roundtrip():
    def prog(comm):
        arr = DArray(comm, 12)
        for i in range(arr.lo, arr.hi):
            arr[i] = 100.0 + i
        comm.barrier()
        if comm.rank == 1:
            want = np.array([0, 2])
            got = arr.fetch_remote(want, 0)
            return got.tolist()
        if comm.rank == 0:
            arr.serve(1)
        return None

    run = run_spmd(3, prog)
    assert run.results[1] == [100.0, 102.0]


def test_serve_rejects_nonlocal_request():
    def prog(comm):
        arr = DArray(comm, 8)
        if comm.rank == 1:
            comm.send(np.array([7]), 0, tag=-100)  # rank 0 does not own 7
            return None
        if comm.rank == 0:
            with pytest.raises(IndexError, match="non-local"):
                arr.serve(1)
        return None

    run_spmd(2, prog)


def test_gather_and_from_global(rng):
    values = rng.standard_normal(17)

    def prog(comm):
        arr = DArray.from_global(comm, values if comm.rank == 0 else None)
        full = arr.gather(0)
        return None if full is None else full

    run = run_spmd(4, prog)
    assert np.allclose(run.results[0], values)
    assert all(r is None for r in run.results[1:])


def test_from_global_matrix(rng):
    values = rng.standard_normal((9, 3))

    def prog(comm):
        arr = DArray.from_global(comm, values if comm.rank == 0 else None)
        assert arr.local.shape[1] == 3
        return arr.gather(0)

    run = run_spmd(2, prog)
    assert np.allclose(run.results[0], values)


def test_global_norm(rng):
    values = rng.standard_normal(25)

    def prog(comm):
        arr = DArray.from_global(comm, values if comm.rank == 0 else None)
        return arr.norm()

    run = run_spmd(4, prog)
    for r in run.results:
        assert r == pytest.approx(np.linalg.norm(values))


def test_owner_consistency():
    def prog(comm):
        arr = DArray(comm, 10)
        return [arr.owner(i) for i in range(10)]

    run = run_spmd(3, prog)
    assert run.results[0] == run.results[1] == run.results[2]
    owners = run.results[0]
    assert owners == sorted(owners)  # blocks are contiguous


def test_invalid_sizes():
    def prog(comm):
        with pytest.raises(ValueError):
            DArray(comm, -1)
        arr = DArray(comm, 4)
        with pytest.raises(IndexError):
            arr.owner(4)

    run_spmd(1, prog)
