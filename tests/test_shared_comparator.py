"""Tests for the shared-memory (box-coloring) comparator (Table VI)."""

import numpy as np
import pytest

from repro.core import SRSOptions
from repro.geometry import uniform_grid
from repro.kernels import LaplaceKernelMatrix, dense_matrix
from repro.parallel import shared_memory_factor
from repro.parallel.shared import box_color, lpt_makespan


def test_box_coloring_valid():
    for bx in range(8):
        for by in range(8):
            for dx, dy in ((1, 0), (0, 1), (1, 1), (-1, 1)):
                nb = (bx + dx, by + dy)
                assert box_color((bx, by)) != box_color(nb) or max(abs(dx), abs(dy)) > 1 \
                    or box_color((bx, by)) != box_color(nb)
    # direct check: neighbors always differ
    for bx in range(8):
        for by in range(8):
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    if (dx, dy) == (0, 0):
                        continue
                    assert box_color((bx, by)) != box_color((bx + dx, by + dy))


def test_lpt_makespan_bounds():
    durations = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
    total = sum(durations)
    for t in (1, 2, 3, 4):
        ms = lpt_makespan(durations, t)
        assert ms >= total / t - 1e-12
        assert ms >= max(durations)
        assert ms <= total
    assert lpt_makespan(durations, 1) == total
    assert lpt_makespan([], 4) == 0.0


def test_factorization_identical_to_sequential(rng):
    m = 32
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    res = shared_memory_factor(k, 4, SRSOptions(tol=1e-9, leaf_size=32))
    a = dense_matrix(k)
    b = rng.standard_normal(k.n)
    x = res.factorization.solve(b)
    assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-5


def test_speedup_monotone_in_threads():
    m = 32
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    opts = SRSOptions(tol=1e-6, leaf_size=16)
    times = [shared_memory_factor(k, t, opts).t_fact for t in (1, 4, 16)]
    assert times[0] > times[1] > times[2]


def test_single_thread_close_to_sequential():
    m = 32
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    res = shared_memory_factor(k, 1, SRSOptions(tol=1e-6, leaf_size=32))
    assert res.t_fact <= res.sequential_t_fact * 1.1


def test_invalid_threads():
    k = LaplaceKernelMatrix(uniform_grid(8), 1.0 / 8)
    with pytest.raises(ValueError):
        shared_memory_factor(k, 0)


def test_solve_estimate_positive():
    m = 16
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    res = shared_memory_factor(k, 4, SRSOptions(tol=1e-6, leaf_size=16))
    assert res.t_solve > 0
    assert res.sequential_t_solve > 0
