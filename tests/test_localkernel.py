"""Tests for the rank-local kernel view."""

import numpy as np
import pytest

from repro.geometry import uniform_grid
from repro.kernels import HelmholtzKernelMatrix, LaplaceKernelMatrix
from repro.kernels.helmholtz import gaussian_bump
from repro.parallel.localkernel import LocalKernel


@pytest.fixture
def full():
    m = 16
    pts = uniform_grid(m)
    return HelmholtzKernelMatrix(pts, 1.0 / m, 6.0, b=gaussian_bump(pts))


def make_local(full, ids):
    ids = np.asarray(ids, dtype=np.int64)
    return LocalKernel(full, ids, full.points[ids], full.per_point_data(ids))


def test_block_matches_global(full):
    ids = np.array([5, 17, 40, 200, 3])
    lk = make_local(full, ids)
    sub_i = np.array([5, 40])
    sub_j = np.array([17, 3, 200])
    assert np.allclose(lk.block(sub_i, sub_j), full.block(sub_i, sub_j))


def test_diagonal_entries_correct(full):
    ids = np.array([10, 20, 30])
    lk = make_local(full, ids)
    blk = lk.block(ids, ids)
    assert np.allclose(np.diag(blk), full.diagonal()[ids])


def test_unknown_point_raises(full):
    lk = make_local(full, [1, 2, 3])
    with pytest.raises(KeyError, match="unknown global point"):
        lk.block(np.array([1]), np.array([99]))


def test_extend_adds_points(full):
    lk = make_local(full, [1, 2, 3])
    new = np.array([50, 60])
    added = lk.extend(new, full.points[new], full.per_point_data(new))
    assert added == 2
    assert np.allclose(lk.block(np.array([50]), np.array([2])), full.block(np.array([50]), np.array([2])))


def test_extend_skips_known(full):
    lk = make_local(full, [1, 2, 3])
    ids = np.array([2, 3, 70])
    added = lk.extend(ids, full.points[ids], full.per_point_data(ids))
    assert added == 1
    assert lk.n_known == 4


def test_extend_empty(full):
    lk = make_local(full, [1])
    assert lk.extend(np.empty(0, dtype=np.int64), np.empty((0, 2)), {}) == 0


def test_duplicate_ids_rejected(full):
    with pytest.raises(ValueError):
        make_local(full, [1, 1, 2])


def test_proxy_blocks_match(full):
    ids = np.array([0, 1, 2, 3])
    lk = make_local(full, ids)
    proxy = np.array([[2.0, 2.0], [2.0, 3.0]])
    assert np.allclose(lk.proxy_row_block(proxy, ids), full.proxy_row_block(proxy, ids))
    assert np.allclose(lk.proxy_col_block(ids, proxy), full.proxy_col_block(ids, proxy))


def test_kappa_forwarded(full):
    lk = make_local(full, [0, 1])
    assert lk.kappa == pytest.approx(6.0)


def test_laplace_kernel_no_per_point_data():
    m = 8
    full = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    ids = np.array([0, 9, 33])
    lk = LocalKernel(full, ids, full.points[ids], {})
    assert np.allclose(lk.block(ids, ids), full.block(ids, ids))


def test_coords_and_per_point_lookup(full):
    ids = np.array([7, 70])
    lk = make_local(full, ids)
    assert np.allclose(lk.coords_of(ids), full.points[ids])
    assert np.allclose(lk.per_point_of(ids)["b"], full.b[ids])
