"""Tests for the level layouts: ownership, boundaries, reduction schedule."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.ownership import LevelLayout, max_ranks_for_tree


def test_max_ranks():
    assert max_ranks_for_tree(3) == 16
    assert max_ranks_for_tree(2) == 4
    assert max_ranks_for_tree(1) == 1


def test_active_schedule_p16():
    # leaf deep: all 16 ranks; coarse levels reduce 4-to-1
    assert LevelLayout(4, 16).active == 16
    assert LevelLayout(3, 16).active == 16
    assert LevelLayout(2, 16).active == 4
    assert LevelLayout(1, 16).active == 1


def test_every_active_rank_owns_at_least_2x2():
    for p in (1, 4, 16, 64):
        for level in range(1, 6):
            if p > max_ranks_for_tree(level + 1):
                continue
            lay = LevelLayout(level, p)
            assert lay.region_side >= 2 or lay.active == 1
            if lay.active >= 1:
                assert lay.region_side >= 2 or level == 1


def test_owned_boxes_partition_grid():
    lay = LevelLayout(3, 16)
    seen = set()
    for r in lay.active_ranks():
        boxes = lay.owned_boxes(r)
        assert len(boxes) == lay.region_side**2
        for b in boxes:
            assert b not in seen
            assert lay.owner(b) == r
            seen.add(b)
    assert len(seen) == lay.nside**2


def test_inactive_rank_rejected():
    lay = LevelLayout(2, 16)  # active = 4, stride = 4
    assert lay.is_active(0) and lay.is_active(4)
    assert not lay.is_active(1)
    with pytest.raises(ValueError):
        lay.rank_coords(1)


def test_region_distance():
    lay = LevelLayout(3, 16)  # 8x8 boxes, 4x4 ranks, regions 2x2
    # rank 0 owns boxes (0..1, 0..1)
    assert lay.region_distance((0, 0), 0) == 0
    assert lay.region_distance((2, 0), 0) == 1
    assert lay.region_distance((4, 3), 0) == 3


def test_boundary_classification():
    lay = LevelLayout(3, 4)  # 8x8 boxes, 2x2 ranks, regions 4x4
    r = 0  # owns (0..3, 0..3)
    assert not lay.is_boundary((0, 0), r)  # domain corner, all nbrs local
    assert not lay.is_boundary((1, 1), r)
    assert lay.is_boundary((3, 0), r)
    assert lay.is_boundary((3, 3), r)
    assert lay.is_boundary((0, 3), r)


def test_interior_dominates_for_large_regions():
    lay = LevelLayout(5, 4)  # 32x32 boxes, regions 16x16
    r = 0
    boxes = lay.owned_boxes(r)
    boundary = [b for b in boxes if lay.is_boundary(b, r)]
    assert len(boundary) < len(boxes) / 4


def test_neighbor_ranks_adjacency():
    lay = LevelLayout(3, 16)
    for r in lay.active_ranks():
        for w in lay.neighbor_ranks(r):
            assert r in lay.neighbor_ranks(w)
            assert w != r


def test_colors_differ_between_neighbors():
    for p in (4, 16, 64):
        lay = LevelLayout(4, p)
        for r in lay.active_ranks():
            for w in lay.neighbor_ranks(r):
                assert lay.color(r) != lay.color(w)


def test_strip_boxes_within_width():
    lay = LevelLayout(3, 16)
    r, w = 0, lay.neighbor_ranks(0)[0]
    for b in lay.strip_boxes(r, w, 2):
        assert lay.owner(b) == r
        assert lay.region_distance(b, w) <= 2


def test_halo_boxes_exclude_region():
    lay = LevelLayout(3, 16)
    halo = lay.halo_boxes(0, 2)
    own = set(lay.owned_boxes(0))
    assert own.isdisjoint(halo)
    for b in halo:
        assert lay.region_distance(b, 0) <= 2


@settings(max_examples=30, deadline=None)
@given(st.sampled_from([1, 4, 16]), st.integers(min_value=2, max_value=5))
def test_owner_consistent_with_owned_boxes(p, level):
    if p > max_ranks_for_tree(level):
        return
    lay = LevelLayout(level, p)
    for r in lay.active_ranks():
        for b in lay.owned_boxes(r):
            assert lay.owner(b) == r


def test_same_color_boundary_boxes_far_apart():
    """Sec. III-B: same-color boundary boxes on different ranks have
    Chebyshev distance > 2 when every rank owns >= 2x2 boxes."""
    lay = LevelLayout(4, 16)  # 16x16 boxes, regions 4x4
    by_color: dict[int, list] = {}
    for r in lay.active_ranks():
        c = lay.color(r)
        for b in lay.owned_boxes(r):
            if lay.is_boundary(b, r):
                by_color.setdefault(c, []).append((r, b))
    for c, items in by_color.items():
        for r1, b1 in items:
            for r2, b2 in items:
                if r1 != r2:
                    d = max(abs(b1[0] - b2[0]), abs(b1[1] - b2[1]))
                    assert d > 2, (b1, b2, c)
