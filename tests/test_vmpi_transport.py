"""Tests for the vmpi transport, payload accounting, and isolation."""

import numpy as np
import pytest

from repro.vmpi import run_spmd, DeadlockError
from repro.vmpi.transport import Transport, payload_nbytes, sanitize


def test_payload_nbytes_arrays():
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
    assert payload_nbytes(np.zeros((3, 4), dtype=np.complex128)) == 192


def test_payload_nbytes_containers():
    n = payload_nbytes({"a": np.zeros(2), "b": [np.zeros(3), 1.5]})
    assert n >= 16 + 24 + 16


def test_payload_nbytes_scalars_dtype_accurate():
    """Numpy scalars are counted at their dtype width, not a flat 16."""
    assert payload_nbytes(np.float32(1.0)) == 4
    assert payload_nbytes(np.float64(1.0)) == 8
    assert payload_nbytes(np.complex128(1.0)) == 16
    assert payload_nbytes(np.int16(3)) == 2
    assert payload_nbytes(np.clongdouble(1.0)) == np.dtype(np.clongdouble).itemsize
    # Python scalars at their wire widths (int64 / double / complex double)
    assert payload_nbytes(7) == 8
    assert payload_nbytes(1.5) == 8
    assert payload_nbytes(1 + 2j) == 16
    assert payload_nbytes(True) == 1


def test_payload_nbytes_dataclass_counts_fields():
    """Dataclass payloads are priced per field like other containers, so
    nested arrays dominate the count instead of the pickle fallback."""
    from dataclasses import dataclass

    @dataclass
    class Ship:
        ids: np.ndarray
        coords: np.ndarray
        label: str

    ship = Ship(np.zeros(100, dtype=np.int64), np.zeros((100, 2)), "x")
    n = payload_nbytes(ship)
    assert n >= 800 + 1600 + 1
    assert n <= 800 + 1600 + 1 + 64


def test_sanitize_copies_arrays():
    a = np.arange(5)
    out = sanitize({"x": a, "y": (a, [a])})
    out["x"][0] = 99
    assert a[0] == 0
    out["y"][1][0][1] = 98
    assert a[1] == 1


def test_sanitize_preserves_scalars_and_tuples():
    obj = (1, 2.5, "s", None, True)
    assert sanitize(obj) == obj


def test_transport_validation():
    with pytest.raises(ValueError):
        Transport(0)


def test_message_isolation_between_ranks():
    """A rank mutating received data must not affect the sender."""

    def prog(comm):
        data = np.arange(100)
        if comm.rank == 0:
            comm.send(data, 1, tag=1)
            comm.barrier()
            return data.sum()
        if comm.rank == 1:
            got = comm.recv(0, tag=1)
            got[:] = -1
            comm.barrier()
            return got.sum()
        comm.barrier()
        return None

    run = run_spmd(2, prog)
    assert run.results[0] == np.arange(100).sum()  # sender unaffected
    assert run.results[1] == -100


def test_out_of_order_tags_buffered():
    def prog(comm):
        if comm.rank == 0:
            comm.send("second", 1, tag=2)
            comm.send("first", 1, tag=1)
            return None
        a = comm.recv(0, tag=1)
        b = comm.recv(0, tag=2)
        return (a, b)

    run = run_spmd(2, prog)
    assert run.results[1] == ("first", "second")


def test_fifo_per_source_tag():
    def prog(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(i, 1, tag=7)
            return None
        return [comm.recv(0, tag=7) for _ in range(5)]

    run = run_spmd(2, prog)
    assert run.results[1] == [0, 1, 2, 3, 4]


def test_deadlock_detection():
    def prog(comm):
        if comm.rank == 1:
            comm.recv(0, tag=9)  # nobody sends

    from repro.vmpi.comm import Comm

    old = Comm.TIMEOUT
    Comm.TIMEOUT = 0.2
    try:
        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(2, prog)
    finally:
        Comm.TIMEOUT = old


def test_self_send_rejected():
    def prog(comm):
        comm.send(1, comm.rank)

    with pytest.raises(RuntimeError):
        run_spmd(1, prog)


def test_worker_exception_propagates():
    def prog(comm):
        if comm.rank == 2:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(RuntimeError, match="rank 2"):
        run_spmd(4, prog)


def test_counters_track_messages():
    def prog(comm):
        if comm.rank == 0:
            comm.send(np.zeros(125), 1, tag=3)  # 1000 bytes
        elif comm.rank == 1:
            comm.recv(0, tag=3)

    run = run_spmd(2, prog)
    assert run.reports[0].messages_sent == 1
    assert run.reports[0].bytes_sent == 1000
    assert run.reports[1].messages_received == 1
    assert run.reports[1].bytes_received == 1000
