"""Integration tests for the sequential RS-S factorization."""

import numpy as np
import pytest

from repro.core import SRSOptions, srs_factor
from repro.geometry import uniform_grid
from repro.kernels import (
    GaussianKernelMatrix,
    HelmholtzKernelMatrix,
    LaplaceKernelMatrix,
    YukawaKernelMatrix,
    dense_matrix,
)
from repro.kernels.helmholtz import gaussian_bump
from repro.matvec import FFTMatVec
from repro.tree import QuadTree


def relres(a, x, b):
    return np.linalg.norm(a @ x - b) / np.linalg.norm(b)


def test_gaussian_machine_precision(gaussian16, gaussian16_dense, rng):
    fact = srs_factor(gaussian16, opts=SRSOptions(tol=1e-12, leaf_size=16))
    b = rng.standard_normal(gaussian16.n)
    assert relres(gaussian16_dense, fact.solve(b), b) < 1e-12


def test_eliminates_every_index(gaussian16):
    fact = srs_factor(gaussian16, opts=SRSOptions(tol=1e-8, leaf_size=16))
    assert fact.eliminated_count() == gaussian16.n


def test_laplace_tolerance_scaling(laplace32, laplace32_dense, rng):
    b = rng.standard_normal(laplace32.n)
    res = {}
    for tol in (1e-3, 1e-6, 1e-9):
        fact = srs_factor(laplace32, opts=SRSOptions(tol=tol, leaf_size=32))
        res[tol] = relres(laplace32_dense, fact.solve(b), b)
    assert res[1e-6] < res[1e-3] / 10
    assert res[1e-9] < res[1e-6] / 10


def test_helmholtz_accuracy(helmholtz24, helmholtz24_dense, rng):
    fact = srs_factor(helmholtz24, opts=SRSOptions(tol=1e-8, leaf_size=24))
    b = rng.standard_normal(helmholtz24.n) + 1j * rng.standard_normal(helmholtz24.n)
    assert relres(helmholtz24_dense, fact.solve(b), b) < 1e-6


def test_yukawa_accuracy(rng):
    m = 16
    k = YukawaKernelMatrix(uniform_grid(m), 1.0 / m, 3.0)
    fact = srs_factor(k, opts=SRSOptions(tol=1e-9, leaf_size=16))
    b = rng.standard_normal(k.n)
    assert relres(dense_matrix(k), fact.solve(b), b) < 1e-7


def test_multiple_rhs_matches_single(laplace32, laplace32_fact, rng):
    bs = rng.standard_normal((laplace32.n, 4))
    xs = laplace32_fact.solve(bs)
    assert xs.shape == bs.shape
    for j in range(4):
        assert np.allclose(xs[:, j], laplace32_fact.solve(bs[:, j]))


def test_solve_rejects_wrong_size(laplace32_fact):
    with pytest.raises(ValueError):
        laplace32_fact.solve(np.zeros(7))


def test_leaf_size_independence(laplace32, laplace32_dense, rng):
    b = rng.standard_normal(laplace32.n)
    for leaf in (16, 64):
        fact = srs_factor(laplace32, opts=SRSOptions(tol=1e-9, leaf_size=leaf))
        assert relres(laplace32_dense, fact.solve(b), b) < 1e-5


def test_explicit_tree_argument(laplace32, rng):
    tree = QuadTree(laplace32.points, 3)
    fact = srs_factor(laplace32, tree=tree, opts=SRSOptions(tol=1e-9))
    assert fact.eliminated_count() == laplace32.n


def test_tree_kernel_mismatch_rejected(laplace32):
    tree = QuadTree(uniform_grid(8), 2)
    with pytest.raises(ValueError):
        srs_factor(laplace32, tree=tree)


def test_check_locality_mode(gaussian16, rng):
    """Debug locality assertion passes on a clean run (Remark 2 holds)."""
    fact = srs_factor(gaussian16, opts=SRSOptions(tol=1e-8, leaf_size=16, check_locality=True))
    assert fact.eliminated_count() == gaussian16.n


def test_randomized_id_variant(laplace32, laplace32_dense, rng):
    fact = srs_factor(
        laplace32, opts=SRSOptions(tol=1e-9, leaf_size=32, id_method="randomized")
    )
    b = rng.standard_normal(laplace32.n)
    assert relres(laplace32_dense, fact.solve(b), b) < 1e-4


def test_rank_stats_recorded(laplace32_fact):
    stats = laplace32_fact.stats
    assert stats.levels()  # nonempty
    leaf_level = max(stats.levels())
    assert stats.average_rank(leaf_level) > 0
    table = stats.table()
    assert all(len(row) == 4 for row in table)


def test_memory_is_linearish():
    """Memory per point roughly flat across N (O(N) footprint)."""
    per_point = []
    for m in (16, 32):
        k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
        fact = srs_factor(k, opts=SRSOptions(tol=1e-6, leaf_size=32))
        per_point.append(fact.memory_bytes() / k.n)
    assert per_point[1] < per_point[0] * 2.5


def test_solve_is_deterministic(laplace32_fact, rng):
    b = rng.standard_normal(laplace32_fact.n)
    assert np.array_equal(laplace32_fact.solve(b), laplace32_fact.solve(b))


def test_identity_like_kernel_solves_exactly(rng):
    """Strongly diagonally dominant kernel: solution ~ b / diag."""
    m = 16
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.01, shift=100.0)
    fact = srs_factor(k, opts=SRSOptions(tol=1e-12, leaf_size=16))
    b = rng.standard_normal(k.n)
    x = fact.solve(b)
    assert relres(dense_matrix(k), x, b) < 1e-13


def test_timings_populated(laplace32_fact):
    assert laplace32_fact.timings.total() > 0
