"""HTTP front tests: the JSON wire format over a live ThreadingHTTPServer."""

import json
import threading

import http.client

import numpy as np
import pytest

import repro
from repro.service import SolveService
from repro.service.http import build_problem, make_server


@pytest.fixture(scope="module")
def server():
    service = SolveService(workers=4, batch_window=0.005, batch_mode="strict")
    srv = make_server(service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    service.close()
    thread.join(timeout=10)


def _request_full(server, method, path, body=None, raw=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.server_address[1], timeout=120)
    try:
        payload = raw if raw is not None else (
            json.dumps(body) if body is not None else None
        )
        conn.request(method, path, payload, {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _request(server, method, path, body=None):
    status, _headers, data = _request_full(server, method, path, body)
    return status, json.loads(data)


def test_healthz(server):
    status, payload = _request(server, "GET", "/healthz")
    assert status == 200 and payload == {"ok": True}


def test_solve_roundtrip_matches_facade(server):
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"seed": 3},
        "return_x": True,
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    report = payload["report"]
    assert report["method"] == "direct" and report["converged"]
    prob = repro.LaplaceVolumeProblem(16)
    ref = repro.solve(prob, prob.random_rhs(3))
    assert np.allclose(np.asarray(payload["x"]), ref.x, rtol=1e-12, atol=0)
    assert report["relres"] == pytest.approx(ref.relres, rel=1e-6)


def test_repeated_requests_hit_the_cache(server):
    body = {"problem": {"type": "laplace_volume", "m": 16}, "rhs": {"seed": 0}}
    _request(server, "POST", "/solve", body)
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    assert payload["report"]["cache_hit"] is True
    status, stats = _request(server, "GET", "/stats")
    assert status == 200
    assert stats["factorizations"] >= 1
    assert stats["cache_hits"] >= 1
    assert 0 < stats["hit_rate"] <= 1


def test_complex_problem_and_pgmres(server):
    body = {
        "problem": {"type": "scattering", "m": 16, "kappa": 9.0},
        "method": "pgmres",
        "tol": 1e-10,
        "return_x": True,
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    assert payload["report"]["iterations"] > 0
    x = payload["x"]
    assert "re" in x and "im" in x  # complex encoding
    assert len(x["re"]) == 256


def test_explicit_rhs_values(server):
    n = 256
    values = [float(i) / n for i in range(n)]
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"values": values},
        "return_x": True,
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    prob = repro.LaplaceVolumeProblem(16)
    ref = repro.solve(prob, np.asarray(values))
    assert np.allclose(np.asarray(payload["x"]), ref.x, rtol=1e-12, atol=0)


def test_bie_problem_spec(server):
    body = {
        "problem": {
            "type": "interior_dirichlet",
            "n": 256,
            "curve": {"type": "star", "amplitude": 0.3, "arms": 5},
        },
        "srs": {"tol": 1e-10},
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    assert payload["report"]["relres"] < 1e-6


def test_bad_requests(server):
    status, payload = _request(server, "POST", "/solve", {"problem": {"type": "nope"}})
    assert status == 400 and "unknown problem type" in payload["error"]
    status, payload = _request(server, "POST", "/solve", {"problem": {}})
    assert status == 400
    status, payload = _request(
        server, "POST", "/solve", {"problem": {"type": "laplace_volume", "m": 16}, "method": "bogus"}
    )
    assert status == 400 and "unknown solve method" in payload["error"]
    status, _ = _request(server, "GET", "/nope")
    assert status == 404
    status, _ = _request(server, "POST", "/nope", {})
    assert status == 404


def test_request_shaped_solver_errors_map_to_400(server):
    # pcg on a non-symmetric problem: rejected by the service's
    # compatibility check — the client's fault, so a 400
    body = {
        "problem": {"type": "scattering", "m": 16, "kappa": 9.0},
        "method": "pcg",
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 400 and "symmetric" in payload["error"]
    # wrong rhs length: also a client error
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"values": [1.0, 2.0, 3.0]},
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 400 and "rows" in payload["error"]


def test_unknown_field_is_rejected_with_field_name(server):
    body = {"problem": {"type": "laplace_volume", "m": 16}, "bogus_knob": 1}
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 400
    assert payload["code"] == "unknown_field"
    assert payload["field"] == "bogus_knob"
    assert "bogus_knob" in payload["error"]
    assert payload["request_id"]


def test_malformed_json_body(server):
    status, _headers, data = _request_full(
        server, "POST", "/solve", raw="{not json"
    )
    payload = json.loads(data)
    assert status == 400 and payload["code"] == "bad_json"


def test_bad_rhs_shape_names_the_field(server):
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"values": "not-a-list"},
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 400
    assert payload["code"] == "bad_field" and payload["field"] == "rhs"


def test_request_id_is_echoed_everywhere(server):
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"seed": 5},
        "request_id": "client-pick-1",
    }
    status, headers, data = _request_full(server, "POST", "/solve", body)
    payload = json.loads(data)
    assert status == 200
    assert headers["X-Request-Id"] == "client-pick-1"
    assert payload["request_id"] == "client-pick-1"
    assert payload["report"]["request_id"] == "client-pick-1"
    assert [s["name"] for s in payload["report"]["spans"]] == [
        "queue", "factor", "solve",
    ]


def test_errors_carry_generated_request_id(server):
    status, headers, data = _request_full(server, "GET", "/nope")
    payload = json.loads(data)
    assert status == 404 and payload["code"] == "not_found"
    assert payload["request_id"] == headers["X-Request-Id"]


def test_metrics_endpoint_is_parseable_prometheus(server):
    from repro.obs import parse_prometheus

    # exercise the service at least once so counters exist
    _request(
        server, "POST", "/solve",
        {"problem": {"type": "laplace_volume", "m": 16}, "rhs": {"seed": 9}},
    )
    status, headers, data = _request_full(server, "GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "version=0.0.4" in headers["Content-Type"]
    samples = parse_prometheus(data.decode())
    events = {
        labels["kind"]: v
        for labels, v in samples["repro_service_events_total"]
    }
    assert events["requests"] >= 1 and events["completed"] >= 1
    assert "repro_service_cache_bytes" in samples
    assert "repro_service_cache_entries" in samples


def test_build_problem_cache_reuses_instances(server):
    spec = {"type": "laplace_volume", "m": 16}
    assert server.problem_for(dict(spec)) is server.problem_for(dict(spec))
    fresh = build_problem(spec)
    assert fresh is not server.problem_for(spec)
    assert fresh.fingerprint() == server.problem_for(spec).fingerprint()


def test_debug_dashboard_is_strict_xhtml(server):
    import xml.etree.ElementTree as ET

    # prime with one solve so the health tables have rows
    status, _ = _request(
        server, "POST", "/solve",
        {"problem": {"type": "laplace_volume", "m": 16}, "rhs": {"seed": 11}},
    )
    assert status == 200
    status, headers, data = _request_full(server, "GET", "/debug")
    assert status == 200
    assert headers["Content-Type"].startswith("text/html")
    root = ET.fromstring(data.decode("utf-8"))
    assert root.tag == "{http://www.w3.org/1999/xhtml}html"
    ids = {el.get("id") for el in root.iter() if el.get("id")}
    assert {
        "service-stats", "health-levels", "health-krylov", "watchdog",
        "recent-requests", "profiler", "profiler-tracks", "tracer",
    } <= ids
    ns = {"x": "http://www.w3.org/1999/xhtml"}
    (levels,) = [el for el in root.iter() if el.get("id") == "health-levels"]
    assert levels.tag == "{http://www.w3.org/1999/xhtml}table"
    assert levels.findall("./x:tbody/x:tr", ns)  # non-empty health table
    (recent,) = [el for el in root.iter() if el.get("id") == "recent-requests"]
    assert recent.findall("./x:tbody/x:tr", ns)


def test_debug_profile_export_routes(server):
    status, headers, data = _request_full(
        server, "GET", "/debug/profile?format=speedscope"
    )
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    doc = json.loads(data)
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    assert "profiles" in doc and "frames" in doc["shared"]

    status, headers, data = _request_full(server, "GET", "/debug/profile")
    assert status == 200  # speedscope is the default format
    assert headers["Content-Type"].startswith("application/json")

    status, headers, data = _request_full(
        server, "GET", "/debug/profile?format=folded"
    )
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")

    status, payload = _request(server, "GET", "/debug/profile?format=bogus")
    assert status == 400 and payload["field"] == "format"
