"""HTTP front tests: the JSON wire format over a live ThreadingHTTPServer."""

import json
import threading

import http.client

import numpy as np
import pytest

import repro
from repro.service import SolveService
from repro.service.http import build_problem, make_server


@pytest.fixture(scope="module")
def server():
    service = SolveService(workers=4, batch_window=0.005, batch_mode="strict")
    srv = make_server(service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    service.close()
    thread.join(timeout=10)


def _request(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.server_address[1], timeout=120)
    try:
        conn.request(
            method,
            path,
            json.dumps(body) if body is not None else None,
            {"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def test_healthz(server):
    status, payload = _request(server, "GET", "/healthz")
    assert status == 200 and payload == {"ok": True}


def test_solve_roundtrip_matches_facade(server):
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"seed": 3},
        "return_x": True,
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    report = payload["report"]
    assert report["method"] == "direct" and report["converged"]
    prob = repro.LaplaceVolumeProblem(16)
    ref = repro.solve(prob, prob.random_rhs(3))
    assert np.allclose(np.asarray(payload["x"]), ref.x, rtol=1e-12, atol=0)
    assert report["relres"] == pytest.approx(ref.relres, rel=1e-6)


def test_repeated_requests_hit_the_cache(server):
    body = {"problem": {"type": "laplace_volume", "m": 16}, "rhs": {"seed": 0}}
    _request(server, "POST", "/solve", body)
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    assert payload["report"]["cache_hit"] is True
    status, stats = _request(server, "GET", "/stats")
    assert status == 200
    assert stats["factorizations"] >= 1
    assert stats["cache_hits"] >= 1
    assert 0 < stats["hit_rate"] <= 1


def test_complex_problem_and_pgmres(server):
    body = {
        "problem": {"type": "scattering", "m": 16, "kappa": 9.0},
        "method": "pgmres",
        "tol": 1e-10,
        "return_x": True,
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    assert payload["report"]["iterations"] > 0
    x = payload["x"]
    assert "re" in x and "im" in x  # complex encoding
    assert len(x["re"]) == 256


def test_explicit_rhs_values(server):
    n = 256
    values = [float(i) / n for i in range(n)]
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"values": values},
        "return_x": True,
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    prob = repro.LaplaceVolumeProblem(16)
    ref = repro.solve(prob, np.asarray(values))
    assert np.allclose(np.asarray(payload["x"]), ref.x, rtol=1e-12, atol=0)


def test_bie_problem_spec(server):
    body = {
        "problem": {
            "type": "interior_dirichlet",
            "n": 256,
            "curve": {"type": "star", "amplitude": 0.3, "arms": 5},
        },
        "srs": {"tol": 1e-10},
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 200
    assert payload["report"]["relres"] < 1e-6


def test_bad_requests(server):
    status, payload = _request(server, "POST", "/solve", {"problem": {"type": "nope"}})
    assert status == 400 and "unknown problem type" in payload["error"]
    status, payload = _request(server, "POST", "/solve", {"problem": {}})
    assert status == 400
    status, payload = _request(
        server, "POST", "/solve", {"problem": {"type": "laplace_volume", "m": 16}, "method": "bogus"}
    )
    assert status == 400 and "unknown solve method" in payload["error"]
    status, _ = _request(server, "GET", "/nope")
    assert status == 404
    status, _ = _request(server, "POST", "/nope", {})
    assert status == 404


def test_request_shaped_solver_errors_map_to_400(server):
    # pcg on a non-symmetric problem: rejected by the service's
    # compatibility check — the client's fault, so a 400
    body = {
        "problem": {"type": "scattering", "m": 16, "kappa": 9.0},
        "method": "pcg",
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 400 and "symmetric" in payload["error"]
    # wrong rhs length: also a client error
    body = {
        "problem": {"type": "laplace_volume", "m": 16},
        "rhs": {"values": [1.0, 2.0, 3.0]},
    }
    status, payload = _request(server, "POST", "/solve", body)
    assert status == 400 and "rows" in payload["error"]


def test_build_problem_cache_reuses_instances(server):
    spec = {"type": "laplace_volume", "m": 16}
    assert server.problem_for(dict(spec)) is server.problem_for(dict(spec))
    fresh = build_problem(spec)
    assert fresh is not server.problem_for(spec)
    assert fresh.fingerprint() == server.problem_for(spec).fingerprint()
