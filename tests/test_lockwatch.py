"""Tests for the REPRO_OBS-gated runtime lock-order watchdog."""

from __future__ import annotations

import logging
import threading

import pytest

from repro.obs.lockwatch import (
    WatchedLock,
    lock_order_edges,
    make_lock,
    reset_lock_watch,
)


@pytest.fixture(autouse=True)
def _clean_watch():
    reset_lock_watch()
    yield
    reset_lock_watch()


def test_make_lock_plain_when_obs_off(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    lock = make_lock("test.plain")
    assert not isinstance(lock, WatchedLock)
    assert isinstance(lock, type(threading.Lock()))
    rlock = make_lock("test.plain.r", reentrant=True)
    assert isinstance(rlock, type(threading.RLock()))
    with rlock:
        with rlock:  # reentrancy preserved
            pass


def test_make_lock_watched_when_obs_on(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    lock = make_lock("test.watched")
    assert isinstance(lock, WatchedLock)
    with lock:
        pass  # context manager protocol works


def test_edges_recorded_in_acquisition_order(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    a, b = make_lock("test.a"), make_lock("test.b")
    with a:
        with b:
            pass
    assert ("test.a", "test.b") in lock_order_edges()
    assert ("test.b", "test.a") not in lock_order_edges()


def test_inversion_warns_once(monkeypatch, caplog):
    monkeypatch.setenv("REPRO_OBS", "1")
    a, b = make_lock("test.a"), make_lock("test.b")
    with caplog.at_level(logging.WARNING, logger="repro.lockwatch"):
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        with b:  # same inversion again: no second warning
            with a:
                pass
    warnings = [r for r in caplog.records if "lock-order inversion" in r.message]
    assert len(warnings) == 1


def test_consistent_order_never_warns(monkeypatch, caplog):
    monkeypatch.setenv("REPRO_OBS", "1")
    a, b = make_lock("test.a"), make_lock("test.b")
    with caplog.at_level(logging.WARNING, logger="repro.lockwatch"):
        for _ in range(3):
            with a:
                with b:
                    pass
    assert not [r for r in caplog.records if "inversion" in r.message]


def test_reentrant_watched_lock_no_self_edge(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    r = make_lock("test.re", reentrant=True)
    with r:
        with r:
            pass
    assert not lock_order_edges()


def test_transitive_inversion_detected(monkeypatch, caplog):
    """a->b and b->c observed, then c->a closes a 3-cycle."""
    monkeypatch.setenv("REPRO_OBS", "1")
    a, b, c = make_lock("test.a"), make_lock("test.b"), make_lock("test.c")
    with caplog.at_level(logging.WARNING, logger="repro.lockwatch"):
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
    assert [r for r in caplog.records if "lock-order inversion" in r.message]


def test_out_of_order_release_tracked(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    a, b = make_lock("test.a"), make_lock("test.b")
    a.acquire()
    b.acquire()
    a.release()  # release in acquisition order, not reverse
    b.release()
    assert ("test.a", "test.b") in lock_order_edges()


def test_project_locks_become_watched_under_obs(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    from repro.vmpi.pool import RankPool

    pool = RankPool(1, "spawn", 1 << 20)
    assert isinstance(pool._lock, WatchedLock)
    assert pool._lock.reentrant
    assert pool._lock.name == "vmpi.pool"
